"""Unit tests for Fig. 7 coverage statistics."""

import pytest

from repro.ptile import (
    coverage_stats,
    ptile_count_distribution,
    user_coverage,
)


class TestCountDistribution:
    def test_counts_match_segments(self, ptiles2):
        counts = ptile_count_distribution(ptiles2)
        assert len(counts) == len(ptiles2)
        assert all(c >= 0 for c in counts)


class TestUserCoverage:
    def test_train_users_well_covered(self, small_dataset, ptiles2):
        cov = user_coverage(ptiles2, small_dataset.train_traces(2))
        assert cov > 0.8  # the Ptiles were built from these users

    def test_test_users_reasonably_covered(self, small_dataset, ptiles2):
        cov = user_coverage(ptiles2, small_dataset.test_traces(2))
        assert cov > 0.5

    def test_coverage_in_unit_interval(self, small_dataset, ptiles8):
        cov = user_coverage(ptiles8, small_dataset.traces[8])
        assert 0.0 <= cov <= 1.0

    def test_requires_inputs(self, small_dataset, ptiles2):
        with pytest.raises(ValueError):
            user_coverage([], small_dataset.train_traces(2))
        with pytest.raises(ValueError):
            user_coverage(ptiles2, [])


class TestCoverageStats:
    def test_aggregation(self, small_dataset, ptiles2):
        stats = coverage_stats(2, ptiles2, small_dataset.traces[2])
        assert stats.video_id == 2
        assert stats.mean_ptiles >= 0
        assert 0 <= stats.covered_fraction <= 1

    def test_fraction_needing_at_most_monotone(self, small_dataset, ptiles2):
        stats = coverage_stats(2, ptiles2, small_dataset.traces[2])
        f1 = stats.fraction_needing_at_most(1)
        f2 = stats.fraction_needing_at_most(2)
        f3 = stats.fraction_needing_at_most(3)
        assert f1 <= f2 <= f3 <= 1.0

    def test_negative_k_rejected(self, small_dataset, ptiles2):
        stats = coverage_stats(2, ptiles2, small_dataset.traces[2])
        with pytest.raises(ValueError):
            stats.fraction_needing_at_most(-1)

    def test_histogram_sums_to_one(self, small_dataset, ptiles8):
        stats = coverage_stats(8, ptiles8, small_dataset.traces[8])
        hist = stats.count_histogram()
        assert sum(hist.values()) == pytest.approx(1.0)

    def test_focused_video_shape(self, small_dataset, ptiles2):
        """Fig. 7 shape: focused video needs few Ptiles, high coverage."""
        stats = coverage_stats(2, ptiles2, small_dataset.traces[2])
        assert stats.fraction_needing_at_most(2) > 0.9
        assert stats.covered_fraction > 0.7
