"""Unit tests for head-movement traces."""

import numpy as np
import pytest

from repro.traces import HeadTrace


def make_trace(yaws, pitches=None, dt=0.1, user_id=0, video_id=1):
    n = len(yaws)
    return HeadTrace(
        user_id=user_id,
        video_id=video_id,
        timestamps=np.arange(n) * dt,
        yaw_unwrapped=np.asarray(yaws, dtype=float),
        pitch=np.asarray(
            pitches if pitches is not None else np.zeros(n), dtype=float
        ),
    )


class TestValidation:
    def test_minimum_samples(self):
        with pytest.raises(ValueError):
            make_trace([0.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            HeadTrace(0, 1, np.array([0.0, 0.1]), np.array([0.0]), np.array([0.0, 0.0]))

    def test_non_increasing_timestamps(self):
        with pytest.raises(ValueError):
            HeadTrace(
                0, 1, np.array([0.0, 0.0]), np.zeros(2), np.zeros(2)
            )

    def test_pitch_bounds(self):
        with pytest.raises(ValueError):
            make_trace([0.0, 1.0], [0.0, 100.0])


class TestAccessors:
    def test_basic_properties(self):
        trace = make_trace(np.arange(20.0))
        assert trace.num_samples == 20
        assert trace.duration_s == pytest.approx(1.9)

    def test_yaw_wrapped(self):
        trace = make_trace([350.0, 370.0, 390.0])
        assert np.allclose(trace.yaw_wrapped, [350.0, 10.0, 30.0])

    def test_orientation_interpolation(self):
        trace = make_trace([0.0, 10.0])
        yaw, pitch = trace.orientation_at(0.05)
        assert yaw == pytest.approx(5.0)

    def test_orientation_interpolates_across_seam(self):
        # Unwrapped storage: 350 -> 370 passes through 360, i.e. 0.
        trace = make_trace([350.0, 370.0])
        yaw, _ = trace.orientation_at(0.05)
        assert yaw == pytest.approx(0.0)

    def test_orientation_clamps_time(self):
        trace = make_trace([0.0, 10.0])
        assert trace.orientation_at(-5.0)[0] == pytest.approx(0.0)
        assert trace.orientation_at(99.0)[0] == pytest.approx(10.0)

    def test_viewport_at(self):
        trace = make_trace([100.0, 100.0], [5.0, 5.0])
        vp = trace.viewport_at(0.05)
        assert vp.yaw == pytest.approx(100.0)
        assert vp.pitch == pytest.approx(5.0)

    def test_segment_center(self):
        trace = make_trace(np.linspace(0, 30, 31), dt=0.1)
        yaw, _ = trace.segment_center(0, segment_seconds=1.0)
        assert yaw == pytest.approx(5.0)

    def test_segment_center_negative_rejected(self):
        trace = make_trace([0.0, 1.0])
        with pytest.raises(ValueError):
            trace.segment_center(-1)


class TestKinematics:
    def test_switching_speeds_constant_motion(self):
        trace = make_trace(np.arange(0, 10, 1.0), dt=0.1)  # 10 deg/s
        speeds = trace.switching_speeds()
        assert np.allclose(speeds, 10.0, atol=0.05)

    def test_mean_speed_in_window(self):
        trace = make_trace(np.arange(0, 20, 1.0), dt=0.1)
        assert trace.mean_speed_in(0.0, 1.0) == pytest.approx(10.0, abs=0.1)

    def test_speed_quantile(self):
        # Half slow, half fast within the window.
        yaws = np.concatenate([np.arange(0, 5, 0.5), np.arange(5, 25, 2.0)])
        trace = make_trace(yaws, dt=0.1)
        p75 = trace.speed_quantile_in(0.0, 2.0, quantile=0.75)
        mean = trace.speed_quantile_in(0.0, 2.0, quantile=None)
        assert p75 > mean

    def test_window_between_samples_falls_back(self):
        trace = make_trace([0.0, 10.0, 20.0], dt=5.0)
        speed = trace.mean_speed_in(1.0, 1.5)
        assert speed > 0

    def test_invalid_window(self):
        trace = make_trace([0.0, 1.0])
        with pytest.raises(ValueError):
            trace.mean_speed_in(1.0, 1.0)

    def test_invalid_quantile(self):
        trace = make_trace([0.0, 1.0])
        with pytest.raises(ValueError):
            trace.speed_quantile_in(0.0, 1.0, quantile=1.5)


class TestPersistence:
    def test_csv_round_trip(self, tmp_path):
        trace = make_trace([350.0, 365.0, 380.0], [1.0, 2.0, 3.0])
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = HeadTrace.from_csv(path, user_id=7, video_id=3)
        assert loaded.user_id == 7
        assert loaded.video_id == 3
        assert np.allclose(loaded.yaw_wrapped, trace.yaw_wrapped, atol=1e-5)
        assert np.allclose(loaded.pitch, trace.pitch, atol=1e-5)

    def test_round_trip_preserves_speeds(self, tmp_path):
        rng = np.random.default_rng(5)
        yaws = np.cumsum(rng.normal(0, 3, 60))
        trace = make_trace(yaws, rng.uniform(-40, 40, 60))
        loaded = HeadTrace.from_csv_string(trace.to_csv_string())
        assert np.allclose(
            loaded.switching_speeds(), trace.switching_speeds(), atol=1e-3
        )

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            HeadTrace.from_csv_string("a,b,c\n1,2,3\n4,5,6")

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            HeadTrace.from_csv_string("t,yaw,pitch\n0,0,0")
