"""Tests for the disk-backed content-prep artifact store.

The load-bearing properties:

* **Identity** — `run_comparison` aggregates are byte-identical across
  cache-off, cache-cold, and cache-warm runs, at any worker count.
* **Invalidation** — any input that changes the artifacts (clustering
  δ/σ, grid geometry, training traces, encoder, video) changes the
  content key, so a stale hit is impossible.
* **Robustness** — corrupt or truncated cache files are treated as
  misses and rebuilt, never crashing a run.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.experiments import run_comparison
from repro.experiments.artifacts import (
    ArtifactStore,
    content_digest,
    default_cache_dir,
    encoder_fingerprint,
    ftiles_key,
    manifest_key,
    ptiles_key,
    traces_fingerprint,
    video_fingerprint,
)
from repro.experiments.setup import ExperimentSetup
from repro.geometry.tiling import DEFAULT_GRID, TileGrid
from repro.power import PIXEL_3
from repro.ptile.construction import PtileConfig
from repro.video import EncoderModel


@pytest.fixture()
def fresh_setup(small_dataset, network_traces):
    def make(artifacts=None, **overrides):
        return ExperimentSetup(
            dataset=small_dataset,
            encoder=EncoderModel(),
            trace1=network_traces[0],
            trace2=network_traces[1],
            artifacts=artifacts,
            **overrides,
        )

    return make


def result_signature(results):
    return [
        (key, r.user_id, r.total_energy_j, r.mean_qoe, r.total_stall_s,
         r.rebuffer_count, r.mean_frame_rate)
        for key, sessions in sorted(results.items())
        for r in sessions
    ]


SWEEP_KW = dict(
    users_per_video=1, video_ids=(2,), scheme_names=("ctile", "ours")
)


class TestContentDigest:
    def test_deterministic_and_type_tagged(self):
        assert content_digest(1, "a", 2.0) == content_digest(1, "a", 2.0)
        assert content_digest(1) != content_digest("1")
        assert content_digest(1.0) != content_digest(1)
        assert content_digest(("ab", "c")) != content_digest(("a", "bc"))
        assert content_digest(None) != content_digest(0)
        assert content_digest(True) != content_digest(1)

    def test_arrays_and_dicts(self):
        import numpy as np

        a = np.arange(6, dtype=float)
        assert content_digest(a) == content_digest(a.copy())
        assert content_digest(a) != content_digest(a.reshape(2, 3))
        assert content_digest({"x": 1, "y": 2}) == content_digest(
            {"y": 2, "x": 1}
        )

    def test_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            content_digest(object())


class TestKeyComposition:
    def test_ptiles_key_sensitive_to_all_inputs(self, small_dataset):
        video = small_dataset.video(2)
        train = small_dataset.train_traces(2)
        base = ptiles_key(video, train, DEFAULT_GRID, PtileConfig())

        assert ptiles_key(
            video, train, DEFAULT_GRID, PtileConfig(delta=3.0)
        ) != base
        assert ptiles_key(
            video, train, DEFAULT_GRID, PtileConfig(sigma=60.0)
        ) != base
        assert ptiles_key(
            video, train, TileGrid(rows=6, cols=12), PtileConfig()
        ) != base
        assert ptiles_key(video, train[:-1], DEFAULT_GRID, PtileConfig()) != base
        other_video = small_dataset.video(8)
        assert ptiles_key(
            other_video, train, DEFAULT_GRID, PtileConfig()
        ) != base

    def test_resolved_defaults_hash_like_explicit_values(self, small_dataset):
        """sigma=None resolves to the tile width; the two spellings build
        identical Ptiles, so they must share a cache slot."""
        video = small_dataset.video(2)
        train = small_dataset.train_traces(2)
        assert ptiles_key(
            video, train, DEFAULT_GRID, PtileConfig()
        ) == ptiles_key(
            video, train, DEFAULT_GRID,
            PtileConfig(sigma=DEFAULT_GRID.tile_width,
                        delta=DEFAULT_GRID.tile_width / 4.0),
        )

    def test_manifest_key_sensitive_to_encoder(self, small_dataset):
        video = small_dataset.video(2)
        assert manifest_key(video, EncoderModel()) != manifest_key(
            video, EncoderModel(noise_sigma=0.0)
        )

    def test_ftiles_key_sensitive_to_traces(self, small_dataset):
        video = small_dataset.video(2)
        train = small_dataset.train_traces(2)
        assert ftiles_key(video, train) != ftiles_key(video, train[:-1])

    def test_fingerprints_are_digestible(self, small_dataset):
        video = small_dataset.video(2)
        content_digest(video_fingerprint(video))
        content_digest(encoder_fingerprint(EncoderModel()))
        content_digest(traces_fingerprint(small_dataset.train_traces(2)))


class TestArtifactStore:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = content_digest("x")
        assert store.get("ptiles", digest) is None
        store.put("ptiles", digest, {"payload": [1, 2, 3]})
        assert store.get("ptiles", digest) == {"payload": [1, 2, 3]}
        assert store.stats.hits == {"ptiles": 1}
        assert store.stats.misses == {"ptiles": 1}
        assert store.stats.writes == {"ptiles": 1}
        assert store.size_bytes() > 0

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path).get("bogus", "00")

    def test_corrupt_file_is_a_miss_and_removed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = content_digest("y")
        path = store.put("manifest", digest, [1, 2])
        path.write_bytes(b"not a pickle")
        assert store.get("manifest", digest) is None
        assert not path.exists()

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = content_digest("z")
        path = store.put("ftiles", digest, list(range(100)))
        path.write_bytes(pickle.dumps(list(range(100)))[:10])
        assert store.get("ftiles", digest) is None

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("ptiles", content_digest(1), "a")
        store.put("manifest", content_digest(2), "b")
        assert store.clear() == 2
        assert store.size_bytes() == 0

    def test_memory_error_is_a_miss_but_file_survives(self, tmp_path,
                                                      monkeypatch):
        """A transient OOM must not be treated as corruption: the entry
        stays on disk and a later load (with memory back) hits."""
        store = ArtifactStore(tmp_path)
        digest = content_digest("big")
        path = store.put("results", digest, {"payload": list(range(50))})

        def oom(*args, **kwargs):
            raise MemoryError

        monkeypatch.setattr(pickle, "load", oom)
        assert store.get("results", digest) is None
        assert path.exists()  # NOT unlinked, unlike a corrupt pickle
        assert store.stats.misses == {"results": 1}

        monkeypatch.undo()
        assert store.get("results", digest) == {"payload": list(range(50))}

    def test_malformed_digest_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in (
            "../../../../etc/passwd",
            "deadbeef",  # too short
            content_digest("x").upper(),  # not lowercase hex
            content_digest("x")[:-1] + "/",
            content_digest("x") + "00",  # too long
            "g" * 64,  # right length, not hex
            "",
        ):
            with pytest.raises(ValueError):
                store.path_for("results", bad)
            with pytest.raises(ValueError):
                store.get("results", bad)
            with pytest.raises(ValueError):
                store.put("results", bad, "payload")

    def test_path_stays_inside_kind_directory(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.path_for("ptiles", content_digest("x"))
        assert path.parent == tmp_path / "ptiles"

    def test_stale_tmp_files_swept(self, tmp_path):
        """A crashed writer's temp file is invisible to the glob-based
        clear()/size_bytes(); the age-gated sweep reclaims it while a
        fresh (possibly live) writer's file is left alone."""
        store = ArtifactStore(tmp_path, stale_tmp_age_s=60.0)
        store.put("results", content_digest("keep"), "v")
        kind_dir = tmp_path / "results"

        stale = kind_dir / f".{content_digest('dead')}.12345.tmp"
        stale.write_bytes(b"x" * 100)
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = kind_dir / f".{content_digest('live')}.12346.tmp"
        fresh.write_bytes(b"y" * 100)

        size = store.size_bytes()
        assert not stale.exists()  # orphan reclaimed
        assert fresh.exists()  # live writer untouched
        assert size >= 100  # fresh tmp is counted while it exists

        os.utime(fresh, (old, old))
        removed = store.clear()
        assert removed == 2  # the artifact + the now-stale tmp
        assert not fresh.exists()
        assert store.size_bytes() == 0

    def test_default_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"
        assert ArtifactStore().root == tmp_path / "env"
        monkeypatch.delenv("REPRO_ARTIFACT_CACHE")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-360"

    def test_stats_report_renders(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.get("ptiles", content_digest("miss"))
        assert "ptiles: 0 hit(s), 1 miss(es)" in store.stats.report()


class TestRunComparisonIdentity:
    def test_off_cold_warm_identical(self, fresh_setup, tmp_path, device):
        off = run_comparison(fresh_setup(None), device, **SWEEP_KW)

        cold_setup = fresh_setup(ArtifactStore(tmp_path))
        cold = run_comparison(cold_setup, device, **SWEEP_KW)
        assert cold_setup.artifacts.stats.total_hits == 0
        assert cold_setup.artifacts.stats.writes == {
            "manifest": 1, "ptiles": 1, "ftiles": 1
        }

        warm_setup = fresh_setup(ArtifactStore(tmp_path))
        warm = run_comparison(warm_setup, device, **SWEEP_KW)
        assert warm_setup.artifacts.stats.total_misses == 0
        assert warm_setup.artifacts.stats.hits == {
            "manifest": 1, "ptiles": 1, "ftiles": 1
        }

        assert (
            result_signature(off)
            == result_signature(cold)
            == result_signature(warm)
        )

    def test_warm_identical_across_worker_counts(
        self, fresh_setup, tmp_path, device
    ):
        store = ArtifactStore(tmp_path)
        cold = run_comparison(fresh_setup(store), device, **SWEEP_KW)
        warm_pooled = run_comparison(
            fresh_setup(ArtifactStore(tmp_path)), device, workers=2,
            **SWEEP_KW,
        )
        assert result_signature(cold) == result_signature(warm_pooled)

    def test_parallel_cold_prep_identical(self, fresh_setup, device,
                                          tmp_path):
        serial = run_comparison(fresh_setup(None), device,
                                users_per_video=1,
                                scheme_names=("ctile", "ours"))
        pooled_setup = fresh_setup(ArtifactStore(tmp_path / "p"))
        pooled = run_comparison(pooled_setup, device, users_per_video=1,
                                scheme_names=("ctile", "ours"), workers=2)
        assert result_signature(serial) == result_signature(pooled)

    def test_warm_run_skips_construction(self, fresh_setup, tmp_path,
                                         device, monkeypatch):
        """On a warm store the construction entry points must never run."""
        store = ArtifactStore(tmp_path)
        run_comparison(fresh_setup(store), device, **SWEEP_KW)

        import repro.experiments.setup as setup_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("construction ran on a warm cache")

        monkeypatch.setattr(setup_mod, "build_video_ptiles", boom)
        monkeypatch.setattr(setup_mod, "build_video_ftiles", boom)
        monkeypatch.setattr(setup_mod, "VideoManifest", boom)
        warm_setup = fresh_setup(ArtifactStore(tmp_path))
        warm = run_comparison(warm_setup, device, **SWEEP_KW)
        assert warm_setup.artifacts.stats.total_misses == 0
        assert result_signature(warm)


class TestInvalidation:
    def test_changed_clustering_params_rebuild(self, fresh_setup, tmp_path,
                                               device):
        store = ArtifactStore(tmp_path)
        run_comparison(fresh_setup(store), device, **SWEEP_KW)

        changed = fresh_setup(
            ArtifactStore(tmp_path),
            ptile_config=PtileConfig(delta=2.0, sigma=50.0),
        )
        run_comparison(changed, device, **SWEEP_KW)
        # Manifests/Ftiles don't depend on δ/σ: warm.  Ptiles: rebuilt.
        assert changed.artifacts.stats.misses.get("ptiles") == 1
        assert changed.artifacts.stats.writes.get("ptiles") == 1
        assert "manifest" not in changed.artifacts.stats.misses
        assert "ftiles" not in changed.artifacts.stats.misses

    def test_changed_grid_rebuilds_ptiles(self, fresh_setup, tmp_path,
                                          device):
        store = ArtifactStore(tmp_path)
        base = fresh_setup(store)
        base.prepare((2,))
        changed = fresh_setup(
            ArtifactStore(tmp_path), grid=TileGrid(rows=6, cols=12)
        )
        changed.prepare((2,), manifests=False, ftiles=False)
        assert changed.artifacts.stats.misses.get("ptiles") == 1

    def test_changed_train_traces_rebuild(self, tmp_path, network_traces):
        from repro.traces import build_dataset

        for seed in (7, 8):  # different split => different train traces
            dataset = build_dataset(n_users=16, n_train=12, video_ids=(2,),
                                    max_duration_s=20, seed=seed)
            setup = ExperimentSetup(
                dataset=dataset,
                encoder=EncoderModel(),
                trace1=network_traces[0],
                trace2=network_traces[1],
                artifacts=ArtifactStore(tmp_path),
            )
            setup.prepare((2,))
            # The video itself is seed-independent, so the manifest may
            # hit on the second round — but Ptiles/Ftiles depend on the
            # training traces and must be rebuilt for the new split.
            assert setup.artifacts.stats.hits.get("ptiles") is None
            assert setup.artifacts.stats.hits.get("ftiles") is None
            assert setup.artifacts.stats.misses.get("ptiles") == 1
            assert setup.artifacts.stats.misses.get("ftiles") == 1


class TestPrepare:
    def test_prepare_is_idempotent(self, fresh_setup, tmp_path):
        setup = fresh_setup(ArtifactStore(tmp_path))
        setup.prepare()
        ptiles = setup.ptiles(2)
        setup.prepare()
        assert setup.ptiles(2) is ptiles  # memo untouched

    def test_prepare_without_store(self, fresh_setup):
        setup = fresh_setup(None)
        setup.prepare((2,), workers=1)
        assert setup.ptiles(2)
        assert setup.ftiles(2)

    def test_parallel_prepare_matches_serial(self, fresh_setup):
        serial = fresh_setup(None)
        serial.prepare(workers=1)
        pooled = fresh_setup(None)
        pooled.prepare(workers=2)
        for vid in (2, 8):
            assert [
                (sp.segment_index, [p.tiles for p in sp.ptiles])
                for sp in serial.ptiles(vid)
            ] == [
                (sp.segment_index, [p.tiles for p in sp.ptiles])
                for sp in pooled.ptiles(vid)
            ]
            assert [
                [c.rect for c in part.cells] for part in serial.ftiles(vid)
            ] == [
                [c.rect for c in part.cells] for part in pooled.ftiles(vid)
            ]
