"""Unit tests for evaluation-dataset assembly."""

import numpy as np
import pytest

from repro.traces import build_dataset


class TestBuildDataset:
    def test_small_dataset_shape(self, small_dataset):
        assert len(small_dataset.videos) == 2
        assert small_dataset.n_users == 16
        for vid in (2, 8):
            assert len(small_dataset.traces[vid]) == 16
            assert len(small_dataset.train_users[vid]) == 12
            assert len(small_dataset.test_users[vid]) == 4

    def test_split_disjoint_and_complete(self, small_dataset):
        for vid in (2, 8):
            train = set(small_dataset.train_users[vid])
            test = set(small_dataset.test_users[vid])
            assert train.isdisjoint(test)
            assert train | test == set(range(16))

    def test_split_deterministic(self):
        a = build_dataset(n_users=10, n_train=7, video_ids=(2,), max_duration_s=5)
        b = build_dataset(n_users=10, n_train=7, video_ids=(2,), max_duration_s=5)
        assert a.train_users == b.train_users

    def test_split_varies_with_seed(self):
        a = build_dataset(n_users=12, n_train=8, video_ids=(2,), max_duration_s=5,
                          seed=1)
        b = build_dataset(n_users=12, n_train=8, video_ids=(2,), max_duration_s=5,
                          seed=2)
        assert a.train_users != b.train_users

    def test_truncation(self, small_dataset):
        video = small_dataset.video(2)
        assert video.num_segments == 30
        trace = small_dataset.traces[2][0]
        assert trace.duration_s >= 29.0

    def test_invalid_split(self):
        with pytest.raises(ValueError):
            build_dataset(n_users=10, n_train=10)
        with pytest.raises(ValueError):
            build_dataset(n_users=10, n_train=0)

    def test_unknown_video_rejected(self):
        with pytest.raises(KeyError):
            build_dataset(video_ids=(99,), max_duration_s=5)

    def test_video_lookup(self, small_dataset):
        assert small_dataset.video(8).meta.video_id == 8
        with pytest.raises(KeyError):
            small_dataset.video(3)

    def test_trace_lookup(self, small_dataset):
        user = small_dataset.test_users[2][0]
        trace = small_dataset.trace(2, user)
        assert trace.user_id == user
        with pytest.raises(KeyError):
            small_dataset.trace(2, 999)

    def test_train_test_trace_accessors(self, small_dataset):
        train = small_dataset.train_traces(2)
        test = small_dataset.test_traces(2)
        assert len(train) == 12
        assert len(test) == 4
        assert {t.user_id for t in train}.isdisjoint({t.user_id for t in test})

    def test_all_switching_speeds_pooled(self, small_dataset):
        speeds = small_dataset.all_switching_speeds()
        per_trace = sum(
            t.switching_speeds().size
            for ts in small_dataset.traces.values()
            for t in ts
        )
        assert speeds.size == per_trace
        assert np.all(speeds >= 0)
