"""Unit tests for the streaming schemes' download planning."""

import pytest

from repro.geometry import Rect, Viewport
from repro.power import TilingScheme
from repro.streaming import (
    CtileScheme,
    DownloadPlan,
    FtileScheme,
    NontileScheme,
    PlanContext,
    PtileScheme,
    split_wrapped_rect,
)


@pytest.fixture
def ctx(manifest2, ptiles2, ftiles2, encoder):
    """A planning context looking at the Ptile of segment 0."""
    sp = next(sp for sp in ptiles2 if sp.num_ptiles > 0)
    ptile = sp.ptiles[0]
    yaw, pitch = ptile.cluster.centroid()
    return PlanContext(
        segment_index=sp.segment_index,
        manifest=manifest2[sp.segment_index],
        predicted_viewport=Viewport(yaw, pitch),
        buffer_s=3.0,
        bandwidth_mbps=8.0,
        grid=encoder.grid,
        segment_ptiles=sp,
        ftile_partition=ftiles2[sp.segment_index],
    )


@pytest.fixture
def ctx_no_ptile(manifest2, ftiles2, encoder):
    return PlanContext(
        segment_index=0,
        manifest=manifest2[0],
        predicted_viewport=Viewport(100.0, 0.0),
        buffer_s=3.0,
        bandwidth_mbps=8.0,
        grid=encoder.grid,
        segment_ptiles=None,
        ftile_partition=ftiles2[0],
    )


class TestSplitWrappedRect:
    def test_plain_rect_unchanged(self):
        r = Rect(10, 0, 50, 45)
        assert split_wrapped_rect(r) == (r,)

    def test_wrapping_rect_split(self):
        r = Rect(300, 0, 400, 45)
        left, right = split_wrapped_rect(r)
        assert left.x1 == 360.0
        assert right.x0 == 0.0
        assert left.width + right.width == pytest.approx(100.0)


class TestCoverage:
    def test_full_coverage_flag(self):
        plan = DownloadPlan("n", 3, 30.0, 1.0, TilingScheme.NONTILE,
                            full_coverage=True)
        assert plan.coverage_of(Viewport(123.0, 45.0)) == 1.0

    def test_no_rects_no_coverage(self):
        plan = DownloadPlan("c", 3, 30.0, 1.0, TilingScheme.CTILE)
        assert plan.coverage_of(Viewport(0, 0)) == 0.0

    def test_partial_coverage(self):
        plan = DownloadPlan(
            "c", 3, 30.0, 1.0, TilingScheme.CTILE,
            hq_rects=(Rect(130, -50, 180, 50),),
        )
        assert plan.coverage_of(Viewport(180.0, 0.0)) == pytest.approx(0.5)


class TestCtileScheme:
    def test_plan_shape(self, ctx_no_ptile):
        plan = CtileScheme().plan(ctx_no_ptile)
        assert plan.decode_scheme == TilingScheme.CTILE
        assert plan.frame_rate == 30.0
        assert plan.total_size_mbit > 0
        assert 1 <= plan.quality <= 5
        assert plan.hq_rects  # FoV tile rectangles

    def test_covers_predicted_viewport_well(self, ctx_no_ptile):
        plan = CtileScheme().plan(ctx_no_ptile)
        assert plan.coverage_of(ctx_no_ptile.predicted_viewport) > 0.85

    def test_more_bandwidth_higher_quality(self, ctx_no_ptile):
        from dataclasses import replace

        low = CtileScheme().plan(replace(ctx_no_ptile, bandwidth_mbps=2.0))
        high = CtileScheme().plan(replace(ctx_no_ptile, bandwidth_mbps=30.0))
        assert high.quality >= low.quality


class TestFtileScheme:
    def test_plan_shape(self, ctx):
        plan = FtileScheme().plan(ctx)
        assert plan.decode_scheme == TilingScheme.FTILE
        assert plan.total_size_mbit > 0

    def test_requires_partition(self, ctx):
        from dataclasses import replace

        with pytest.raises(ValueError):
            FtileScheme().plan(replace(ctx, ftile_partition=None))


class TestNontileScheme:
    def test_full_coverage(self, ctx_no_ptile):
        plan = NontileScheme().plan(ctx_no_ptile)
        assert plan.full_coverage
        assert plan.decode_scheme == TilingScheme.NONTILE

    def test_fractional_ladder(self, ctx_no_ptile):
        plan = NontileScheme().plan(ctx_no_ptile)
        assert 1.0 <= plan.quality <= 5.0


class TestPtileScheme:
    def test_uses_ptile_when_available(self, ctx):
        plan = PtileScheme().plan(ctx)
        assert plan.used_ptile
        assert plan.decode_scheme == TilingScheme.PTILE
        assert plan.frame_rate == 30.0

    def test_fallback_without_ptiles(self, ctx_no_ptile):
        plan = PtileScheme().plan(ctx_no_ptile)
        assert not plan.used_ptile
        assert plan.decode_scheme == TilingScheme.CTILE
        assert plan.scheme_name == "ptile"

    def test_fallback_when_viewport_uncovered(self, ctx):
        from dataclasses import replace

        far = replace(ctx, predicted_viewport=Viewport(
            (ctx.predicted_viewport.yaw + 180.0) % 360.0, 0.0
        ))
        plan = PtileScheme().plan(far)
        assert not plan.used_ptile

    def test_smaller_than_ctile_at_same_quality(self, ctx):
        """The headline mechanism: Ptile downloads fewer bits."""
        ptile_plan = PtileScheme().plan(ctx)
        ctile_plan = CtileScheme().plan(ctx)
        if ptile_plan.quality >= ctile_plan.quality:
            assert ptile_plan.total_size_mbit < ctile_plan.total_size_mbit * 1.05
