"""Tests for the session-results cache.

The load-bearing properties mirror the content-prep artifact store:

* **Identity** — warm aggregates are byte-identical to cache-off runs,
  at any worker count.
* **No recomputation** — a fully warm run never executes a session.
* **Invalidation** — any input that changes a session's outcome
  (device, traces, session config, job parameters) changes the key;
  the display-only job ``key`` label does not.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import make_schemes, run_comparison
from repro.experiments.artifacts import (
    ArtifactStore,
    results_key,
    session_job_digest,
    structural_fingerprint,
    sweep_context_digest,
)
from repro.experiments.runner import (
    SessionJob,
    SweepContext,
    run_session_jobs,
)
from repro.experiments.setup import ExperimentSetup
from repro.power import GALAXY_S20
from repro.streaming import EdgeHitModel
from repro.streaming.session import SessionConfig
from repro.video import EncoderModel


@pytest.fixture(scope="module")
def sweep_context(small_dataset, manifest2, ptiles2, ftiles2,
                  network_traces, device):
    trace1, trace2 = network_traces
    return SweepContext(
        schemes=make_schemes(device),
        device=device,
        networks={"trace1": trace1, "trace2": trace2},
        manifests={2: manifest2},
        head_traces={2: tuple(small_dataset.test_traces(2))},
        ptiles={2: ptiles2},
        ftiles={2: ftiles2},
        config=SessionConfig(),
    )


def make_jobs(schemes=("ctile", "ours"), users=2):
    return [
        SessionJob(key=(name, 2, u), scheme=name, video_id=2,
                   network="trace2", user_index=u)
        for name in schemes
        for u in range(users)
    ]


def session_signature(result):
    return (
        result.scheme_name,
        result.video_id,
        result.user_id,
        result.total_energy_j,
        result.mean_qoe,
        result.total_stall_s,
        result.rebuffer_count,
    )


class TestWarmIdentity:
    def test_off_cold_warm_identical_any_worker_count(self, sweep_context,
                                                      tmp_path):
        jobs = make_jobs()
        off = run_session_jobs(sweep_context, jobs, workers=1)

        store = ArtifactStore(tmp_path)
        cold = run_session_jobs(sweep_context, jobs, workers=1,
                                results=store)
        assert cold.cache_hits == 0
        assert store.stats.writes.get("results") == len(jobs)

        for workers in (1, 2):
            warm = run_session_jobs(sweep_context, jobs, workers=workers,
                                    results=ArtifactStore(tmp_path))
            assert warm.cache_hits == len(jobs)
            assert [session_signature(r) for r in warm.results] == [
                session_signature(r) for r in off.results
            ]
        assert [session_signature(r) for r in cold.results] == [
            session_signature(r) for r in off.results
        ]

    def test_partial_hits_merge_in_job_order(self, sweep_context, tmp_path):
        store = ArtifactStore(tmp_path)
        first = make_jobs(schemes=("ctile",))
        run_session_jobs(sweep_context, first, workers=1, results=store)

        both = make_jobs(schemes=("ctile", "ours"))
        mixed = run_session_jobs(sweep_context, both, workers=1,
                                 results=ArtifactStore(tmp_path))
        assert mixed.cache_hits == len(first)
        baseline = run_session_jobs(sweep_context, both, workers=1)
        assert [session_signature(r) for r in mixed.results] == [
            session_signature(r) for r in baseline.results
        ]

    def test_warm_run_executes_no_session(self, sweep_context, tmp_path,
                                          monkeypatch):
        jobs = make_jobs()
        store = ArtifactStore(tmp_path)
        run_session_jobs(sweep_context, jobs, workers=1, results=store)

        def boom(self, job):  # pragma: no cover - must not run
            raise AssertionError("a session ran on a warm results cache")

        monkeypatch.setattr(SweepContext, "run_job", boom)
        warm = run_session_jobs(sweep_context, jobs, workers=1,
                                results=ArtifactStore(tmp_path))
        assert warm.cache_hits == len(jobs)
        assert all(r is not None for r in warm.results)
        assert not warm.failures and not warm.timings

    def test_failures_not_cached_and_reindexed(self, sweep_context,
                                               tmp_path):
        jobs = [
            SessionJob(key="ok", scheme="ctile", video_id=2,
                       network="trace2", user_index=0),
            SessionJob(key="bad", scheme="ctile", video_id=2,
                       network="trace2", user_index=999),
        ]
        store = ArtifactStore(tmp_path)
        run = run_session_jobs(sweep_context, jobs, workers=1,
                               strict=False, results=store)
        assert run.results[1] is None
        assert [f.job_index for f in run.failures] == [1]
        assert store.stats.writes.get("results") == 1

        # Re-run: the good job hits, the bad one re-executes and fails
        # again at its original index.
        again = run_session_jobs(sweep_context, jobs, workers=1,
                                 strict=False,
                                 results=ArtifactStore(tmp_path))
        assert again.cache_hits == 1
        assert [f.job_index for f in again.failures] == [1]


class TestInvalidation:
    def test_key_ignores_display_label(self, sweep_context):
        a = SessionJob(key="label-a", scheme="ctile", video_id=2,
                       network="trace2", user_index=0)
        b = dataclasses.replace(a, key=("entirely", "different"))
        assert session_job_digest(a) == session_job_digest(b)
        digest = sweep_context_digest(sweep_context)
        assert results_key(digest, a) == results_key(digest, b)

    def test_key_sensitive_to_job_parameters(self, sweep_context):
        digest = sweep_context_digest(sweep_context)
        base = SessionJob(key="k", scheme="ctile", video_id=2,
                          network="trace2", user_index=0)
        for changed in (
            dataclasses.replace(base, scheme="ours"),
            dataclasses.replace(base, network="trace1"),
            dataclasses.replace(base, user_index=1),
            dataclasses.replace(base, use_ptiles=False),
            dataclasses.replace(base, config=SessionConfig(max_segments=3)),
        ):
            assert results_key(digest, changed) != results_key(digest, base)

    def test_context_digest_sensitive_to_device_and_config(
        self, sweep_context
    ):
        base = sweep_context_digest(sweep_context)
        other_device = dataclasses.replace(sweep_context, device=GALAXY_S20)
        assert sweep_context_digest(other_device) != base
        other_config = dataclasses.replace(
            sweep_context, config=SessionConfig(horizon=3)
        )
        assert sweep_context_digest(other_config) != base

    def test_context_digest_sensitive_to_video_configs(self, sweep_context):
        base = sweep_context_digest(sweep_context)
        model = EdgeHitModel(hit_ratios=(0.5, 0.5))
        with_edge = dataclasses.replace(
            sweep_context,
            video_configs={2: SessionConfig(edge_model=model)},
        )
        assert sweep_context_digest(with_edge) != base
        # The digest must see *into* the per-video edge model, not just
        # its presence: different hit ratios → different key.
        other_model = dataclasses.replace(model, hit_ratios=(0.9, 0.9))
        other_edge = dataclasses.replace(
            sweep_context,
            video_configs={2: SessionConfig(edge_model=other_model)},
        )
        assert sweep_context_digest(other_edge) != sweep_context_digest(
            with_edge
        )

    def test_slice_drops_other_videos_configs(self, sweep_context):
        # A video-8 override must not perturb keys of a video-2 batch.
        wide = dataclasses.replace(
            sweep_context,
            video_configs={
                8: SessionConfig(edge_model=EdgeHitModel(hit_ratios=(1.0,)))
            },
        )
        assert sweep_context_digest(wide.slice({2})) == sweep_context_digest(
            sweep_context
        )

    def test_video_config_overrides_are_cached_separately(
        self, sweep_context, tmp_path
    ):
        jobs = make_jobs(schemes=("ctile",), users=1)
        store = ArtifactStore(tmp_path)
        plain = run_session_jobs(sweep_context, jobs, workers=1,
                                 results=store)

        model = EdgeHitModel(hit_ratios=(0.8,) * 8)
        edged_context = dataclasses.replace(
            sweep_context,
            video_configs={
                2: dataclasses.replace(
                    sweep_context.config, edge_model=model
                )
            },
        )
        edged = run_session_jobs(edged_context, jobs, workers=1,
                                 results=ArtifactStore(tmp_path))
        assert edged.cache_hits == 0  # distinct key, no false hit
        assert session_signature(edged.results[0]) != session_signature(
            plain.results[0]
        )
        warm = run_session_jobs(edged_context, jobs, workers=1,
                                results=ArtifactStore(tmp_path))
        assert warm.cache_hits == len(jobs)
        assert [session_signature(r) for r in warm.results] == [
            session_signature(r) for r in edged.results
        ]

    def test_context_digest_stable_across_slicing(self, sweep_context,
                                                  manifest8, small_dataset):
        # run_session_jobs digests the *sliced* context, so a job batch
        # must map to the same key whether the caller's catalog holds
        # extra videos or not.
        wide = dataclasses.replace(
            sweep_context,
            manifests={**sweep_context.manifests, 8: manifest8},
            head_traces={
                **sweep_context.head_traces,
                8: tuple(small_dataset.test_traces(8)),
            },
        )
        assert sweep_context_digest(wide.slice({2})) == sweep_context_digest(
            sweep_context
        )

    def test_different_context_misses(self, sweep_context, tmp_path):
        jobs = make_jobs(schemes=("ctile",), users=1)
        store = ArtifactStore(tmp_path)
        run_session_jobs(sweep_context, jobs, workers=1, results=store)

        other = dataclasses.replace(sweep_context, device=GALAXY_S20)
        run = run_session_jobs(other, jobs, workers=1,
                               results=ArtifactStore(tmp_path))
        assert run.cache_hits == 0


class TestStructuralFingerprint:
    def test_deterministic(self, sweep_context):
        # Fingerprints embed raw numpy arrays, so compare via digest.
        from repro.experiments.artifacts import content_digest

        assert content_digest(
            structural_fingerprint(sweep_context)
        ) == content_digest(structural_fingerprint(sweep_context))

    def test_primitives_and_collections(self):
        assert structural_fingerprint((1, "a")) == structural_fingerprint(
            [1, "a"]
        )
        assert structural_fingerprint({"b": 2, "a": 1}) == (
            structural_fingerprint({"a": 1, "b": 2})
        )
        assert structural_fingerprint({1, 2, 3}) == structural_fingerprint(
            {3, 2, 1}
        )

    def test_callables_by_qualname(self):
        def strategy(trace, fov, window):  # pragma: no cover - never called
            return None

        fp = structural_fingerprint(SessionConfig(predictor_factory=strategy))
        assert fp != structural_fingerprint(SessionConfig())

    def test_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            structural_fingerprint(object())


class TestRunComparisonResultsStore:
    def test_results_store_identity_and_hits(self, small_dataset,
                                             network_traces, device,
                                             tmp_path):
        setup = ExperimentSetup(
            dataset=small_dataset,
            encoder=EncoderModel(),
            trace1=network_traces[0],
            trace2=network_traces[1],
        )
        kwargs = dict(users_per_video=1, video_ids=(2,),
                      scheme_names=("ctile", "ours"))
        off = run_comparison(setup, device, **kwargs)

        store = ArtifactStore(tmp_path)
        cold = run_comparison(setup, device, results_store=store, **kwargs)
        warm_store = ArtifactStore(tmp_path)
        warm = run_comparison(setup, device, results_store=warm_store,
                              **kwargs)
        assert warm_store.stats.misses.get("results") is None

        def signature(results):
            return [
                (key, session_signature(r))
                for key, sessions in sorted(results.items())
                for r in sessions
            ]

        assert signature(off) == signature(cold) == signature(warm)
