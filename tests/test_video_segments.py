"""Unit tests for segment manifests."""

import pytest

from repro.geometry import Tile
from repro.video import VideoManifest


class TestVideoManifest:
    def test_length_matches_video(self, manifest2, video2):
        assert len(manifest2) == video2.num_segments
        assert manifest2.num_segments == video2.num_segments

    def test_fps(self, manifest2):
        assert manifest2.fps == 30.0

    def test_iteration(self, manifest2):
        manifests = list(manifest2)
        assert len(manifests) == manifest2.num_segments
        assert manifests[0].segment_index == 0

    def test_segment_features_propagated(self, manifest2, video2):
        seg = video2.segment(3)
        assert manifest2[3].si == seg.si
        assert manifest2[3].ti == seg.ti


class TestSegmentManifest:
    def test_tile_size_stable(self, manifest2):
        m = manifest2[0]
        assert m.tile_size_mbit(Tile(1, 1), 3) == m.tile_size_mbit(Tile(1, 1), 3)

    def test_tile_sizes_differ_across_tiles(self, manifest2):
        m = manifest2[0]
        assert m.tile_size_mbit(Tile(1, 1), 3) != m.tile_size_mbit(Tile(1, 2), 3)

    def test_tiles_size_sums(self, manifest2):
        m = manifest2[0]
        tiles = [Tile(0, 0), Tile(0, 1), Tile(1, 0)]
        total = m.tiles_size_mbit(tiles, 2)
        assert total == pytest.approx(
            sum(m.tile_size_mbit(t, 2) for t in tiles)
        )

    def test_region_size_stable_across_qualities(self, manifest2):
        # Same region key: the noise draw must be shared so quality
        # monotonicity is preserved.
        m = manifest2[0]
        sizes = [m.region_size_mbit("ptile-0", 9 / 32, q) for q in (1, 2, 3, 4, 5)]
        assert sizes == sorted(sizes)

    def test_region_size_frame_rate(self, manifest2):
        m = manifest2[0]
        full = m.region_size_mbit("ptile-0", 9 / 32, 3)
        reduced = m.region_size_mbit("ptile-0", 9 / 32, 3, frame_rate=21.0)
        assert reduced < full

    def test_full_frame_size(self, manifest2):
        m = manifest2[0]
        assert m.full_frame_size_mbit(3) > m.region_size_mbit("r", 9 / 32, 3)

    def test_quality_monotone_tile_sizes(self, manifest2):
        m = manifest2[5]
        sizes = [m.tile_size_mbit(Tile(2, 3), q) for q in (1, 2, 3, 4, 5)]
        assert sizes == sorted(sizes)

    def test_qoe_bitrate_monotone(self, manifest2):
        m = manifest2[5]
        values = [m.qoe_bitrate_mbps(q) for q in (1, 2, 3, 4, 5)]
        assert values == sorted(values)

    def test_grid_exposed(self, manifest2, encoder):
        assert manifest2[0].grid == encoder.grid
