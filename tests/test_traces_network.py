"""Unit tests for LTE network traces."""

import numpy as np
import pytest

from repro.traces import NetworkTrace, generate_lte_trace, paper_traces


class TestNetworkTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkTrace("x", np.array([]))
        with pytest.raises(ValueError):
            NetworkTrace("x", np.array([1.0, -0.5]))
        with pytest.raises(ValueError):
            NetworkTrace("x", np.array([1.0]), bin_seconds=0.0)

    def test_zero_bins_allowed(self):
        # Outage seconds (zero bandwidth) are legal trace content.
        trace = NetworkTrace("x", np.array([0.0, 2.0]))
        assert trace.bandwidth_at(0.5) == 0.0
        assert trace.bandwidth_at(1.5) == 2.0

    def test_next_positive_bandwidth(self):
        trace = NetworkTrace("x", np.array([0.0, 0.0, 3.0, 1.0]))
        assert trace.next_positive_bandwidth(0.0) == 3.0
        assert trace.next_positive_bandwidth(2.5) == 3.0
        assert trace.next_positive_bandwidth(3.0) == 1.0
        # Positive traces: identical to bandwidth_at.
        positive = NetworkTrace("x", np.array([1.0, 2.0]))
        assert positive.next_positive_bandwidth(1.2) == positive.bandwidth_at(1.2)
        dead = NetworkTrace("dead", np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            dead.next_positive_bandwidth(0.0)

    def test_bandwidth_at(self):
        trace = NetworkTrace("x", np.array([1.0, 2.0, 4.0]))
        assert trace.bandwidth_at(0.5) == 1.0
        assert trace.bandwidth_at(1.0) == 2.0
        assert trace.bandwidth_at(2.9) == 4.0

    def test_cyclic_wrap(self):
        trace = NetworkTrace("x", np.array([1.0, 2.0]))
        assert trace.bandwidth_at(2.5) == 1.0
        assert trace.bandwidth_at(3.0) == 2.0

    def test_negative_time_rejected(self):
        trace = NetworkTrace("x", np.array([1.0]))
        with pytest.raises(ValueError):
            trace.bandwidth_at(-0.1)

    def test_stats(self):
        trace = NetworkTrace("x", np.array([1.0, 3.0]))
        assert trace.mean_mbps == 2.0
        assert trace.min_mbps == 1.0
        assert trace.max_mbps == 3.0
        assert trace.duration_s == 2.0


class TestDownloadTime:
    def test_within_one_bin(self):
        trace = NetworkTrace("x", np.array([4.0, 4.0]))
        assert trace.download_time(2.0, 0.0) == pytest.approx(0.5)

    def test_zero_size(self):
        trace = NetworkTrace("x", np.array([4.0]))
        assert trace.download_time(0.0, 1.0) == 0.0

    def test_crosses_bins(self):
        trace = NetworkTrace("x", np.array([1.0, 3.0]))
        # 1 Mbit in bin 0 (1 s), then 1.5 Mbit at 3 Mbps (0.5 s).
        assert trace.download_time(2.5, 0.0) == pytest.approx(1.5)

    def test_mid_bin_start(self):
        trace = NetworkTrace("x", np.array([2.0, 4.0]))
        # From t=0.5: 1 Mbit in the remaining half of bin 0, then 2 Mbit
        # at 4 Mbps.
        assert trace.download_time(3.0, 0.5) == pytest.approx(1.0)

    def test_wraps_cyclically(self):
        trace = NetworkTrace("x", np.array([1.0]))
        assert trace.download_time(5.0, 0.0) == pytest.approx(5.0)

    def test_validation(self):
        trace = NetworkTrace("x", np.array([1.0]))
        with pytest.raises(ValueError):
            trace.download_time(-1.0, 0.0)
        with pytest.raises(ValueError):
            trace.download_time(1.0, -0.5)

    def test_zero_bin_stalls_then_completes(self):
        trace = NetworkTrace("x", np.array([0.0, 2.0]))
        # Bin 0 delivers nothing; 1 Mbit then takes 0.5 s of bin 1.
        assert trace.download_time(1.0, 0.0) == pytest.approx(1.5)

    def test_all_zero_trace_raises(self):
        dead = NetworkTrace("dead", np.array([0.0, 0.0, 0.0]))
        with pytest.raises(ValueError, match="zero bandwidth everywhere"):
            dead.download_time(1.0, 0.0)
        # Zero payload still completes instantly.
        assert dead.download_time(0.0, 0.0) == 0.0

    def test_all_zero_trace_bounded_download_times_out(self):
        dead = NetworkTrace("dead", np.array([0.0, 0.0]))
        delivered, elapsed, completed = dead.download_within(4.0, 0.0, 3.0)
        assert delivered == 0.0
        assert elapsed == 3.0
        assert not completed

    def test_consistency_with_mean_throughput(self):
        rng = np.random.default_rng(1)
        trace = NetworkTrace("x", rng.uniform(2, 8, 30))
        size = 12.0
        dl = trace.download_time(size, 3.3)
        realized = size / dl
        assert trace.min_mbps <= realized <= trace.max_mbps


class TestScaling:
    def test_scaled_values(self):
        trace = NetworkTrace("x", np.array([1.0, 2.0]))
        doubled = trace.scaled(2.0)
        assert np.allclose(doubled.bandwidth_mbps, [2.0, 4.0])

    def test_scaled_name(self):
        trace = NetworkTrace("x", np.array([1.0]))
        assert trace.scaled(2.0).name == "xx2"
        assert trace.scaled(2.0, name="t1").name == "t1"

    def test_invalid_factor(self):
        trace = NetworkTrace("x", np.array([1.0]))
        with pytest.raises(ValueError):
            trace.scaled(0.0)


class TestGeneratedTraces:
    def test_trace2_statistics(self):
        trace = generate_lte_trace(600)
        assert trace.mean_mbps == pytest.approx(3.9, abs=0.05)
        assert trace.min_mbps == pytest.approx(2.3, abs=0.01)
        assert trace.max_mbps == pytest.approx(8.4, abs=0.01)

    def test_paper_pair_relation(self):
        t1, t2 = paper_traces(400)
        assert np.allclose(t1.bandwidth_mbps, 2.0 * t2.bandwidth_mbps)
        assert t1.name == "trace1"
        assert t2.name == "trace2"

    def test_deterministic(self):
        a = generate_lte_trace(200, seed=5)
        b = generate_lte_trace(200, seed=5)
        assert np.allclose(a.bandwidth_mbps, b.bandwidth_mbps)

    def test_seed_changes_trace(self):
        a = generate_lte_trace(200, seed=5)
        b = generate_lte_trace(200, seed=6)
        assert not np.allclose(a.bandwidth_mbps, b.bandwidth_mbps)

    def test_varies_over_time(self):
        trace = generate_lte_trace(300)
        assert np.std(trace.bandwidth_mbps) > 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_lte_trace(5)
        with pytest.raises(ValueError):
            generate_lte_trace(100, mean_mbps=1.0, min_mbps=2.0, max_mbps=8.0)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        trace = generate_lte_trace(50)
        path = tmp_path / "net.csv"
        trace.to_csv(path)
        loaded = NetworkTrace.from_csv(path)
        assert np.allclose(loaded.bandwidth_mbps, trace.bandwidth_mbps, atol=1e-5)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope\n1.0\n")
        with pytest.raises(ValueError):
            NetworkTrace.from_csv(path)
