"""Unit tests for the synthetic head-movement generator."""

import numpy as np
import pytest

from repro.traces import (
    BehaviorParams,
    generate_roi_path,
    generate_user_trace,
    generate_video_traces,
)
from repro.video import build_catalog


@pytest.fixture(scope="module")
def videos():
    return build_catalog()


class TestBehaviorParams:
    def test_defaults_valid(self):
        BehaviorParams()

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            BehaviorParams(sample_rate_hz=0.0)

    def test_invalid_waypoint_interval(self):
        with pytest.raises(ValueError):
            BehaviorParams(waypoint_interval_s=(5.0, 2.0))

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            BehaviorParams(secondary_attention_share=1.5)


class TestRoiPath:
    def test_duration(self, videos):
        params = BehaviorParams()
        roi = generate_roi_path(videos[0], params)
        expected = videos[0].meta.duration_s * params.sample_rate_hz + 1
        assert roi.num_samples == int(expected)

    def test_deterministic(self, videos):
        a = generate_roi_path(videos[1], seed=9)
        b = generate_roi_path(videos[1], seed=9)
        assert np.allclose(a.yaw_unwrapped, b.yaw_unwrapped)

    def test_pitch_bounded(self, videos):
        roi = generate_roi_path(videos[0])
        assert np.all(roi.pitch >= -45.0) and np.all(roi.pitch <= 35.0)

    def test_moves(self, videos):
        roi = generate_roi_path(videos[0])
        assert np.ptp(roi.yaw_unwrapped) > 30.0


class TestUserTraces:
    def test_deterministic_per_user(self, videos):
        roi = generate_roi_path(videos[0])
        a = generate_user_trace(videos[0], 3, roi, seed=11)
        b = generate_user_trace(videos[0], 3, roi, seed=11)
        assert np.allclose(a.yaw_unwrapped, b.yaw_unwrapped)

    def test_users_distinct(self, videos):
        traces = generate_video_traces(videos[0], n_users=4)
        yaws = [t.yaw_unwrapped for t in traces]
        assert not np.allclose(yaws[0], yaws[1])

    def test_needs_users(self, videos):
        with pytest.raises(ValueError):
            generate_video_traces(videos[0], n_users=0)

    def test_user_and_video_ids_set(self, videos):
        traces = generate_video_traces(videos[2], n_users=3)
        assert [t.user_id for t in traces] == [0, 1, 2]
        assert all(t.video_id == 3 for t in traces)

    def test_pitch_within_headset_range(self, videos):
        traces = generate_video_traces(videos[7], n_users=3)
        for t in traces:
            assert np.all(np.abs(t.pitch) <= 85.0)


class TestBehavioralRegimes:
    def test_focused_users_cluster(self, videos):
        """Focused video: users' viewing centers stay near each other."""
        traces = generate_video_traces(videos[1], n_users=10)  # video 2
        spreads = []
        for k in range(10, 60, 10):
            yaws = []
            for t in traces:
                yaw, _ = t.segment_center(k)
                yaws.append(np.radians(yaw))
            # circular std
            c = np.mean(np.cos(yaws))
            s = np.mean(np.sin(yaws))
            spreads.append(np.degrees(np.sqrt(-2 * np.log(np.hypot(c, s)))))
        assert np.median(spreads) < 35.0

    def test_exploratory_users_spread_more(self, videos):
        focused = generate_video_traces(videos[1], n_users=8)
        exploring = generate_video_traces(videos[6], n_users=8)  # video 7

        def spread(traces, k):
            yaws = [np.radians(t.segment_center(k)[0]) for t in traces]
            c, s = np.mean(np.cos(yaws)), np.mean(np.sin(yaws))
            r = min(np.hypot(c, s), 1.0 - 1e-12)
            return np.degrees(np.sqrt(-2 * np.log(r)))

        ks = range(20, 140, 20)
        f = np.median([spread(focused, k) for k in ks])
        e = np.median([spread(exploring, k) for k in ks])
        assert e > f

    def test_switching_speed_distribution(self, videos):
        """Fig. 5 shape: a substantial share of samples above 10 deg/s."""
        speeds = []
        for video in (videos[0], videos[6]):
            for t in generate_video_traces(video, n_users=6):
                speeds.append(t.switching_speeds())
        pooled = np.concatenate(speeds)
        frac = float(np.mean(pooled > 10.0))
        assert 0.2 < frac < 0.7  # paper: >30% of time
