"""Unit tests for session timelines."""

import pytest

from repro.streaming import (
    CtileScheme,
    SessionConfig,
    run_session,
    session_timeline,
    timeline_csv,
)


@pytest.fixture(scope="module")
def session(small_dataset, manifest2, network_traces, device):
    return run_session(
        CtileScheme(),
        manifest2,
        small_dataset.test_traces(2)[0],
        network_traces[1],
        device,
        config=SessionConfig(max_segments=12),
    )


class TestSessionTimeline:
    def test_entry_per_segment(self, session):
        timeline = session_timeline(session)
        assert len(timeline) == 12
        assert [e.segment for e in timeline] == list(range(12))

    def test_clock_monotone(self, session):
        timeline = session_timeline(session)
        for prev, cur in zip(timeline, timeline[1:]):
            assert cur.request_t >= prev.download_end_t - 1e-9

    def test_download_window_positive(self, session):
        for entry in session_timeline(session):
            assert entry.download_end_t >= entry.request_t

    def test_fields_match_records(self, session):
        timeline = session_timeline(session)
        for entry, record in zip(timeline, session.records):
            assert entry.quality == record.quality
            assert entry.size_mbit == record.size_mbit
            assert entry.qoe == pytest.approx(record.qoe.q)

    def test_wall_clock_consistency(self, session):
        """Total wall time equals the sum of waits and downloads."""
        timeline = session_timeline(session)
        total = sum(e.wait_s for e in timeline) + sum(
            e.download_end_t - e.request_t for e in timeline
        )
        assert timeline[-1].download_end_t == pytest.approx(total)


class TestTimelineCsv:
    def test_csv_shape(self, session):
        text = timeline_csv(session)
        lines = text.strip().splitlines()
        assert lines[0].startswith("segment,")
        assert len(lines) == 13  # header + 12 entries

    def test_csv_written(self, session, tmp_path):
        path = tmp_path / "timeline.csv"
        text = timeline_csv(session, path)
        assert path.read_text(encoding="utf-8") == text

    def test_csv_parseable(self, session):
        import csv
        import io

        rows = list(csv.DictReader(io.StringIO(timeline_csv(session))))
        assert len(rows) == 12
        assert float(rows[0]["request_t"]) >= 0.0
