"""Tests for the per-content encoding-ladder search."""

import pytest

from repro.encoding import (
    DEFAULT_ENCODING_LADDER,
    EncodingLadder,
    LadderSearchConfig,
    default_quality_targets,
    optimize_catalog,
    optimize_video_ladder,
)
from repro.experiments import ArtifactStore
from repro.qoe import QualityModel


FULL_SEARCH = LadderSearchConfig(movable_levels=None)


@pytest.fixture(scope="module")
def targets(small_dataset, noise_free_encoder):
    videos = [small_dataset.video(vid) for vid in (2, 8)]
    return default_quality_targets(videos, noise_free_encoder)


class TestSearchConfig:
    def test_defaults_valid(self):
        config = LadderSearchConfig()
        assert config.movable_levels == 1
        assert config.pin_top_level
        assert config.never_exceed_default_bits

    def test_grid_covers_range(self):
        grid = LadderSearchConfig(crf_min=20.0, crf_max=22.0, crf_step=0.5).grid()
        assert grid[0] == 20.0
        assert grid[-1] == 22.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LadderSearchConfig(crf_min=30.0, crf_max=20.0)
        with pytest.raises(ValueError):
            LadderSearchConfig(crf_step=0.0)
        with pytest.raises(ValueError):
            LadderSearchConfig(min_spacing=0.5)  # below ladder-type floor
        with pytest.raises(ValueError):
            LadderSearchConfig(movable_levels=0)
        with pytest.raises(ValueError):
            LadderSearchConfig(max_passes=0)


class TestDefaultTargets:
    def test_shape_and_monotonicity(self, targets):
        assert len(targets) == DEFAULT_ENCODING_LADDER.num_levels
        # Higher quality levels have higher mean-Qo floors.
        assert list(targets) == sorted(targets)

    def test_deterministic(self, small_dataset, noise_free_encoder):
        videos = [small_dataset.video(vid) for vid in (2, 8)]
        again = default_quality_targets(videos, noise_free_encoder)
        assert tuple(again) == tuple(
            default_quality_targets(videos, noise_free_encoder)
        )

    def test_needs_videos(self, noise_free_encoder):
        with pytest.raises(ValueError):
            default_quality_targets([], noise_free_encoder)


class TestVideoSearch:
    def test_constraints_hold(self, video8, noise_free_encoder, targets):
        result = optimize_video_ladder(
            video8, noise_free_encoder, targets, config=FULL_SEARCH
        )
        opt, base = result.ladder, DEFAULT_ENCODING_LADDER
        assert isinstance(opt, EncodingLadder)
        assert opt.num_levels == base.num_levels
        # never_exceed_default_bits: each rung at or above the base CRF.
        for crf_opt, crf_base in zip(opt.crfs, base.crfs):
            assert crf_opt >= crf_base
        # pin_top_level: the peak-quality rung is untouched.
        assert opt.crfs[-1] == base.crfs[-1]
        # Spacing at least the configured minimum.
        for hi, lo in zip(opt.crfs, opt.crfs[1:]):
            assert hi - lo >= FULL_SEARCH.min_spacing - 1e-9
        for opt_mbps, base_mbps in zip(result.fov_mbps_opt,
                                       result.fov_mbps_base):
            assert opt_mbps <= base_mbps + 1e-12
        assert 0.0 <= result.bits_saved_frac <= 1.0

    def test_movable_levels_limits_search(self, video8, noise_free_encoder,
                                          targets):
        result = optimize_video_ladder(
            video8, noise_free_encoder, targets,
            config=LadderSearchConfig(movable_levels=1),
        )
        # Only the background rung may move.
        assert result.ladder.crfs[1:] == DEFAULT_ENCODING_LADDER.crfs[1:]

    def test_target_length_checked(self, video8, noise_free_encoder):
        with pytest.raises(ValueError, match="targets"):
            optimize_video_ladder(video8, noise_free_encoder, (50.0, 60.0))

    def test_unreachable_targets_keep_base_ladder(self, video8,
                                                  noise_free_encoder):
        # Targets nothing on the grid can hit: never_exceed_default_bits
        # clamps every rung back to the paper ladder.
        result = optimize_video_ladder(
            video8, noise_free_encoder, (100.0,) * 5, config=FULL_SEARCH
        )
        assert result.ladder == DEFAULT_ENCODING_LADDER
        assert not result.changed
        assert not any(result.targets_met)

    def test_report_mentions_video(self, video8, noise_free_encoder, targets):
        result = optimize_video_ladder(video8, noise_free_encoder, targets)
        text = "\n".join(result.report())
        assert f"Video {video8.meta.video_id}" in text


class TestCatalogSearch:
    def test_serial_equals_pooled(self, small_dataset, noise_free_encoder,
                                  targets):
        videos = [small_dataset.video(vid) for vid in (2, 8)]
        serial = optimize_catalog(videos, noise_free_encoder, targets=targets,
                                  workers=1)
        pooled = optimize_catalog(videos, noise_free_encoder, targets=targets,
                                  workers=2)
        assert serial.keys() == pooled.keys()
        for vid in serial:
            assert serial[vid].ladder == pooled[vid].ladder
            assert serial[vid].qo_opt == pooled[vid].qo_opt

    def test_cold_equals_warm(self, small_dataset, noise_free_encoder,
                              targets, tmp_path):
        videos = [small_dataset.video(vid) for vid in (2, 8)]
        store = ArtifactStore(tmp_path / "ladder-cache")
        cold = optimize_catalog(videos, noise_free_encoder, targets=targets,
                                store=store)
        assert store.stats.total_hits == 0
        warm = optimize_catalog(videos, noise_free_encoder, targets=targets,
                                store=store)
        assert store.stats.total_misses == len(videos)  # cold misses only
        for vid in cold:
            assert warm[vid].ladder == cold[vid].ladder
            assert warm[vid].qo_opt == cold[vid].qo_opt

    def test_store_respects_config(self, small_dataset, noise_free_encoder,
                                   targets, tmp_path):
        # A different search config must not reuse the cached search.
        videos = [small_dataset.video(8)]
        store = ArtifactStore(tmp_path / "ladder-cache")
        optimize_catalog(videos, noise_free_encoder, targets=targets,
                         store=store)
        optimize_catalog(videos, noise_free_encoder, targets=targets,
                         config=FULL_SEARCH, store=store)
        assert store.stats.total_misses == 2

    def test_quality_model_default(self, small_dataset, noise_free_encoder):
        videos = [small_dataset.video(8)]
        explicit = optimize_catalog(videos, noise_free_encoder,
                                    quality_model=QualityModel())
        implicit = optimize_catalog(videos, noise_free_encoder)
        assert explicit[8].ladder == implicit[8].ladder
