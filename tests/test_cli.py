"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_artifact_cache(tmp_path, monkeypatch):
    """Keep the CLI's default-on artifact cache inside the test tmpdir."""
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", str(tmp_path / "artifacts"))
    return tmp_path / "artifacts"


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig8"])
        assert args.experiment == "fig8"
        assert args.duration == 120
        assert args.users == 2

    def test_custom_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fig9", "--duration", "30", "--users", "1", "--device", "galaxys20"]
        )
        assert args.duration == 30
        assert args.device == "galaxys20"

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_artifact_cache_flags(self):
        parser = build_parser()
        args = parser.parse_args(["fig9", "--artifact-cache", "/tmp/x"])
        assert args.artifact_cache == "/tmp/x"
        assert not args.no_artifact_cache
        args = parser.parse_args(["fig9", "--no-artifact-cache"])
        assert args.no_artifact_cache

    def test_results_store_defaults_to_sharded(self, tmp_path):
        from repro.cli import _results_store
        from repro.experiments.artifacts import (
            ArtifactStore,
            ShardedResultsStore,
        )

        parser = build_parser()
        args = parser.parse_args(
            ["fig9", "--results-cache", str(tmp_path)]
        )
        assert not args.legacy_results_cache
        store = _results_store(args)
        assert type(store) is ShardedResultsStore

        args = parser.parse_args(
            ["fig9", "--results-cache", str(tmp_path),
             "--legacy-results-cache"]
        )
        store = _results_store(args)
        assert type(store) is ArtifactStore

        args = parser.parse_args(["fig9", "--no-results-cache"])
        assert _results_store(args) is None

    def test_shared_cache_flag_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["shared-cache"])
        assert args.cache_capacities == "0,500,2000,8000"
        assert args.cache_policy == "lru"
        assert args.tenant_videos == "5,8"
        assert args.tenant_viewers == 8

    def test_shared_cache_flag_parsing(self):
        parser = build_parser()
        args = parser.parse_args([
            "shared-cache", "--cache-capacities", "0,300.5",
            "--cache-policy", "lfu", "--tenant-videos", "2,8",
            "--tenant-viewers", "4",
        ])
        assert args.cache_capacities == "0,300.5"
        assert args.cache_policy == "lfu"
        assert args.tenant_videos == "2,8"
        assert args.tenant_viewers == 4

    def test_invalid_cache_policy_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["shared-cache", "--cache-policy", "fifo"])


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "1429.08" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "Freestyle Skiing" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2(a)" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--duration", "15"]) == 0
        assert "switching speed" in capsys.readouterr().out

    def test_fig9_tiny(self, capsys, isolated_artifact_cache):
        assert main(["fig9", "--duration", "12", "--users", "1"]) == 0
        out = capsys.readouterr().out
        assert "normalized by Ctile" in out
        # The default-on artifact cache populated the store...
        assert list(isolated_artifact_cache.rglob("*.pkl"))
        # ...and a warm rerun reproduces the same output.
        assert main(["fig9", "--duration", "12", "--users", "1"]) == 0
        assert capsys.readouterr().out == out

    def test_fig9_no_artifact_cache(self, capsys, isolated_artifact_cache):
        assert main(["fig9", "--duration", "12", "--users", "1",
                     "--no-artifact-cache"]) == 0
        assert "normalized by Ctile" in capsys.readouterr().out
        assert not list(isolated_artifact_cache.rglob("*.pkl"))

    def test_fig9_explicit_cache_dir(self, capsys, tmp_path):
        cache = tmp_path / "explicit"
        assert main(["fig9", "--duration", "12", "--users", "1",
                     "--artifact-cache", str(cache)]) == 0
        assert list(cache.rglob("*.pkl"))

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "oversized-cluster" in out
        assert "with bound: 2" in out

    def test_shared_cache_tiny(self, capsys):
        assert main([
            "shared-cache", "--duration", "12", "--users", "1",
            "--tenant-viewers", "3", "--cache-capacities", "0,300",
            "--tenant-videos", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "shared edge cache (lru, 1 tenant video(s))" in out
        assert "no edge cache" in out
        assert "shared=300Mb" in out

    def test_shared_cache_bad_capacities(self):
        with pytest.raises(SystemExit):
            main(["shared-cache", "--cache-capacities", "abc"])
        with pytest.raises(SystemExit):
            main(["shared-cache", "--cache-capacities", "-5"])
        with pytest.raises(SystemExit):
            main(["shared-cache", "--cache-capacities", ","])

    def test_shared_cache_bad_tenants(self):
        with pytest.raises(SystemExit):
            main(["shared-cache", "--tenant-videos", "2.5"])
        with pytest.raises(SystemExit):
            main(["shared-cache", "--tenant-viewers", "0"])


class TestLadderCli:
    def test_flag_defaults(self):
        args = build_parser().parse_args(["ladder"])
        assert args.quality_targets is None
        assert args.ladder_cache is None
        assert args.movable_levels == 1

    def test_flag_parsing(self):
        args = build_parser().parse_args([
            "ladder", "--quality-targets", "40,50,60,70,80",
            "--ladder-cache", "/tmp/ladders", "--movable-levels", "0",
        ])
        assert args.quality_targets == "40,50,60,70,80"
        assert args.ladder_cache == "/tmp/ladders"
        assert args.movable_levels == 0

    def test_bad_targets_rejected(self):
        with pytest.raises(SystemExit):
            main(["ladder", "--quality-targets", "abc"])
        with pytest.raises(SystemExit):
            main(["ladder", "--quality-targets", "50,200"])
        with pytest.raises(SystemExit):
            main(["ladder", "--movable-levels", "-1"])

    def test_ladder_tiny_run(self, capsys):
        rc = main([
            "ladder", "--duration", "12", "--users", "1",
            "--no-artifact-cache",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "encoding ladder (q25 catalog targets, lowest 1 rung(s))" in out
        assert "v8:fixed" in out
        assert "v8:opt" in out
        assert "frontier" in out
        assert "improved=" in out


class TestResilienceCli:
    def test_flag_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["resilience"])
        assert args.fault_profile == "none,outages,collapse,lossy,stress"
        assert args.fault_seed == 7
        assert args.retry_budget == 2
        assert args.timeout_slack == 0.75

    def test_flag_parsing(self):
        parser = build_parser()
        args = parser.parse_args([
            "resilience", "--fault-profile", "lossy,stress",
            "--fault-seed", "42", "--retry-budget", "1",
            "--timeout-slack", "1.5",
        ])
        assert args.fault_profile == "lossy,stress"
        assert args.fault_seed == 42
        assert args.retry_budget == 1
        assert args.timeout_slack == 1.5

    def test_negative_workers_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9", "--workers", "-2"])
        err = capsys.readouterr().err
        assert "worker count" in err and "auto-detect" in err

    def test_non_integer_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9", "--workers", "two"])

    def test_unknown_fault_profile_lists_available(self, capsys):
        with pytest.raises(SystemExit):
            main(["resilience", "--fault-profile", "wat"])
        err = capsys.readouterr().err
        assert "unknown fault profile" in err
        assert "lossy" in err  # actionable: the valid names are listed

    def test_bad_policy_flags_rejected(self):
        with pytest.raises(SystemExit):
            main(["resilience", "--retry-budget", "-1"])
        with pytest.raises(SystemExit):
            main(["resilience", "--timeout-slack", "-0.5"])

    def test_resilience_tiny_run(self, capsys):
        rc = main([
            "resilience", "--duration", "12", "--users", "1",
            "--fault-profile", "none,lossy", "--no-artifact-cache",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "none:ptile" in out
        assert "lossy:ptile" in out
        assert "retries=" in out


class TestRobustCommand:
    def test_bad_uncertainty_flags_rejected(self):
        with pytest.raises(SystemExit):
            main(["robust", "--uncertainty", "-1"])
        with pytest.raises(SystemExit):
            main(["robust", "--uncertainty-growth", "-0.5"])

    def test_robust_scheme_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["robust", "--robust-scheme", "wat"])
        args = build_parser().parse_args(["robust", "--robust-scheme", "pano"])
        assert args.robust_scheme == "pano"

    def test_robust_tiny_run(self, capsys):
        rc = main([
            "robust", "--duration", "12", "--users", "1",
            "--fault-profile", "none,lossy", "--no-artifact-cache",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "none:ours" in out
        assert "none:robust" in out
        assert "lossy:robust" in out
        assert "sigma=" in out and "expcov=" in out
