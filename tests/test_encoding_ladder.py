"""Unit tests for the EncodingLadder value type."""

import pickle

import pytest

from repro.encoding import (
    CRF_MAX,
    CRF_MIN,
    DEFAULT_ENCODING_LADDER,
    EncodingLadder,
    MIN_CRF_SPACING,
)
from repro.video import quality_to_crf


class TestDefaultLadder:
    def test_reproduces_paper_formula(self):
        # quality_to_crf(q) = 43 - 5q, CRF 38..18 step 5.
        assert DEFAULT_ENCODING_LADDER.crfs == (38.0, 33.0, 28.0, 23.0, 18.0)
        for q in (1, 2, 3, 4, 5):
            assert DEFAULT_ENCODING_LADDER.crf(q) == 43.0 - 5.0 * q

    def test_fractional_matches_paper_formula_exactly(self):
        # The Nontile scheme walks the ladder in 0.25-quality steps; the
        # piecewise-linear interpolation must be byte-identical to the
        # affine 43 - 5q it replaces, not merely close.
        q = 1.0
        while q <= 5.0:
            assert DEFAULT_ENCODING_LADDER.crf(q) == 43.0 - 5.0 * q
            q += 0.25

    def test_levels(self):
        assert DEFAULT_ENCODING_LADDER.num_levels == 5
        assert DEFAULT_ENCODING_LADDER.levels == (1, 2, 3, 4, 5)

    def test_module_constant_is_default_construction(self):
        assert EncodingLadder() == DEFAULT_ENCODING_LADDER

    def test_quality_to_crf_delegates(self):
        assert quality_to_crf(2.5) == DEFAULT_ENCODING_LADDER.crf(2.5)


class TestValidation:
    def test_needs_two_rungs(self):
        with pytest.raises(ValueError, match="at least 2"):
            EncodingLadder(crfs=(28.0,))

    def test_must_decrease(self):
        with pytest.raises(ValueError, match="decrease"):
            EncodingLadder(crfs=(18.0, 23.0))

    def test_spacing_floor(self):
        with pytest.raises(ValueError, match="decrease"):
            EncodingLadder(crfs=(28.0, 28.0 - MIN_CRF_SPACING / 2))
        # Exactly the minimum spacing is allowed.
        EncodingLadder(crfs=(28.0, 28.0 - MIN_CRF_SPACING))

    def test_crf_range(self):
        with pytest.raises(ValueError):
            EncodingLadder(crfs=(CRF_MAX + 1.0, 18.0))
        with pytest.raises(ValueError):
            EncodingLadder(crfs=(38.0, CRF_MIN - 1.0))
        with pytest.raises(ValueError):
            EncodingLadder(crfs=(float("nan"), 18.0))

    def test_quality_out_of_range(self):
        ladder = EncodingLadder(crfs=(40.0, 30.0, 20.0))
        with pytest.raises(ValueError, match=r"\[1, 3\]"):
            ladder.crf(0.5)
        with pytest.raises(ValueError, match=r"\[1, 3\]"):
            ladder.crf(3.5)


class TestNonDefaultLadders:
    def test_interpolation(self):
        ladder = EncodingLadder(crfs=(40.0, 30.0, 24.0))
        assert ladder.crf(1.5) == pytest.approx(35.0)
        assert ladder.crf(2.5) == pytest.approx(27.0)
        assert ladder.crf(3) == 24.0

    def test_longer_ladder(self):
        ladder = EncodingLadder(crfs=(42.0, 36.0, 30.0, 24.0, 20.0, 16.0))
        assert ladder.num_levels == 6
        assert ladder.levels == (1, 2, 3, 4, 5, 6)
        assert ladder.crf(6) == 16.0


class TestDigest:
    def test_stable_and_distinct(self):
        a = EncodingLadder()
        b = EncodingLadder(crfs=(39.0, 33.0, 28.0, 23.0, 18.0))
        assert a.digest() == EncodingLadder().digest()
        assert a.digest() != b.digest()

    def test_fingerprint_carries_crfs(self):
        fp = DEFAULT_ENCODING_LADDER.fingerprint()
        assert DEFAULT_ENCODING_LADDER.crfs in fp

    def test_pickle_round_trip(self):
        ladder = EncodingLadder(crfs=(40.0, 30.0, 20.0))
        digest = ladder.digest()  # memoize before pickling
        clone = pickle.loads(pickle.dumps(ladder))
        assert clone == ladder
        assert clone.digest() == digest
