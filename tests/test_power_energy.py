"""Unit tests for Eq. 1 energy accounting."""

import pytest

from repro.power import EnergyModel, PIXEL_3, SegmentEnergy, TilingScheme


class TestSegmentEnergy:
    def test_total(self):
        e = SegmentEnergy(1.0, 2.0, 0.5)
        assert e.total_j == 3.5

    def test_addition(self):
        a = SegmentEnergy(1.0, 2.0, 0.5)
        b = SegmentEnergy(0.5, 0.5, 0.5)
        c = a + b
        assert c.transmission_j == 1.5
        assert c.decoding_j == 2.5
        assert c.rendering_j == 1.0

    def test_zero(self):
        assert SegmentEnergy.zero().total_j == 0.0


class TestEnergyModel:
    @pytest.fixture
    def model(self):
        return EnergyModel(PIXEL_3, segment_seconds=1.0)

    def test_transmission_eq1(self, model):
        # E_t = P_t * S / R: 4 Mbit at 4 Mbps = 1 s at 1429.08 mW.
        assert model.transmission_energy_j(4.0, 4.0) == pytest.approx(1.42908)

    def test_transmission_from_time(self, model):
        assert model.transmission_energy_from_time_j(2.0) == pytest.approx(
            2 * 1.42908
        )

    def test_zero_size_is_free(self, model):
        assert model.transmission_energy_j(0.0, 4.0) == 0.0

    def test_decoding_eq1(self, model):
        # E_d = P_d(f) * L at 30 fps for the Ptile row.
        expected = (140.73 + 5.96 * 30) * 1e-3
        assert model.decoding_energy_j(TilingScheme.PTILE, 30.0) == pytest.approx(
            expected
        )

    def test_rendering_eq1(self, model):
        expected = (57.76 + 4.19 * 30) * 1e-3
        assert model.rendering_energy_j(30.0) == pytest.approx(expected)

    def test_segment_duration_scales(self):
        model = EnergyModel(PIXEL_3, segment_seconds=2.0)
        assert model.decoding_energy_j(TilingScheme.PTILE, 30.0) == pytest.approx(
            2 * (140.73 + 5.96 * 30) * 1e-3
        )

    def test_full_breakdown(self, model):
        e = model.segment_energy(
            size_mbit=3.9,
            bandwidth_mbps=3.9,
            scheme=TilingScheme.CTILE,
            frame_rate=30.0,
        )
        assert e.transmission_j == pytest.approx(1.42908)
        assert e.decoding_j == pytest.approx((574.89 + 15.46 * 30) * 1e-3)
        assert e.total_j == pytest.approx(
            e.transmission_j + e.decoding_j + e.rendering_j
        )

    def test_frame_rate_reduction_saves_energy(self, model):
        high = model.decoding_energy_j(TilingScheme.PTILE, 30.0)
        low = model.decoding_energy_j(TilingScheme.PTILE, 21.0)
        assert low < high
        assert high - low == pytest.approx(5.96 * 9 * 1e-3)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.transmission_energy_j(-1.0, 4.0)
        with pytest.raises(ValueError):
            model.transmission_energy_j(1.0, 0.0)
        with pytest.raises(ValueError):
            model.transmission_energy_from_time_j(-0.1)
        with pytest.raises(ValueError):
            EnergyModel(PIXEL_3, segment_seconds=0.0)
