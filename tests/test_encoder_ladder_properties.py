"""Property-based tests: EncoderModel invariants under arbitrary ladders.

The ladder subsystem lets every video carry its own CRF ladder, so the
encoder's physical invariants must hold for *any* valid
:class:`~repro.encoding.EncodingLadder`, not just the paper's — bitrate
strictly decreasing in CRF, a Ptile never costing more than the
conventional tiles it covers, and frame-rate variants monotone in the
kept-frame count.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import CRF_MAX, EncodingLadder
from repro.video import EncoderModel

BASE_ENCODER = EncoderModel(noise_sigma=0.0)

SI, TI = 33.0, 14.0

si_st = st.floats(15.0, 50.0)
ti_st = st.floats(3.0, 25.0)


@st.composite
def ladders(draw, min_levels=2, max_levels=7):
    """Arbitrary valid ladders: descending CRFs, spacing >= 1, in range."""
    n = draw(st.integers(min_levels, max_levels))
    top = draw(st.floats(30.0, CRF_MAX))
    gaps = draw(
        st.lists(st.floats(1.0, 8.0), min_size=n - 1, max_size=n - 1)
    )
    crfs = [top]
    for gap in gaps:
        crfs.append(crfs[-1] - gap)
    if crfs[-1] < 0.0:  # renormalize into [0, 51] preserving gaps
        crfs = [c - crfs[-1] for c in crfs]
    if crfs[0] > CRF_MAX:
        span = crfs[0] - crfs[-1]
        scale = (CRF_MAX - crfs[-1]) / span
        crfs = [crfs[-1] + (c - crfs[-1]) * scale for c in crfs]
    return EncodingLadder(crfs=tuple(crfs))


def _encoder(ladder: EncodingLadder) -> EncoderModel:
    return dataclasses.replace(BASE_ENCODER, ladder=ladder)


class TestRateLawProperties:
    @given(ladders(), si_st, ti_st)
    @settings(max_examples=60, deadline=None)
    def test_bitrate_strictly_decreasing_in_crf(self, ladder, si, ti):
        encoder = _encoder(ladder)
        rates = [
            encoder.full_frame_bitrate_at_crf(crf, si, ti)
            for crf in ladder.crfs
        ]
        # CRFs descend along the ladder, so rates strictly ascend.
        for lower_q, higher_q in zip(rates, rates[1:]):
            assert higher_q > lower_q

    @given(ladders(), si_st, ti_st)
    @settings(max_examples=60, deadline=None)
    def test_bitrate_monotone_in_quality_level(self, ladder, si, ti):
        encoder = _encoder(ladder)
        rates = [
            encoder.full_frame_bitrate_mbps(q, si, ti)
            for q in ladder.levels
        ]
        assert rates == sorted(rates)

    @given(ladders())
    @settings(max_examples=60, deadline=None)
    def test_fractional_quality_between_rungs(self, ladder):
        encoder = _encoder(ladder)
        for q in ladder.levels[:-1]:
            mid = encoder.full_frame_bitrate_mbps(q + 0.5, SI, TI)
            lo = encoder.full_frame_bitrate_mbps(q, SI, TI)
            hi = encoder.full_frame_bitrate_mbps(q + 1, SI, TI)
            assert lo <= mid <= hi


class TestSizeProperties:
    @given(ladders(), st.integers(1, 32), si_st, ti_st)
    @settings(max_examples=60, deadline=None)
    def test_ptile_no_larger_than_covered_tiles(self, ladder, n_tiles, si, ti):
        # A Ptile encodes its region as one tile; cross-boundary
        # redundancy means it never costs more bits than the same
        # region shipped as independent conventional tiles.
        encoder = _encoder(ladder)
        for q in ladder.levels:
            region = encoder.region_size_mbit(
                q, si, ti, n_tiles / encoder.grid.num_tiles
            )
            tiles = encoder.tiled_region_size_mbit(q, si, ti, n_tiles)
            assert region <= tiles * (1.0 + 1e-12)

    @given(ladders(), st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_sizes_monotone_in_quality(self, ladder, n_tiles):
        encoder = _encoder(ladder)
        sizes = [
            encoder.region_size_mbit(
                q, SI, TI, n_tiles / encoder.grid.num_tiles
            )
            for q in ladder.levels
        ]
        assert sizes == sorted(sizes)


class TestFrameRateProperties:
    @given(
        ladders(),
        st.lists(st.floats(1.0, 30.0), min_size=2, max_size=6, unique=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_variants_monotone_in_kept_frames(self, ladder, frame_rates):
        # More kept frames -> more bits, at every rung of any ladder.
        encoder = _encoder(ladder)
        frame_rates = sorted(frame_rates)
        for q in ladder.levels:
            sizes = [
                encoder.region_size_mbit(
                    q, SI, TI, 9 / 32, frame_rate=fr, fps=30.0
                )
                for fr in frame_rates
            ]
            assert sizes == sorted(sizes)
            full = encoder.region_size_mbit(q, SI, TI, 9 / 32)
            assert all(s <= full * (1.0 + 1e-12) for s in sizes)

    @given(ladders())
    @settings(max_examples=30, deadline=None)
    def test_frame_rate_factor_bounds(self, ladder):
        encoder = _encoder(ladder)
        for fr in (7.5, 15.0, 30.0):
            factor = encoder.frame_rate_factor(fr, 30.0)
            assert 0.0 < factor <= 1.0
        assert encoder.frame_rate_factor(30.0, 30.0) == 1.0
