"""Tests for the experiment runners (small-scale sanity of each figure)."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER_MEDIANS,
    build_sweep,
    make_schemes,
    make_setup,
    run_comparison,
    run_fig2,
    run_fig4,
    run_fig5,
    run_fig7,
    run_fig8,
    run_table2,
    summarize_energy,
    summarize_qoe,
    table1_rows,
    table3_rows,
)
from repro.power import GALAXY_S20, PIXEL_3


@pytest.fixture(scope="module")
def tiny_setup():
    return make_setup(max_duration_s=25, n_users=16, n_train=12,
                      video_ids=(2, 8))


@pytest.fixture(scope="module")
def tiny_results(tiny_setup):
    return run_comparison(tiny_setup, PIXEL_3, users_per_video=2)


class TestSetup:
    def test_caches_manifests(self, tiny_setup):
        assert tiny_setup.manifest(2) is tiny_setup.manifest(2)
        assert tiny_setup.ptiles(2) is tiny_setup.ptiles(2)
        assert tiny_setup.ftiles(2) is tiny_setup.ftiles(2)

    def test_trace_pair(self, tiny_setup):
        traces = tiny_setup.traces()
        assert set(traces) == {"trace1", "trace2"}
        assert traces["trace1"].mean_mbps == pytest.approx(
            2 * traces["trace2"].mean_mbps
        )

    def test_make_schemes(self):
        schemes = make_schemes(PIXEL_3)
        assert set(schemes) == {"ctile", "ftile", "nontile", "ptile", "ours"}

    def test_unknown_scheme_rejected(self, tiny_setup):
        with pytest.raises(KeyError):
            run_comparison(tiny_setup, PIXEL_3, scheme_names=("bogus",))

    def test_empty_video_ids_means_no_videos(self, tiny_setup):
        """Regression: `video_ids=()` used to silently expand to the
        whole catalog through `video_ids or tuple(...)`."""
        context, jobs = build_sweep(tiny_setup, PIXEL_3, video_ids=())
        assert jobs == []
        assert context.manifests == {}
        assert run_comparison(tiny_setup, PIXEL_3, video_ids=()) == {}

    def test_unknown_video_id_rejected_up_front(self, tiny_setup):
        with pytest.raises(KeyError, match=r"\[3, 77\]"):
            build_sweep(tiny_setup, PIXEL_3, video_ids=(2, 77, 3))
        with pytest.raises(KeyError, match="unknown video ids"):
            run_comparison(tiny_setup, PIXEL_3, video_ids=(99,))


class TestComparisonMatrix:
    def test_matrix_shape(self, tiny_results):
        traces = {k[0] for k in tiny_results}
        schemes = {k[1] for k in tiny_results}
        videos = {k[2] for k in tiny_results}
        assert traces == {"trace1", "trace2"}
        assert len(schemes) == 5
        assert videos == {2, 8}
        for sessions in tiny_results.values():
            assert len(sessions) == 2

    def test_energy_summary_ordering(self, tiny_results):
        summary = summarize_energy(tiny_results, "Pixel 3")
        norm = summary.normalized()
        assert norm["ctile"] == pytest.approx(1.0)
        # Paper's headline ordering.
        assert norm["ours"] < norm["ptile"] < 1.0
        assert norm["ptile"] < norm["ftile"]

    def test_energy_breakdown_components(self, tiny_results):
        summary = summarize_energy(tiny_results, "Pixel 3")
        breakdown = summary.breakdown_for(8, "trace2")
        for scheme, (t, d, r) in breakdown.items():
            assert t > 0 and d > 0 and r > 0
        # Ptile decodes with one decoder: cheapest decoding.
        assert breakdown["ours"][1] < breakdown["ctile"][1]

    def test_qoe_summary_ordering(self, tiny_results):
        summary = summarize_qoe(tiny_results)
        norm = summary.normalized("trace2")
        assert norm["ptile"] > 1.0  # Ptile beats Ctile on QoE

    def test_reports_render(self, tiny_results):
        energy = summarize_energy(tiny_results, "Pixel 3")
        qoe = summarize_qoe(tiny_results)
        assert any("normalized" in line for line in energy.report())
        assert any("trace2" in line for line in qoe.report())


class TestFig2:
    def test_headline_numbers(self):
        result = run_fig2(segments_per_video=5)
        assert result.transmission_ratio == pytest.approx(0.62, abs=0.05)
        assert result.processing_saving_vs(4) > 0.3
        assert result.decode_times_s[1] == pytest.approx(1.3)
        assert len(result.report()) > 5


class TestFig4:
    def test_surface_monotone(self):
        result = run_fig4(segments_per_video=5)
        # Qo rises with bitrate (columns) and falls with TI (rows).
        surface = result.surface_qo
        assert np.all(np.diff(surface, axis=1) > 0)
        assert np.all(np.diff(surface, axis=0) < 0)

    def test_scatter_covers_catalog(self):
        result = run_fig4(segments_per_video=5)
        assert result.si.size == 8 * 5
        assert result.report()


class TestFig5:
    def test_speed_distribution(self, tiny_setup):
        result = run_fig5(tiny_setup.dataset)
        assert 0.15 < result.fraction_above_10 < 0.8
        grid, cdf = result.cdf()
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] <= 1.0


class TestFig7:
    def test_stats_per_video(self, tiny_setup):
        result = run_fig7(tiny_setup)
        assert set(result.stats) == {2, 8}
        for stats in result.stats.values():
            assert 0 <= stats.covered_fraction <= 1
        assert result.report()


class TestFig8:
    def test_medians_match_paper(self):
        result = run_fig8(segments_per_video=40)
        for q, paper in PAPER_MEDIANS.items():
            assert result.median(q) == pytest.approx(paper, abs=0.03)

    def test_cdf_shape(self):
        result = run_fig8(segments_per_video=10)
        grid, cdf = result.cdf(3)
        assert np.all(np.diff(cdf) >= 0)


class TestTables:
    def test_table1_layout(self):
        rows = table1_rows()
        assert any("1429.08" in r for r in rows)
        assert any("ptile" in r for r in rows)

    def test_table2_recovery(self):
        result = run_table2()
        assert result.fit.pearson_r > 0.97
        assert result.coefficient_errors["c3"] < 0.02
        assert result.report()

    def test_table3_catalog(self):
        rows = table3_rows()
        assert any("Basketball Match" in r for r in rows)
        assert any("6:01" in r for r in rows)


class TestDeviceSweep:
    def test_other_device_keeps_ordering(self, tiny_setup):
        results = run_comparison(
            tiny_setup, GALAXY_S20, users_per_video=1, video_ids=(2,),
            scheme_names=("ctile", "ptile", "ours"),
        )
        summary = summarize_energy(results, GALAXY_S20.name)
        norm = summary.normalized()
        assert norm["ours"] <= norm["ptile"] < 1.0
