"""Unit tests for Algorithm 1 (viewing-center clustering)."""

import numpy as np
import pytest

from repro.ptile import Cluster, ViewingCenter, cluster_viewing_centers


def centers(points):
    return [ViewingCenter(i, yaw, pitch) for i, (yaw, pitch) in enumerate(points)]


class TestViewingCenter:
    def test_distance_wraps(self):
        a = ViewingCenter(0, 355.0, 0.0)
        b = ViewingCenter(1, 5.0, 0.0)
        assert a.distance_to(b) == pytest.approx(10.0)


class TestCluster:
    def test_diameter(self):
        c = Cluster(tuple(centers([(0, 0), (10, 0), (4, 3)])))
        assert c.diameter() == pytest.approx(10.0)

    def test_centroid_wrap_aware(self):
        c = Cluster(tuple(centers([(350, 0), (10, 0)])))
        yaw, pitch = c.centroid()
        assert yaw == pytest.approx(0.0, abs=1e-6) or yaw == pytest.approx(360.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster(())

    def test_user_ids(self):
        c = Cluster(tuple(centers([(0, 0), (1, 1)])))
        assert c.user_ids() == (0, 1)


class TestAlgorithm1:
    def test_single_tight_cluster(self):
        pts = centers([(100, 0), (102, 1), (98, -1), (101, 2)])
        clusters = cluster_viewing_centers(pts, delta=5.0, sigma=45.0)
        assert len(clusters) == 1
        assert clusters[0].size == 4

    def test_two_separated_clusters(self):
        pts = centers([(50, 0), (52, 0), (51, 1), (200, 0), (202, 1)])
        clusters = cluster_viewing_centers(pts, delta=5.0, sigma=45.0)
        assert len(clusters) == 2
        assert clusters[0].size == 3  # sorted by size descending
        assert clusters[1].size == 2

    def test_isolated_points_are_singletons(self):
        pts = centers([(0, 0), (100, 0), (200, 0)])
        clusters = cluster_viewing_centers(pts, delta=5.0, sigma=45.0)
        assert len(clusters) == 3
        assert all(c.size == 1 for c in clusters)

    def test_chain_expansion(self):
        """BFS expansion links chains of close neighbors."""
        pts = centers([(0, 0), (4, 0), (8, 0), (12, 0)])
        clusters = cluster_viewing_centers(pts, delta=5.0, sigma=45.0)
        assert len(clusters) == 1

    def test_oversized_cluster_split(self):
        """Fig. 6: a chain wider than sigma splits in two."""
        pts = centers([(x, 0.0) for x in range(0, 61, 5)])  # 60-degree chain
        clusters = cluster_viewing_centers(pts, delta=6.0, sigma=45.0)
        assert len(clusters) == 2
        # Split should be roughly balanced for a uniform chain.
        sizes = sorted(c.size for c in clusters)
        assert sizes[0] >= 4

    def test_recursive_split_bounds_diameter(self):
        pts = centers([(x, 0.0) for x in range(0, 160, 4)])
        clusters = cluster_viewing_centers(
            pts, delta=5.0, sigma=45.0, recursive_split=True
        )
        assert all(c.diameter() <= 45.0 + 1e-9 for c in clusters)

    def test_single_split_is_paper_faithful(self):
        # Without recursion a very long chain may still exceed sigma
        # after one 2-means split (the paper splits once).
        pts = centers([(x, 0.0) for x in range(0, 160, 4)])
        clusters = cluster_viewing_centers(pts, delta=5.0, sigma=45.0)
        assert len(clusters) == 2

    def test_all_nodes_assigned_exactly_once(self):
        rng = np.random.default_rng(4)
        pts = [
            ViewingCenter(i, float(rng.uniform(0, 360)), float(rng.uniform(-60, 60)))
            for i in range(40)
        ]
        clusters = cluster_viewing_centers(pts, delta=11.25, sigma=45.0)
        ids = [u for c in clusters for u in c.user_ids()]
        assert sorted(ids) == list(range(40))

    def test_deterministic(self):
        rng = np.random.default_rng(9)
        pts = [
            ViewingCenter(i, float(rng.uniform(0, 360)), float(rng.uniform(-60, 60)))
            for i in range(30)
        ]
        a = cluster_viewing_centers(pts, delta=11.25, sigma=45.0)
        b = cluster_viewing_centers(list(reversed(pts)), delta=11.25, sigma=45.0)
        assert [c.user_ids() for c in a] == [c.user_ids() for c in b]

    def test_cluster_across_seam(self):
        pts = centers([(358, 0), (2, 0), (0, 1)])
        clusters = cluster_viewing_centers(pts, delta=5.0, sigma=45.0)
        assert len(clusters) == 1

    def test_duplicate_points_allowed(self):
        pts = centers([(10, 0), (10, 0), (10, 0), (10, 0), (10, 0), (10, 0)])
        clusters = cluster_viewing_centers(pts, delta=5.0, sigma=45.0)
        assert len(clusters) == 1
        assert clusters[0].diameter() == 0.0

    def test_duplicate_user_ids_rejected(self):
        pts = [ViewingCenter(1, 0, 0), ViewingCenter(1, 10, 0)]
        with pytest.raises(ValueError):
            cluster_viewing_centers(pts, delta=5.0, sigma=45.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cluster_viewing_centers(centers([(0, 0)]), delta=0.0, sigma=45.0)
        with pytest.raises(ValueError):
            cluster_viewing_centers(centers([(0, 0)]), delta=5.0, sigma=-1.0)

    def test_empty_input(self):
        assert cluster_viewing_centers([], delta=5.0, sigma=45.0) == []

    def test_seed_is_densest_node(self):
        # A dense blob plus an outlier pair: the blob must form first and
        # not absorb the pair.
        pts = centers(
            [(100, 0), (101, 0), (102, 0), (100, 1), (101, 1), (150, 0), (152, 0)]
        )
        clusters = cluster_viewing_centers(pts, delta=5.0, sigma=45.0)
        assert clusters[0].size == 5
        assert clusters[1].size == 2
