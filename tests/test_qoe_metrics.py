"""Unit tests for Eq. 2 QoE metrics and session aggregation."""

import pytest

from repro.qoe import QoEModel, QoEWeights, SegmentQoE, SessionQoE


class TestWeights:
    def test_paper_defaults(self):
        w = QoEWeights()
        assert w.variation == 1.0
        assert w.rebuffering == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QoEWeights(variation=-0.1)


class TestSegmentQoE:
    def test_eq2_composition(self):
        seg = SegmentQoE(qo=80.0, variation_penalty=5.0, rebuffer_penalty=3.0)
        assert seg.q == 72.0


class TestQoEModel:
    @pytest.fixture
    def model(self):
        return QoEModel()

    def test_first_segment_no_variation(self, model):
        seg = model.segment_qoe(80.0, None, 0.5, 3.0)
        assert seg.variation_penalty == 0.0

    def test_variation_absolute_difference(self, model):
        seg = model.segment_qoe(80.0, 70.0, 0.5, 3.0)
        assert seg.variation_penalty == pytest.approx(10.0)
        seg = model.segment_qoe(70.0, 80.0, 0.5, 3.0)
        assert seg.variation_penalty == pytest.approx(10.0)

    def test_no_rebuffer_when_download_fits(self, model):
        assert model.rebuffer_ratio(1.0, 3.0) == 0.0

    def test_rebuffer_ratio_eq2(self, model):
        # Stall of 1 s against a 2 s buffer: ratio 0.5.
        assert model.rebuffer_ratio(3.0, 2.0) == pytest.approx(0.5)

    def test_rebuffer_penalty_scales_with_qo(self, model):
        seg = model.segment_qoe(80.0, None, 3.0, 2.0)
        assert seg.rebuffer_penalty == pytest.approx(0.5 * 80.0)

    def test_rebuffer_ratio_capped(self, model):
        assert model.rebuffer_ratio(100.0, 0.5) <= 3.0

    def test_rebuffer_with_empty_buffer_bounded(self, model):
        assert model.rebuffer_ratio(1.0, 0.0) <= 3.0

    def test_weights_applied(self):
        model = QoEModel(weights=QoEWeights(variation=2.0, rebuffering=0.5))
        seg = model.segment_qoe(80.0, 70.0, 3.0, 2.0)
        assert seg.variation_penalty == pytest.approx(20.0)
        assert seg.rebuffer_penalty == pytest.approx(0.5 * 0.5 * 80.0)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.rebuffer_ratio(-1.0, 2.0)
        with pytest.raises(ValueError):
            model.rebuffer_ratio(1.0, -2.0)


class TestSessionQoE:
    def test_aggregates(self):
        session = SessionQoE()
        session.add(SegmentQoE(80.0, 2.0, 0.0))
        session.add(SegmentQoE(70.0, 0.0, 7.0))
        assert session.num_segments == 2
        assert session.mean_qo == pytest.approx(75.0)
        assert session.mean_variation == pytest.approx(1.0)
        assert session.mean_rebuffer == pytest.approx(3.5)
        assert session.mean_q == pytest.approx((78.0 + 63.0) / 2)

    def test_rebuffer_count(self):
        session = SessionQoE()
        session.add(SegmentQoE(80.0, 0.0, 0.0))
        session.add(SegmentQoE(80.0, 0.0, 1.0))
        session.add(SegmentQoE(80.0, 0.0, 2.0))
        assert session.rebuffer_count == 2

    def test_empty_session_rejected(self):
        with pytest.raises(ValueError):
            SessionQoE().mean_q
