"""Unit tests for quaternion utilities."""

import numpy as np
import pytest

from repro.geometry import (
    angles_to_quaternion,
    quaternion_conjugate,
    quaternion_multiply,
    quaternion_normalize,
    quaternion_rotate,
    quaternion_slerp,
    quaternion_to_angles,
    quaternion_to_direction,
)

IDENTITY = np.array([1.0, 0.0, 0.0, 0.0])


class TestBasics:
    def test_normalize(self):
        q = quaternion_normalize([2.0, 0.0, 0.0, 0.0])
        assert np.allclose(q, IDENTITY)

    def test_normalize_rejects_zero(self):
        with pytest.raises(ValueError):
            quaternion_normalize([0.0, 0.0, 0.0, 0.0])

    def test_normalize_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            quaternion_normalize([1.0, 0.0, 0.0])

    def test_multiply_identity(self):
        q = quaternion_normalize([0.7, 0.1, -0.3, 0.2])
        assert np.allclose(quaternion_multiply(IDENTITY, q), q)
        assert np.allclose(quaternion_multiply(q, IDENTITY), q)

    def test_conjugate_inverts_rotation(self):
        q = angles_to_quaternion(40.0, 20.0)
        product = quaternion_multiply(q, quaternion_conjugate(q))
        assert np.allclose(product, IDENTITY, atol=1e-12)


class TestRotation:
    def test_identity_rotation(self):
        v = quaternion_rotate(IDENTITY, [1.0, 2.0, 3.0])
        assert np.allclose(v, [1.0, 2.0, 3.0])

    def test_yaw_90(self):
        q = angles_to_quaternion(90.0, 0.0)
        v = quaternion_rotate(q, [1.0, 0.0, 0.0])
        assert np.allclose(v, [0.0, 1.0, 0.0], atol=1e-12)

    def test_pitch_90_looks_up(self):
        q = angles_to_quaternion(0.0, 90.0)
        v = quaternion_rotate(q, [1.0, 0.0, 0.0])
        assert np.allclose(v, [0.0, 0.0, 1.0], atol=1e-12)

    def test_rotation_preserves_norm(self):
        q = angles_to_quaternion(123.0, -45.0)
        v = quaternion_rotate(q, [0.3, -0.4, 0.5])
        assert np.linalg.norm(v) == pytest.approx(np.linalg.norm([0.3, -0.4, 0.5]))


class TestAngleRoundTrip:
    @pytest.mark.parametrize(
        "yaw,pitch",
        [(0.0, 0.0), (90.0, 0.0), (200.0, 45.0), (359.0, -80.0), (45.0, 30.0)],
    )
    def test_round_trip(self, yaw, pitch):
        q = angles_to_quaternion(yaw, pitch)
        yaw2, pitch2 = quaternion_to_angles(q)
        assert yaw2 == pytest.approx(yaw, abs=1e-6)
        assert pitch2 == pytest.approx(pitch, abs=1e-6)

    def test_direction_is_unit(self):
        d = quaternion_to_direction(angles_to_quaternion(77.0, -12.0))
        assert np.linalg.norm(d) == pytest.approx(1.0)

    def test_unnormalized_input_tolerated(self):
        q = 3.0 * angles_to_quaternion(10.0, 20.0)
        yaw, pitch = quaternion_to_angles(q)
        assert yaw == pytest.approx(10.0, abs=1e-6)
        assert pitch == pytest.approx(20.0, abs=1e-6)


class TestSlerp:
    def test_endpoints(self):
        a = angles_to_quaternion(0.0, 0.0)
        b = angles_to_quaternion(90.0, 0.0)
        assert np.allclose(quaternion_slerp(a, b, 0.0), a)
        assert np.allclose(np.abs(quaternion_slerp(a, b, 1.0)), np.abs(b))

    def test_midpoint_halves_angle(self):
        a = angles_to_quaternion(0.0, 0.0)
        b = angles_to_quaternion(90.0, 0.0)
        mid = quaternion_slerp(a, b, 0.5)
        yaw, pitch = quaternion_to_angles(mid)
        assert yaw == pytest.approx(45.0, abs=1e-6)
        assert pitch == pytest.approx(0.0, abs=1e-6)

    def test_short_arc_taken(self):
        a = angles_to_quaternion(350.0, 0.0)
        b = angles_to_quaternion(10.0, 0.0)
        mid = quaternion_slerp(a, b, 0.5)
        yaw, _ = quaternion_to_angles(mid)
        assert yaw == pytest.approx(0.0, abs=1e-5) or yaw == pytest.approx(
            360.0, abs=1e-5
        )

    def test_nearly_parallel_stable(self):
        a = angles_to_quaternion(10.0, 0.0)
        b = angles_to_quaternion(10.001, 0.0)
        mid = quaternion_slerp(a, b, 0.5)
        assert np.linalg.norm(mid) == pytest.approx(1.0)

    def test_t_bounds(self):
        a = angles_to_quaternion(0.0, 0.0)
        with pytest.raises(ValueError):
            quaternion_slerp(a, a, 1.5)
