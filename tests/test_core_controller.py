"""Unit tests for the Ours controller."""

import pytest

from repro.core import OursScheme, PlanTables
from repro.geometry import Viewport
from repro.power import PIXEL_3, TilingScheme
from repro.streaming import PlanContext, run_session


@pytest.fixture
def ours(device):
    return OursScheme(device=device)


@pytest.fixture
def ctx(manifest2, ptiles2, encoder):
    sp = next(sp for sp in ptiles2 if sp.num_ptiles > 0)
    ptile = sp.ptiles[0]
    yaw, pitch = ptile.cluster.centroid()
    idx = sp.segment_index
    horizon = min(idx + 5, manifest2.num_segments)
    return PlanContext(
        segment_index=idx,
        manifest=manifest2[idx],
        predicted_viewport=Viewport(yaw, pitch),
        buffer_s=3.0,
        bandwidth_mbps=6.0,
        grid=encoder.grid,
        segment_ptiles=sp,
        future_manifests=tuple(manifest2[i] for i in range(idx, horizon)),
        future_ptiles=tuple(ptiles2[i] for i in range(idx, horizon)),
        predicted_speed_deg_s=8.0,
    )


class TestPlan:
    def test_uses_ptile(self, ours, ctx):
        plan = ours.plan(ctx)
        assert plan.used_ptile
        assert plan.decode_scheme == TilingScheme.PTILE
        assert plan.scheme_name == "ours"

    def test_frame_rate_from_ladder(self, ours, ctx):
        plan = ours.plan(ctx)
        assert plan.frame_rate in ours.ladder.rates()

    def test_fast_switching_drops_frames(self, ours, ctx):
        from dataclasses import replace

        fast = ours.plan(replace(ctx, predicted_speed_deg_s=60.0))
        assert fast.frame_rate < 30.0

    def test_static_gaze_keeps_frames_on_motion_content(self, ours, ctx):
        from dataclasses import replace

        still = ours.plan(replace(ctx, predicted_speed_deg_s=0.0))
        assert still.frame_rate == 30.0

    def test_fallback_without_ptiles(self, ours, ctx):
        from dataclasses import replace

        plan = ours.plan(replace(ctx, segment_ptiles=None))
        assert not plan.used_ptile
        assert plan.decode_scheme == TilingScheme.CTILE
        assert plan.scheme_name == "ours"

    def test_fallback_with_unmatched_viewport(self, ours, ctx):
        from dataclasses import replace

        far_vp = Viewport((ctx.predicted_viewport.yaw + 180.0) % 360.0, 0.0)
        plan = ours.plan(replace(ctx, predicted_viewport=far_vp))
        assert not plan.used_ptile

    def test_lookahead_without_future_data(self, ours, ctx):
        from dataclasses import replace

        plan = ours.plan(replace(ctx, future_manifests=(), future_ptiles=()))
        assert plan.total_size_mbit > 0

    def test_size_consistent_with_version(self, ours, ctx):
        """Download size must match the chosen (v, f) version's size."""
        plan = ours.plan(ctx)
        sp = ctx.segment_ptiles
        ptile = sp.match(ctx.predicted_viewport)
        background = sum(
            ctx.manifest.region_size_mbit(b.key, b.area_fraction, 1)
            for b in sp.remainder_for(ptile)
        )
        expected = (
            ctx.manifest.region_size_mbit(
                ptile.region_key,
                ptile.area_fraction,
                int(plan.quality),
                frame_rate=plan.frame_rate,
                fps=30.0,
            )
            + background
        )
        assert plan.total_size_mbit == pytest.approx(expected)


class TestSegmentSecondsRegression:
    """The DP buffer dynamics must use the session's segment length."""

    def test_mpc_config_tracks_context_segment_seconds(self, ours):
        # Regression: the controller used to hand MpcConfig to the DP
        # unchanged, so 2 s sessions planned with 1 s buffer dynamics.
        assert ours._mpc(1.0).config.segment_seconds == 1.0
        assert ours._mpc(2.0).config.segment_seconds == 2.0
        assert ours._mpc(0.5).config.segment_seconds == 0.5

    def test_mpc_cache_keyed_by_segment_seconds(self, ours):
        one = ours._mpc(1.0)
        two = ours._mpc(2.0)
        assert one is not two
        assert ours._mpc(2.0) is two

    def test_plan_differs_with_two_second_segments(self, ours, ctx):
        from dataclasses import replace

        # A 2 s segment doubles both the per-segment download payload
        # and the playback drained per step; the plan must be computed
        # against those dynamics, not the 1 s defaults.  The decision
        # energy reported for the same (v, f) choice scales with the
        # segment's energy model, so the two plans cannot coincide.
        base = ours.plan(ctx)
        long_ctx = replace(ctx, segment_seconds=2.0)
        long_plan = ours.plan(long_ctx)
        mpc = ours._mpc(2.0)
        assert mpc.config.segment_seconds == 2.0
        assert long_plan.total_size_mbit > 0
        assert base.total_size_mbit > 0


class TestPlanTablesPath:
    def test_plan_matches_scalar_reference(self, ours, ctx):
        # The production plan must pick exactly what the scalar oracle
        # picks on the same stacked window.
        plan = ours.plan(ctx)
        sp = ctx.segment_ptiles
        ptile = sp.match(ctx.predicted_viewport)
        tables = ours._plan_tables(ctx)
        window = tables.window(ctx, ptile)
        mpc = ours._mpc(ctx.segment_seconds)
        want = mpc.choose_reference(
            window, ctx.bandwidth_mbps, ctx.buffer_s
        )
        assert plan.quality == want.quality
        assert plan.frame_rate == want.frame_rate

    def test_tables_cached_per_video(self, ours, ctx, manifest2):
        from dataclasses import replace

        full_ctx = replace(ctx, video_manifest=manifest2)
        first = ours._plan_tables(full_ctx)
        again = ours._plan_tables(full_ctx)
        assert first is again

    def test_window_path_without_video_manifest(self, ours, ctx):
        # The ctx fixture carries no video_manifest: the controller
        # must fall back to per-window tables and still produce a plan.
        assert ctx.video_manifest is None
        plan = ours.plan(ctx)
        assert plan.total_size_mbit > 0
        assert plan.used_ptile

    def test_row_lookup_rejects_unknown_segment(self, manifest2, ours, ctx):
        tables = ours._plan_tables(ctx)
        with pytest.raises(ValueError):
            tables.row(10_000)


class TestEndToEnd:
    def test_session_cheaper_than_ptile_baseline(
        self, small_dataset, manifest2, network_traces, device, ptiles2
    ):
        from repro.streaming import PtileScheme

        head = small_dataset.test_traces(2)[0]
        ours = run_session(
            OursScheme(device=device), manifest2, head, network_traces[1],
            device, ptiles=ptiles2,
        )
        baseline = run_session(
            PtileScheme(), manifest2, head, network_traces[1], device,
            ptiles=ptiles2,
        )
        assert ours.total_energy_j <= baseline.total_energy_j * 1.02

    def test_session_qoe_within_tolerance_of_ptile(
        self, small_dataset, manifest2, network_traces, device, ptiles2
    ):
        from repro.streaming import PtileScheme

        head = small_dataset.test_traces(2)[0]
        ours = run_session(
            OursScheme(device=device), manifest2, head, network_traces[1],
            device, ptiles=ptiles2,
        )
        baseline = run_session(
            PtileScheme(), manifest2, head, network_traces[1], device,
            ptiles=ptiles2,
        )
        # Paper: Ours trades a few percent of QoE for energy.
        assert ours.mean_qoe >= baseline.mean_qoe * 0.88

    def test_reduces_mean_frame_rate(
        self, small_dataset, manifest2, network_traces, device, ptiles2
    ):
        head = small_dataset.test_traces(2)[0]
        ours = run_session(
            OursScheme(device=device), manifest2, head, network_traces[1],
            device, ptiles=ptiles2,
        )
        assert ours.mean_frame_rate < 30.0
