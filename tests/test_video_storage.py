"""Unit tests for the server storage model."""

import pytest

from repro.video.storage import StorageReport, storage_report


@pytest.fixture(scope="module")
def report(manifest2, ptiles2):
    return storage_report(manifest2, ptiles2)


class TestStorageReport:
    def test_all_positive(self, report):
        assert report.ctile_mbit > 0
        assert report.nontile_mbit > 0
        assert report.ptile_extra_mbit > 0

    def test_ptile_costs_extra(self, report):
        assert report.ptile_total_mbit > report.ctile_mbit
        assert report.overhead_factor > 1.0

    def test_overhead_bounded(self, report):
        # A handful of Ptiles per segment must not explode storage: the
        # extra versions are a small multiple of the base ladder.
        assert report.overhead_factor < 4.0

    def test_nontile_cheapest(self, report):
        # The monolithic encode avoids all per-tile overhead.
        assert report.nontile_mbit < report.ctile_mbit

    def test_ptile_count(self, report, ptiles2):
        assert report.num_ptiles == sum(sp.num_ptiles for sp in ptiles2)

    def test_gbytes_conversion(self, report):
        assert report.gbytes("ctile") == pytest.approx(
            report.ctile_mbit / 8 / 1024
        )
        with pytest.raises(KeyError):
            report.gbytes("bogus")

    def test_report_lines(self, report):
        lines = report.report()
        assert any("ptile" in ln for ln in lines)
        assert any("GB" in ln for ln in lines)

    def test_segment_mismatch_rejected(self, manifest2, ptiles2):
        with pytest.raises(ValueError):
            storage_report(manifest2, ptiles2[:-1])
