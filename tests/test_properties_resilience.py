"""Property-based tests (hypothesis) for the resilience subsystem.

Random fault plans and policies must never break the session-level
invariants: stalls are non-negative, the wall clock only moves forward,
retries respect the budget, and identical seeds reproduce identical
results byte for byte.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.power.models import PIXEL_3, TilingScheme
from repro.resilience import (
    CollapseWindow,
    DownloadPolicy,
    FaultPlan,
    FaultyNetwork,
    LatencySpike,
    Outage,
    execute_download,
    generate_fault_plan,
)
from repro.streaming import DownloadPlan, PtileScheme, SessionConfig, run_session
from repro.traces import NetworkTrace


@st.composite
def fault_plans(draw):
    """Arbitrary-but-valid fault plans over a ~30 s session."""
    def windows(maker):
        out = []
        for _ in range(draw(st.integers(0, 2))):
            start = draw(st.floats(0.0, 25.0))
            length = draw(st.floats(0.3, 6.0))
            out.append(maker(start, start + length))
        return tuple(out)

    return FaultPlan(
        name="hyp",
        seed=draw(st.integers(0, 2**20)),
        outages=windows(Outage),
        collapses=windows(
            lambda s, e: CollapseWindow(s, e, draw(st.floats(0.05, 0.95)))
        ),
        latency_spikes=windows(
            lambda s, e: LatencySpike(s, e, draw(st.floats(0.05, 1.5)))
        ),
        failure_rate=draw(st.floats(0.0, 0.5)),
        edge_fail_at_s=draw(st.none() | st.floats(0.0, 30.0)),
    )


policies = st.builds(
    DownloadPolicy,
    retry_budget=st.integers(0, 3),
    backoff_base_s=st.floats(0.0, 0.5),
    timeout_slack_s=st.floats(0.0, 2.0),
    min_timeout_s=st.floats(0.1, 1.0),
)


def _flat_trace():
    return NetworkTrace(name="flat", bandwidth_mbps=np.full(40, 5.0))


def _plan(size_mbit: float) -> DownloadPlan:
    return DownloadPlan(
        scheme_name="hyp",
        quality=3,
        frame_rate=30.0,
        total_size_mbit=size_mbit,
        decode_scheme=TilingScheme.PTILE,
    )


class TestDownloadEngineProperties:
    @given(
        plan_f=fault_plans(),
        policy=policies,
        size=st.floats(0.5, 20.0),
        start=st.floats(0.0, 25.0),
        buffer_s=st.floats(0.0, 5.0),
        segment=st.integers(0, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_outcome_invariants(
        self, plan_f, policy, size, start, buffer_s, segment
    ):
        trace = _flat_trace()
        seg = _FakeSegment()
        outcome = execute_download(
            FaultyNetwork(trace, plan_f), _plan(size), seg, 30.0,
            policy=policy,
            fault_plan=plan_f,
            start_wall_t=start,
            buffer_level_s=buffer_s,
            segment_index=segment,
        )
        assert outcome.retries <= policy.retry_budget
        assert outcome.elapsed_s >= outcome.active_s >= 0.0
        assert 0 <= int(outcome.level) <= 3
        assert outcome.plan.total_size_mbit >= 0.0
        if outcome.skipped:
            assert outcome.plan.total_size_mbit == 0.0
            assert outcome.edge_hit_mbit == 0.0

    @given(
        plan_f=fault_plans(),
        policy=policies,
        size=st.floats(0.5, 20.0),
        start=st.floats(0.0, 25.0),
        segment=st.integers(0, 40),
    )
    @settings(max_examples=30, deadline=None)
    def test_engine_is_deterministic(self, plan_f, policy, size, start, segment):
        trace = _flat_trace()
        seg = _FakeSegment()
        runs = [
            execute_download(
                FaultyNetwork(trace, plan_f), _plan(size), seg, 30.0,
                policy=policy,
                fault_plan=plan_f,
                start_wall_t=start,
                buffer_level_s=2.0,
                segment_index=segment,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class _FakeSegment:
    """Minimal stand-in exposing the rate-law hook the ladder needs."""

    def full_frame_size_mbit(self, quality: float) -> float:
        return 2.0 * float(quality)


class TestSessionProperties:
    @given(
        plan_f=fault_plans(),
        retry_budget=st.integers(0, 3),
        slack=st.floats(0.0, 2.0),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_session_invariants_under_random_faults(
        self,
        manifest8,
        small_dataset,
        network_traces,
        plan_f,
        retry_budget,
        slack,
    ):
        _, trace2 = network_traces
        head = small_dataset.test_traces(8)[0]
        policy = DownloadPolicy(
            retry_budget=retry_budget, timeout_slack_s=slack
        )
        config = SessionConfig(
            fault_plan=plan_f, download_policy=policy, max_segments=12
        )
        result = run_session(
            PtileScheme(), manifest8, head, trace2, PIXEL_3, config=config
        )
        # Stall time can never go negative.
        assert result.total_stall_s >= 0.0
        # The wall clock only moves forward: every per-segment wait and
        # download contributes non-negative time, so the cumulative
        # segment timestamps are monotone.
        for record in result.records:
            assert record.wait_s >= 0.0
            assert record.download_time_s >= 0.0
            assert record.stall_s >= 0.0
            # Retries never exceed the configured budget.
            assert record.retries <= retry_budget
        # Identical seeds/plans reproduce identical results.
        again = run_session(
            PtileScheme(), manifest8, head, trace2, PIXEL_3, config=config
        )
        assert again == result

    @given(seed=st.integers(0, 2**16), profile=st.sampled_from(
        ["outages", "spikes", "collapse", "lossy", "stress"]
    ))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_profile_seeds_reproduce_sessions(
        self, manifest8, small_dataset, network_traces, seed, profile
    ):
        _, trace2 = network_traces
        head = small_dataset.test_traces(8)[1]
        config = SessionConfig(
            fault_plan=generate_fault_plan(profile, 12.0, seed=seed),
            download_policy=DownloadPolicy(),
            max_segments=12,
        )
        a = run_session(
            PtileScheme(), manifest8, head, trace2, PIXEL_3, config=config
        )
        b = run_session(
            PtileScheme(), manifest8, head, trace2, PIXEL_3, config=config
        )
        assert a == b
        assert a.total_stall_s >= 0.0
