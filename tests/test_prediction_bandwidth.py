"""Unit tests for bandwidth estimators."""

import pytest

from repro.prediction import (
    EwmaEstimator,
    HarmonicMeanEstimator,
    LastSampleEstimator,
)


class TestHarmonicMean:
    def test_single_sample(self):
        est = HarmonicMeanEstimator()
        est.add(4.0)
        assert est.estimate() == 4.0

    def test_harmonic_mean_formula(self):
        est = HarmonicMeanEstimator()
        est.add(2.0)
        est.add(6.0)
        assert est.estimate() == pytest.approx(2 / (1 / 2 + 1 / 6))

    def test_window_eviction(self):
        est = HarmonicMeanEstimator(window=2)
        for v in (1.0, 10.0, 10.0):
            est.add(v)
        assert est.estimate() == pytest.approx(10.0)
        assert est.num_samples == 2

    def test_suppresses_spikes(self):
        """The paper's rationale: harmonic mean resists outliers."""
        est = HarmonicMeanEstimator()
        for v in (4.0, 4.0, 4.0, 4.0, 40.0):
            est.add(v)
        arithmetic = (4 * 4 + 40) / 5
        assert est.estimate() < arithmetic
        assert est.estimate() < 6.0

    def test_pessimistic_on_dips(self):
        est = HarmonicMeanEstimator()
        for v in (4.0, 4.0, 0.4):
            est.add(v)
        assert est.estimate() < 2.0

    def test_empty_estimate_rejected(self):
        with pytest.raises(RuntimeError):
            HarmonicMeanEstimator().estimate()

    def test_validation(self):
        with pytest.raises(ValueError):
            HarmonicMeanEstimator(window=0)
        with pytest.raises(ValueError):
            HarmonicMeanEstimator().add(0.0)


class TestEwma:
    def test_first_sample(self):
        est = EwmaEstimator()
        est.add(5.0)
        assert est.estimate() == 5.0

    def test_smoothing(self):
        est = EwmaEstimator(alpha=0.5)
        est.add(4.0)
        est.add(8.0)
        assert est.estimate() == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator().add(-1.0)
        with pytest.raises(RuntimeError):
            EwmaEstimator().estimate()


class TestLastSample:
    def test_tracks_latest(self):
        est = LastSampleEstimator()
        est.add(3.0)
        est.add(7.0)
        assert est.estimate() == 7.0

    def test_validation(self):
        with pytest.raises(RuntimeError):
            LastSampleEstimator().estimate()
        with pytest.raises(ValueError):
            LastSampleEstimator().add(0.0)
