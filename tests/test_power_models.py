"""Unit tests for the Table I power models."""

import pytest

from repro.power import (
    DEVICES,
    DevicePowerModel,
    GALAXY_S20,
    LinearPower,
    NEXUS_5X,
    PIXEL_3,
    TilingScheme,
    get_device,
)


class TestLinearPower:
    def test_evaluation(self):
        model = LinearPower(100.0, 2.0)
        assert model.at(0.0) == 100.0
        assert model.at(30.0) == 160.0

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            LinearPower(-1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            LinearPower(100.0).at(-1.0)


class TestTableIValues:
    """Spot-check the embedded Table I constants verbatim."""

    def test_transmission(self):
        assert NEXUS_5X.transmission_mw == pytest.approx(1709.12)
        assert PIXEL_3.transmission_mw == pytest.approx(1429.08)
        assert GALAXY_S20.transmission_mw == pytest.approx(1527.39)

    def test_pixel3_decode_rows(self):
        assert PIXEL_3.decoding_mw(TilingScheme.CTILE, 0) == pytest.approx(574.89)
        assert PIXEL_3.decoding_mw(TilingScheme.CTILE, 30) == pytest.approx(
            574.89 + 15.46 * 30
        )
        assert PIXEL_3.decoding_mw(TilingScheme.PTILE, 30) == pytest.approx(
            140.73 + 5.96 * 30
        )

    def test_nexus_decode_rows(self):
        assert NEXUS_5X.decoding_mw(TilingScheme.FTILE, 10) == pytest.approx(
            832.45 + 153.1
        )
        assert NEXUS_5X.decoding_mw(TilingScheme.NONTILE, 0) == pytest.approx(447.17)

    def test_galaxy_render(self):
        assert GALAXY_S20.rendering_mw(30) == pytest.approx(108.21 + 3.98 * 30)

    def test_ptile_always_cheapest_decode(self):
        for device in DEVICES.values():
            for f in (0.0, 15.0, 30.0):
                powers = {
                    s: device.decoding_mw(s, f) for s in TilingScheme
                }
                assert min(powers, key=powers.get) == TilingScheme.PTILE

    def test_ctile_always_most_expensive_decode(self):
        for device in DEVICES.values():
            for f in (0.0, 30.0):
                powers = {s: device.decoding_mw(s, f) for s in TilingScheme}
                assert max(powers, key=powers.get) == TilingScheme.CTILE


class TestDeviceLookup:
    def test_canonical_names(self):
        assert get_device("pixel3") is PIXEL_3
        assert get_device("nexus5x") is NEXUS_5X
        assert get_device("galaxys20") is GALAXY_S20

    def test_fuzzy_names(self):
        assert get_device("Pixel 3") is PIXEL_3
        assert get_device("Nexus-5X") is NEXUS_5X
        assert get_device("galaxy_s20") is GALAXY_S20

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("iphone")

    def test_scheme_accepts_string(self):
        assert PIXEL_3.decoding_mw("ptile", 0) == pytest.approx(140.73)

    def test_incomplete_model_rejected(self):
        with pytest.raises(ValueError):
            DevicePowerModel(
                name="broken",
                transmission=LinearPower(1000.0),
                decoding={TilingScheme.CTILE: LinearPower(500.0, 10.0)},
                rendering=LinearPower(50.0, 1.0),
            )
