"""Unit tests for report formatting helpers."""

import pytest

from repro.experiments import format_normalized, format_row, format_table


class TestFormatRow:
    def test_label_and_values(self):
        row = format_row("energy", [1.0, 2.5])
        assert row.startswith("energy")
        assert "1.000" in row and "2.500" in row

    def test_custom_format(self):
        row = format_row("x", [0.123456], fmt="{:>8.1f}")
        assert "0.1" in row


class TestFormatTable:
    def test_header_plus_rows(self):
        lines = format_table(["a", "b"], {"r1": [1.0, 2.0], "r2": [3.0, 4.0]})
        assert len(lines) == 3
        assert "a" in lines[0] and "b" in lines[0]
        assert lines[1].startswith("r1")


class TestFormatNormalized:
    def test_ratios_and_deltas(self):
        lines = format_normalized(
            {"ctile": 2.0, "ours": 1.0}, "ctile", "Energy"
        )
        assert lines[0] == "Energy"
        assert any("0.500x" in ln and "+50.0%" in ln for ln in lines)

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            format_normalized({"a": 1.0}, "b", "t")
