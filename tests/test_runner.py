"""Tests for the parallel sweep runner.

The load-bearing property is determinism: a sweep must return the same
results in the same order for any worker count, because every figure's
aggregates are built from them.
"""

from __future__ import annotations

import pytest

from repro.experiments import make_schemes, run_comparison
from repro.experiments.runner import (
    SessionJob,
    SweepContext,
    parallel_map,
    resolve_chunk_size,
    resolve_workers,
    run_session_jobs,
)
from repro.experiments.setup import ExperimentSetup
from repro.streaming.session import SessionConfig
from repro.video import EncoderModel


@pytest.fixture(scope="module")
def sweep_context(small_dataset, manifest2, ptiles2, ftiles2,
                  network_traces, device):
    trace1, trace2 = network_traces
    return SweepContext(
        schemes=make_schemes(device),
        device=device,
        networks={"trace1": trace1, "trace2": trace2},
        manifests={2: manifest2},
        head_traces={2: tuple(small_dataset.test_traces(2))},
        ptiles={2: ptiles2},
        ftiles={2: ftiles2},
        config=SessionConfig(),
    )


def make_jobs(schemes=("ctile", "ours"), users=2):
    return [
        SessionJob(key=(name, 2, u), scheme=name, video_id=2,
                   network="trace2", user_index=u)
        for name in schemes
        for u in range(users)
    ]


def session_signature(result):
    return (
        result.scheme_name,
        result.video_id,
        result.user_id,
        result.total_energy_j,
        result.mean_qoe,
        result.total_stall_s,
        result.rebuffer_count,
    )


class TestRunSessionJobs:
    def test_serial_results_in_job_order(self, sweep_context):
        jobs = make_jobs()
        run = run_session_jobs(sweep_context, jobs, workers=1)
        assert run.num_jobs == len(jobs)
        assert not run.failures
        for job, result in zip(jobs, run.results):
            assert result.scheme_name == job.scheme
            assert result.video_id == job.video_id
        assert len(run.timings) == len(jobs)
        assert all(t.elapsed_s >= 0 for t in run.timings)

    def test_parallel_identical_to_serial(self, sweep_context):
        jobs = make_jobs()
        serial = run_session_jobs(sweep_context, jobs, workers=1)
        parallel = run_session_jobs(sweep_context, jobs, workers=2,
                                    chunk_size=1)
        assert [session_signature(r) for r in serial.results] == [
            session_signature(r) for r in parallel.results
        ]

    def test_per_job_config_override(self, sweep_context):
        short = SessionConfig(max_segments=3)
        jobs = [
            SessionJob(key="short", scheme="ctile", video_id=2,
                       network="trace2", user_index=0, config=short)
        ]
        run = run_session_jobs(sweep_context, jobs, workers=1)
        assert run.results[0].num_segments == 3

    def test_unknown_scheme_fails_strict(self, sweep_context):
        jobs = [SessionJob(key="bad", scheme="nope", video_id=2,
                           network="trace2", user_index=0)]
        with pytest.raises(RuntimeError, match="nope"):
            run_session_jobs(sweep_context, jobs, workers=1)

    def test_non_strict_reports_failures_in_place(self, sweep_context):
        jobs = [
            SessionJob(key="ok", scheme="ctile", video_id=2,
                       network="trace2", user_index=0),
            SessionJob(key="bad-user", scheme="ctile", video_id=2,
                       network="trace2", user_index=999),
            SessionJob(key="bad-video", scheme="ctile", video_id=77,
                       network="trace2", user_index=0),
        ]
        run = run_session_jobs(sweep_context, jobs, workers=1, strict=False)
        assert run.results[0] is not None
        assert run.results[1] is None and run.results[2] is None
        assert [f.job_index for f in run.failures] == [1, 2]
        assert "999" in run.failures[0].error
        assert "77" in run.failures[1].error
        assert any("FAILED" in line for line in run.report())


class TestContextSlicing:
    def test_slice_drops_unreferenced_videos(self, sweep_context,
                                             manifest8, small_dataset):
        import dataclasses

        wide = dataclasses.replace(
            sweep_context,
            manifests={**sweep_context.manifests, 8: manifest8},
            head_traces={
                **sweep_context.head_traces,
                8: tuple(small_dataset.test_traces(8)),
            },
        )
        sliced = wide.slice({2})
        assert set(sliced.manifests) == {2}
        assert set(sliced.head_traces) == {2}
        assert sliced.schemes is wide.schemes
        assert sliced.config is wide.config

    def test_slice_is_identity_when_nothing_drops(self, sweep_context):
        assert sweep_context.slice({2}) is sweep_context
        assert sweep_context.slice({2, 99}) is sweep_context

    def test_sliced_context_runs_jobs_identically(self, sweep_context,
                                                  manifest8, small_dataset,
                                                  ptiles8):
        import dataclasses

        wide = dataclasses.replace(
            sweep_context,
            manifests={**sweep_context.manifests, 8: manifest8},
            head_traces={
                **sweep_context.head_traces,
                8: tuple(small_dataset.test_traces(8)),
            },
            ptiles={**sweep_context.ptiles, 8: ptiles8},
        )
        jobs = make_jobs()
        narrow = run_session_jobs(wide, jobs, workers=1)
        full = run_session_jobs(sweep_context, jobs, workers=1)
        assert [session_signature(r) for r in narrow.results] == [
            session_signature(r) for r in full.results
        ]


class TestParallelMap:
    def test_preserves_order(self):
        run = parallel_map(abs, [-5, 3, -1, 0], workers=1)
        assert run.results == [5, 3, 1, 0]

    def test_parallel_matches_serial(self):
        items = list(range(20))
        serial = parallel_map(_square, items, workers=1)
        parallel = parallel_map(_square, items, workers=2, chunk_size=3)
        assert serial.results == parallel.results == [i * i for i in items]

    def test_failures_non_strict(self):
        run = parallel_map(len, [[1], 7, [2, 3]], workers=1, strict=False)
        assert run.results == [1, None, 2]
        assert len(run.failures) == 1
        assert run.failures[0].job_index == 1

    def test_failures_strict_raises_with_context(self):
        with pytest.raises(RuntimeError, match="1/1 sweep jobs failed"):
            parallel_map(len, [7], workers=1)


class TestResolvers:
    def test_workers_auto_detect(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_chunk_size_default_gives_four_waves(self):
        assert resolve_chunk_size(None, 40, 4) == 3  # ceil(40 / 16)
        assert resolve_chunk_size(None, 3, 4) == 1
        assert resolve_chunk_size(None, 10, 1) == 10  # serial: one chunk
        assert resolve_chunk_size(7, 40, 4) == 7
        with pytest.raises(ValueError):
            resolve_chunk_size(0, 40, 4)


class TestRunComparisonParallel:
    def test_workers_do_not_change_results(self, small_dataset,
                                           network_traces, device):
        setup = ExperimentSetup(
            dataset=small_dataset,
            encoder=EncoderModel(),
            trace1=network_traces[0],
            trace2=network_traces[1],
        )
        kwargs = dict(
            users_per_video=1,
            video_ids=(2,),
            scheme_names=("ctile", "ours"),
        )
        serial = run_comparison(setup, device, workers=1, **kwargs)
        parallel = run_comparison(setup, device, workers=2, **kwargs)
        assert list(serial.keys()) == list(parallel.keys())
        for key in serial:
            assert [session_signature(r) for r in serial[key]] == [
                session_signature(r) for r in parallel[key]
            ]


def _square(x):
    return x * x
