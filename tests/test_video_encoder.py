"""Unit tests for the encoder rate model (Fig. 8 calibration)."""

import pytest

from repro.video import EncoderModel, QUALITY_LEVELS, quality_to_crf

SI, TI = 33.0, 14.0  # average-complexity content


class TestQualityToCrf:
    def test_paper_ladder(self):
        assert quality_to_crf(1) == 38
        assert quality_to_crf(2) == 33
        assert quality_to_crf(3) == 28
        assert quality_to_crf(4) == 23
        assert quality_to_crf(5) == 18

    def test_fractional_interpolates(self):
        assert quality_to_crf(2.5) == pytest.approx(30.5)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            quality_to_crf(0.5)
        with pytest.raises(ValueError):
            quality_to_crf(5.5)


class TestRateQualityLaw:
    def test_monotone_in_quality(self, noise_free_encoder):
        rates = [
            noise_free_encoder.full_frame_bitrate_mbps(q, SI, TI)
            for q in QUALITY_LEVELS
        ]
        assert rates == sorted(rates)
        assert rates[-1] > 10 * rates[0]

    def test_monotone_in_complexity(self, noise_free_encoder):
        low = noise_free_encoder.full_frame_bitrate_mbps(3, 20.0, 5.0)
        high = noise_free_encoder.full_frame_bitrate_mbps(3, 45.0, 22.0)
        assert high > low

    def test_fov_share(self, noise_free_encoder):
        full = noise_free_encoder.full_frame_bitrate_mbps(3, SI, TI)
        fov = noise_free_encoder.fov_bitrate_mbps(3, SI, TI, n_fov_tiles=9)
        assert fov == pytest.approx(full * 9 / 32)

    def test_fov_requires_tiles(self, noise_free_encoder):
        with pytest.raises(ValueError):
            noise_free_encoder.fov_bitrate_mbps(3, SI, TI, n_fov_tiles=0)

    def test_qoe_bitrate_monotone_and_compressed(self, noise_free_encoder):
        values = [
            noise_free_encoder.qoe_bitrate_mbps(q, SI, TI) for q in QUALITY_LEVELS
        ]
        assert values == sorted(values)
        # Log compression: ladder steps shrink much less than the raw 2.4x.
        steps = [b / a for a, b in zip(values, values[1:])]
        assert max(steps) < 2.0


class TestFig8Calibration:
    """The headline calibration: Ptile/Ctile size ratios match Fig. 8."""

    PAPER = {5: 0.62, 4: 0.57, 3: 0.47, 2: 0.35, 1: 0.27}

    @pytest.mark.parametrize("quality", QUALITY_LEVELS)
    def test_median_ratio(self, noise_free_encoder, quality):
        ptile = noise_free_encoder.region_size_mbit(quality, SI, TI, 9 / 32)
        ctile = noise_free_encoder.tiled_region_size_mbit(quality, SI, TI, 9)
        assert ptile / ctile == pytest.approx(self.PAPER[quality], abs=0.01)

    def test_ratio_independent_of_content(self, noise_free_encoder):
        for si, ti in [(25.0, 6.0), (41.0, 21.0)]:
            ptile = noise_free_encoder.region_size_mbit(3, si, ti, 9 / 32)
            ctile = noise_free_encoder.tiled_region_size_mbit(3, si, ti, 9)
            assert ptile / ctile == pytest.approx(self.PAPER[3], abs=0.01)


class TestEfficiency:
    def test_unit_tile_is_one(self, encoder):
        assert encoder.efficiency(1.0, 3) == pytest.approx(1.0)

    def test_decreasing_to_fov_scale(self, encoder):
        values = [encoder.efficiency(n, 3) for n in (1, 2, 4, 9)]
        assert values == sorted(values, reverse=True)

    def test_small_tiles_penalized(self, encoder):
        assert encoder.efficiency(0.2, 3) > 1.0

    def test_plateau_through_ptile_sizes(self, encoder):
        assert encoder.efficiency(12, 3) == pytest.approx(encoder.efficiency(9, 3))
        assert encoder.efficiency(16, 3) == pytest.approx(encoder.efficiency(9, 3))

    def test_erodes_to_full_frame(self, encoder):
        assert encoder.efficiency(32, 3) == pytest.approx(0.95)
        assert encoder.efficiency(24, 3) < 0.95
        assert encoder.efficiency(24, 3) > encoder.efficiency(16, 3)


class TestRegionSize:
    def test_invalid_area(self, encoder):
        with pytest.raises(ValueError):
            encoder.region_size_mbit(3, SI, TI, 0.0)
        with pytest.raises(ValueError):
            encoder.region_size_mbit(3, SI, TI, 1.5)

    def test_noise_deterministic_per_key(self, encoder):
        a = encoder.region_size_mbit(3, SI, TI, 0.25, noise_key=(1, 2, "r"))
        b = encoder.region_size_mbit(3, SI, TI, 0.25, noise_key=(1, 2, "r"))
        assert a == b

    def test_noise_varies_across_keys(self, encoder):
        a = encoder.region_size_mbit(3, SI, TI, 0.25, noise_key=(1, 2, "r"))
        b = encoder.region_size_mbit(3, SI, TI, 0.25, noise_key=(1, 3, "r"))
        assert a != b

    def test_noise_free_matches_sigma_zero(self, noise_free_encoder):
        a = noise_free_encoder.region_size_mbit(3, SI, TI, 0.25, noise_key=(1,))
        b = noise_free_encoder.region_size_mbit(3, SI, TI, 0.25)
        assert a == b

    def test_frame_rate_shrinks_size(self, noise_free_encoder):
        full = noise_free_encoder.region_size_mbit(3, SI, TI, 9 / 32)
        reduced = noise_free_encoder.region_size_mbit(
            3, SI, TI, 9 / 32, frame_rate=21.0, fps=30.0
        )
        assert reduced == pytest.approx(full * (1 - 0.6 * 0.3))

    def test_frame_rate_bounds(self, encoder):
        with pytest.raises(ValueError):
            encoder.frame_rate_factor(0.0, 30.0)
        with pytest.raises(ValueError):
            encoder.frame_rate_factor(31.0, 30.0)
        assert encoder.frame_rate_factor(30.0, 30.0) == 1.0

    def test_tiled_region_sums_tiles(self, noise_free_encoder):
        one = noise_free_encoder.tile_size_mbit(3, SI, TI)
        nine = noise_free_encoder.tiled_region_size_mbit(3, SI, TI, 9)
        assert nine == pytest.approx(9 * one)

    def test_tiled_region_needs_tiles(self, encoder):
        with pytest.raises(ValueError):
            encoder.tiled_region_size_mbit(3, SI, TI, 0)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            EncoderModel(ref_bitrate_mbps=0.0)
        with pytest.raises(ValueError):
            EncoderModel(segment_seconds=0.0)
        with pytest.raises(ValueError):
            EncoderModel(noise_sigma=-0.1)

    def test_noise_mean_near_one(self, encoder):
        # Lognormal with mean-one parameterization.
        sizes = [
            encoder.region_size_mbit(3, SI, TI, 0.25, noise_key=(i,))
            for i in range(300)
        ]
        clean = EncoderModel(noise_sigma=0.0).region_size_mbit(3, SI, TI, 0.25)
        mean_ratio = sum(sizes) / len(sizes) / clean
        assert mean_ratio == pytest.approx(1.0, abs=0.05)
