"""Unit tests for the central StreamingConfig."""

import pytest

from repro.core import StreamingConfig


class TestStreamingConfig:
    def test_paper_defaults(self):
        cfg = StreamingConfig()
        assert cfg.segment_seconds == 1.0
        assert (cfg.grid_rows, cfg.grid_cols) == (4, 8)
        assert cfg.fov_deg == 100.0
        assert cfg.buffer_threshold_s == 3.0
        assert cfg.qualities == (1, 2, 3, 4, 5)
        assert cfg.qoe_tolerance == 0.05
        assert cfg.mpc_horizon == 5
        assert (cfg.n_users, cfg.n_train_users) == (48, 40)

    def test_make_grid(self):
        grid = StreamingConfig().make_grid()
        assert grid.num_tiles == 32

    def test_make_ptile_config(self):
        pcfg = StreamingConfig().make_ptile_config()
        grid = StreamingConfig().make_grid()
        assert pcfg.resolved_sigma(grid) == 45.0
        assert pcfg.resolved_delta(grid) == pytest.approx(45.0 / 4)

    def test_make_mpc_config(self):
        mpc = StreamingConfig().make_mpc_config()
        assert mpc.horizon == 5
        assert mpc.buffer_granularity_s == 0.5
        assert mpc.qoe_tolerance == 0.05

    def test_frame_rate_ladder(self):
        cfg = StreamingConfig()
        assert cfg.ladder.rates() == (21.0, 24.0, 27.0, 30.0)

    def test_qoe_weights(self):
        cfg = StreamingConfig()
        assert cfg.qoe_weights.variation == 1.0
        assert cfg.qoe_weights.rebuffering == 1.0
