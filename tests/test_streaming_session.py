"""Integration tests for the streaming session simulator."""

import pytest

from repro.power import TilingScheme
from repro.streaming import (
    CtileScheme,
    NontileScheme,
    PtileScheme,
    SessionConfig,
    run_session,
)


@pytest.fixture(scope="module")
def session_inputs(request):
    return None


def _run(scheme, manifest, dataset, traces, device, vid=2, ptiles=None,
         ftiles=None, config=None):
    head = dataset.test_traces(vid)[0]
    return run_session(
        scheme,
        manifest,
        head,
        traces[1],
        device,
        ptiles=ptiles,
        ftiles=ftiles,
        config=config or SessionConfig(),
    )


class TestSessionBasics:
    def test_record_per_segment(self, small_dataset, manifest2, network_traces,
                                device):
        result = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                      device)
        assert result.num_segments == manifest2.num_segments
        assert [r.index for r in result.records] == list(
            range(manifest2.num_segments)
        )

    def test_max_segments(self, small_dataset, manifest2, network_traces, device):
        cfg = SessionConfig(max_segments=5)
        result = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                      device, config=cfg)
        assert result.num_segments == 5

    def test_energy_components_positive(self, small_dataset, manifest2,
                                        network_traces, device):
        result = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                      device)
        assert result.energy.transmission_j > 0
        assert result.energy.decoding_j > 0
        assert result.energy.rendering_j > 0
        assert result.total_energy_j == pytest.approx(
            result.energy.transmission_j
            + result.energy.decoding_j
            + result.energy.rendering_j
        )

    def test_metadata_propagated(self, small_dataset, manifest2, network_traces,
                                 device):
        result = _run(NontileScheme(), manifest2, small_dataset, network_traces,
                      device)
        assert result.scheme_name == "nontile"
        assert result.video_id == 2
        assert result.device_name == device.name
        assert result.network_name == network_traces[1].name

    def test_deterministic(self, small_dataset, manifest2, network_traces,
                           device):
        a = _run(CtileScheme(), manifest2, small_dataset, network_traces, device)
        b = _run(CtileScheme(), manifest2, small_dataset, network_traces, device)
        assert a.total_energy_j == b.total_energy_j
        assert a.mean_qoe == b.mean_qoe


class TestSchemeBehaviour:
    def test_ptile_mostly_hits(self, small_dataset, manifest2, network_traces,
                               device, ptiles2):
        result = _run(PtileScheme(), manifest2, small_dataset, network_traces,
                      device, ptiles=ptiles2)
        assert result.ptile_hit_rate > 0.5

    def test_ptile_decodes_cheaper_than_ctile(
        self, small_dataset, manifest2, network_traces, device, ptiles2
    ):
        ptile = _run(PtileScheme(), manifest2, small_dataset, network_traces,
                     device, ptiles=ptiles2)
        ctile = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                     device)
        assert ptile.energy.decoding_j < ctile.energy.decoding_j

    def test_ptile_downloads_less_than_ctile(
        self, small_dataset, manifest2, network_traces, device, ptiles2
    ):
        ptile = _run(PtileScheme(), manifest2, small_dataset, network_traces,
                     device, ptiles=ptiles2)
        ctile = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                     device)
        assert ptile.energy.transmission_j < ctile.energy.transmission_j

    def test_nontile_full_coverage(self, small_dataset, manifest2,
                                   network_traces, device):
        result = _run(NontileScheme(), manifest2, small_dataset, network_traces,
                      device)
        assert result.mean_coverage == pytest.approx(1.0)

    def test_decode_scheme_recorded(self, small_dataset, manifest2,
                                    network_traces, device, ptiles2):
        result = _run(PtileScheme(), manifest2, small_dataset, network_traces,
                      device, ptiles=ptiles2)
        schemes = {r.decode_scheme for r in result.records}
        assert TilingScheme.PTILE in schemes


class TestStartupAndStalls:
    def test_first_segment_not_counted_as_rebuffer(
        self, small_dataset, manifest2, network_traces, device
    ):
        result = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                      device)
        assert result.records[0].stall_s == 0.0
        assert result.records[0].qoe.rebuffer_penalty == 0.0

    def test_startup_stall_opt_in(self, small_dataset, manifest2,
                                  network_traces, device):
        cfg = SessionConfig(count_startup_stall=True, max_segments=3)
        result = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                      device, config=cfg)
        assert result.records[0].qoe.rebuffer_penalty > 0.0
        # The recorded stall must agree with the QoE penalty: opting in
        # makes the startup download a real stall, not a hardcoded 0.
        assert result.records[0].stall_s > 0.0
        assert result.records[0].stall_s == pytest.approx(
            result.records[0].download_time_s
        )

    def test_buffer_bounded(self, small_dataset, manifest2, network_traces,
                            device):
        result = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                      device)
        for record in result.records:
            assert record.buffer_before_s <= 3.0 + 1e-9


class TestQoEPlumbing:
    def test_coverage_in_unit_interval(self, small_dataset, manifest2,
                                       network_traces, device, ptiles2):
        result = _run(PtileScheme(), manifest2, small_dataset, network_traces,
                      device, ptiles=ptiles2)
        for record in result.records:
            assert 0.0 <= record.coverage <= 1.0

    def test_qo_effective_bounded(self, small_dataset, manifest2,
                                  network_traces, device):
        result = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                      device)
        for record in result.records:
            assert 0.0 <= record.qo_effective <= 100.0

    def test_empty_video_rejected(self, small_dataset, manifest2,
                                  network_traces, device):
        cfg = SessionConfig(max_segments=0)
        with pytest.raises(ValueError):
            _run(CtileScheme(), manifest2, small_dataset, network_traces,
                 device, config=cfg)


class TestEdgeModel:
    def test_zero_hit_model_identical_to_none(self, small_dataset, manifest2,
                                              network_traces, device):
        from repro.streaming import EdgeHitModel

        base = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                    device)
        zero = EdgeHitModel(hit_ratios=(0.0,) * manifest2.num_segments)
        with_model = _run(CtileScheme(), manifest2, small_dataset,
                          network_traces, device,
                          config=SessionConfig(edge_model=zero))
        assert [r.download_time_s for r in with_model.records] == [
            r.download_time_s for r in base.records
        ]
        assert with_model.total_energy_j == base.total_energy_j

    def test_edge_hits_shorten_downloads(self, small_dataset, manifest2,
                                         network_traces, device):
        from repro.streaming import EdgeHitModel

        base = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                    device)
        # A fast edge link serving 60% of every download must beat the
        # backhaul-only path in total download time and stalls.
        model = EdgeHitModel(
            hit_ratios=(0.6,) * manifest2.num_segments,
            edge_bandwidth_mbps=500.0,
        )
        cached = _run(CtileScheme(), manifest2, small_dataset, network_traces,
                      device, config=SessionConfig(edge_model=model))
        base_dl = sum(r.download_time_s for r in base.records)
        cached_dl = sum(r.download_time_s for r in cached.records)
        assert cached_dl < base_dl
        assert cached.total_stall_s <= base.total_stall_s

    def test_trained_model_runs_end_to_end(self, small_dataset, manifest2,
                                           network_traces, device, ptiles2):
        from repro.streaming import build_edge_hit_model

        model = build_edge_hit_model(
            manifest2, small_dataset.train_traces(2), ptiles2,
            capacity_mbit=2000.0,
        )
        result = _run(PtileScheme(), manifest2, small_dataset, network_traces,
                      device, ptiles=ptiles2,
                      config=SessionConfig(edge_model=model))
        assert result.num_segments == manifest2.num_segments
        assert all(r.download_time_s >= 0.0 for r in result.records)


class TestZeroBandwidthBins:
    """Regression: zero-bandwidth trace bins must not crash the loop."""

    def _zero_start_trace(self):
        import numpy as np
        from repro.traces import NetworkTrace

        return NetworkTrace("outage-start", np.array([0.0] + [5.0] * 60))

    def test_zero_bin_at_startup(self, small_dataset, manifest2, device):
        # The startup probe lands in the dead bin; it must probe forward
        # instead of feeding 0 to the harmonic-mean estimator.
        head = small_dataset.test_traces(2)[0]
        result = run_session(
            CtileScheme(), manifest2, head, self._zero_start_trace(), device,
            config=SessionConfig(max_segments=4),
        )
        assert result.num_segments == 4
        assert all(r.download_time_s >= 0 for r in result.records)

    def test_zero_bin_mid_session_instant_download(
        self, small_dataset, manifest2, device
    ):
        # A size-0 plan makes the download instantaneous, which samples
        # the trace at wall_t as a fallback; inside a dead bin the
        # sample must be skipped, not fed to the estimator.
        import numpy as np

        from repro.power import TilingScheme as _TS
        from repro.streaming import DownloadPlan
        from repro.traces import NetworkTrace

        class EmptyScheme:
            name = "empty"

            def plan(self, ctx):
                return DownloadPlan(
                    scheme_name=self.name,
                    quality=1,
                    frame_rate=ctx.fps,
                    total_size_mbit=0.0,
                    decode_scheme=_TS.CTILE,
                )

        trace = NetworkTrace("mostly-dead", np.array([0.0, 1.0, 0.0, 0.0]))
        head = small_dataset.test_traces(2)[0]
        result = run_session(
            EmptyScheme(), manifest2, head, trace, device,
            config=SessionConfig(max_segments=6),
        )
        assert result.num_segments == 6


class TestTruncatedHorizon:
    """Regression: MPC lookahead must respect max_segments truncation."""

    def test_future_manifests_clipped_to_truncated_length(
        self, small_dataset, manifest2, network_traces, device
    ):
        max_segments = 5

        class SpyScheme(CtileScheme):
            seen: list = []

            def plan(self, ctx):
                for m in ctx.future_manifests:
                    SpyScheme.seen.append(m.segment_index)
                return super().plan(ctx)

        SpyScheme.seen = []
        _run(SpyScheme(), manifest2, small_dataset, network_traces, device,
             config=SessionConfig(max_segments=max_segments))
        assert SpyScheme.seen, "scheme never saw a lookahead window"
        assert max(SpyScheme.seen) == max_segments - 1

    def test_ours_plans_match_prefix_manifest(
        self, small_dataset, manifest2, network_traces, device, ptiles2
    ):
        # Planning a truncated session must equal planning a video that
        # physically ends at the truncation point: with the horizon
        # clipped to the truncated length, OursScheme's MPC can no
        # longer see (and plan against) segments that will never play.
        from repro.core import OursScheme

        head = small_dataset.test_traces(2)[0]
        max_segments = manifest2.num_segments - 3
        truncated = run_session(
            OursScheme(device), manifest2, head, network_traces[1], device,
            ptiles=ptiles2,
            config=SessionConfig(max_segments=max_segments),
        )
        full = run_session(
            OursScheme(device), manifest2, head, network_traces[1], device,
            ptiles=ptiles2,
        )
        # The tail segments (inside the final horizon window) now see a
        # shorter lookahead than the full run did, so the truncated run
        # is NOT simply the full run's prefix once the horizon matters.
        assert truncated.num_segments == max_segments
        for rec_t, rec_f in zip(
            truncated.records[: max_segments - 5], full.records
        ):
            assert rec_t.quality == rec_f.quality
            assert rec_t.size_mbit == rec_f.size_mbit
