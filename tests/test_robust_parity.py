"""Parity gate for the uncertainty-aware robust planner.

The load-bearing guarantee: with a degenerate error model (sigma = 0)
:class:`~repro.core.robust.RobustScheme` delegates to the
point-prediction ``ours`` code path, so its sessions are bit-identical
— same records, same floats — across videos, MPC horizons, edge
models, and worker counts.  Anything less means the robust layer
changed baseline experiment results just by existing.

The second half covers the robust x resilience cross (docs/MODELING.md
§14): ``sweep_robust`` is deterministic at any worker count, and the
per-segment uncertainty accounting lands in the schema-v4 records.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import OursScheme, RobustScheme
from repro.experiments import (
    RESULTS_SCHEMA_VERSION,
    SessionJob,
    ShardedResultsStore,
    SweepContext,
    make_setup,
    run_session_jobs,
    sweep_robust,
)
from repro.power.models import PIXEL_3
from repro.prediction import AngularErrorModel, PanoWeight
from repro.resilience import DownloadPolicy, generate_fault_plan
from repro.streaming import PopulationEngine, SessionConfig, run_session
from repro.streaming.cache import build_edge_hit_model

CFG = SessionConfig(max_segments=10)

ACTIVE_MODEL = AngularErrorModel(base_sigma_deg=8.0, growth_deg_per_s=6.0)


def _run(scheme, manifest, trace, network, device, ptiles, config):
    return run_session(
        scheme, manifest, trace, network, device, ptiles=ptiles,
        config=config,
    )


class TestSigmaZeroParity:
    """sigma = 0 robust == ours, record for record, bit for bit."""

    @pytest.mark.parametrize("video_id", [2, 8])
    def test_records_identical_across_videos(
        self, video_id, manifest2, manifest8, ptiles2, ptiles8,
        small_dataset, network_traces, device,
    ):
        manifest = {2: manifest2, 8: manifest8}[video_id]
        ptiles = {2: ptiles2, 8: ptiles8}[video_id]
        for user in range(2):
            trace = small_dataset.test_traces(video_id)[user]
            a = _run(OursScheme(device=device), manifest, trace,
                     network_traces[1], device, ptiles, CFG)
            b = _run(RobustScheme(device=device), manifest, trace,
                     network_traces[1], device, ptiles, CFG)
            assert a.records == b.records
            # The degenerate path still reports the point-prediction
            # defaults in the new accounting fields.
            assert all(r.expected_coverage == 1.0 for r in b.records)
            assert all(r.uncertainty_deg == 0.0 for r in b.records)

    @pytest.mark.parametrize("horizon", [3, 5])
    def test_records_identical_across_horizons(
        self, horizon, manifest8, ptiles8, small_dataset, network_traces,
        device,
    ):
        config = SessionConfig(max_segments=10, horizon=horizon)
        trace = small_dataset.test_traces(8)[0]
        a = _run(OursScheme(device=device), manifest8, trace,
                 network_traces[1], device, ptiles8, config)
        b = _run(RobustScheme(device=device), manifest8, trace,
                 network_traces[1], device, ptiles8, config)
        assert a.records == b.records

    def test_records_identical_with_edge_model(
        self, manifest8, ptiles8, small_dataset, network_traces, device,
    ):
        edge = build_edge_hit_model(
            manifest8, small_dataset.train_traces(8), ptiles8,
            capacity_mbit=500,
        )
        config = SessionConfig(max_segments=10, edge_model=edge)
        trace = small_dataset.test_traces(8)[0]
        a = _run(OursScheme(device=device), manifest8, trace,
                 network_traces[1], device, ptiles8, config)
        b = _run(RobustScheme(device=device), manifest8, trace,
                 network_traces[1], device, ptiles8, config)
        assert a.records == b.records

    def test_fitted_table_of_zeros_is_degenerate_too(
        self, manifest8, ptiles8, small_dataset, network_traces, device,
    ):
        # A fitted per-horizon table whose sigmas are all zero must take
        # the same delegation branch as the parametric zero model.
        model = AngularErrorModel(
            horizons_s=(0.25, 0.5, 1.0), sigmas_deg=(0.0, 0.0, 0.0)
        )
        assert model.is_degenerate
        trace = small_dataset.test_traces(8)[1]
        a = _run(OursScheme(device=device), manifest8, trace,
                 network_traces[1], device, ptiles8, CFG)
        b = _run(RobustScheme(device=device, error_model=model), manifest8,
                 trace, network_traces[1], device, ptiles8, CFG)
        assert a.records == b.records

    def test_population_engine_identical(
        self, manifest8, ptiles8, small_dataset, network_traces, device,
    ):
        traces = small_dataset.test_traces(8)
        users = [0, 1, 2]

        def run_pop(scheme):
            engine = PopulationEngine(
                scheme, manifest8, traces, network_traces[1], device,
                ptiles=ptiles8, config=CFG,
            )
            return engine.run(users)

        base = run_pop(OursScheme(device=device))
        robust = run_pop(RobustScheme(device=device))
        for f in dataclasses.fields(base):
            a, b = getattr(base, f.name), getattr(robust, f.name)
            if f.name == "scheme_name":
                assert (a, b) == ("ours", "robust")
            elif isinstance(a, np.ndarray):
                assert np.array_equal(a, b), f.name
            else:
                assert a == b, f.name


class TestActiveRobust:
    """sigma > 0: the robust path itself must be deterministic and keep
    population/scalar parity."""

    def test_population_matches_scalar_sessions(
        self, manifest8, ptiles8, small_dataset, network_traces, device,
    ):
        scheme = RobustScheme(device=device, error_model=ACTIVE_MODEL)
        traces = small_dataset.test_traces(8)
        engine = PopulationEngine(
            scheme, manifest8, traces, network_traces[1], device,
            ptiles=ptiles8, config=CFG,
        )
        res = engine.run([0, 1])
        for j in range(2):
            scalar = _run(scheme, manifest8, traces[j], network_traces[1],
                          device, ptiles8, CFG)
            assert res.total_energy_j[j] == pytest.approx(
                scalar.total_energy_j, rel=1e-9
            )
            assert res.mean_qoe[j] == pytest.approx(
                scalar.mean_qoe, rel=1e-9
            )
            assert res.total_stall_s[j] == pytest.approx(
                scalar.total_stall_s, rel=1e-9, abs=1e-12
            )
            assert res.mean_coverage[j] == pytest.approx(
                scalar.mean_coverage, rel=1e-9
            )

    def test_serial_equals_pooled_cold_equals_warm(
        self, manifest8, ptiles8, small_dataset, network_traces, device,
        tmp_path,
    ):
        context = SweepContext(
            schemes={
                "ours": OursScheme(device=device),
                "robust": RobustScheme(
                    device=device, error_model=ACTIVE_MODEL
                ),
            },
            device=device,
            networks={"trace2": network_traces[1]},
            manifests={8: manifest8},
            head_traces={8: tuple(small_dataset.test_traces(8))},
            ptiles={8: ptiles8},
            config=CFG,
        )
        jobs = [
            SessionJob(key=(name, u), scheme=name, video_id=8,
                       network="trace2", user_index=u)
            for name in ("ours", "robust")
            for u in range(2)
        ]
        serial = run_session_jobs(context, jobs, workers=1).results
        pooled = run_session_jobs(context, jobs, workers=2,
                                  chunk_size=1).results
        assert [s.records for s in serial] == [p.records for p in pooled]

        store = ShardedResultsStore(tmp_path)
        cold = run_session_jobs(context, jobs, workers=1,
                                results=store).results
        warm = run_session_jobs(context, jobs, workers=1,
                                results=store).results
        assert [c.records for c in cold] == [w.records for w in warm]
        assert [c.records for c in cold] == [s.records for s in serial]

    def test_robust_records_carry_uncertainty(
        self, manifest8, ptiles8, small_dataset, network_traces, device,
    ):
        scheme = RobustScheme(device=device, error_model=ACTIVE_MODEL)
        trace = small_dataset.test_traces(8)[0]
        result = _run(scheme, manifest8, trace, network_traces[1], device,
                      ptiles8, CFG)
        planned = [r for r in result.records if r.uncertainty_deg > 0.0]
        assert planned, "active robust session never planned under sigma>0"
        for r in planned:
            assert 0.0 <= r.expected_coverage <= 1.0
        assert result.mean_uncertainty_deg > 0.0
        assert 0.0 < result.mean_expected_coverage <= 1.0


@pytest.fixture(scope="module")
def robust_setup():
    return make_setup(max_duration_s=12, n_users=16, n_train=12,
                      video_ids=(8,))


class TestSweepRobust:
    """S4: robust x resilience — deterministic, schema-versioned."""

    def test_schema_version_covers_uncertainty_fields(self):
        assert RESULTS_SCHEMA_VERSION == 4

    def test_deterministic_across_worker_counts(self, robust_setup):
        kwargs = dict(profiles=("none", "outages"), users=2, fault_seed=7)
        serial = sweep_robust(robust_setup, workers=1, **kwargs)
        pooled = sweep_robust(robust_setup, workers=2, **kwargs)
        assert serial == pooled
        assert [p.label for p in serial] == [
            "none:ours", "none:robust", "outages:ours", "outages:robust",
        ]

    def test_fault_profiles_populate_uncertainty_extras(self, robust_setup):
        points = sweep_robust(
            robust_setup, profiles=("outages", "lossy"), users=1
        )
        by_label = {p.label: p for p in points}
        for profile in ("outages", "lossy"):
            ours = by_label[f"{profile}:ours"]
            robust = by_label[f"{profile}:robust"]
            assert ours.extra["sigma"] == 0.0
            assert ours.extra["expcov"] == 1.0
            assert robust.extra["sigma"] > 0.0
            assert 0.0 < robust.extra["expcov"] <= 1.0

    def test_perceptual_variant_runs_and_differs_in_label_only_shape(
        self, robust_setup
    ):
        points = sweep_robust(
            robust_setup, profiles=("none",), users=1, perceptual=True
        )
        assert {p.label for p in points} == {"none:ours", "none:robust"}

    def test_faulted_sessions_reproduce(
        self, manifest8, ptiles8, small_dataset, network_traces, device,
    ):
        # A fixed (profile, seed) pair under the robust scheme yields
        # byte-identical sessions, mirroring the resilience guarantee.
        plan = generate_fault_plan("outages", 10.0, seed=7)
        config = SessionConfig(
            max_segments=10, fault_plan=plan,
            download_policy=DownloadPolicy(),
        )
        scheme = RobustScheme(
            device=device, error_model=ACTIVE_MODEL,
            perceptual=PanoWeight(),
        )
        trace = small_dataset.test_traces(8)[0]
        a = _run(scheme, manifest8, trace, network_traces[1], device,
                 ptiles8, config)
        b = _run(scheme, manifest8, trace, network_traces[1], device,
                 ptiles8, config)
        assert a == b


class TestServingRejectsRobust:
    def test_video_planner_refuses_robust_scheme(self, manifest8, ptiles8,
                                                 device):
        from repro.serving.planner import VideoPlanner

        scheme = RobustScheme(device=device, error_model=ACTIVE_MODEL)
        with pytest.raises(ValueError, match="point-prediction"):
            VideoPlanner(scheme, manifest8, ptiles=ptiles8)
