"""Fast unit tests for the ablation helpers (full sweeps run in
benchmarks/test_ablations.py)."""

import math

import pytest

from repro.experiments import (
    AblationPoint,
    make_setup,
    sweep_clustering_sigma,
)


@pytest.fixture(scope="module")
def tiny_setup():
    return make_setup(max_duration_s=15, n_users=16, n_train=12,
                      video_ids=(8,))


class TestAblationPoint:
    def test_report_formats_extras(self):
        point = AblationPoint("x", 1.234, 56.7, 0.0, extra={"fps": 24.0})
        line = point.report()
        assert "1.234" in line
        assert "fps=24" in line

    def test_report_without_extras(self):
        line = AblationPoint("y", 1.0, 2.0, 3.0).report()
        assert "y" in line and "rebuffers" in line


class TestSigmaSweep:
    def test_areas_monotone_in_sigma(self, tiny_setup):
        points = sweep_clustering_sigma(tiny_setup, video_id=8)
        areas = [p.extra["mean_area"] for p in points]
        assert areas == sorted(areas)

    def test_streaming_metrics_nan(self, tiny_setup):
        points = sweep_clustering_sigma(
            tiny_setup, sigma_factors=(1.0,), video_id=8
        )
        assert math.isnan(points[0].energy_per_segment_j)

    def test_labels_carry_sigma(self, tiny_setup):
        points = sweep_clustering_sigma(
            tiny_setup, sigma_factors=(0.5, 2.0), video_id=8
        )
        assert points[0].label.startswith("sigma=22")
        assert points[1].label.startswith("sigma=90")


class TestRenderedViewSupply:
    def test_ptile_supplies_rendered_view(self, ptiles2):
        """Cross-module: the gnomonic renderer's sampled directions fall
        inside the Ptile for a viewport centered on its cluster."""
        from repro.geometry import ViewRenderer, Viewport

        sp = next(sp for sp in ptiles2 if sp.num_ptiles > 0)
        ptile = sp.ptiles[0]
        yaw, pitch = ptile.cluster.centroid()
        renderer = ViewRenderer(17, 17)
        fraction = renderer.coverage_fraction(
            Viewport(yaw, pitch, 80.0, 80.0), ptile.contains
        )
        assert fraction > 0.85
