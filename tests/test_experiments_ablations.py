"""Fast unit tests for the ablation helpers (full sweeps run in
benchmarks/test_ablations.py)."""

import math

import pytest

from repro.experiments import (
    AblationPoint,
    make_setup,
    sweep_clustering_sigma,
    sweep_edge_cache,
    sweep_shared_cache,
)


@pytest.fixture(scope="module")
def tiny_setup():
    return make_setup(max_duration_s=15, n_users=16, n_train=12,
                      video_ids=(8,))


@pytest.fixture(scope="module")
def two_video_setup():
    return make_setup(max_duration_s=15, n_users=16, n_train=12,
                      video_ids=(2, 8))


class TestAblationPoint:
    def test_report_formats_extras(self):
        point = AblationPoint("x", 1.234, 56.7, 0.0, extra={"fps": 24.0})
        line = point.report()
        assert "1.234" in line
        assert "fps=24" in line

    def test_report_without_extras(self):
        line = AblationPoint("y", 1.0, 2.0, 3.0).report()
        assert "y" in line and "rebuffers" in line


class TestSigmaSweep:
    def test_areas_monotone_in_sigma(self, tiny_setup):
        points = sweep_clustering_sigma(tiny_setup, video_id=8)
        areas = [p.extra["mean_area"] for p in points]
        assert areas == sorted(areas)

    def test_streaming_metrics_nan(self, tiny_setup):
        points = sweep_clustering_sigma(
            tiny_setup, sigma_factors=(1.0,), video_id=8
        )
        assert math.isnan(points[0].energy_per_segment_j)

    def test_labels_carry_sigma(self, tiny_setup):
        points = sweep_clustering_sigma(
            tiny_setup, sigma_factors=(0.5, 2.0), video_id=8
        )
        assert points[0].label.startswith("sigma=22")
        assert points[1].label.startswith("sigma=90")

    def test_parallel_identical_to_serial(self, tiny_setup):
        serial = sweep_clustering_sigma(tiny_setup, video_id=8, workers=1)
        pooled = sweep_clustering_sigma(tiny_setup, video_id=8, workers=2)
        assert [p.label for p in serial] == [p.label for p in pooled]
        assert [p.extra["mean_area"] for p in serial] == [
            p.extra["mean_area"] for p in pooled
        ]
        assert [p.extra["mean_ptiles"] for p in serial] == [
            p.extra["mean_ptiles"] for p in pooled
        ]

    def test_sigma_points_share_artifact_store(self, tiny_setup, tmp_path):
        import dataclasses

        from repro.experiments import ArtifactStore

        # Each sigma point opens the store by root (so pooled workers
        # can share it); assert via the on-disk entries, one per sigma.
        cached = dataclasses.replace(
            tiny_setup, artifacts=ArtifactStore(tmp_path)
        )
        first = sweep_clustering_sigma(
            cached, sigma_factors=(0.5, 1.0), video_id=8
        )
        entries = sorted(p.name for p in tmp_path.rglob("*.pkl"))
        assert len(entries) == 2

        # Warm re-run: deserializes the same entries, writes nothing
        # new, and reproduces the points exactly.
        again = sweep_clustering_sigma(
            cached, sigma_factors=(0.5, 1.0), video_id=8
        )
        assert sorted(p.name for p in tmp_path.rglob("*.pkl")) == entries
        assert [p.extra["mean_area"] for p in again] == [
            p.extra["mean_area"] for p in first
        ]


class TestEdgeCacheSweep:
    def test_points_and_monotone_hits(self, tiny_setup):
        points = sweep_edge_cache(
            tiny_setup, capacities_mbit=(0.0, 2000.0), video_id=8, users=1
        )
        assert len(points) == 2
        assert points[0].label == "no edge cache"
        assert points[0].extra["hit_ratio"] == 0.0
        assert points[1].extra["hit_ratio"] > 0.0
        for point in points:
            assert point.energy_per_segment_j > 0.0

    def test_hit_ratio_monotone_in_capacity(self, tiny_setup):
        points = sweep_edge_cache(
            tiny_setup, capacities_mbit=(500.0, 8000.0), video_id=8, users=1
        )
        assert points[0].extra["hit_ratio"] <= points[1].extra["hit_ratio"]

    def test_deterministic(self, tiny_setup):
        kwargs = dict(capacities_mbit=(0.0, 2000.0), video_id=8, users=1)
        first = sweep_edge_cache(tiny_setup, **kwargs)
        again = sweep_edge_cache(tiny_setup, **kwargs)
        assert [
            (p.label, p.energy_per_segment_j, p.qoe, p.extra["stall"])
            for p in first
        ] == [
            (p.label, p.energy_per_segment_j, p.qoe, p.extra["stall"])
            for p in again
        ]


def _point_signature(points):
    return [
        (p.label, p.energy_per_segment_j, p.qoe, p.rebuffer_count, p.extra)
        for p in points
    ]


class TestSharedCacheSweep:
    def test_points_and_labels(self, two_video_setup):
        points = sweep_shared_cache(
            two_video_setup, capacities_mbit=(0.0, 500.0), users=1,
            tenant_viewers=6,
        )
        assert len(points) == 2
        assert points[0].label == "no edge cache"
        assert points[0].extra["hit"] == 0.0
        assert points[0].extra["edge_frac"] == 0.0
        assert points[1].label == "shared=500Mb"
        assert points[1].extra["hit"] > 0.0
        assert points[1].extra["edge_frac"] > 0.0
        for point in points:
            assert point.energy_per_segment_j > 0.0

    def test_ptile_beats_ctile_on_default_catalog(self, two_video_setup):
        # The extension's deployment argument, now under contention:
        # with every tenant of the setup's catalog competing for the
        # same cache, Ptile's fewer, larger objects still serve a
        # larger byte fraction from the edge than Ctile's.
        points = sweep_shared_cache(
            two_video_setup, capacities_mbit=(500.0,), users=1,
            tenant_viewers=6,
        )
        assert (
            points[0].extra["ptile_byte_hit"]
            > points[0].extra["ctile_byte_hit"]
        )

    def test_serial_parallel_and_cache_states_identical(
        self, two_video_setup, tmp_path
    ):
        from repro.experiments import ArtifactStore

        kwargs = dict(capacities_mbit=(0.0, 500.0), users=1,
                      tenant_viewers=6)
        off = sweep_shared_cache(two_video_setup, **kwargs)
        pooled = sweep_shared_cache(two_video_setup, workers=2, **kwargs)
        cold = sweep_shared_cache(
            two_video_setup, results=ArtifactStore(tmp_path), **kwargs
        )
        warm_store = ArtifactStore(tmp_path)
        warm = sweep_shared_cache(
            two_video_setup, results=warm_store, **kwargs
        )
        assert warm_store.stats.misses.get("results") is None
        assert (
            _point_signature(off)
            == _point_signature(pooled)
            == _point_signature(cold)
            == _point_signature(warm)
        )

    def test_requires_tenant_videos(self, two_video_setup):
        with pytest.raises(ValueError):
            sweep_shared_cache(two_video_setup, video_ids=())


class TestLadderSweep:
    def test_points_and_labels(self, tiny_setup):
        from repro.experiments import sweep_ladder

        points = sweep_ladder(tiny_setup, users=1)
        assert [p.label for p in points] == ["v8:fixed", "v8:opt", "frontier"]
        fixed, opt, frontier = points
        assert "mbit" in fixed.extra
        assert "saved" in opt.extra
        # never_exceed_default_bits: the optimized ladder cannot stream
        # more bits than the fixed one.
        assert opt.extra["mbit"] <= fixed.extra["mbit"] + 1e-9
        assert frontier.extra["videos"] == 1.0
        assert 0.0 <= frontier.extra["improved"] <= 1.0

    def test_serial_pooled_and_cache_states_identical(
        self, two_video_setup, tmp_path
    ):
        from repro.experiments import ArtifactStore, sweep_ladder

        serial = sweep_ladder(two_video_setup, users=1)
        pooled = sweep_ladder(two_video_setup, users=1, workers=2)
        store = ArtifactStore(tmp_path)
        cold = sweep_ladder(two_video_setup, users=1, ladder_store=store,
                            results=store)
        warm = sweep_ladder(two_video_setup, users=1, ladder_store=store,
                            results=store)
        assert store.stats.misses.get("ladder", 0) == 2  # cold only
        assert (
            _point_signature(serial)
            == _point_signature(pooled)
            == _point_signature(cold)
            == _point_signature(warm)
        )

    def test_explicit_targets_respected(self, tiny_setup):
        from repro.experiments import sweep_ladder

        # Unreachable targets: the search keeps the paper ladder, and
        # the two variants stream identical sessions.
        points = sweep_ladder(
            tiny_setup, users=1, quality_targets=(100.0,) * 5
        )
        fixed, opt, _ = points
        assert fixed.energy_per_segment_j == opt.energy_per_segment_j
        assert fixed.qoe == opt.qoe

    def test_requires_videos_and_users(self, tiny_setup):
        from repro.experiments import sweep_ladder

        with pytest.raises(ValueError):
            sweep_ladder(tiny_setup, video_ids=())
        with pytest.raises(ValueError):
            sweep_ladder(tiny_setup, users=0)


class TestRenderedViewSupply:
    def test_ptile_supplies_rendered_view(self, ptiles2):
        """Cross-module: the gnomonic renderer's sampled directions fall
        inside the Ptile for a viewport centered on its cluster."""
        from repro.geometry import ViewRenderer, Viewport

        sp = next(sp for sp in ptiles2 if sp.num_ptiles > 0)
        ptile = sp.ptiles[0]
        yaw, pitch = ptile.cluster.centroid()
        renderer = ViewRenderer(17, 17)
        fraction = renderer.coverage_fraction(
            Viewport(yaw, pitch, 80.0, 80.0), ptile.contains
        )
        assert fraction > 0.85
