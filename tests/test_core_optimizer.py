"""Unit tests for the MPC + DP optimizer (Section IV-C)."""

import numpy as np
import pytest

from repro.core import EnergyQoEMpc, MpcConfig, MpcSegment
from repro.power import EnergyModel, PIXEL_3

RATES = (21.0, 24.0, 27.0, 30.0)


def make_segment(base_size=1.0, alpha=5.0, qoe_top=90.0):
    """5 qualities x 4 frame rates with plausible structure."""
    sizes = np.empty((5, 4))
    qoe = np.empty((5, 4))
    for vi in range(5):
        size_v = base_size * (1.6 ** vi)
        qo = qoe_top - (4 - vi) * 12.0
        for fi, rate in enumerate(RATES):
            sizes[vi, fi] = size_v * (1 - 0.6 * (1 - rate / 30.0))
            factor = (1 - np.exp(-alpha * rate / 30.0)) / (1 - np.exp(-alpha))
            qoe[vi, fi] = qo * factor
    return MpcSegment(sizes_mbit=sizes, qoe=qoe, frame_rates=RATES)


@pytest.fixture
def mpc():
    return EnergyQoEMpc(EnergyModel(PIXEL_3), MpcConfig())


class TestMpcConfig:
    def test_paper_defaults(self):
        cfg = MpcConfig()
        assert cfg.horizon == 5
        assert cfg.buffer_granularity_s == 0.5
        assert cfg.qoe_tolerance == 0.05

    def test_state_levels(self):
        cfg = MpcConfig()
        levels = cfg.state_levels()
        assert levels[0] == 0.0
        assert levels[-1] == 3.0
        assert len(levels) == 7  # 500 ms granularity over [0, 3]

    def test_snap(self):
        cfg = MpcConfig()
        assert cfg.snap(0.0) == 0
        assert cfg.snap(1.26) == 3
        assert cfg.snap(99.0) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            MpcConfig(horizon=0)
        with pytest.raises(ValueError):
            MpcConfig(qoe_tolerance=1.0)
        with pytest.raises(ValueError):
            MpcConfig(buffer_granularity_s=0.0)


class TestMpcSegment:
    def test_validation(self):
        with pytest.raises(ValueError):
            MpcSegment(np.ones((5, 4)), np.ones((5, 3)), RATES)
        with pytest.raises(ValueError):
            MpcSegment(np.zeros((5, 4)), np.ones((5, 4)), RATES)
        with pytest.raises(ValueError):
            MpcSegment(np.ones((5, 3)), np.ones((5, 3)), RATES)


class TestChoice:
    def test_returns_valid_decision(self, mpc):
        decision = mpc.choose([make_segment()] * 5, 4.0, 3.0)
        assert 1 <= decision.quality <= 5
        assert 1 <= decision.frame_rate_index <= 4
        assert decision.frame_rate in RATES
        assert decision.planned_energy_j > 0

    def test_fast_switching_reduces_frame_rate(self, mpc):
        """Large alpha makes frame reduction QoE-free, so the energy
        minimizer takes it."""
        decision = mpc.choose([make_segment(alpha=50.0)] * 5, 4.0, 3.0)
        assert decision.frame_rate < 30.0

    def test_static_gaze_keeps_frame_rate(self, mpc):
        decision = mpc.choose([make_segment(alpha=0.2)] * 5, 4.0, 3.0)
        assert decision.frame_rate == 30.0

    def test_qoe_floor_respected(self, mpc):
        """The chosen version satisfies constraint (8c) against the
        sustainable-best version."""
        segment = make_segment(alpha=3.0)
        bandwidth = 4.0 * 0.9  # after the safety discount
        decision = mpc.choose([segment] * 5, 4.0, 3.0)
        vm = 0
        for v in range(5, 0, -1):
            if segment.sizes_mbit[v - 1, 3] / bandwidth <= 1.0:
                vm = v
                break
        floor = 0.95 * segment.qoe[vm - 1, 3]
        chosen = segment.qoe[decision.quality - 1, decision.frame_rate_index - 1]
        assert chosen >= floor - 1e-9

    def test_no_stall_constraint(self, mpc):
        """With a tiny buffer, only small downloads are feasible."""
        decision = mpc.choose([make_segment()] * 5, 4.0, 0.5)
        size = make_segment().sizes_mbit[
            decision.quality - 1, decision.frame_rate_index - 1
        ]
        assert size / (4.0 * 0.9) <= 0.5 + 1e-9 or decision.quality == 1

    def test_higher_bandwidth_higher_quality(self, mpc):
        low = mpc.choose([make_segment()] * 5, 1.0, 3.0)
        high = mpc.choose([make_segment()] * 5, 20.0, 3.0)
        assert high.quality >= low.quality

    def test_cold_start_relaxes_to_lowest(self, mpc):
        decision = mpc.choose([make_segment(base_size=10.0)] * 5, 1.0, 0.0)
        assert decision.quality == 1

    def test_energy_minimal_among_feasible(self, mpc):
        """With one segment and saturated QoE, the cheapest version wins."""
        segment = make_segment(alpha=50.0, qoe_top=90.0)
        # Make all qualities equal-QoE so only energy matters.
        flat = MpcSegment(
            sizes_mbit=segment.sizes_mbit,
            qoe=np.full_like(segment.qoe, 90.0),
            frame_rates=RATES,
        )
        mpc1 = EnergyQoEMpc(EnergyModel(PIXEL_3), MpcConfig(horizon=1))
        decision = mpc1.choose([flat], 10.0, 3.0)
        assert decision.quality == 1
        assert decision.frame_rate == 21.0

    def test_horizon_truncates(self, mpc):
        decision = mpc.choose([make_segment()] * 10, 4.0, 3.0)
        assert decision.planned_energy_j > 0

    def test_short_lookahead_ok(self, mpc):
        decision = mpc.choose([make_segment()], 4.0, 3.0)
        assert 1 <= decision.quality <= 5

    def test_validation(self, mpc):
        with pytest.raises(ValueError):
            mpc.choose([], 4.0, 3.0)
        with pytest.raises(ValueError):
            mpc.choose([make_segment()], 0.0, 3.0)

    def test_complexity_is_bounded(self, mpc):
        """O(H V F) per state: a long horizon stays fast."""
        import time

        start = time.perf_counter()
        for _ in range(50):
            mpc.choose([make_segment()] * 5, 4.0, 3.0)
        assert time.perf_counter() - start < 2.0


class TestChooseBatch:
    """The dense batched DP must be bit-identical to per-row choose."""

    @staticmethod
    def _windows(rng, batch, horizon):
        """Stacked windows with exact ties injected: duplicated lookahead
        segments, coarsely rounded values, and buffer levels sitting on
        state boundaries all force the tie-breaking paths."""
        sizes = np.empty((batch, horizon, 5, 4))
        qoe = np.empty((batch, horizon, 5, 4))
        for b in range(batch):
            for h in range(horizon):
                seg = make_segment(
                    base_size=float(rng.choice([0.5, 1.0, 1.0, 2.0])),
                    alpha=float(rng.choice([2.0, 5.0, 5.0, 9.0])),
                    qoe_top=float(rng.choice([60.0, 90.0, 90.0])),
                )
                sizes[b, h] = np.round(seg.sizes_mbit, 1)
                qoe[b, h] = np.round(seg.qoe, 0)
            if horizon > 1 and rng.random() < 0.5:
                sizes[b, 1:] = sizes[b, 0]  # identical lookahead rows
                qoe[b, 1:] = qoe[b, 0]
        bandwidths = rng.choice([2.0, 4.0, 8.0, 20.0], size=batch)
        buffers = rng.choice([0.0, 0.5, 1.25, 2.0, 3.0], size=batch)
        return sizes, qoe, bandwidths.astype(float), buffers.astype(float)

    def test_matches_scalar_choose(self, mpc):
        from repro.core.optimizer import MpcWindow

        rng = np.random.default_rng(20260808)
        for _ in range(12):
            batch = int(rng.integers(1, 9))
            horizon = int(rng.integers(1, 6))
            sizes, qoe, bw, buf = self._windows(rng, batch, horizon)
            decisions = mpc.choose_batch(sizes, qoe, RATES, bw, buf)
            assert len(decisions) == batch
            for b, got in enumerate(decisions):
                window = MpcWindow(
                    sizes_mbit=sizes[b], qoe=qoe[b], frame_rates=RATES
                )
                want = mpc.choose(window, float(bw[b]), float(buf[b]))
                assert (got.quality, got.frame_rate_index) == (
                    want.quality, want.frame_rate_index
                ), f"row {b}: batch={got} scalar={want}"
                assert got.frame_rate == want.frame_rate
                assert got.planned_energy_j == want.planned_energy_j

    def test_validation(self, mpc):
        sizes = np.ones((2, 3, 5, 4))
        qoe = np.ones((2, 3, 5, 4))
        with pytest.raises(ValueError):
            mpc.choose_batch(sizes[0], qoe[0], RATES,
                             np.array([4.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            mpc.choose_batch(sizes, qoe, RATES,
                             np.array([4.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            mpc.choose_batch(sizes, qoe, RATES,
                             np.array([4.0]), np.array([1.0, 1.0]))
