"""Unit tests for the ASCII visualization helpers."""

import numpy as np
import pytest

from repro.viz import (
    bar_chart,
    cdf_plot,
    heatmap,
    line_plot,
    sparkline,
    tile_grid_map,
)


class TestBarChart:
    def test_basic(self):
        lines = bar_chart({"a": 1.0, "b": 0.5}, width=10)
        assert len(lines) == 2
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title(self):
        lines = bar_chart({"a": 1.0}, title="T")
        assert lines[0] == "T"

    def test_values_printed(self):
        lines = bar_chart({"a": 0.503}, fmt="{:.3f}")
        assert "0.503" in lines[0]

    def test_all_zero(self):
        lines = bar_chart({"a": 0.0, "b": 0.0})
        assert all("█" not in ln for ln in lines)

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)


class TestLinePlot:
    def test_canvas_dimensions(self):
        lines = line_plot({"s": ([0, 1, 2], [0, 1, 4])}, width=20, height=8)
        plot_rows = [ln for ln in lines if "|" in ln and not ln.startswith(" " * 9)]
        assert len(plot_rows) == 8

    def test_markers_present(self):
        lines = line_plot({"s": ([0, 1], [0, 1])})
        assert any("*" in ln for ln in lines)

    def test_multi_series_markers(self):
        lines = line_plot(
            {"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])}
        )
        joined = "\n".join(lines)
        assert "*" in joined and "o" in joined
        assert "*=a" in joined and "o=b" in joined

    def test_constant_series(self):
        lines = line_plot({"flat": ([0, 1, 2], [5, 5, 5])})
        assert lines  # no division-by-zero on a flat series

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"s": ([0], [0])}, width=1)


class TestCdfPlot:
    def test_monotone_rendering(self):
        data = np.random.default_rng(0).normal(size=200)
        lines = cdf_plot({"n": data})
        assert any("CDF" in ln for ln in lines)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_plot({"x": []})


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_extremes(self):
        s = sparkline([0.0, 1.0])
        assert s[0] == " " and s[-1] == "█"

    def test_flat(self):
        s = sparkline([3.0, 3.0, 3.0])
        assert len(set(s)) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestHeatmap:
    def test_shape(self):
        lines = heatmap(np.array([[0.0, 1.0], [0.5, 0.25]]), legend=False)
        assert len(lines) == 2
        assert len(lines[0]) == 4  # two chars per cell

    def test_extreme_shades(self):
        lines = heatmap(np.array([[0.0, 1.0]]), legend=False)
        assert "█" in lines[0]
        assert " " in lines[0]

    def test_legend(self):
        lines = heatmap(np.array([[0.0, 2.0]]))
        assert any("=0" in ln for ln in lines)

    def test_validation(self):
        with pytest.raises(ValueError):
            heatmap(np.array([1.0, 2.0]))


class TestTileGridMap:
    def test_renders_ptiles(self, ptiles2):
        sp = next(sp for sp in ptiles2 if sp.num_ptiles > 0)
        lines = tile_grid_map(sp)
        assert len(lines) == 4  # 4 rows
        joined = "".join(lines)
        assert "A" in joined
        assert "." in joined

    def test_empty_segment(self, ptiles2):
        import dataclasses

        sp = dataclasses.replace(
            ptiles2[0], ptiles=(), remainders={}
        )
        lines = tile_grid_map(sp)
        assert all(set(ln) <= {".", " "} for ln in lines)
