"""Unit tests for the shared-bottleneck multi-client simulation."""

import pytest

from repro.streaming import (
    CtileScheme,
    PtileScheme,
    SessionConfig,
    capacity_sweep,
    run_shared_link,
)


@pytest.fixture
def short_config():
    return SessionConfig(max_segments=15)


class TestRunSharedLink:
    def test_single_client_equals_full_link(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        from repro.streaming import run_session

        head = small_dataset.test_traces(2)[0]
        shared = run_shared_link(
            CtileScheme, manifest2, [head], network_traces[1], device,
            config=short_config,
        )
        solo = run_session(
            CtileScheme(), manifest2, head, network_traces[1], device,
            config=short_config,
        )
        assert shared.per_client[0].total_energy_j == pytest.approx(
            solo.total_energy_j
        )

    def test_fair_share_scaling(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        heads = small_dataset.test_traces(2)[:2]
        shared = run_shared_link(
            CtileScheme, manifest2, heads, network_traces[0], device,
            config=short_config,
        )
        assert shared.n_clients == 2
        assert shared.fair_share_trace.mean_mbps == pytest.approx(
            network_traces[0].mean_mbps / 2
        )

    def test_quality_degrades_with_contention(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        heads = small_dataset.test_traces(2)
        alone = run_shared_link(
            CtileScheme, manifest2, heads[:1], network_traces[0], device,
            config=short_config,
        )
        crowded = run_shared_link(
            CtileScheme, manifest2, heads[:4], network_traces[0], device,
            config=short_config,
        )
        assert crowded.mean_quality <= alone.mean_quality

    def test_empty_clients_rejected(
        self, manifest2, network_traces, device
    ):
        with pytest.raises(ValueError):
            run_shared_link(
                CtileScheme, manifest2, [], network_traces[1], device
            )


class TestCapacitySweep:
    def test_sweep_shape(
        self, small_dataset, manifest2, network_traces, device, ptiles2,
        short_config
    ):
        heads = small_dataset.test_traces(2)
        results = capacity_sweep(
            PtileScheme, manifest2, heads, network_traces[0], device,
            client_counts=(1, 2, 4), ptiles=ptiles2, config=short_config,
        )
        assert set(results) == {1, 2, 4}
        qualities = [results[n].mean_quality for n in (1, 2, 4)]
        assert qualities == sorted(qualities, reverse=True)

    def test_ptile_scales_further_than_ctile(
        self, small_dataset, manifest2, network_traces, device, ptiles2,
        short_config
    ):
        """The deployment argument: Ptile sustains more viewers per
        cell at a given quality than Ctile."""
        heads = small_dataset.test_traces(2)
        ptile = capacity_sweep(
            PtileScheme, manifest2, heads, network_traces[0], device,
            client_counts=(4,), ptiles=ptiles2, config=short_config,
        )[4]
        ctile = capacity_sweep(
            CtileScheme, manifest2, heads, network_traces[0], device,
            client_counts=(4,), config=short_config,
        )[4]
        assert ptile.mean_quality >= ctile.mean_quality

    def test_invalid_count(
        self, small_dataset, manifest2, network_traces, device
    ):
        with pytest.raises(ValueError):
            capacity_sweep(
                CtileScheme, manifest2, small_dataset.test_traces(2),
                network_traces[1], device, client_counts=(0,),
            )
