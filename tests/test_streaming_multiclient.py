"""Unit tests for the shared-bottleneck multi-client simulation."""

import pickle

import pytest

from repro.streaming import (
    CtileScheme,
    EdgeHitModel,
    PtileScheme,
    SessionConfig,
    capacity_sweep,
    run_shared_link,
)


@pytest.fixture
def short_config():
    return SessionConfig(max_segments=15)


class TestRunSharedLink:
    def test_single_client_equals_full_link(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        from repro.streaming import run_session

        head = small_dataset.test_traces(2)[0]
        shared = run_shared_link(
            CtileScheme, manifest2, [head], network_traces[1], device,
            config=short_config,
        )
        solo = run_session(
            CtileScheme(), manifest2, head, network_traces[1], device,
            config=short_config,
        )
        assert shared.per_client[0].total_energy_j == pytest.approx(
            solo.total_energy_j
        )

    def test_fair_share_scaling(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        heads = small_dataset.test_traces(2)[:2]
        shared = run_shared_link(
            CtileScheme, manifest2, heads, network_traces[0], device,
            config=short_config,
        )
        assert shared.n_clients == 2
        assert shared.fair_share_trace.mean_mbps == pytest.approx(
            network_traces[0].mean_mbps / 2
        )

    def test_quality_degrades_with_contention(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        heads = small_dataset.test_traces(2)
        alone = run_shared_link(
            CtileScheme, manifest2, heads[:1], network_traces[0], device,
            config=short_config,
        )
        crowded = run_shared_link(
            CtileScheme, manifest2, heads[:4], network_traces[0], device,
            config=short_config,
        )
        assert crowded.mean_quality <= alone.mean_quality

    def test_empty_clients_rejected(
        self, manifest2, network_traces, device
    ):
        with pytest.raises(ValueError):
            run_shared_link(
                CtileScheme, manifest2, [], network_traces[1], device
            )


class TestCapacitySweep:
    def test_sweep_shape(
        self, small_dataset, manifest2, network_traces, device, ptiles2,
        short_config
    ):
        heads = small_dataset.test_traces(2)
        results = capacity_sweep(
            PtileScheme, manifest2, heads, network_traces[0], device,
            client_counts=(1, 2, 4), ptiles=ptiles2, config=short_config,
        )
        assert set(results) == {1, 2, 4}
        qualities = [results[n].mean_quality for n in (1, 2, 4)]
        assert qualities == sorted(qualities, reverse=True)

    def test_ptile_scales_further_than_ctile(
        self, small_dataset, manifest2, network_traces, device, ptiles2,
        short_config
    ):
        """The deployment argument: Ptile sustains more viewers per
        cell at a given quality than Ctile."""
        heads = small_dataset.test_traces(2)
        ptile = capacity_sweep(
            PtileScheme, manifest2, heads, network_traces[0], device,
            client_counts=(4,), ptiles=ptiles2, config=short_config,
        )[4]
        ctile = capacity_sweep(
            CtileScheme, manifest2, heads, network_traces[0], device,
            client_counts=(4,), config=short_config,
        )[4]
        assert ptile.mean_quality >= ctile.mean_quality

    def test_invalid_count(
        self, small_dataset, manifest2, network_traces, device
    ):
        with pytest.raises(ValueError):
            capacity_sweep(
                CtileScheme, manifest2, small_dataset.test_traces(2),
                network_traces[1], device, client_counts=(0,),
            )

    def test_empty_head_traces_raise_clear_error(
        self, manifest2, network_traces, device
    ):
        """Regression: used to crash with ZeroDivisionError on
        ``available[i % len(available)]`` for empty head traces."""
        with pytest.raises(ValueError, match="head trace"):
            capacity_sweep(
                CtileScheme, manifest2, [], network_traces[1], device,
            )


class TestSharedEdgeCacheWiring:
    def test_edge_model_recorded_per_segment(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        heads = small_dataset.test_traces(2)[:2]
        model = EdgeHitModel(hit_ratios=(0.5,) * manifest2.num_segments)
        shared = run_shared_link(
            CtileScheme, manifest2, heads, network_traces[1], device,
            config=short_config, edge_model=model,
        )
        for result in shared.per_client:
            assert result.total_edge_hit_mbit > 0
            assert result.edge_hit_fraction == pytest.approx(0.5)

    def test_edge_model_threaded_through_capacity_sweep(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        heads = small_dataset.test_traces(2)[:2]
        model = EdgeHitModel(hit_ratios=(1.0,), edge_bandwidth_mbps=1e6)
        results = capacity_sweep(
            CtileScheme, manifest2, heads, network_traces[0], device,
            client_counts=(4,), config=short_config, edge_model=model,
        )
        # Full hits at a near-infinite edge rate: downloads are
        # effectively instantaneous, so nothing can stall post-startup
        # no matter how many clients share the backhaul.
        assert results[4].total_rebuffers == 0
        for result in results[4].per_client:
            assert result.edge_hit_fraction == pytest.approx(1.0)

    def test_no_edge_model_records_zero(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        head = small_dataset.test_traces(2)[0]
        shared = run_shared_link(
            CtileScheme, manifest2, [head], network_traces[1], device,
            config=short_config,
        )
        assert shared.per_client[0].total_edge_hit_mbit == 0.0
        assert shared.per_client[0].edge_hit_fraction == 0.0


class TestSharedLinkDeterminism:
    def _run(self, small_dataset, manifest2, network_traces, device,
             short_config, edge_model=None):
        heads = small_dataset.test_traces(2)[:3]
        return run_shared_link(
            CtileScheme, manifest2, heads, network_traces[1], device,
            config=short_config, edge_model=edge_model,
        )

    def test_repeated_runs_byte_identical(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        first = self._run(small_dataset, manifest2, network_traces, device,
                          short_config)
        second = self._run(small_dataset, manifest2, network_traces, device,
                           short_config)
        assert pickle.dumps(first.per_client) == pickle.dumps(
            second.per_client
        )

    def test_repeated_edge_cache_runs_byte_identical(
        self, small_dataset, manifest2, network_traces, device, short_config
    ):
        model = EdgeHitModel(hit_ratios=(0.7,) * manifest2.num_segments)
        first = self._run(small_dataset, manifest2, network_traces, device,
                          short_config, edge_model=model)
        second = self._run(small_dataset, manifest2, network_traces, device,
                           short_config, edge_model=model)
        assert pickle.dumps(first.per_client) == pickle.dumps(
            second.per_client
        )
