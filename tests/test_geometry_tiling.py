"""Unit tests for the tile grid (4x8 default, viewport coverage)."""

import pytest

from repro.geometry import (
    DEFAULT_GRID,
    FTILE_BLOCK_GRID,
    Rect,
    Tile,
    TileGrid,
    Viewport,
)


class TestGridBasics:
    def test_default_grid_shape(self):
        assert DEFAULT_GRID.rows == 4
        assert DEFAULT_GRID.cols == 8
        assert DEFAULT_GRID.num_tiles == 32
        assert DEFAULT_GRID.tile_width == 45.0
        assert DEFAULT_GRID.tile_height == 45.0

    def test_ftile_block_grid(self):
        assert FTILE_BLOCK_GRID.num_tiles == 450

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            TileGrid(0, 8)

    def test_equality_and_hash(self):
        assert TileGrid(4, 8) == DEFAULT_GRID
        assert hash(TileGrid(4, 8)) == hash(DEFAULT_GRID)
        assert TileGrid(2, 8) != DEFAULT_GRID

    def test_tiles_enumeration(self):
        tiles = list(DEFAULT_GRID.tiles())
        assert len(tiles) == 32
        assert tiles[0] == Tile(0, 0)
        assert tiles[-1] == Tile(3, 7)

    def test_area_fraction(self):
        assert DEFAULT_GRID.tile_area_fraction(Tile(0, 0)) == pytest.approx(1 / 32)


class TestTileRect:
    def test_top_left_tile(self):
        r = DEFAULT_GRID.tile_rect(Tile(0, 0))
        assert (r.x0, r.y0, r.x1, r.y1) == (0.0, 45.0, 45.0, 90.0)

    def test_bottom_right_tile(self):
        r = DEFAULT_GRID.tile_rect(Tile(3, 7))
        assert (r.x0, r.y0, r.x1, r.y1) == (315.0, -90.0, 360.0, -45.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_GRID.tile_rect(Tile(4, 0))
        with pytest.raises(ValueError):
            DEFAULT_GRID.tile_rect(Tile(0, 8))

    def test_rects_tile_the_frame(self):
        total = sum(DEFAULT_GRID.tile_rect(t).area for t in DEFAULT_GRID.tiles())
        assert total == pytest.approx(360.0 * 180.0)


class TestTileAt:
    def test_center_of_tile(self):
        assert DEFAULT_GRID.tile_at(22.5, 67.5) == Tile(0, 0)
        assert DEFAULT_GRID.tile_at(337.5, -67.5) == Tile(3, 7)

    def test_wraps_yaw(self):
        assert DEFAULT_GRID.tile_at(365.0, 0.0) == DEFAULT_GRID.tile_at(5.0, 0.0)

    def test_poles(self):
        assert DEFAULT_GRID.tile_at(0.0, 90.0).row == 0
        assert DEFAULT_GRID.tile_at(0.0, -90.0).row == 3

    def test_consistent_with_rect(self):
        for yaw, pitch in [(12.0, 33.0), (200.0, -10.0), (359.0, 89.0)]:
            tile = DEFAULT_GRID.tile_at(yaw, pitch)
            assert DEFAULT_GRID.tile_rect(tile).contains(yaw, pitch)


class TestViewportTiles:
    def test_typical_fov_is_nine_tiles(self):
        # Viewport centered on a tile center covers a 3x3 block.
        tiles = DEFAULT_GRID.viewport_tiles(Viewport(112.5, 22.5))
        assert len(tiles) == 9
        rows = {t.row for t in tiles}
        cols = {t.col for t in tiles}
        assert rows == {0, 1, 2}
        assert cols == {1, 2, 3}

    def test_min_overlap_filters_slivers(self):
        vp = Viewport(112.5, 22.5)
        loose = DEFAULT_GRID.viewport_tiles(vp, min_overlap=0.0)
        tight = DEFAULT_GRID.viewport_tiles(vp, min_overlap=0.4)
        assert tight <= loose
        assert len(tight) < len(loose) or len(loose) == 9

    def test_invalid_min_overlap(self):
        with pytest.raises(ValueError):
            DEFAULT_GRID.tiles_overlapping(Rect(0, 0, 10, 10), min_overlap=1.0)

    def test_seam_viewport_covers_both_sides(self):
        tiles = DEFAULT_GRID.viewport_tiles(Viewport(0.0, 0.0))
        cols = {t.col for t in tiles}
        assert 0 in cols and 7 in cols


class TestBoundingRect:
    def test_single_tile(self):
        rect = DEFAULT_GRID.bounding_rect([Tile(1, 2)])
        assert rect == DEFAULT_GRID.tile_rect(Tile(1, 2))

    def test_contiguous_block(self):
        tiles = [Tile(1, 2), Tile(1, 3), Tile(2, 2), Tile(2, 3)]
        rect = DEFAULT_GRID.bounding_rect(tiles)
        assert rect.x0 == 90.0 and rect.x1 == 180.0
        assert rect.y0 == -45.0 and rect.y1 == 45.0

    def test_wrapping_columns(self):
        tiles = [Tile(1, 7), Tile(1, 0)]
        rect = DEFAULT_GRID.bounding_rect(tiles)
        assert rect.x0 == 315.0
        assert rect.x1 == pytest.approx(360.0 + 45.0)

    def test_wrapping_round_trip(self):
        tiles = {Tile(1, 7), Tile(1, 0), Tile(2, 7), Tile(2, 0)}
        rect = DEFAULT_GRID.bounding_rect(tiles)
        assert DEFAULT_GRID.rect_tiles(rect) == tiles

    def test_all_columns(self):
        tiles = [Tile(0, c) for c in range(8)]
        rect = DEFAULT_GRID.bounding_rect(tiles)
        assert rect.x0 == 0.0 and rect.x1 == 360.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_GRID.bounding_rect([])

    def test_bounding_rect_fills_gaps(self):
        # Two disjoint tiles in the same row: bounding covers the span.
        rect = DEFAULT_GRID.bounding_rect([Tile(0, 1), Tile(0, 3)])
        covered = DEFAULT_GRID.rect_tiles(rect)
        assert Tile(0, 2) in covered
