"""Unit tests for the Eq. 3 quality model (Table II)."""

import numpy as np
import pytest

from repro.qoe import QoCoefficients, QualityModel, TABLE_II


class TestTableII:
    def test_published_values(self):
        assert TABLE_II.c1 == pytest.approx(-0.2163)
        assert TABLE_II.c2 == pytest.approx(0.0581)
        assert TABLE_II.c3 == pytest.approx(-0.1578)
        assert TABLE_II.c4 == pytest.approx(0.7821)

    def test_as_array(self):
        arr = TABLE_II.as_array()
        assert arr.shape == (4,)
        assert arr[3] == pytest.approx(0.7821)


class TestQualityModel:
    @pytest.fixture
    def model(self):
        return QualityModel()

    def test_range(self, model):
        for si, ti, b in [(20, 5, 0.5), (45, 22, 8.0), (30, 15, 3.0)]:
            qo = model.qo(si, ti, b)
            assert 0.0 < qo < 100.0

    def test_monotone_in_bitrate(self, model):
        values = [model.qo(33, 14, b) for b in (0.5, 1.0, 2.0, 4.0, 8.0)]
        assert values == sorted(values)

    def test_monotone_in_si(self, model):
        # c2 > 0: spatial detail raises measured quality.
        assert model.qo(45, 14, 3.0) > model.qo(25, 14, 3.0)

    def test_monotone_decreasing_in_ti(self, model):
        # c3 < 0: motion lowers quality at a fixed bitrate.
        assert model.qo(33, 20, 3.0) < model.qo(33, 8, 3.0)

    def test_negative_bitrate_rejected(self, model):
        with pytest.raises(ValueError):
            model.qo(33, 14, -1.0)

    def test_exponent_formula(self, model):
        z = model.exponent(10.0, 5.0, 2.0)
        expected = -0.2163 + 0.0581 * 10 - 0.1578 * 5 + 0.7821 * 2
        assert z == pytest.approx(expected)

    def test_logistic_midpoint(self):
        model = QualityModel(QoCoefficients(0.0, 0.0, 0.0, 0.0))
        assert model.qo(33, 14, 3.0) == pytest.approx(50.0)

    def test_numerical_stability_extremes(self, model):
        big = QualityModel(QoCoefficients(100.0, 0.0, 0.0, 0.0))
        small = QualityModel(QoCoefficients(-100.0, 0.0, 0.0, 0.0))
        assert big.qo(33, 14, 1.0) == pytest.approx(100.0)
        assert small.qo(33, 14, 1.0) == pytest.approx(0.0, abs=1e-20)

    def test_array_matches_scalar(self, model):
        si = np.array([25.0, 33.0, 41.0])
        ti = np.array([8.0, 14.0, 21.0])
        b = np.array([1.0, 3.0, 6.0])
        arr = model.qo_array(si, ti, b)
        for i in range(3):
            assert arr[i] == pytest.approx(model.qo(si[i], ti[i], b[i]))

    def test_array_broadcasting(self, model):
        arr = model.qo_array(33.0, 14.0, np.linspace(0.5, 8, 10))
        assert arr.shape == (10,)
        assert np.all(np.diff(arr) > 0)

    def test_custom_scale(self):
        model = QualityModel(scale=5.0)
        assert 0 < model.qo(33, 14, 3.0) < 5.0
