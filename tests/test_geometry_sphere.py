"""Unit tests for spherical geometry (orientation vectors, Eq. 5)."""

import math

import numpy as np
import pytest

from repro.geometry import (
    angular_distance,
    clamp_pitch,
    equirect_distance,
    orientation_angles,
    orientation_vector,
    switching_speed,
    switching_speed_series,
    wrap_yaw,
)


class TestWrapClamp:
    def test_wrap_yaw_basic(self):
        assert wrap_yaw(370.0) == pytest.approx(10.0)
        assert wrap_yaw(-10.0) == pytest.approx(350.0)
        assert wrap_yaw(0.0) == 0.0

    def test_wrap_yaw_array(self):
        out = wrap_yaw(np.array([-90.0, 450.0]))
        assert np.allclose(out, [270.0, 90.0])

    def test_clamp_pitch_scalar(self):
        assert clamp_pitch(95.0) == 90.0
        assert clamp_pitch(-95.0) == -90.0
        assert clamp_pitch(42.0) == 42.0

    def test_clamp_pitch_array(self):
        out = clamp_pitch(np.array([-120.0, 0.0, 120.0]))
        assert np.allclose(out, [-90.0, 0.0, 90.0])


class TestOrientationVector:
    def test_axes(self):
        assert np.allclose(orientation_vector(0, 0), [1, 0, 0])
        assert np.allclose(orientation_vector(90, 0), [0, 1, 0], atol=1e-12)
        assert np.allclose(orientation_vector(0, 90), [0, 0, 1], atol=1e-12)

    def test_unit_norm(self):
        for yaw, pitch in [(37.0, 12.0), (200.0, -60.0), (359.0, 89.0)]:
            assert np.linalg.norm(orientation_vector(yaw, pitch)) == pytest.approx(1.0)

    def test_round_trip(self):
        for yaw, pitch in [(12.0, 34.0), (340.0, -75.0), (180.0, 0.0)]:
            vec = orientation_vector(yaw, pitch)
            yaw2, pitch2 = orientation_angles(vec)
            assert yaw2 == pytest.approx(yaw, abs=1e-9)
            assert pitch2 == pytest.approx(pitch, abs=1e-9)

    def test_round_trip_unnormalized(self):
        vec = 3.7 * orientation_vector(100.0, -20.0)
        yaw, pitch = orientation_angles(vec)
        assert yaw == pytest.approx(100.0)
        assert pitch == pytest.approx(-20.0)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            orientation_angles([0.0, 0.0, 0.0])


class TestAngularDistance:
    def test_identical_is_zero(self):
        assert angular_distance(45.0, 10.0, 45.0, 10.0) == pytest.approx(0.0, abs=1e-5)

    def test_quarter_turn(self):
        assert angular_distance(0.0, 0.0, 90.0, 0.0) == pytest.approx(90.0)

    def test_antipodal(self):
        assert angular_distance(0.0, 0.0, 180.0, 0.0) == pytest.approx(180.0)

    def test_pole_distance(self):
        assert angular_distance(0.0, 0.0, 0.0, 90.0) == pytest.approx(90.0)

    def test_symmetric(self):
        d1 = angular_distance(10.0, 20.0, 200.0, -40.0)
        d2 = angular_distance(200.0, -40.0, 10.0, 20.0)
        assert d1 == pytest.approx(d2)

    def test_yaw_irrelevant_at_pole(self):
        # Both directions are the north pole regardless of yaw.
        assert angular_distance(0.0, 90.0, 123.0, 90.0) == pytest.approx(0.0)


class TestEquirectDistance:
    def test_plain(self):
        assert equirect_distance(10.0, 0.0, 40.0, 0.0) == pytest.approx(30.0)

    def test_wraps_horizontally(self):
        assert equirect_distance(355.0, 0.0, 5.0, 0.0) == pytest.approx(10.0)

    def test_pythagoras(self):
        assert equirect_distance(0.0, 0.0, 3.0, 4.0) == pytest.approx(5.0)

    def test_never_exceeds_half_width(self):
        assert equirect_distance(0.0, 0.0, 180.0, 0.0) == pytest.approx(180.0)
        assert equirect_distance(0.0, 0.0, 181.0, 0.0) == pytest.approx(179.0)


class TestSwitchingSpeed:
    def test_eq5_basic(self):
        # 90 degrees in half a second = 180 deg/s.
        assert switching_speed(0, 0, 0.0, 90, 0, 0.5) == pytest.approx(180.0)

    def test_zero_for_static_view(self):
        assert switching_speed(30, 10, 0.0, 30, 10, 1.0) == pytest.approx(0.0)

    def test_rejects_non_increasing_time(self):
        with pytest.raises(ValueError):
            switching_speed(0, 0, 1.0, 10, 0, 1.0)

    def test_series_matches_scalar(self):
        t = [0.0, 0.1, 0.2]
        yaw = [0.0, 1.0, 3.0]
        pitch = [0.0, 0.0, 0.0]
        series = switching_speed_series(t, yaw, pitch)
        assert series[0] == pytest.approx(switching_speed(0, 0, 0.0, 1, 0, 0.1))
        assert series[1] == pytest.approx(switching_speed(1, 0, 0.1, 3, 0, 0.2))

    def test_series_handles_seam(self):
        # 359 -> 1 degree is a 2-degree move, not 358.
        series = switching_speed_series([0.0, 0.1], [359.0, 1.0], [0.0, 0.0])
        assert series[0] == pytest.approx(20.0, rel=1e-6)

    def test_series_requires_two_samples(self):
        with pytest.raises(ValueError):
            switching_speed_series([0.0], [0.0], [0.0])

    def test_series_rejects_unordered_times(self):
        with pytest.raises(ValueError):
            switching_speed_series([0.0, 0.0], [0.0, 1.0], [0.0, 0.0])

    def test_series_non_negative(self):
        rng = np.random.default_rng(3)
        t = np.cumsum(rng.uniform(0.05, 0.2, 50))
        yaw = rng.uniform(0, 360, 50)
        pitch = rng.uniform(-90, 90, 50)
        assert np.all(switching_speed_series(t, yaw, pitch) >= 0)
