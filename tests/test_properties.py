"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    DEFAULT_GRID,
    Viewport,
    angular_distance,
    equirect_distance,
    orientation_angles,
    orientation_vector,
)
from repro.ptile import ViewingCenter, cluster_viewing_centers
from repro.qoe import QualityModel, alpha_from_behavior, frame_rate_factor
from repro.streaming import PlaybackBuffer, ThroughputBufferABR
from repro.traces import NetworkTrace
from repro.video import EncoderModel

yaw_st = st.floats(0.0, 359.999)
pitch_st = st.floats(-89.9, 89.9)
quality_st = st.sampled_from([1, 2, 3, 4, 5])
si_st = st.floats(15.0, 50.0)
ti_st = st.floats(3.0, 25.0)


class TestGeometryProperties:
    @given(yaw_st, pitch_st)
    def test_orientation_round_trip(self, yaw, pitch):
        yaw2, pitch2 = orientation_angles(orientation_vector(yaw, pitch))
        assert angular_distance(yaw, pitch, yaw2, pitch2) < 1e-4

    @given(yaw_st, pitch_st, yaw_st, pitch_st)
    def test_angular_distance_bounds_and_symmetry(self, y1, p1, y2, p2):
        d = angular_distance(y1, p1, y2, p2)
        assert 0.0 <= d <= 180.0
        assert d == pytest_approx(angular_distance(y2, p2, y1, p1))

    @given(yaw_st, pitch_st, yaw_st, pitch_st)
    def test_equirect_distance_dominates_components(self, y1, p1, y2, p2):
        d = equirect_distance(y1, p1, y2, p2)
        dyaw = min(abs(y1 - y2), 360 - abs(y1 - y2))
        assert d >= dyaw - 1e-9
        assert d >= abs(p1 - p2) - 1e-9

    @given(yaw_st, pitch_st)
    def test_viewport_tiles_nonempty_and_contain_center(self, yaw, pitch):
        vp = Viewport(yaw, pitch)
        tiles = DEFAULT_GRID.viewport_tiles(vp)
        assert tiles
        assert DEFAULT_GRID.tile_at(yaw, pitch) in tiles

    @given(yaw_st, pitch_st)
    def test_viewport_area_bounded(self, yaw, pitch):
        vp = Viewport(yaw, pitch)
        assert 0 < vp.area <= 100.0 * 100.0 + 1e-6


class TestEncoderProperties:
    @given(quality_st, si_st, ti_st, st.floats(0.05, 1.0))
    def test_sizes_positive(self, quality, si, ti, area):
        enc = EncoderModel(noise_sigma=0.0)
        assert enc.region_size_mbit(quality, si, ti, area) > 0

    @given(si_st, ti_st, st.floats(0.05, 1.0))
    def test_size_monotone_in_quality(self, si, ti, area):
        enc = EncoderModel(noise_sigma=0.0)
        sizes = [enc.region_size_mbit(q, si, ti, area) for q in (1, 2, 3, 4, 5)]
        assert sizes == sorted(sizes)

    @given(quality_st, si_st, ti_st)
    def test_merged_region_never_beats_fig8_floor(self, quality, si, ti):
        """One region is never larger than the same area as 9 tiles."""
        enc = EncoderModel(noise_sigma=0.0)
        merged = enc.region_size_mbit(quality, si, ti, 9 / 32)
        tiled = enc.tiled_region_size_mbit(quality, si, ti, 9)
        assert merged < tiled

    @given(quality_st, si_st, ti_st, st.floats(1.0, 29.9))
    def test_frame_rate_reduction_shrinks(self, quality, si, ti, rate):
        enc = EncoderModel(noise_sigma=0.0)
        full = enc.region_size_mbit(quality, si, ti, 0.3)
        reduced = enc.region_size_mbit(
            quality, si, ti, 0.3, frame_rate=rate, fps=30.0
        )
        assert reduced < full


class TestQoEProperties:
    @given(si_st, ti_st, st.floats(0.0, 12.0))
    def test_qo_in_range(self, si, ti, b):
        qo = QualityModel().qo(si, ti, b)
        assert 0.0 <= qo <= 100.0

    @given(si_st, ti_st, st.floats(0.0, 6.0), st.floats(0.1, 6.0))
    def test_qo_monotone_in_bitrate(self, si, ti, b, db):
        model = QualityModel()
        assert model.qo(si, ti, b + db) >= model.qo(si, ti, b)

    @given(st.floats(0.0, 100.0), ti_st, st.floats(1.0, 30.0))
    def test_frame_factor_bounds(self, speed, ti, rate):
        alpha = alpha_from_behavior(speed, ti)
        factor = frame_rate_factor(rate, 30.0, alpha)
        assert 0.0 < factor <= 1.0

    @given(st.floats(0.1, 100.0), ti_st)
    def test_factor_monotone_in_alpha(self, speed, ti):
        slow = frame_rate_factor(21.0, 30.0, alpha_from_behavior(speed, ti))
        faster = frame_rate_factor(
            21.0, 30.0, alpha_from_behavior(speed * 2, ti)
        )
        assert faster >= slow - 1e-12


class TestClusteringProperties:
    @given(
        st.lists(
            st.tuples(yaw_st, st.floats(-60.0, 60.0)),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_invariants(self, points):
        centers = [ViewingCenter(i, y, p) for i, (y, p) in enumerate(points)]
        clusters = cluster_viewing_centers(centers, delta=11.25, sigma=45.0)
        ids = sorted(u for c in clusters for u in c.user_ids())
        assert ids == list(range(len(points)))  # exactly-once partition
        for cluster in clusters:
            assert cluster.size >= 1

    @given(
        st.lists(
            st.tuples(yaw_st, st.floats(-60.0, 60.0)),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_recursive_split_respects_sigma(self, points):
        centers = [ViewingCenter(i, y, p) for i, (y, p) in enumerate(points)]
        clusters = cluster_viewing_centers(
            centers, delta=11.25, sigma=45.0, recursive_split=True
        )
        for cluster in clusters:
            assert cluster.diameter() <= 45.0 + 1e-9


class TestBufferProperties:
    @given(st.lists(st.floats(0.0, 5.0), min_size=1, max_size=30))
    def test_buffer_level_invariants(self, downloads):
        buf = PlaybackBuffer(threshold_s=3.0, segment_s=1.0)
        for dl in downloads:
            event = buf.advance(dl)
            assert event.stall_s >= 0.0
            assert event.wait_s >= 0.0
            assert 0.0 <= event.level_after_s <= 4.0 + 1e-9

    @given(st.lists(st.floats(0.0, 5.0), min_size=1, max_size=30))
    def test_stall_only_when_download_exceeds_buffer(self, downloads):
        buf = PlaybackBuffer()
        for dl in downloads:
            event = buf.advance(dl)
            if event.stall_s > 0:
                assert dl > event.level_before_s - 1e-12


class TestAbrProperties:
    @given(st.floats(0.5, 50.0), st.floats(0.0, 3.0))
    def test_choice_always_valid(self, bandwidth, buffer_s):
        abr = ThroughputBufferABR()
        sizes = {q: 0.5 * 2.0**q for q in (1, 2, 3, 4, 5)}
        pick = abr.choose_quality(lambda q: sizes[int(q)], bandwidth, buffer_s)
        assert pick in (1, 2, 3, 4, 5)

    @given(st.floats(0.5, 50.0), st.floats(0.0, 3.0))
    def test_chosen_fits_budget_or_is_lowest(self, bandwidth, buffer_s):
        abr = ThroughputBufferABR()
        sizes = {q: 0.5 * 2.0**q for q in (1, 2, 3, 4, 5)}
        pick = abr.choose_quality(lambda q: sizes[int(q)], bandwidth, buffer_s)
        budget = abr.budget_mbit(bandwidth, buffer_s)
        assert pick == 1 or sizes[pick] <= budget


class TestNetworkProperties:
    @given(
        st.lists(st.floats(0.5, 20.0), min_size=1, max_size=40),
        st.floats(0.0, 50.0),
        st.floats(0.01, 30.0),
    )
    def test_download_time_consistent(self, bandwidths, start, size):
        trace = NetworkTrace("x", np.array(bandwidths))
        dl = trace.download_time(size, start)
        assert dl > 0
        realized = size / dl
        assert trace.min_mbps - 1e-6 <= realized <= trace.max_mbps + 1e-6

    @given(
        st.lists(st.floats(0.5, 20.0), min_size=1, max_size=20),
        st.floats(0.0, 10.0),
        st.floats(0.01, 5.0),
        st.floats(0.01, 5.0),
    )
    def test_download_time_additive(self, bandwidths, start, size1, size2):
        """Downloading a+b from t equals downloading a, then b."""
        trace = NetworkTrace("x", np.array(bandwidths))
        whole = trace.download_time(size1 + size2, start)
        first = trace.download_time(size1, start)
        second = trace.download_time(size2, start + first)
        assert whole == pytest_approx(first + second, rel=1e-6, abs=1e-6)


def pytest_approx(value, rel=1e-9, abs=1e-9):
    import pytest

    return pytest.approx(value, rel=rel, abs=abs)


class TestQuaternionProperties:
    @given(yaw_st, pitch_st)
    def test_angle_quaternion_round_trip(self, yaw, pitch):
        from repro.geometry import angles_to_quaternion, quaternion_to_angles

        yaw2, pitch2 = quaternion_to_angles(angles_to_quaternion(yaw, pitch))
        assert angular_distance(yaw, pitch, yaw2, pitch2) < 1e-4

    @given(yaw_st, pitch_st, yaw_st, pitch_st, st.floats(0.0, 1.0))
    def test_slerp_stays_unit(self, y1, p1, y2, p2, t):
        from repro.geometry import angles_to_quaternion, quaternion_slerp

        q = quaternion_slerp(
            angles_to_quaternion(y1, p1), angles_to_quaternion(y2, p2), t
        )
        assert abs(float(np.linalg.norm(q)) - 1.0) < 1e-9


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.floats(0.1, 3.0)),
            min_size=1,
            max_size=60,
        ),
        st.floats(1.0, 10.0),
        st.sampled_from(["lru", "lfu"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_cache_invariants(self, requests, capacity, policy):
        from repro.streaming import EdgeCache

        cache = EdgeCache(capacity_mbit=capacity, policy=policy)
        for key, size in requests:
            cache.request(key, size)
            assert 0.0 <= cache.used_mbit <= capacity + 1e-9

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.floats(0.1, 1.0)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_backhaul_never_exceeds_requested(self, requests):
        from repro.streaming import simulate_cache

        stats = simulate_cache(requests, capacity_mbit=3.0)
        assert stats.bytes_backhaul_mbit <= stats.bytes_requested_mbit + 1e-9
        assert 0 <= stats.hits <= stats.requests

    # A small key pool with widely varying sizes: the same key is
    # frequently re-requested at a different size, exercising the
    # stale-size re-admission path (grow-to-evict, shrink, drop when
    # the new size no longer fits).
    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.floats(0.0, 4.0)),
            min_size=1,
            max_size=80,
        ),
        st.floats(1.0, 8.0),
        st.sampled_from(["lru", "lfu"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_accounting_consistent_under_resizes(
        self, requests, capacity, policy
    ):
        from repro.streaming import EdgeCache

        cache = EdgeCache(capacity_mbit=capacity, policy=policy)
        for key, size in requests:
            cache.request(key, size)
            # used_mbit is exactly the sum of resident object sizes.
            assert cache.used_mbit == pytest_approx(
                sum(cache._objects.values()), rel=1e-9, abs=1e-9
            )
            assert cache.used_mbit <= capacity + 1e-9
            # The frequency table tracks resident objects only.
            assert set(cache._frequency) <= set(cache._objects)

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.floats(0.0, 4.0)),
            min_size=1,
            max_size=80,
        ),
        st.floats(1.0, 8.0),
        st.sampled_from(["lru", "lfu"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_stats_ratios_bounded(self, requests, capacity, policy):
        from repro.streaming import simulate_cache

        stats = simulate_cache(
            requests, capacity_mbit=capacity, policy=policy
        )
        assert 0.0 <= stats.hit_ratio <= 1.0
        assert 0.0 <= stats.byte_hit_ratio <= 1.0
        assert stats.requests == len(requests)
