"""Unit tests for the Fig. 2(b) multi-decoder model."""

import pytest

from repro.power import MultiDecoderModel, PIXEL3_DECODER_MODEL


class TestMeasuredEndpoints:
    def test_one_decoder(self):
        assert PIXEL3_DECODER_MODEL.decode_time_s(1) == pytest.approx(1.3)
        assert PIXEL3_DECODER_MODEL.decode_power_mw(1) == pytest.approx(241.0)

    def test_nine_decoders(self):
        assert PIXEL3_DECODER_MODEL.decode_time_s(9) == pytest.approx(0.5)
        assert PIXEL3_DECODER_MODEL.decode_power_mw(9) == pytest.approx(846.0)

    def test_ptile_point(self):
        assert PIXEL3_DECODER_MODEL.ptile_time_s == 0.24
        assert PIXEL3_DECODER_MODEL.ptile_power_mw == 287.0
        assert PIXEL3_DECODER_MODEL.ptile_energy_mj() == pytest.approx(
            0.24 * 287.0
        )


class TestCurveShape:
    def test_time_monotone_decreasing(self):
        times = [PIXEL3_DECODER_MODEL.decode_time_s(d) for d in range(1, 10)]
        assert times == sorted(times, reverse=True)

    def test_power_monotone_increasing(self):
        powers = [PIXEL3_DECODER_MODEL.decode_power_mw(d) for d in range(1, 10)]
        assert powers == sorted(powers)

    def test_energy_increases_with_decoders(self):
        # More decoders = more energy despite shorter time (the paper's
        # core motivation observation).
        energies = [PIXEL3_DECODER_MODEL.decode_energy_mj(d) for d in range(1, 10)]
        assert energies == sorted(energies)

    def test_ptile_beats_every_configuration(self):
        ptile = PIXEL3_DECODER_MODEL.ptile_energy_mj()
        for d in range(1, 10):
            assert ptile < PIXEL3_DECODER_MODEL.decode_energy_mj(d)

    def test_four_decoders_interpolation(self):
        # Intermediate counts sit between the endpoints.
        t4 = PIXEL3_DECODER_MODEL.decode_time_s(4)
        p4 = PIXEL3_DECODER_MODEL.decode_power_mw(4)
        assert 0.5 < t4 < 1.3
        assert 241.0 < p4 < 846.0


class TestValidation:
    def test_needs_positive_decoders(self):
        with pytest.raises(ValueError):
            PIXEL3_DECODER_MODEL.decode_time_s(0)
        with pytest.raises(ValueError):
            PIXEL3_DECODER_MODEL.decode_power_mw(0)

    def test_time_must_fall(self):
        with pytest.raises(ValueError):
            MultiDecoderModel(time_1_s=0.5, time_9_s=0.6)

    def test_power_must_rise(self):
        with pytest.raises(ValueError):
            MultiDecoderModel(power_1_mw=800.0, power_9_mw=700.0)

    def test_positive_values(self):
        with pytest.raises(ValueError):
            MultiDecoderModel(time_1_s=0.0)
