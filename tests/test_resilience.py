"""Tests for the resilience subsystem: fault plans, the faulty network,
the download policy, and their integration with the session loop."""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import (
    SessionJob,
    SweepContext,
    make_setup,
    run_session_jobs,
    sweep_resilience,
)
from repro.experiments.artifacts import ArtifactStore
from repro.power.models import TilingScheme
from repro.resilience import (
    FAULT_PROFILES,
    CollapseWindow,
    DegradationLevel,
    DownloadPolicy,
    FaultPlan,
    FaultyNetwork,
    LatencySpike,
    Outage,
    execute_download,
    generate_fault_plan,
)
from repro.streaming import (
    DownloadPlan,
    PtileScheme,
    SessionConfig,
    run_session,
)
from repro.traces import NetworkTrace


@pytest.fixture(scope="module")
def flat_trace():
    return NetworkTrace(name="flat", bandwidth_mbps=np.full(60, 4.0))


class TestFaultPlan:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            Outage(5.0, 5.0)
        with pytest.raises(ValueError):
            Outage(-1.0, 2.0)
        with pytest.raises(ValueError):
            CollapseWindow(0.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            LatencySpike(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            FaultPlan(failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(edge_fail_at_s=-2.0)

    def test_idle_plan(self):
        assert FaultPlan().is_idle
        assert not FaultPlan(failure_rate=0.1).is_idle
        assert not FaultPlan(outages=(Outage(1.0, 2.0),)).is_idle

    def test_bandwidth_factor_and_boundaries(self):
        plan = FaultPlan(
            outages=(Outage(10.0, 12.0),),
            collapses=(CollapseWindow(11.0, 20.0, 0.5),),
        )
        assert plan.bandwidth_factor(5.0) == 1.0
        assert plan.bandwidth_factor(10.5) == 0.0  # outage dominates
        assert plan.bandwidth_factor(15.0) == 0.5
        assert plan.bandwidth_factor(20.0) == 1.0  # half-open windows
        assert plan.next_boundary_after(0.0) == 10.0
        assert plan.next_boundary_after(10.0) == 11.0
        assert plan.next_boundary_after(19.0) == 20.0
        assert plan.next_boundary_after(25.0) == math.inf

    def test_overlapping_collapses_multiply(self):
        plan = FaultPlan(
            collapses=(
                CollapseWindow(0.0, 10.0, 0.5),
                CollapseWindow(5.0, 15.0, 0.4),
            )
        )
        assert plan.bandwidth_factor(7.0) == pytest.approx(0.2)

    def test_latency_spikes_take_max(self):
        plan = FaultPlan(
            latency_spikes=(
                LatencySpike(0.0, 10.0, 0.3),
                LatencySpike(5.0, 8.0, 0.9),
            )
        )
        assert plan.extra_latency(2.0) == 0.3
        assert plan.extra_latency(6.0) == 0.9
        assert plan.extra_latency(12.0) == 0.0

    def test_attempt_failures_deterministic_and_rate_bounded(self):
        plan = FaultPlan(seed=11, failure_rate=0.3)
        draws = [
            plan.attempt_fails(seg, att)
            for seg in range(200)
            for att in range(3)
        ]
        again = [
            plan.attempt_fails(seg, att)
            for seg in range(200)
            for att in range(3)
        ]
        assert draws == again  # pure function of (seed, segment, attempt)
        rate = sum(draws) / len(draws)
        assert 0.2 < rate < 0.4
        assert not FaultPlan(failure_rate=0.0).attempt_fails(0, 0)
        always = FaultPlan(failure_rate=1.0)
        assert all(always.attempt_fails(s, a) for s in range(5) for a in range(3))

    def test_edge_availability(self):
        assert FaultPlan().edge_available(1e9)
        plan = FaultPlan(edge_fail_at_s=30.0)
        assert plan.edge_available(29.9)
        assert not plan.edge_available(30.0)


class TestProfiles:
    def test_every_profile_generates_deterministically(self):
        for profile in FAULT_PROFILES:
            a = generate_fault_plan(profile, 120.0, seed=3)
            b = generate_fault_plan(profile, 120.0, seed=3)
            assert a == b
            assert a.name == profile

    def test_profiles_differ_by_seed(self):
        a = generate_fault_plan("outages", 500.0, seed=1)
        b = generate_fault_plan("outages", 500.0, seed=2)
        assert a != b

    def test_unknown_profile_lists_alternatives(self):
        with pytest.raises(ValueError, match="available profiles"):
            generate_fault_plan("flaky-wifi", 100.0)

    def test_windows_respect_duration(self):
        plan = generate_fault_plan("stress", 90.0, seed=5)
        for w in plan.outages + plan.collapses + plan.latency_spikes:
            assert 0.0 <= w.start_s < w.end_s <= 90.0
        if plan.edge_fail_at_s is not None:
            assert 0.0 <= plan.edge_fail_at_s <= 90.0

    def test_short_sessions_still_get_at_least_one_window(self):
        # Poisson gaps (45-60 s means) would frequently draw nothing on
        # a 30 s session, making a named fault profile a silent no-op.
        for seed in range(10):
            for profile, attr in (
                ("outages", "outages"),
                ("collapse", "collapses"),
                ("spikes", "latency_spikes"),
            ):
                plan = generate_fault_plan(profile, 30.0, seed=seed)
                windows = getattr(plan, attr)
                assert windows, f"{profile} seed {seed} injected nothing"
                for w in windows:
                    assert 0.0 <= w.start_s < w.end_s <= 30.0


class TestDownloadWithin:
    def test_matches_download_time_when_budget_suffices(self, flat_trace):
        t = flat_trace.download_time(10.0, 3.3)
        delivered, elapsed, completed = flat_trace.download_within(
            10.0, 3.3, t + 1.0
        )
        assert completed
        assert delivered == 10.0
        assert elapsed == pytest.approx(t)

    def test_partial_delivery_on_budget_exhaustion(self, flat_trace):
        delivered, elapsed, completed = flat_trace.download_within(
            100.0, 0.0, 2.0
        )
        assert not completed
        assert elapsed == 2.0
        assert delivered == pytest.approx(8.0)  # 4 Mbps * 2 s

    def test_degenerate_inputs(self, flat_trace):
        assert flat_trace.download_within(0.0, 0.0, 5.0) == (0.0, 0.0, True)
        assert flat_trace.download_within(5.0, 0.0, 0.0) == (0.0, 0.0, False)
        with pytest.raises(ValueError):
            flat_trace.download_within(-1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            flat_trace.download_within(1.0, 0.0, -1.0)


class TestFaultyNetwork:
    def test_idle_plan_matches_base(self, flat_trace):
        net = FaultyNetwork(flat_trace, FaultPlan())
        assert net.bandwidth_at(7.2) == flat_trace.bandwidth_at(7.2)
        assert net.download_within(6.0, 1.0, 10.0) == (
            flat_trace.download_within(6.0, 1.0, 10.0)
        )
        assert net.name == "flat+none"

    def test_outage_blocks_bytes_but_time_passes(self, flat_trace):
        plan = FaultPlan(outages=(Outage(5.0, 8.0),))
        net = FaultyNetwork(flat_trace, plan)
        assert net.bandwidth_at(6.0) == 0.0
        delivered, elapsed, completed = net.download_within(4.0, 5.0, 2.0)
        assert not completed
        assert delivered == 0.0
        assert elapsed == 2.0

    def test_download_crossing_outage_pays_the_gap(self, flat_trace):
        plan = FaultPlan(outages=(Outage(5.0, 8.0),))
        net = FaultyNetwork(flat_trace, plan)
        # 8 Mbit at 4 Mbps = 2 s of transfer; starting at 4 s the outage
        # inserts exactly 3 dead seconds after the first second.
        delivered, elapsed, completed = net.download_within(8.0, 4.0, 20.0)
        assert completed
        assert delivered == 8.0
        assert elapsed == pytest.approx(5.0)

    def test_collapse_scales_throughput(self, flat_trace):
        plan = FaultPlan(collapses=(CollapseWindow(0.0, 60.0, 0.25),))
        net = FaultyNetwork(flat_trace, plan)
        delivered, elapsed, completed = net.download_within(4.0, 0.0, 30.0)
        assert completed
        assert elapsed == pytest.approx(4.0)  # 4 Mbit at 1 Mbps effective


def _plan(size_mbit=4.0, quality=3, fr=30.0):
    return DownloadPlan(
        scheme_name="test",
        quality=quality,
        frame_rate=fr,
        total_size_mbit=size_mbit,
        decode_scheme=TilingScheme.PTILE,
    )


class TestDownloadPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DownloadPolicy(retry_budget=-1)
        with pytest.raises(ValueError):
            DownloadPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            DownloadPolicy(min_timeout_s=0.0)

    def test_backoff_monotone_and_capped(self):
        policy = DownloadPolicy(
            backoff_base_s=0.2, backoff_factor=2.0, backoff_cap_s=1.0
        )
        waits = [policy.backoff_s(i) for i in range(6)]
        assert waits == sorted(waits)
        assert waits[-1] == 1.0

    def test_deadline_budget_floor(self):
        policy = DownloadPolicy(timeout_slack_s=0.5, min_timeout_s=0.4)
        assert policy.deadline_budget_s(3.0) == 3.5
        assert policy.deadline_budget_s(0.0) == 0.5
        assert policy.deadline_budget_s(-10.0) == 0.4


class TestExecuteDownload:
    def test_clean_fetch_matches_plain_download(self, flat_trace, manifest8):
        plan = _plan()
        outcome = execute_download(
            flat_trace, plan, manifest8[0], 30.0,
            policy=DownloadPolicy(),
            fault_plan=None,
            start_wall_t=2.0,
            buffer_level_s=3.0,
            segment_index=1,
        )
        assert outcome.level == DegradationLevel.FULL
        assert outcome.plan == plan
        assert outcome.retries == 0 and outcome.timeouts == 0
        assert outcome.elapsed_s == pytest.approx(
            flat_trace.download_time(plan.total_size_mbit, 2.0)
        )
        assert outcome.active_s == outcome.elapsed_s

    def test_outage_degrades_down_the_ladder(self, flat_trace, manifest8):
        # The whole deadline window is dead: every rung times out and
        # the segment is skipped with the full coverage penalty.
        plan_f = FaultPlan(outages=(Outage(0.0, 50.0),))
        outcome = execute_download(
            FaultyNetwork(flat_trace, plan_f), _plan(), manifest8[0], 30.0,
            policy=DownloadPolicy(retry_budget=2),
            fault_plan=plan_f,
            start_wall_t=1.0,
            buffer_level_s=2.0,
            segment_index=3,
        )
        assert outcome.skipped
        assert outcome.level == DegradationLevel.SKIPPED
        assert outcome.plan.total_size_mbit == 0.0
        assert outcome.timeouts == 3  # one per fetchable rung
        assert outcome.elapsed_s > 0.0

    def test_corrupt_attempts_retry_with_backoff(self, flat_trace, manifest8):
        plan_f = FaultPlan(failure_rate=1.0)
        policy = DownloadPolicy(retry_budget=2, backoff_base_s=0.1)
        outcome = execute_download(
            FaultyNetwork(flat_trace, plan_f), _plan(), manifest8[0], 30.0,
            policy=policy,
            fault_plan=plan_f,
            start_wall_t=0.0,
            buffer_level_s=20.0,
            segment_index=0,
            unlimited_deadline=True,
        )
        # Every attempt completes corrupt; the budget is exhausted at
        # the FULL rung and the segment is skipped.
        assert outcome.skipped
        assert outcome.retries == policy.retry_budget
        assert outcome.failed_attempts == policy.retry_budget + 1
        # Wall time includes the backoff waits; radio time does not.
        assert outcome.elapsed_s > outcome.active_s > 0.0

    def test_retries_never_exceed_budget(self, flat_trace, manifest8):
        for budget in (0, 1, 3):
            plan_f = FaultPlan(failure_rate=1.0)
            outcome = execute_download(
                FaultyNetwork(flat_trace, plan_f), _plan(), manifest8[0],
                30.0,
                policy=DownloadPolicy(retry_budget=budget),
                fault_plan=plan_f,
                start_wall_t=0.0,
                buffer_level_s=5.0,
                segment_index=2,
            )
            assert outcome.retries <= budget

    def test_reduced_rung_is_smaller_and_slower(self, manifest8):
        from repro.resilience.policy import build_degradation_ladder

        seg = manifest8[0]
        plan = _plan(size_mbit=seg.full_frame_size_mbit(3))
        ladder = build_degradation_ladder(plan, seg, 30.0)
        (_, full), (_, reduced), (_, low) = ladder
        assert reduced.quality < full.quality
        assert reduced.total_size_mbit < full.total_size_mbit
        assert reduced.frame_rate <= 0.8 * 30.0
        assert low.quality == 1
        assert low.total_size_mbit == pytest.approx(
            seg.full_frame_size_mbit(1)
        )
        assert low.total_size_mbit < reduced.total_size_mbit

    def test_latency_spike_charges_wall_time(self, flat_trace, manifest8):
        plan_f = FaultPlan(latency_spikes=(LatencySpike(0.0, 30.0, 0.4),))
        outcome = execute_download(
            FaultyNetwork(flat_trace, plan_f), _plan(), manifest8[0], 30.0,
            policy=DownloadPolicy(),
            fault_plan=plan_f,
            start_wall_t=1.0,
            buffer_level_s=5.0,
            segment_index=1,
        )
        clean = flat_trace.download_time(4.0, 1.4)
        assert outcome.elapsed_s == pytest.approx(0.4 + clean)
        assert outcome.active_s == pytest.approx(clean)


class TestSessionIntegration:
    @pytest.fixture(scope="class")
    def session_inputs(self, manifest8, small_dataset, network_traces, device):
        _, trace2 = network_traces
        head = small_dataset.test_traces(8)[0]
        return manifest8, head, trace2, device

    def test_faults_off_resilient_path_matches_legacy(
        self, session_inputs, ptiles8
    ):
        manifest, head, trace, device = session_inputs
        legacy = run_session(
            PtileScheme(), manifest, head, trace, device, ptiles=ptiles8
        )
        # An idle plan plus a policy that can never time out or retry
        # must reproduce the ideal session byte for byte.
        benign = SessionConfig(
            fault_plan=FaultPlan(),
            download_policy=DownloadPolicy(
                retry_budget=0, timeout_slack_s=1e9
            ),
        )
        resilient = run_session(
            PtileScheme(), manifest, head, trace, device, ptiles=ptiles8,
            config=benign,
        )
        assert resilient == legacy

    def test_fault_session_is_deterministic(self, session_inputs, ptiles8):
        manifest, head, trace, device = session_inputs
        plan = generate_fault_plan("stress", 30.0, seed=13)
        config = SessionConfig(
            fault_plan=plan, download_policy=DownloadPolicy()
        )
        a = run_session(
            PtileScheme(), manifest, head, trace, device, ptiles=ptiles8,
            config=config,
        )
        b = run_session(
            PtileScheme(), manifest, head, trace, device, ptiles=ptiles8,
            config=config,
        )
        assert a == b

    def test_fault_session_invariants(self, session_inputs, ptiles8):
        manifest, head, trace, device = session_inputs
        plan = FaultPlan(
            outages=(Outage(4.0, 9.0),),
            latency_spikes=(LatencySpike(10.0, 14.0, 0.6),),
            failure_rate=0.2,
            seed=5,
        )
        policy = DownloadPolicy(retry_budget=2)
        result = run_session(
            PtileScheme(), manifest, head, trace, device, ptiles=ptiles8,
            config=SessionConfig(fault_plan=plan, download_policy=policy),
        )
        assert result.total_stall_s >= 0.0
        assert result.total_retries > 0 or result.total_timeouts > 0
        for record in result.records:
            assert record.wait_s >= 0.0
            assert record.download_time_s >= 0.0
            assert record.retries <= policy.retry_budget
            assert 0 <= record.degraded_level <= 3
        # Degraded segments below FULL carry the resilience markers the
        # ablation aggregates report.
        assert result.degraded_segment_count >= result.skipped_segment_count

    def test_skipped_segments_cost_no_decode_energy(
        self, session_inputs, ptiles8
    ):
        manifest, head, trace, device = session_inputs
        # A multi-minute outage right after startup forces skips.
        plan = FaultPlan(outages=(Outage(1.0, 300.0),))
        result = run_session(
            PtileScheme(), manifest, head, trace, device, ptiles=ptiles8,
            config=SessionConfig(
                fault_plan=plan,
                download_policy=DownloadPolicy(retry_budget=1),
            ),
        )
        skipped = [r for r in result.records if r.degraded_level >= 3]
        assert skipped
        for record in skipped:
            assert record.size_mbit == 0.0
            assert record.energy.decoding_j == 0.0
            assert record.energy.rendering_j == 0.0
            assert record.coverage == 0.0
            assert record.qo_effective == 0.0

    def test_edge_failure_stops_edge_hits(
        self, session_inputs, ptiles8, small_dataset
    ):
        from repro.streaming import build_edge_hit_model

        manifest, head, trace, device = session_inputs
        model = build_edge_hit_model(
            manifest, small_dataset.train_traces(8), ptiles8,
            capacity_mbit=4000.0,
        )
        alive = run_session(
            PtileScheme(), manifest, head, trace, device, ptiles=ptiles8,
            config=SessionConfig(
                edge_model=model,
                fault_plan=FaultPlan(),
                download_policy=DownloadPolicy(),
            ),
        )
        dead_early = run_session(
            PtileScheme(), manifest, head, trace, device, ptiles=ptiles8,
            config=SessionConfig(
                edge_model=model,
                fault_plan=FaultPlan(edge_fail_at_s=0.0),
                download_policy=DownloadPolicy(),
            ),
        )
        assert dead_early.total_edge_hit_mbit == 0.0
        if alive.total_edge_hit_mbit > 0:
            assert (
                alive.total_edge_hit_mbit > dead_early.total_edge_hit_mbit
            )


class TestSweepResilience:
    @pytest.fixture(scope="class")
    def tiny_setup(self):
        return make_setup(
            max_duration_s=20, n_users=4, n_train=3, seed=3, video_ids=(8,)
        )

    def test_serial_and_pooled_identical(self, tiny_setup):
        kwargs = dict(
            profiles=("none", "lossy"), users=2,
            scheme_names=("ctile", "ptile"),
        )
        serial = sweep_resilience(tiny_setup, workers=1, **kwargs)
        pooled = sweep_resilience(tiny_setup, workers=2, **kwargs)
        assert serial == pooled

    def test_cold_and_warm_results_cache_identical(self, tiny_setup, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        kwargs = dict(
            profiles=("lossy",), users=2, scheme_names=("ptile",),
        )
        cold = sweep_resilience(tiny_setup, results=store, **kwargs)
        warm = sweep_resilience(tiny_setup, results=store, **kwargs)
        assert cold == warm

    def test_none_profile_matches_fault_free_sessions(self, tiny_setup):
        points = sweep_resilience(
            tiny_setup, profiles=("none",), users=2, scheme_names=("ptile",),
        )
        (point,) = points
        from repro.power.models import PIXEL_3

        scheme = PtileScheme()
        sessions = [
            run_session(
                scheme,
                tiny_setup.manifest(8),
                user,
                tiny_setup.trace2,
                PIXEL_3,
                ptiles=tiny_setup.ptiles(8),
                config=tiny_setup.session_config,
            )
            for user in tiny_setup.dataset.test_traces(8)[:2]
        ]
        assert point.energy_per_segment_j == pytest.approx(
            float(np.mean([s.energy_per_segment_j for s in sessions]))
        )
        assert point.extra["retries"] == 0.0
        assert point.extra["skipped"] == 0.0

    def test_rejects_empty_and_unknown_inputs(self, tiny_setup):
        with pytest.raises(ValueError, match="profile"):
            sweep_resilience(tiny_setup, profiles=())
        with pytest.raises(ValueError, match="scheme"):
            sweep_resilience(tiny_setup, scheme_names=("mystery",))
        with pytest.raises(ValueError, match="available profiles"):
            sweep_resilience(tiny_setup, profiles=("wat",))


class TestFaultPlanCaching:
    def test_fault_plan_changes_results_key(self, tiny_setup=None):
        from repro.experiments.artifacts import structural_fingerprint

        base = SessionConfig()
        faulted = SessionConfig(
            fault_plan=generate_fault_plan("lossy", 30.0, seed=1),
            download_policy=DownloadPolicy(),
        )
        other_seed = SessionConfig(
            fault_plan=generate_fault_plan("lossy", 30.0, seed=2),
            download_policy=DownloadPolicy(),
        )
        prints = {
            structural_fingerprint(c) for c in (base, faulted, other_seed)
        }
        assert len(prints) == 3  # every variant lands in its own slot
