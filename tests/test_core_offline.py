"""Unit tests for the offline-optimal solver."""

import numpy as np
import pytest

from repro.core import EnergyQoEMpc, MpcConfig, MpcSegment, solve_offline
from repro.power import EnergyModel, PIXEL_3
from repro.traces import NetworkTrace

RATES = (21.0, 24.0, 27.0, 30.0)


def make_segment(base_size=1.0, alpha=5.0):
    sizes = np.empty((5, 4))
    qoe = np.empty((5, 4))
    for vi in range(5):
        size_v = base_size * (1.6 ** vi)
        qo = 90.0 - (4 - vi) * 12.0
        for fi, rate in enumerate(RATES):
            sizes[vi, fi] = size_v * (1 - 0.6 * (1 - rate / 30.0))
            factor = (1 - np.exp(-alpha * rate / 30.0)) / (1 - np.exp(-alpha))
            qoe[vi, fi] = qo * factor
    return MpcSegment(sizes_mbit=sizes, qoe=qoe, frame_rates=RATES)


@pytest.fixture
def flat_network():
    return NetworkTrace("flat", np.full(60, 4.0))


@pytest.fixture
def energy_model():
    return EnergyModel(PIXEL_3)


class TestSolveOffline:
    def test_one_decision_per_segment(self, flat_network, energy_model):
        plan = solve_offline([make_segment()] * 10, flat_network, energy_model)
        assert plan.num_segments == 10
        for v, f in plan.decisions:
            assert 1 <= v <= 5
            assert 1 <= f <= 4

    def test_positive_cost(self, flat_network, energy_model):
        plan = solve_offline([make_segment()] * 5, flat_network, energy_model)
        assert plan.total_energy_j > 0
        assert plan.total_qoe > 0
        assert 0 <= plan.final_buffer_s <= 3.0

    def test_fast_switching_drops_frames(self, flat_network, energy_model):
        plan = solve_offline(
            [make_segment(alpha=50.0)] * 8, flat_network, energy_model
        )
        assert plan.mean_frame_rate_index() < 4.0

    def test_static_gaze_keeps_frames(self, flat_network, energy_model):
        plan = solve_offline(
            [make_segment(alpha=0.1)] * 8, flat_network, energy_model
        )
        assert plan.mean_frame_rate_index() == 4.0

    def test_richer_network_higher_quality(self, energy_model):
        slow = solve_offline(
            [make_segment()] * 8, NetworkTrace("s", np.full(60, 1.5)),
            energy_model,
        )
        fast = solve_offline(
            [make_segment()] * 8, NetworkTrace("f", np.full(60, 20.0)),
            energy_model,
        )
        assert fast.mean_quality() >= slow.mean_quality()

    def test_empty_rejected(self, flat_network, energy_model):
        with pytest.raises(ValueError):
            solve_offline([], flat_network, energy_model)


class TestOracleBoundsMpc:
    def test_offline_no_worse_than_online(self, energy_model):
        """The oracle's energy lower-bounds the online MPC's plan on the
        same inputs when the bandwidth prediction happens to be exact."""
        network = NetworkTrace("flat", np.full(60, 4.0))
        segments = [make_segment(alpha=5.0)] * 6

        offline = solve_offline(
            segments, network, energy_model,
            MpcConfig(bandwidth_safety=1.0), initial_buffer_s=3.0,
        )

        # Replay the online MPC over the same segments with a rolling
        # window, accumulating the realized energy of its decisions.
        mpc = EnergyQoEMpc(energy_model, MpcConfig(bandwidth_safety=1.0))
        buffer = 3.0
        total = 0.0
        from repro.power import TilingScheme

        for k in range(len(segments)):
            decision = mpc.choose(segments[k:], 4.0, buffer)
            size = float(
                segments[k].sizes_mbit[
                    decision.quality - 1, decision.frame_rate_index - 1
                ]
            )
            dl = size / 4.0
            total += (
                energy_model.transmission_energy_from_time_j(dl)
                + energy_model.decoding_energy_j(
                    TilingScheme.PTILE, decision.frame_rate
                )
                + energy_model.rendering_energy_j(decision.frame_rate)
            )
            buffer = min(max(buffer - dl, 0.0) + 1.0, 3.0)

        assert offline.total_energy_j <= total * 1.05
