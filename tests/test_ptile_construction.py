"""Unit tests for Ptile construction and remainder partitioning."""

import pytest

from repro.geometry import DEFAULT_GRID, Tile, Viewport
from repro.ptile import (
    PtileConfig,
    ViewingCenter,
    build_segment_ptiles,
    build_video_ptiles,
    partition_remainder,
)


def focused_centers(yaw=100.0, pitch=0.0, n=8, spread=3.0):
    return [
        ViewingCenter(i, yaw + spread * ((i % 3) - 1), pitch + spread * ((i % 2)))
        for i in range(n)
    ]


class TestPtileConfig:
    def test_paper_defaults(self):
        cfg = PtileConfig()
        assert cfg.resolved_sigma(DEFAULT_GRID) == 45.0
        assert cfg.resolved_delta(DEFAULT_GRID) == pytest.approx(45.0 / 4)
        assert cfg.min_users == 5

    def test_explicit_override(self):
        cfg = PtileConfig(sigma=30.0, delta=10.0)
        assert cfg.resolved_sigma(DEFAULT_GRID) == 30.0
        assert cfg.resolved_delta(DEFAULT_GRID) == 10.0


class TestBuildSegmentPtiles:
    def test_single_cluster_single_ptile(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        assert sp.num_ptiles == 1
        ptile = sp.ptiles[0]
        assert ptile.n_tiles >= 9
        assert ptile.contains(100.0, 0.0)

    def test_min_users_filter(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers(n=4))
        assert sp.num_ptiles == 0

    def test_two_interest_groups(self):
        pts = focused_centers(80.0, 0.0, 6) + [
            ViewingCenter(100 + i, 260.0 + i, 0.0) for i in range(6)
        ]
        sp = build_segment_ptiles(DEFAULT_GRID, pts)
        assert sp.num_ptiles == 2

    def test_ptile_is_rectangular_tile_set(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        ptile = sp.ptiles[0]
        assert DEFAULT_GRID.rect_tiles(ptile.rect) == set(ptile.tiles)

    def test_ptile_covers_member_viewports(self):
        pts = focused_centers()
        sp = build_segment_ptiles(DEFAULT_GRID, pts)
        ptile = sp.ptiles[0]
        for member in pts:
            vp = Viewport(member.yaw, member.pitch)
            assert ptile.viewport_overlap(vp) == pytest.approx(1.0)

    def test_area_fraction(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        ptile = sp.ptiles[0]
        assert ptile.area_fraction == pytest.approx(ptile.n_tiles / 32)

    def test_region_key_stable(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        assert sp.ptiles[0].region_key == "ptile-0"


class TestMatch:
    def test_match_inside(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        assert sp.match(Viewport(100.0, 0.0)) is sp.ptiles[0]

    def test_no_match_far_away(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        assert sp.match(Viewport(280.0, 0.0)) is None

    def test_overlap_match_near_edge(self):
        # Center just outside the Ptile but most of the viewport inside.
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        ptile = sp.ptiles[0]
        edge_yaw = ptile.rect.x1 % 360.0 + 5.0
        vp = Viewport(edge_yaw, 0.0)
        matched = sp.match(vp)
        if ptile.viewport_overlap(vp) >= 0.5:
            assert matched is ptile

    def test_empty_segment(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers(n=3))
        assert sp.match(Viewport(100.0, 0.0)) is None

    def test_covers_user(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        assert sp.covers_user(100.0, 0.0)
        assert not sp.covers_user(280.0, 0.0)


class TestRemainder:
    def test_partition_covers_frame(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        ptile = sp.ptiles[0]
        blocks = sp.remainder_for(ptile)
        remainder_tiles = set().union(*(b.tiles for b in blocks))
        assert remainder_tiles | set(ptile.tiles) == set(DEFAULT_GRID.tiles())
        assert remainder_tiles.isdisjoint(ptile.tiles)

    def test_at_most_three_blocks(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        assert 1 <= len(sp.remainder_for(sp.ptiles[0])) <= 3

    def test_blocks_disjoint(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        blocks = sp.remainder_for(sp.ptiles[0])
        seen: set[Tile] = set()
        for b in blocks:
            assert seen.isdisjoint(b.tiles)
            seen |= set(b.tiles)

    def test_area_fractions_sum_to_one(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        ptile = sp.ptiles[0]
        total = ptile.area_fraction + sum(
            b.area_fraction for b in sp.remainder_for(ptile)
        )
        assert total == pytest.approx(1.0)

    def test_standalone_partition(self):
        sp = build_segment_ptiles(DEFAULT_GRID, focused_centers())
        ptile = sp.ptiles[0]
        blocks = partition_remainder(DEFAULT_GRID, ptile)
        assert blocks == sp.remainder_for(ptile)


class TestBuildVideoPtiles:
    def test_one_per_segment(self, small_dataset, video2, ptiles2):
        assert len(ptiles2) == video2.num_segments
        assert [sp.segment_index for sp in ptiles2] == list(
            range(video2.num_segments)
        )

    def test_focused_video_mostly_single_ptile(self, ptiles2):
        counts = [sp.num_ptiles for sp in ptiles2]
        assert sum(1 for c in counts if c <= 1) / len(counts) > 0.7

    def test_requires_traces(self, video2):
        with pytest.raises(ValueError):
            build_video_ptiles(video2, [], DEFAULT_GRID)
