"""Unit tests for playback-buffer dynamics (Eq. 6-7)."""

import pytest

from repro.streaming import PlaybackBuffer


class TestPlaybackBuffer:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            PlaybackBuffer(threshold_s=0.0)
        with pytest.raises(ValueError):
            PlaybackBuffer(segment_s=0.0)

    def test_cold_start(self):
        buf = PlaybackBuffer()
        assert buf.level_s == 0.0
        assert buf.wait_time() == 0.0

    def test_first_download_stalls_for_its_duration(self):
        buf = PlaybackBuffer()
        event = buf.advance(0.8)
        assert event.stall_s == pytest.approx(0.8)  # startup delay
        assert event.level_after_s == pytest.approx(1.0)

    def test_eq6_steady_state(self):
        buf = PlaybackBuffer(threshold_s=3.0, segment_s=1.0)
        # Fill the buffer with fast downloads.
        for _ in range(5):
            buf.advance(0.2)
        # Level should ratchet towards the threshold but never pass
        # threshold + L.
        assert buf.level_s <= 4.0

    def test_wait_gate(self):
        buf = PlaybackBuffer(threshold_s=3.0, segment_s=1.0)
        for _ in range(6):
            buf.advance(0.1)
        assert buf.wait_time() > 0.0
        level_before = buf.level_s
        event = buf.advance(0.1)
        assert event.wait_s == pytest.approx(max(level_before - 3.0, 0.0))

    def test_eq6_formula(self):
        buf = PlaybackBuffer(threshold_s=3.0, segment_s=1.0)
        buf.advance(0.5)  # level = 1.0
        event = buf.advance(0.4)
        # B2 = max(B1 - dl, 0) + L = max(1.0 - 0.4, 0) + 1 = 1.6
        assert event.level_after_s == pytest.approx(1.6)
        assert event.stall_s == 0.0

    def test_stall_when_download_outlasts_buffer(self):
        buf = PlaybackBuffer(threshold_s=3.0, segment_s=1.0)
        buf.advance(0.5)  # level 1.0
        event = buf.advance(2.5)
        assert event.stall_s == pytest.approx(1.5)
        assert event.level_after_s == pytest.approx(1.0)

    def test_wait_drains_before_download(self):
        buf = PlaybackBuffer(threshold_s=2.0, segment_s=1.0)
        for _ in range(5):
            buf.advance(0.05)
        level = buf.level_s
        wait = buf.wait_time()
        event = buf.advance(0.05)
        assert event.level_before_s == pytest.approx(level - wait)

    def test_negative_download_rejected(self):
        with pytest.raises(ValueError):
            PlaybackBuffer().advance(-0.1)

    def test_reset(self):
        buf = PlaybackBuffer()
        buf.advance(0.1)
        buf.reset()
        assert buf.level_s == 0.0

    def test_level_never_negative(self):
        buf = PlaybackBuffer()
        for dl in (3.0, 5.0, 0.1, 4.0):
            event = buf.advance(dl)
            assert event.level_after_s >= 0.0
