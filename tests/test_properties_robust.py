"""Property-based tests (hypothesis) for the uncertainty layer.

The probabilistic viewport machinery must hold its mathematical
invariants for arbitrary inputs: hypothesis weights form a
distribution monotone in angular distance from the predicted center,
per-tile viewing probabilities stay in [0, 1], expected coverage is
bounded by the best and worst deterministic coverage over the
hypothesis grid, and error-model fits reproduce bit-for-bit from
identical traces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import DEFAULT_GRID
from repro.geometry.viewport import Rect
from repro.prediction import (
    AngularErrorModel,
    PanoWeight,
    angular_distance_deg,
    coverage_profile,
    expected_coverage,
    fit_error_model,
    hypothesis_grid,
    hypothesis_weights,
    tile_view_probabilities,
)
from repro.traces.head_movement import HeadTrace

HYP = hypothesis_grid(DEFAULT_GRID)

centers = st.tuples(
    st.floats(0.0, 360.0, exclude_max=True),
    st.floats(-90.0, 90.0),
)
sigmas = st.floats(0.5, 45.0)


@st.composite
def hq_rect_sets(draw):
    """1-3 non-degenerate equirectangular rects (a Ptile-ish region)."""
    rects = []
    for _ in range(draw(st.integers(1, 3))):
        x0 = draw(st.floats(0.0, 300.0))
        y0 = draw(st.floats(-90.0, 40.0))
        width = draw(st.floats(20.0, 360.0 - x0))
        height = draw(st.floats(20.0, 90.0 - y0))
        rects.append(Rect(x0, y0, x0 + width, y0 + height))
    return tuple(rects)


class TestHypothesisWeights:
    @given(center=centers, sigma=sigmas)
    @settings(max_examples=80, deadline=None)
    def test_weights_form_a_distribution(self, center, sigma):
        yaw, pitch = center
        w = hypothesis_weights(HYP, yaw, pitch, sigma)
        assert w.shape == (HYP.num_hypotheses,)
        assert np.all(w >= 0.0)
        assert w.sum() == pytest.approx(1.0, abs=1e-9)

    @given(center=centers, sigma=sigmas)
    @settings(max_examples=80, deadline=None)
    def test_weights_monotone_in_angular_distance(self, center, sigma):
        yaw, pitch = center
        w = hypothesis_weights(HYP, yaw, pitch, sigma)
        d = angular_distance_deg(
            HYP.centers_yaw, HYP.centers_pitch, yaw, pitch
        )
        order = np.argsort(d, kind="stable")
        sorted_w = w[order]
        # Closer hypotheses never weigh less (ties in distance weigh
        # equally; far tails may both underflow to zero).
        assert np.all(np.diff(sorted_w) <= 1e-15)

    @given(center=centers)
    @settings(max_examples=30, deadline=None)
    def test_zero_sigma_rejected(self, center):
        yaw, pitch = center
        with pytest.raises(ValueError):
            hypothesis_weights(HYP, yaw, pitch, 0.0)

    @given(center=centers, sigma=sigmas)
    @settings(max_examples=50, deadline=None)
    def test_tile_probabilities_bounded(self, center, sigma):
        yaw, pitch = center
        w = hypothesis_weights(HYP, yaw, pitch, sigma)
        p = tile_view_probabilities(w, HYP)
        assert p.shape == (DEFAULT_GRID.num_tiles,)
        assert np.all(p >= 0.0)
        assert np.all(p <= 1.0)
        # Every hypothesis sees at least one tile, so some probability
        # mass must land somewhere.
        assert p.sum() > 0.0


class TestExpectedCoverage:
    @given(center=centers, sigma=sigmas, rects=hq_rect_sets())
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_deterministic_extremes(self, center, sigma, rects):
        yaw, pitch = center
        w = hypothesis_weights(HYP, yaw, pitch, sigma)
        profile = coverage_profile(HYP, rects)
        expected = expected_coverage(w, HYP, rects)
        assert np.all(profile >= 0.0) and np.all(profile <= 1.0)
        # A convex combination of per-hypothesis coverages can never
        # beat the best hypothesis or undercut the worst.
        assert profile.min() - 1e-9 <= expected <= profile.max() + 1e-9
        assert 0.0 <= expected <= 1.0 + 1e-9

    @given(center=centers, rects=hq_rect_sets())
    @settings(max_examples=40, deadline=None)
    def test_tight_sigma_approaches_nearest_hypothesis(self, center, rects):
        # As sigma -> 0 the weight mass collapses onto the nearest
        # hypothesis center, so expected coverage approaches its
        # deterministic coverage.
        yaw, pitch = center
        w = hypothesis_weights(HYP, yaw, pitch, 0.5)
        profile = coverage_profile(HYP, rects)
        # Weights are shared among near-equidistant hypotheses (ties
        # are common near the poles), so bound by the profile spread
        # among the dominant hypotheses, widened by the total weight
        # of the excluded tail (coverage is in [0, 1], so the tail can
        # shift the expectation by at most its own mass).
        dominant = w > 1e-6
        tail = float(w[~dominant].sum())
        top = profile[dominant]
        expected = expected_coverage(w, HYP, rects)
        assert top.min() - tail - 1e-9 <= expected <= top.max() + tail + 1e-9


class TestPanoWeight:
    @given(pitch=st.floats(-90.0, 90.0), discount=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_weight_bounded_and_symmetric(self, pitch, discount):
        pano = PanoWeight(polar_discount=discount)
        w = pano.weight(pitch)
        assert 1.0 - discount - 1e-12 <= w <= 1.0
        assert w == pytest.approx(pano.weight(-pitch))

    def test_equator_undiscounted_poles_discounted(self):
        pano = PanoWeight(polar_discount=0.35)
        assert pano.weight(0.0) == pytest.approx(1.0)
        assert pano.weight(90.0) == pytest.approx(0.65)


class TestErrorModel:
    @given(
        base=st.floats(0.0, 30.0),
        growth=st.floats(0.0, 30.0),
        horizon=st.floats(0.0, 10.0) | st.floats(-5.0, 0.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_parametric_sigma_bounded(self, base, growth, horizon):
        model = AngularErrorModel(
            base_sigma_deg=base, growth_deg_per_s=growth
        )
        sigma = model.sigma_deg(horizon)
        assert 0.0 <= sigma <= model.max_sigma_deg
        if base == 0.0 and growth == 0.0:
            assert model.is_degenerate
            assert sigma == 0.0

    @given(horizon=st.floats(0.0, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_table_interpolation_stays_within_range(self, horizon):
        model = AngularErrorModel(
            horizons_s=(0.25, 0.5, 1.0, 2.0),
            sigmas_deg=(4.0, 7.0, 12.0, 20.0),
        )
        sigma = model.sigma_deg(horizon)
        assert 4.0 <= sigma <= 20.0

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_fit_reproducible_from_identical_traces(self, seed):
        rng = np.random.default_rng(seed)
        t = np.arange(0.0, 8.0, 0.1)
        yaw = np.cumsum(rng.normal(0.0, 2.0, t.size))
        pitch = np.clip(
            np.cumsum(rng.normal(0.0, 1.0, t.size)), -90.0, 90.0
        )
        trace = HeadTrace(
            user_id=0, video_id=0, timestamps=t, yaw_unwrapped=yaw,
            pitch=pitch,
        )
        a = fit_error_model([trace], horizons_s=(0.25, 0.5, 1.0))
        b = fit_error_model([trace], horizons_s=(0.25, 0.5, 1.0))
        assert a.sigmas_deg == b.sigmas_deg
        assert a.horizons_s == b.horizons_s
        assert all(s >= 0.0 for s in a.sigmas_deg)
