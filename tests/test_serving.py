"""Tests for the online batched ABR decision service.

The service's contract is bit-identical decisions to in-process
``OursScheme.plan`` at any batch size, so most tests here drive both
paths on the same requests and compare :class:`DownloadPlan` objects
for exact equality — including through the batching dispatcher, N
concurrent client threads, and the JSON-over-TCP wire protocol.
"""

from __future__ import annotations

import math
import pickle
import threading

import numpy as np
import pytest

from repro.core.controller import OursScheme
from repro.serving import (
    DecisionService,
    PlanRequest,
    PlanRequestError,
    RemoteClient,
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
    VideoPlanner,
)
from repro.serving.protocol import (
    decode_request_line,
    decode_response_line,
    encode_request_line,
    encode_response_line,
)
from repro.streaming import PopulationEngine, SessionConfig, run_session

CFG = SessionConfig(max_segments=10)


@pytest.fixture(scope="module")
def scheme(device):
    return OursScheme(device=device)


@pytest.fixture(scope="module")
def planner2(scheme, manifest2, ptiles2):
    return VideoPlanner(scheme, manifest2, ptiles2)


@pytest.fixture(scope="module")
def planner8(scheme, manifest8, ptiles8):
    return VideoPlanner(scheme, manifest8, ptiles8)


def _requests(video_id, num_segments, count=24):
    """A deterministic spread of plausible plan requests."""
    out = []
    for i in range(count):
        k = (7 * i) % num_segments
        out.append(PlanRequest(
            video_id=video_id,
            segment_index=k,
            buffer_s=0.25 * (i % 13),
            bandwidth_mbps=4.0 + 3.0 * (i % 7),
            yaw=(37.0 * i) % 360.0,
            pitch=-40.0 + 5.0 * (i % 17),
            speed_deg_s=4.0 * (i % 5),
            window=min(5, num_segments - k),
        ))
    return out


class TestRequestValidation:
    GOOD = dict(video_id=2, segment_index=0, buffer_s=1.0,
                bandwidth_mbps=10.0, yaw=10.0, pitch=5.0)

    def _expect(self, code, **overrides):
        with pytest.raises(PlanRequestError) as err:
            PlanRequest(**{**self.GOOD, **overrides}).validate()
        assert err.value.code == code
        assert isinstance(err.value, ValueError)

    def test_valid_passes(self):
        PlanRequest(**self.GOOD).validate()

    def test_bad_video_id(self):
        self._expect("bad_request", video_id="two")
        self._expect("bad_request", video_id=True)

    def test_bad_segment(self):
        self._expect("bad_segment", segment_index=-3)
        self._expect("bad_segment", segment_index=1.5)

    def test_bad_buffer(self):
        self._expect("bad_buffer", buffer_s=float("nan"))
        self._expect("bad_buffer", buffer_s=float("inf"))
        self._expect("bad_buffer", buffer_s=-0.5)

    def test_bad_bandwidth(self):
        self._expect("bad_bandwidth", bandwidth_mbps=0.0)
        self._expect("bad_bandwidth", bandwidth_mbps=-2.0)
        self._expect("bad_bandwidth", bandwidth_mbps=float("nan"))

    def test_bad_viewport(self):
        self._expect("bad_viewport", yaw=float("nan"))
        self._expect("bad_viewport", fov_h=0.0)
        self._expect("bad_viewport", fov_v=200.0)

    def test_bad_speed_window_fps(self):
        self._expect("bad_speed", speed_deg_s=float("-inf"))
        self._expect("bad_window", window=0)
        self._expect("bad_segment_seconds", segment_seconds=0.0)
        self._expect("bad_fps", fps=-30.0)


class TestPlannerParity:
    """Acceptance criterion: service decisions == OursScheme.plan at
    batch sizes 1, 8, and max."""

    def test_plan_batch_matches_plan_one(self, planner2, manifest2):
        requests = _requests(2, manifest2.num_segments)
        expected = [planner2.plan_one(r) for r in requests]
        assert planner2.plan_batch(requests) == expected

    @pytest.mark.parametrize("max_batch", [1, 8, None])
    def test_service_parity_at_batch_size(self, planner2, manifest2,
                                          max_batch):
        requests = _requests(2, manifest2.num_segments)
        expected = [planner2.plan_one(r) for r in requests]
        config = ServiceConfig(
            max_batch=max_batch or len(requests), batch_wait_us=200.0
        )
        with ServiceRunner(DecisionService([planner2], config)) as runner:
            got = runner.plan_many(requests)
        assert got == expected

    def test_zero_wait_still_correct(self, planner2, manifest2):
        requests = _requests(2, manifest2.num_segments, count=8)
        expected = [planner2.plan_one(r) for r in requests]
        config = ServiceConfig(max_batch=8, batch_wait_us=0.0)
        with ServiceRunner(DecisionService([planner2], config)) as runner:
            assert runner.plan_many(requests) == expected

    def test_batching_actually_happens(self, planner2, manifest2):
        requests = _requests(2, manifest2.num_segments)
        service = DecisionService(
            [planner2], ServiceConfig(max_batch=64, batch_wait_us=500.0)
        )
        with ServiceRunner(service) as runner:
            runner.plan_many(requests)
        assert service.stats.requests == len(requests)
        assert service.stats.max_batch_seen > 1
        snap = service.stats.snapshot()
        assert snap["p99_ms"] >= snap["p50_ms"] >= 0.0


class TestServiceErrors:
    @pytest.fixture()
    def runner(self, planner2):
        service = DecisionService(
            [planner2], ServiceConfig(max_batch=8, batch_wait_us=0.0)
        )
        with ServiceRunner(service) as r:
            yield r

    def _code(self, runner, request):
        with pytest.raises(PlanRequestError) as err:
            runner.plan(request)
        return err.value.code

    def test_error_codes_surface(self, runner, manifest2):
        good = _requests(2, manifest2.num_segments, count=1)[0]
        bad = [
            ("unknown_video", PlanRequest(**{
                **good.__dict__, "video_id": 999})),
            ("bad_buffer", PlanRequest(**{
                **good.__dict__, "buffer_s": float("nan")})),
            ("bad_segment", PlanRequest(**{
                **good.__dict__, "segment_index": -1})),
            ("bad_segment", PlanRequest(**{
                **good.__dict__, "segment_index": manifest2.num_segments})),
            ("bad_window", PlanRequest(**{
                **good.__dict__, "segment_index": manifest2.num_segments - 1,
                "window": 2})),
            ("bad_fps", PlanRequest(**{**good.__dict__, "fps": 7.0})),
        ]
        for code, request in bad:
            assert self._code(runner, request) == code
        # the worker survived all of it
        expect = runner.service.planners[2].plan_one(good)
        assert runner.plan(good) == expect
        assert runner.service.stats.errors == len(bad)

    def test_errors_dont_poison_batchmates(self, runner, planner2,
                                           manifest2):
        requests = _requests(2, manifest2.num_segments, count=6)
        expected = [planner2.plan_one(r) for r in requests]
        mixed = list(requests)
        mixed.insert(3, PlanRequest(**{
            **requests[0].__dict__, "buffer_s": float("inf")}))
        results = []
        errors = []

        def one(req, slot):
            try:
                results[slot] = runner.plan(req)
            except PlanRequestError as err:
                results[slot] = err
                errors.append(err)

        results = [None] * len(mixed)
        threads = [
            threading.Thread(target=one, args=(req, i))
            for i, req in enumerate(mixed)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        del results[3]
        assert results == expected
        assert len(errors) == 1 and errors[0].code == "bad_buffer"


class TestConcurrencyIdentity:
    def test_threads_match_serial_single_video(self, planner2, manifest2):
        requests = _requests(2, manifest2.num_segments, count=40)
        expected = [planner2.plan_one(r) for r in requests]
        service = DecisionService(
            [planner2], ServiceConfig(max_batch=16, batch_wait_us=100.0)
        )
        chunks = [requests[i::4] for i in range(4)]
        want = [[expected[j] for j in range(i, len(requests), 4)]
                for i in range(4)]
        with ServiceRunner(service) as runner:
            got = [None] * 4

            def work(i):
                got[i] = runner.plan_many(chunks[i])

            threads = [threading.Thread(target=work, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert got == want

    def test_threads_match_serial_multi_video(self, planner2, planner8,
                                              manifest2, manifest8):
        reqs2 = _requests(2, manifest2.num_segments, count=20)
        reqs8 = _requests(8, manifest8.num_segments, count=20)
        want2 = [planner2.plan_one(r) for r in reqs2]
        want8 = [planner8.plan_one(r) for r in reqs8]
        service = DecisionService(
            [planner2, planner8],
            ServiceConfig(max_batch=32, batch_wait_us=200.0),
        )
        with ServiceRunner(service) as runner:
            got = {}

            def work(key, reqs):
                got[key] = runner.plan_many(reqs)

            threads = [
                threading.Thread(target=work, args=(2, reqs2)),
                threading.Thread(target=work, args=(8, reqs8)),
                threading.Thread(target=work, args=("2b", reqs2)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert got[2] == want2
        assert got["2b"] == want2
        assert got[8] == want8


class TestMemoSafety:
    def test_mpc_memo_single_instance_under_races(self, device):
        scheme = OursScheme(device=device)
        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            seen.append(scheme._mpc(1.0))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(m) for m in seen}) == 1

    def test_sizes_for_single_instance_under_races(self, planner2,
                                                   ptiles2):
        tables = planner2.tables
        ptile = ptiles2[0].ptiles[0]
        tables._sizes.clear()
        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            seen.append(tables.sizes_for(ptile))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(s) for s in seen}) == 1

    def test_scheme_pickles_without_locks(self, scheme, planner2,
                                          manifest2):
        clone = pickle.loads(pickle.dumps(scheme))
        requests = _requests(2, manifest2.num_segments, count=4)
        fresh = VideoPlanner(clone, manifest2, planner2.ptiles)
        assert [fresh.plan_one(r) for r in requests] == [
            planner2.plan_one(r) for r in requests
        ]

    def test_plan_tables_pickle_drops_cache(self, planner2, ptiles2):
        tables = planner2.tables
        tables.sizes_for(ptiles2[0].ptiles[0])
        clone = pickle.loads(pickle.dumps(tables))
        assert clone._sizes == {}
        got = clone.sizes_for(ptiles2[0].ptiles[0])
        np.testing.assert_array_equal(
            got, tables.sizes_for(ptiles2[0].ptiles[0])
        )


class TestProtocol:
    def test_request_round_trip(self):
        request = PlanRequest(video_id=2, segment_index=3, buffer_s=1.25,
                              bandwidth_mbps=math.pi, yaw=123.456,
                              pitch=-7.89, speed_deg_s=11.0, window=5)
        rid, back = decode_request_line(encode_request_line(17, request))
        assert rid == 17
        assert back == request

    def test_response_round_trip_exact(self, planner2, manifest2):
        plan = planner2.plan_one(
            _requests(2, manifest2.num_segments, count=1)[0]
        )
        rid, back = decode_response_line(encode_response_line(3, plan))
        assert rid == 3
        assert back == plan

    def test_error_round_trip(self):
        err = PlanRequestError("bad_buffer", "buffer_s must be finite")
        line = encode_response_line(9, err)
        with pytest.raises(PlanRequestError) as caught:
            decode_response_line(line)
        assert caught.value.code == "bad_buffer"
        assert caught.value.request_id == 9

    def test_malformed_request_lines(self):
        for line in (b"not json\n", b"[1, 2]\n", b'{"id": 1}\n',
                     b'{"id": 1, "request": {"video_id": 2}}\n',
                     b'{"id": 1, "request": {"video_id": 2, "bogus": 1}}\n'):
            with pytest.raises(PlanRequestError) as err:
                decode_request_line(line)
            assert err.value.code == "bad_request"


class TestTcp:
    def test_remote_parity_and_errors(self, planner2, manifest2):
        requests = _requests(2, manifest2.num_segments, count=16)
        expected = [planner2.plan_one(r) for r in requests]
        service = DecisionService(
            [planner2], ServiceConfig(max_batch=16, batch_wait_us=200.0)
        )
        with ServiceRunner(service) as runner:
            port = runner.serve_tcp(port=0)
            with RemoteClient(port=port) as client:
                assert client.plan_many(requests) == expected
                with pytest.raises(PlanRequestError) as err:
                    client.plan(PlanRequest(**{
                        **requests[0].__dict__, "video_id": 41}))
                assert err.value.code == "unknown_video"
                # connection survives the error
                assert client.plan(requests[0]) == expected[0]

    def test_concurrent_remote_clients(self, planner2, manifest2):
        requests = _requests(2, manifest2.num_segments, count=12)
        expected = [planner2.plan_one(r) for r in requests]
        service = DecisionService(
            [planner2], ServiceConfig(max_batch=36, batch_wait_us=300.0)
        )
        with ServiceRunner(service) as runner:
            port = runner.serve_tcp(port=0)
            got = [None] * 3

            def work(i):
                with RemoteClient(port=port) as client:
                    got[i] = client.plan_many(requests)

            threads = [threading.Thread(target=work, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert got == [expected] * 3


class TestStreamingSeams:
    def test_run_session_via_service(self, scheme, planner2, manifest2,
                                     ptiles2, small_dataset,
                                     network_traces, device):
        trace = small_dataset.test_traces(2)[0]
        baseline = run_session(scheme, manifest2, trace, network_traces[1],
                               device, ptiles=ptiles2, config=CFG)
        service = DecisionService(
            [planner2], ServiceConfig(max_batch=8, batch_wait_us=100.0)
        )
        with ServiceRunner(service) as runner:
            served = run_session(ServiceClient(runner), manifest2, trace,
                                 network_traces[1], device, ptiles=ptiles2,
                                 config=CFG)
        assert served.records == baseline.records

    def test_population_engine_via_service(self, scheme, planner2,
                                           manifest2, ptiles2,
                                           small_dataset, network_traces,
                                           device):
        traces = small_dataset.test_traces(2)[:4]
        baseline = PopulationEngine(
            scheme, manifest2, traces, network_traces[1], device,
            ptiles=ptiles2, config=CFG,
        ).run()
        service = DecisionService(
            [planner2], ServiceConfig(max_batch=16, batch_wait_us=100.0)
        )
        with ServiceRunner(service) as runner:
            served = PopulationEngine(
                scheme, manifest2, traces, network_traces[1], device,
                ptiles=ptiles2, config=CFG,
                decision_client=ServiceClient(runner),
            ).run()
        for name in ("transmission_j", "decoding_j", "rendering_j",
                     "qoe_sum", "quality_sum", "frame_rate_sum",
                     "total_size_mbit", "total_stall_s"):
            np.testing.assert_array_equal(
                getattr(served, name), getattr(baseline, name),
                err_msg=name,
            )
        assert service.stats.requests > 0
        assert service.stats.errors == 0

    def test_decision_client_rejected_for_other_schemes(
            self, manifest2, small_dataset, network_traces, device):
        from repro.streaming import CtileScheme

        with pytest.raises(ValueError, match="decision_client"):
            PopulationEngine(
                CtileScheme(), manifest2, small_dataset.test_traces(2),
                network_traces[1], device, config=CFG,
                decision_client=object(),
            )
