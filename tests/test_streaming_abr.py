"""Unit tests for the baseline ABR rule."""

import pytest

from repro.streaming import ThroughputBufferABR


SIZES = {1: 1.0, 2: 2.0, 3: 4.0, 4: 8.0, 5: 16.0}


def size_of(quality):
    return SIZES[int(quality)]


class TestBudget:
    def test_steady_state_budget(self):
        abr = ThroughputBufferABR()
        assert abr.budget_mbit(4.0, 2.0) == pytest.approx(4.0 * 0.95)

    def test_low_buffer_tightens(self):
        abr = ThroughputBufferABR()
        low = abr.budget_mbit(4.0, 0.5)
        normal = abr.budget_mbit(4.0, 2.0)
        assert low < normal

    def test_surplus_disabled_by_default(self):
        abr = ThroughputBufferABR()
        assert abr.budget_mbit(4.0, 3.0) == abr.budget_mbit(4.0, 2.0)

    def test_surplus_opt_in(self):
        abr = ThroughputBufferABR(surplus_scale=0.5)
        assert abr.budget_mbit(4.0, 3.0) > abr.budget_mbit(4.0, 2.0)

    def test_validation(self):
        abr = ThroughputBufferABR()
        with pytest.raises(ValueError):
            abr.budget_mbit(0.0, 2.0)
        with pytest.raises(ValueError):
            abr.budget_mbit(4.0, -1.0)
        with pytest.raises(ValueError):
            ThroughputBufferABR(safety=0.0)


class TestChooseQuality:
    def test_picks_highest_fitting(self):
        abr = ThroughputBufferABR(safety=1.0)
        assert abr.choose_quality(size_of, 4.5, 2.0) == 3

    def test_falls_back_to_lowest(self):
        abr = ThroughputBufferABR()
        assert abr.choose_quality(size_of, 0.5, 2.0) == 1

    def test_caps_at_highest(self):
        abr = ThroughputBufferABR(safety=1.0)
        assert abr.choose_quality(size_of, 100.0, 2.0) == 5

    def test_monotone_in_bandwidth(self):
        abr = ThroughputBufferABR()
        picks = [abr.choose_quality(size_of, bw, 2.0) for bw in (1, 3, 6, 12, 24)]
        assert picks == sorted(picks)

    def test_custom_quality_list(self):
        abr = ThroughputBufferABR(safety=1.0)
        pick = abr.choose_quality(lambda q: q, 3.0, 2.0, qualities=[1.0, 2.5, 3.5])
        assert pick == 2.5

    def test_empty_qualities_rejected(self):
        abr = ThroughputBufferABR()
        with pytest.raises(ValueError):
            abr.choose_quality(size_of, 4.0, 2.0, qualities=[])

    def test_low_buffer_drops_quality(self):
        abr = ThroughputBufferABR()
        normal = abr.choose_quality(size_of, 4.5, 2.0)
        starved = abr.choose_quality(size_of, 4.5, 0.2)
        assert starved <= normal
