"""Regression gate: every cache key moves when the encoding ladder does.

A per-video ladder changes encoded sizes, plan tables, and session
outcomes, so *every* content-addressed reuse path must fold the ladder
into its key — manifests, the ladder search itself, sweep/results
digests, columnar result shards, and the serving plan-table memos.  A
single stale path would silently replay fixed-ladder results under an
optimized ladder.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import OursScheme
from repro.encoding import EncodingLadder, LadderSearchConfig
from repro.experiments import (
    ShardedResultsStore,
    SweepContext,
    content_digest,
    make_setup,
    results_shard_key,
    structural_fingerprint,
    sweep_context_digest,
)
from repro.experiments.artifacts import (
    encoder_fingerprint,
    ladder_key,
    manifest_key,
)
from repro.power import PIXEL_3
from repro.video import VideoManifest

ALT_LADDER = EncodingLadder(crfs=(41.0, 33.0, 28.0, 23.0, 18.0))


@pytest.fixture(scope="module")
def alt_encoder(encoder):
    return dataclasses.replace(encoder, ladder=ALT_LADDER)


class TestFingerprints:
    def test_encoder_fingerprint_includes_ladder(self, encoder, alt_encoder):
        assert encoder_fingerprint(encoder) != encoder_fingerprint(alt_encoder)

    def test_manifest_key_changes(self, video8, encoder, alt_encoder):
        assert manifest_key(video8, encoder) != manifest_key(video8, alt_encoder)

    def test_structural_fingerprint_of_manifest_changes(
        self, video8, encoder, alt_encoder
    ):
        a = content_digest(structural_fingerprint(VideoManifest(video8, encoder)))
        b = content_digest(structural_fingerprint(VideoManifest(video8, alt_encoder)))
        assert a != b

    def test_ladder_key_axes(self, video8, video2, encoder):
        targets = (40.0, 50.0, 60.0, 70.0, 80.0)
        base = ladder_key(video8, encoder, targets, LadderSearchConfig(), None)
        assert ladder_key(
            video2, encoder, targets, LadderSearchConfig(), None
        ) != base
        assert ladder_key(
            video8, encoder, (41.0, 50.0, 60.0, 70.0, 80.0),
            LadderSearchConfig(), None,
        ) != base
        assert ladder_key(
            video8, encoder, targets,
            LadderSearchConfig(movable_levels=None), None,
        ) != base
        # Same inputs, same key: the cache is deterministic.
        assert ladder_key(
            video8, encoder, targets, LadderSearchConfig(), None
        ) == base


class TestSetupAndPrepare:
    @pytest.fixture(scope="class")
    def setup(self):
        return make_setup(max_duration_s=20, n_users=6, n_train=4,
                          video_ids=(8,))

    def test_with_ladders_rebuilds_manifests(self, setup):
        override = setup.with_ladders({8: ALT_LADDER})
        assert override.manifest(8).encoder.ladder == ALT_LADDER
        # The base setup's memo is untouched.
        assert setup.manifest(8).encoder.ladder != ALT_LADDER

    def test_with_ladders_shares_ptiles(self, setup):
        # Ptile clustering depends only on traces and geometry, never on
        # the ladder, so the expensive artifacts are shared, not rebuilt.
        override = setup.with_ladders({8: ALT_LADDER})
        assert override.ptiles(8) is setup.ptiles(8)

    def test_prepare_artifact_keys_disjoint(self, setup, tmp_path):
        # Two prepares under different ladders on one store must not
        # reuse each other's manifests.
        from repro.experiments import ArtifactStore

        store = ArtifactStore(tmp_path / "cache")
        video = setup.dataset.video(8)
        a = manifest_key(video, setup.encoder)
        b = manifest_key(
            video, dataclasses.replace(setup.encoder, ladder=ALT_LADDER)
        )
        store.put("manifest", a, setup.manifest(8))
        assert store.get("manifest", b) is None


class TestResultsKeys:
    @pytest.fixture(scope="class")
    def contexts(self):
        setup = make_setup(max_duration_s=20, n_users=6, n_train=4,
                           video_ids=(8,))
        override = setup.with_ladders({8: ALT_LADDER})
        scheme = OursScheme(device=PIXEL_3)

        def ctx(s):
            return SweepContext(
                schemes={"ours": scheme},
                device=PIXEL_3,
                networks={"trace2": s.trace2},
                manifests={8: s.manifest(8)},
                head_traces={8: tuple(s.dataset.test_traces(8)[:1])},
                ptiles={8: s.ptiles(8)},
            )

        return ctx(setup), ctx(override)

    def test_sweep_context_digest_changes(self, contexts):
        base, override = contexts
        assert sweep_context_digest(base) != sweep_context_digest(override)

    def test_results_shard_keys_disjoint(self, contexts):
        base, override = contexts
        assert results_shard_key(
            sweep_context_digest(base), 8
        ) != results_shard_key(sweep_context_digest(override), 8)

    def test_sharded_store_no_cross_reads(self, contexts, tmp_path):
        base, override = contexts
        store = ShardedResultsStore(tmp_path / "results")
        key_a = results_shard_key(sweep_context_digest(base), 8)
        key_b = results_shard_key(sweep_context_digest(override), 8)
        store.put("results", key_a, {"job": "payload"})
        assert store.get("results", key_b) is None


class TestServingMemos:
    def test_plan_tables_memo_split_by_ladder(self, video8, encoder,
                                              alt_encoder, device):
        from repro.geometry import DEFAULT_GRID, Viewport
        from repro.streaming.schemes import PlanContext

        scheme = OursScheme(device=device)
        for enc in (encoder, alt_encoder):
            manifest = VideoManifest(video8, enc)
            ctx = PlanContext(
                segment_index=0,
                manifest=manifest[0],
                predicted_viewport=Viewport(yaw=0.0, pitch=0.0),
                buffer_s=2.0,
                bandwidth_mbps=20.0,
                grid=DEFAULT_GRID,
                video_manifest=manifest,
            )
            scheme._plan_tables(ctx)
        # One memo entry per ladder: the optimized ladder never replays
        # the fixed ladder's tables.
        assert len(scheme._tables_cache) == 2
