"""Cross-module integration and failure-injection tests."""

import numpy as np
import pytest

from repro import (
    CtileScheme,
    EncoderModel,
    NontileScheme,
    OursScheme,
    PIXEL_3,
    PtileScheme,
    VideoManifest,
    build_video_ptiles,
    run_session,
)
from repro.qoe import QoEModel, QoEWeights
from repro.streaming import SessionConfig
from repro.geometry import DEFAULT_GRID
from repro.traces import NetworkTrace


class TestNetworkFailureInjection:
    """Sessions survive hostile network conditions."""

    def test_bandwidth_cliff_causes_stalls_not_crashes(
        self, small_dataset, manifest2, device
    ):
        # 8 Mbps collapsing to 0.3 Mbps: the client must stall and
        # recover, never crash or corrupt its buffer accounting.
        cliff = NetworkTrace(
            "cliff", np.concatenate([np.full(10, 8.0), np.full(30, 0.3)])
        )
        result = run_session(
            CtileScheme(), manifest2, small_dataset.test_traces(2)[0],
            cliff, device,
        )
        assert result.num_segments == manifest2.num_segments
        assert result.rebuffer_count > 0
        for record in result.records:
            assert record.buffer_before_s >= 0.0

    def test_starvation_floor_quality(self, small_dataset, manifest2, device):
        starved = NetworkTrace("starved", np.full(40, 0.25))
        result = run_session(
            CtileScheme(), manifest2, small_dataset.test_traces(2)[0],
            starved, device, config=SessionConfig(max_segments=10),
        )
        assert result.mean_quality_level == 1.0

    def test_gigabit_saturates_ladder(self, small_dataset, manifest2, device):
        fat = NetworkTrace("fat", np.full(40, 1000.0))
        result = run_session(
            CtileScheme(), manifest2, small_dataset.test_traces(2)[0],
            fat, device, config=SessionConfig(max_segments=10),
        )
        assert result.mean_quality_level == pytest.approx(5.0, abs=0.5)

    def test_oscillating_network(self, small_dataset, manifest2, device):
        square = NetworkTrace(
            "square", np.tile([8.0, 8.0, 1.0, 1.0], 10)
        )
        result = run_session(
            NontileScheme(), manifest2, small_dataset.test_traces(2)[0],
            square, device,
        )
        assert result.total_energy_j > 0


class TestSchemeConsistency:
    """Invariants that must hold across any scheme on the same inputs."""

    @pytest.fixture(scope="class")
    def all_results(self, small_dataset, manifest2, ptiles2, ftiles2,
                    network_traces, device):
        from repro.streaming import FtileScheme

        schemes = [
            CtileScheme(), FtileScheme(), NontileScheme(), PtileScheme(),
            OursScheme(device=device),
        ]
        head = small_dataset.test_traces(2)[0]
        return {
            s.name: run_session(
                s, manifest2, head, network_traces[1], device,
                ptiles=ptiles2, ftiles=ftiles2,
            )
            for s in schemes
        }

    def test_every_scheme_completes(self, all_results, manifest2):
        for result in all_results.values():
            assert result.num_segments == manifest2.num_segments

    def test_energy_ordering(self, all_results):
        """The paper's Fig. 9 ordering on a single session."""
        energy = {name: r.total_energy_j for name, r in all_results.items()}
        assert energy["ours"] <= energy["ptile"] * 1.02
        assert energy["ptile"] < energy["ctile"]
        assert energy["ftile"] < energy["ctile"]

    def test_qoe_ordering(self, all_results):
        qoe = {name: r.mean_qoe for name, r in all_results.items()}
        assert qoe["ptile"] > qoe["ctile"]
        assert qoe["ours"] > qoe["ctile"] * 0.95

    def test_decoding_energy_reflects_table1(self, all_results):
        decode = {name: r.energy.decoding_j for name, r in all_results.items()}
        assert decode["ours"] < decode["ctile"]
        assert decode["ptile"] < decode["ftile"] < decode["ctile"]

    def test_ours_reduces_frame_rate_sometimes(self, all_results):
        assert all_results["ours"].mean_frame_rate < 30.0
        assert all_results["ptile"].mean_frame_rate == 30.0


class TestCustomQoEWeights:
    def test_zero_weights_remove_penalties(self, small_dataset, manifest2,
                                           network_traces, device):
        head = small_dataset.test_traces(2)[0]
        plain = run_session(
            CtileScheme(), manifest2, head, network_traces[1], device,
            qoe=QoEModel(weights=QoEWeights(0.0, 0.0)),
            config=SessionConfig(max_segments=10),
        )
        weighted = run_session(
            CtileScheme(), manifest2, head, network_traces[1], device,
            qoe=QoEModel(weights=QoEWeights(5.0, 5.0)),
            config=SessionConfig(max_segments=10),
        )
        assert plain.mean_qoe >= weighted.mean_qoe


class TestSmallGrids:
    def test_pipeline_on_2x4_grid(self, small_dataset, network_traces, device):
        """The whole stack works on a non-default tiling."""
        from repro.geometry import TileGrid

        grid = TileGrid(2, 4)
        encoder = EncoderModel(grid=grid)
        video = small_dataset.video(2)
        manifest = VideoManifest(video, encoder)
        ptiles = build_video_ptiles(
            video, small_dataset.train_traces(2), grid
        )
        result = run_session(
            PtileScheme(), manifest, small_dataset.test_traces(2)[0],
            network_traces[1], device, ptiles=ptiles,
            config=SessionConfig(max_segments=10),
        )
        assert result.num_segments == 10


class TestReproducibility:
    def test_full_pipeline_deterministic(self, small_dataset, network_traces,
                                         device):
        def run_once():
            video = small_dataset.video(8)
            encoder = EncoderModel()
            manifest = VideoManifest(video, encoder)
            ptiles = build_video_ptiles(
                video, small_dataset.train_traces(8), DEFAULT_GRID
            )
            return run_session(
                OursScheme(device=device), manifest,
                small_dataset.test_traces(8)[0], network_traces[1], device,
                ptiles=ptiles, config=SessionConfig(max_segments=15),
            )

        a, b = run_once(), run_once()
        assert a.total_energy_j == b.total_energy_j
        assert a.mean_qoe == b.mean_qoe
        assert [r.quality for r in a.records] == [r.quality for r in b.records]
        assert [r.frame_rate for r in a.records] == [
            r.frame_rate for r in b.records
        ]
