"""Unit tests for ridge regression and viewport prediction."""

import numpy as np
import pytest

from repro.prediction import RidgeRegressor, ViewportPredictor


class TestRidgeRegressor:
    def test_fits_line_exactly_without_regularization(self):
        x = np.arange(10.0)
        y = 3.0 * x + 2.0
        model = RidgeRegressor(lam=0.0).fit(x, y)
        assert model.predict(np.array([20.0]))[0] == pytest.approx(62.0)

    def test_regularization_shrinks_slope(self):
        x = np.arange(10.0)
        y = 3.0 * x
        free = RidgeRegressor(lam=0.0).fit(x, y)
        ridge = RidgeRegressor(lam=100.0).fit(x, y)
        assert abs(ridge.weights[1]) < abs(free.weights[1])

    def test_intercept_not_regularized(self):
        x = np.zeros(20)
        y = np.full(20, 7.0)
        model = RidgeRegressor(lam=1000.0).fit(x, y)
        assert model.predict(np.array([0.0]))[0] == pytest.approx(7.0)

    def test_multifeature(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + 4.0
        model = RidgeRegressor(lam=1e-6).fit(x, y)
        pred = model.predict(x)
        assert np.allclose(pred, y, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RidgeRegressor(lam=-1.0)
        with pytest.raises(ValueError):
            RidgeRegressor().fit(np.zeros((2, 1)), np.zeros(3))
        with pytest.raises(ValueError):
            RidgeRegressor().fit(np.zeros((0, 1)), np.zeros(0))
        with pytest.raises(RuntimeError):
            RidgeRegressor().predict(np.zeros((1, 1)))

    def test_is_fitted(self):
        model = RidgeRegressor()
        assert not model.is_fitted
        model.fit(np.arange(5.0), np.arange(5.0))
        assert model.is_fitted


class TestViewportPredictor:
    def test_requires_observations(self):
        with pytest.raises(RuntimeError):
            ViewportPredictor().predict_center(1.0)

    def test_few_samples_fall_back_to_last(self):
        p = ViewportPredictor()
        p.observe(0.0, 100.0, 10.0)
        p.observe(0.1, 102.0, 10.0)
        yaw, pitch = p.predict_center(1.0)
        assert yaw == pytest.approx(102.0)
        assert pitch == pytest.approx(10.0)

    def test_linear_trend_extrapolated(self):
        p = ViewportPredictor(lam=1e-6)
        for i in range(20):
            p.observe(i * 0.1, 100.0 + i, 0.0)  # 10 deg/s
        yaw, _ = p.predict_center(2.4)  # 0.5 s ahead
        assert yaw == pytest.approx(124.0, abs=0.5)

    def test_extrapolation_capped(self):
        p = ViewportPredictor(lam=1e-6, max_extrapolation_s=1.0)
        for i in range(20):
            p.observe(i * 0.1, 100.0 + i, 0.0)
        yaw_far, _ = p.predict_center(10.0)
        # Only 1 s of trend applied: 119 + 10 deg.
        assert yaw_far == pytest.approx(129.0, abs=1.0)

    def test_seam_crossing_unwrapped(self):
        p = ViewportPredictor(lam=1e-6)
        yaws = [356.0, 358.0, 0.0, 2.0, 4.0]
        for i, yaw in enumerate(yaws):
            p.observe(i * 0.1, yaw, 0.0)
        yaw, _ = p.predict_center(0.6)
        assert 4.0 < yaw < 12.0  # continues forward, no 360 jump

    def test_pitch_clamped(self):
        p = ViewportPredictor(lam=1e-6)
        for i in range(20):
            p.observe(i * 0.1, 0.0, 60.0 + i * 2.0)
        _, pitch = p.predict_center(3.0)
        assert pitch <= 90.0

    def test_window_eviction(self):
        p = ViewportPredictor(window_s=1.0)
        for i in range(50):
            p.observe(i * 0.1, 0.0, 0.0)
        assert p.num_observations <= 11

    def test_time_ordering_enforced(self):
        p = ViewportPredictor()
        p.observe(0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            p.observe(0.0, 1.0, 0.0)

    def test_recent_speed(self):
        p = ViewportPredictor()
        for i in range(11):
            p.observe(i * 0.1, i * 1.0, 0.0)  # 10 deg/s
        assert p.recent_speed_deg_s() == pytest.approx(10.0, abs=0.5)

    def test_recent_speed_empty(self):
        assert ViewportPredictor().recent_speed_deg_s() == 0.0

    def test_predict_viewport_object(self):
        p = ViewportPredictor(fov_deg=90.0)
        p.observe(0.0, 10.0, 0.0)
        vp = p.predict_viewport(1.0)
        assert vp.fov_h == 90.0
        assert vp.yaw == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ViewportPredictor(window_s=0.0)


class TestPredictionBoundary:
    """Targets past the usable horizon clamp — and say so (S1).

    ``predict_center`` extrapolates at most ``max_extrapolation_s``
    past the last observation; ``prediction_end_s`` exposes the time a
    prediction is actually *for*, so callers (the error-model fit, the
    robust planner) never mistake a clamped prediction for a
    full-horizon one.
    """

    def test_prediction_end_clamps_to_extrapolation_cap(self):
        p = ViewportPredictor(lam=1e-6, max_extrapolation_s=1.0)
        for i in range(20):
            p.observe(i * 0.1, 100.0 + i, 0.0)  # last sample at t=1.9
        assert p.prediction_end_s(10.0) == pytest.approx(2.9)
        # In-range targets are honored exactly.
        assert p.prediction_end_s(2.4) == pytest.approx(2.4)
        # Past targets clamp to the last observation.
        assert p.prediction_end_s(0.5) == pytest.approx(1.9)

    def test_prediction_end_matches_capped_prediction(self):
        # The prediction for a far target equals the prediction at the
        # clamped end time: the clamp is real, not cosmetic.
        p = ViewportPredictor(lam=1e-6, max_extrapolation_s=1.0)
        for i in range(20):
            p.observe(i * 0.1, 100.0 + i, 0.0)
        far = p.predict_center(50.0)
        capped = p.predict_center(p.prediction_end_s(50.0))
        assert far[0] == pytest.approx(capped[0])
        assert far[1] == pytest.approx(capped[1])

    def test_prediction_end_with_sparse_history(self):
        # Below the 4-sample trend threshold the predictor holds the
        # last observation, and prediction_end_s reports exactly that.
        p = ViewportPredictor()
        p.observe(0.0, 10.0, 0.0)
        p.observe(0.1, 11.0, 0.0)
        assert p.prediction_end_s(5.0) == pytest.approx(0.1)
        yaw, _ = p.predict_center(5.0)
        assert yaw == pytest.approx(11.0)

    def test_prediction_end_requires_observations(self):
        with pytest.raises(RuntimeError):
            ViewportPredictor().prediction_end_s(1.0)

    def test_fit_excludes_windows_past_trace_end(self):
        # A trace too short to ground-truth the long horizon: the fit
        # must leave that bucket empty (sigma 0) instead of scoring the
        # prediction against the clamped final sample.
        from repro.prediction import fit_error_model
        from repro.traces.head_movement import HeadTrace

        t = np.arange(0.0, 3.0, 0.1)
        trace = HeadTrace(
            user_id=0, video_id=0, timestamps=t,
            yaw_unwrapped=5.0 * t, pitch=np.zeros(t.size),
        )
        # Evaluation starts after window_s=2.0; the trace ends at
        # t=2.9, so 5-second targets never fit inside it.
        model = fit_error_model(
            [trace], horizons_s=(0.25, 5.0), window_s=2.0
        )
        assert model.sigmas_deg[0] > 0.0
        assert model.sigmas_deg[1] == 0.0
