"""Unit tests for the statistical analysis helpers."""

import numpy as np
import pytest

from repro.experiments.analysis import (
    bootstrap_ci,
    compare_schemes,
    paired_comparison,
)
from repro.power import SegmentEnergy, TilingScheme
from repro.qoe import SegmentQoE
from repro.streaming import SegmentRecord, SessionResult


def make_session(scheme, video, user, network, energy_j, qoe):
    session = SessionResult(scheme, video, user, "Pixel 3", network)
    for i in range(4):
        session.add(
            SegmentRecord(
                index=i, quality=3, frame_rate=30.0, size_mbit=2.0,
                download_time_s=0.5, wait_s=0.0, stall_s=0.0,
                buffer_before_s=2.0, coverage=0.9, qo_effective=qoe,
                qoe=SegmentQoE(qoe, 0.0, 0.0),
                energy=SegmentEnergy(energy_j, 0.0, 0.0),
                decode_scheme=TilingScheme.CTILE, used_ptile=False,
            )
        )
    return session


class TestBootstrapCI:
    def test_mean_and_bounds(self):
        rng = np.random.default_rng(1)
        data = rng.normal(10.0, 1.0, 200)
        ci = bootstrap_ci(data)
        assert ci.mean == pytest.approx(10.0, abs=0.3)
        assert ci.low < ci.mean < ci.high
        assert ci.contains(ci.mean)

    def test_deterministic(self):
        data = [1.0, 2.0, 3.0, 4.0]
        a = bootstrap_ci(data, seed=7)
        b = bootstrap_ci(data, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_tighter_with_more_data(self):
        rng = np.random.default_rng(2)
        small = bootstrap_ci(rng.normal(0, 1, 10))
        large = bootstrap_ci(rng.normal(0, 1, 1000))
        assert (large.high - large.low) < (small.high - small.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)

    def test_report(self):
        line = bootstrap_ci([1.0, 2.0, 3.0]).report()
        assert "CI" in line and "n=3" in line


class TestPairedComparison:
    def _matched(self, delta):
        keys = [(1, u, "t2") for u in range(8)]
        a = [make_session("x", v, u, n, 2.0 + 0.1 * u, 50.0)
             for v, u, n in keys]
        b = [make_session("y", v, u, n, 2.0 + 0.1 * u - delta, 50.0)
             for v, u, n in keys]
        return a, b

    def test_clear_difference_significant(self):
        a, b = self._matched(delta=0.5)
        cmp = paired_comparison(a, b, metric="energy_per_segment_j")
        assert cmp.mean_diff == pytest.approx(0.5)
        assert cmp.significant

    def test_no_difference_not_significant(self):
        a, b = self._matched(delta=0.0)
        cmp = paired_comparison(a, b)
        assert cmp.mean_diff == pytest.approx(0.0)
        assert not cmp.significant

    def test_unmatched_rejected(self):
        a, b = self._matched(delta=0.1)
        with pytest.raises(ValueError):
            paired_comparison(a, b[:-1])

    def test_unknown_metric(self):
        a, b = self._matched(delta=0.1)
        with pytest.raises(KeyError):
            paired_comparison(a, b, metric="bogus")

    def test_report_format(self):
        a, b = self._matched(delta=0.2)
        line = paired_comparison(a, b).report()
        assert "Wilcoxon" in line and "diff" in line


class TestCompareSchemes:
    def test_over_matrix(self):
        matrix = {
            ("t2", "ctile", 1): [
                make_session("ctile", 1, u, "t2", 2.2, 50.0) for u in range(6)
            ],
            ("t2", "ours", 1): [
                make_session("ours", 1, u, "t2", 1.2, 49.0) for u in range(6)
            ],
        }
        cmp = compare_schemes(matrix, "ctile", "ours")
        assert cmp.mean_diff == pytest.approx(1.0)
        assert cmp.significant

    def test_missing_scheme(self):
        with pytest.raises(KeyError):
            compare_schemes({}, "a", "b")

    def test_real_matrix_energy_significance(
        self, small_dataset, manifest2, ptiles2, ftiles2, network_traces,
        device
    ):
        """On real sessions, Ours-vs-Ctile energy saving is significant
        across users."""
        from repro.core import OursScheme
        from repro.streaming import CtileScheme, run_session

        matrix = {}
        for name, scheme in (
            ("ctile", CtileScheme()), ("ours", OursScheme(device=device))
        ):
            matrix[("trace2", name, 2)] = [
                run_session(scheme, manifest2, head, network_traces[1],
                            device, ptiles=ptiles2, ftiles=ftiles2)
                for head in small_dataset.test_traces(2)
            ]
        cmp = compare_schemes(matrix, "ctile", "ours")
        assert cmp.mean_diff > 0  # Ctile costs more energy
        assert cmp.n_pairs == len(small_dataset.test_traces(2))
