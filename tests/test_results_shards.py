"""Tests for the columnar session-results shard store.

The load-bearing properties, on top of everything
``tests/test_results_cache.py`` already pins for the flat store:

* **Identity** — shard-served aggregates are byte-identical to
  cache-off and to the legacy per-pickle store, cold or warm, at any
  worker count.
* **One file per group** — a sweep touches exactly one shard file per
  ``(sweep-context digest, video)`` group and writes no per-session
  ``results/*.pkl``.
* **Append-merge** — partial misses run only the missing jobs and fold
  them into the existing shard; concurrent writers with disjoint job
  sets both land in the final shard.
* **Migration** — legacy per-session pickles seed shard misses and are
  folded into the shard, after which the shard alone serves the sweep.
* **Robustness** — corrupt or truncated shards are misses (dropped and
  rebuilt), and a transient ``MemoryError`` never deletes a shard.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import make_schemes
from repro.experiments.artifacts import (
    ArtifactStore,
    ShardedResultsStore,
    content_digest,
    results_key,
    results_key_from_digest,
    results_shard_key,
    session_job_digest,
    sweep_context_digest,
)
from repro.experiments.runner import (
    SessionJob,
    SweepContext,
    run_session_jobs,
)
from repro.streaming.session import SessionConfig


@pytest.fixture(scope="module")
def sweep_context(small_dataset, manifest2, ptiles2, ftiles2,
                  network_traces, device):
    trace1, trace2 = network_traces
    return SweepContext(
        schemes=make_schemes(device),
        device=device,
        networks={"trace1": trace1, "trace2": trace2},
        manifests={2: manifest2},
        head_traces={2: tuple(small_dataset.test_traces(2))},
        ptiles={2: ptiles2},
        ftiles={2: ftiles2},
        config=SessionConfig(),
    )


def make_jobs(schemes=("ctile", "ours"), users=2):
    return [
        SessionJob(key=(name, 2, u), scheme=name, video_id=2,
                   network="trace2", user_index=u)
        for name in schemes
        for u in range(users)
    ]


def session_signature(result):
    return (
        result.scheme_name,
        result.video_id,
        result.user_id,
        result.total_energy_j,
        result.mean_qoe,
        result.total_stall_s,
        result.rebuffer_count,
    )


def entry_for(context_digest, job):
    digest = session_job_digest(job)
    return digest, results_key_from_digest(context_digest, digest)


class TestShardStoreUnit:
    """Direct batch-interface behavior, no sweep machinery."""

    def shard(self, tmp_path, payloads):
        store = ShardedResultsStore(tmp_path)
        shard = content_digest("group")
        entries = {
            content_digest("job", i): payload
            for i, payload in enumerate(payloads)
        }
        store.merge_shard(shard, entries)
        return store, shard, entries

    def batch_entries(self, entries):
        return [
            (digest, results_key_from_digest(content_digest("ctx"), digest))
            for digest in entries
        ]

    def test_roundtrip_in_request_order(self, tmp_path):
        payloads = [{"row": i, "data": list(range(i))} for i in range(8)]
        store, shard, entries = self.shard(tmp_path, payloads)
        asked = self.batch_entries(entries)
        out, migrated = store.get_results_batch(shard, asked)
        assert out == payloads  # request order, not sorted shard order
        assert migrated == {}
        assert store.stats.hits == {"results": len(payloads)}
        assert "results" not in store.stats.misses

    def test_missing_rows_are_none_and_counted(self, tmp_path):
        store, shard, entries = self.shard(tmp_path, ["a", "b"])
        asked = self.batch_entries(entries) + [
            (content_digest("absent"), content_digest("absent-key"))
        ]
        out, migrated = store.get_results_batch(shard, asked)
        assert out == ["a", "b", None]
        assert migrated == {}
        assert store.stats.hits == {"results": 2}
        assert store.stats.misses == {"results": 1}

    def test_absent_shard_is_all_misses(self, tmp_path):
        store = ShardedResultsStore(tmp_path)
        out, migrated = store.get_results_batch(
            content_digest("nothing"),
            [(content_digest("job"), content_digest("key"))],
        )
        assert out == [None] and migrated == {}
        assert store.stats.misses == {"results": 1}

    def test_merge_overlays_new_values(self, tmp_path):
        store, shard, entries = self.shard(tmp_path, ["old-0", "old-1"])
        first = next(iter(entries))
        store.merge_shard(shard, {first: "new-0"})
        out, _ = store.get_results_batch(shard, self.batch_entries(entries))
        assert out == ["new-0", "old-1"]

    def test_corrupt_shard_is_a_miss_and_removed(self, tmp_path):
        store, shard, entries = self.shard(tmp_path, ["a"])
        path = store.shard_path(shard)
        path.write_bytes(b"RSHARD1\nnot an index")
        out, _ = store.get_results_batch(shard, self.batch_entries(entries))
        assert out == [None]
        assert not path.exists()

    def test_truncated_payload_is_a_miss_and_removed(self, tmp_path):
        store, shard, entries = self.shard(tmp_path, [list(range(100))])
        path = store.shard_path(shard)
        path.write_bytes(path.read_bytes()[:-30])
        out, _ = store.get_results_batch(shard, self.batch_entries(entries))
        assert out == [None]
        assert not path.exists()

    def test_memory_error_leaves_shard_intact(self, tmp_path, monkeypatch):
        store, shard, entries = self.shard(tmp_path, ["a"])
        path = store.shard_path(shard)

        def oom(*args, **kwargs):
            raise MemoryError

        monkeypatch.setattr("builtins.open", oom)
        with pytest.raises(MemoryError):
            open(path)  # the patch is live
        out, _ = store.get_results_batch(shard, self.batch_entries(entries))
        monkeypatch.undo()
        assert out == [None]
        assert path.exists()  # NOT unlinked, unlike a corrupt shard
        out, _ = store.get_results_batch(shard, self.batch_entries(entries))
        assert out == ["a"]

    def test_malformed_shard_digest_rejected(self, tmp_path):
        store = ShardedResultsStore(tmp_path)
        with pytest.raises(ValueError):
            store.shard_path("../escape")
        with pytest.raises(ValueError):
            store.merge_shard(content_digest("ok"), {"not-a-digest": 1})

    def test_legacy_fallback_and_migration(self, tmp_path):
        """Rows absent from the shard are served from legacy per-session
        pickles and handed back for folding into the shard."""
        store = ShardedResultsStore(tmp_path)
        shard = content_digest("group")
        digest = content_digest("job")
        legacy_key = results_key_from_digest(content_digest("ctx"), digest)
        ArtifactStore(tmp_path).put("results", legacy_key, {"legacy": True})

        out, migrated = store.get_results_batch(
            shard, [(digest, legacy_key)]
        )
        assert out == [{"legacy": True}]
        assert migrated == {digest: {"legacy": True}}
        assert store.stats.hits == {"results": 1}  # counted exactly once

        store.merge_shard(shard, migrated)
        store.path_for("results", legacy_key).unlink()
        out, migrated = store.get_results_batch(
            shard, [(digest, legacy_key)]
        )
        assert out == [{"legacy": True}] and migrated == {}

    def test_shard_files_counted_and_cleared(self, tmp_path):
        store, shard, entries = self.shard(tmp_path, ["a", "b"])
        assert store.size_bytes() > 0
        assert store.clear() >= 1
        assert store.size_bytes() == 0
        assert not store.shard_path(shard).exists()

    def test_concurrent_disjoint_merges_lose_nothing(self, tmp_path):
        """Two writers merging disjoint job sets into one shard: the
        final shard must hold the union (the merge lock serializes the
        read-merge-replace cycles)."""
        store = ShardedResultsStore(tmp_path)
        shard = content_digest("group")
        sets = [
            {content_digest("w", w, i): (w, i) for i in range(20)}
            for w in range(2)
        ]
        barrier = threading.Barrier(2)
        errors = []

        def writer(entries):
            try:
                barrier.wait()
                writer_store = ShardedResultsStore(tmp_path)
                writer_store.merge_shard(shard, entries)
            except Exception as exc:  # pragma: no cover - must not happen
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(s,)) for s in sets
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        union = {**sets[0], **sets[1]}
        out, _ = store.get_results_batch(
            shard,
            [(d, content_digest("k", d)) for d in union],
        )
        assert out == list(union.values())


class TestMergeProperties:
    @given(
        first=st.dictionaries(
            st.integers(0, 30), st.integers(), max_size=12
        ),
        second=st.dictionaries(
            st.integers(0, 30), st.integers(), max_size=12
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_sequential_merges_are_dict_union(self, tmp_path_factory,
                                              first, second):
        """merge(A) then merge(B) ≡ {**A, **B}: nothing from A is lost
        on the digests B does not touch, and B wins on overlap."""
        tmp_path = tmp_path_factory.mktemp("shard-prop")
        store = ShardedResultsStore(tmp_path)
        shard = content_digest("group")

        def as_digests(entries):
            return {content_digest("job", k): v for k, v in entries.items()}

        store.merge_shard(shard, as_digests(first))
        store.merge_shard(shard, as_digests(second))

        expected = as_digests({**first, **second})
        out, _ = store.get_results_batch(
            shard,
            [(d, content_digest("k", d)) for d in expected],
        )
        assert out == list(expected.values())


class TestSweepIdentity:
    def test_off_legacy_sharded_identical_any_worker_count(
        self, sweep_context, tmp_path
    ):
        jobs = make_jobs()
        off = run_session_jobs(sweep_context, jobs, workers=1)
        legacy = run_session_jobs(
            sweep_context, jobs, workers=1,
            results=ArtifactStore(tmp_path / "legacy"),
        )

        cold_store = ShardedResultsStore(tmp_path / "shards")
        cold = run_session_jobs(sweep_context, jobs, workers=1,
                                results=cold_store)
        assert cold.cache_hits == 0
        assert cold_store.stats.writes.get("results") == len(jobs)

        for workers in (1, 2):
            warm_store = ShardedResultsStore(tmp_path / "shards")
            warm = run_session_jobs(sweep_context, jobs, workers=workers,
                                    results=warm_store)
            assert warm.cache_hits == len(jobs)
            assert warm_store.stats.misses.get("results") is None
            assert [session_signature(r) for r in warm.results] == [
                session_signature(r) for r in off.results
            ]
        assert (
            [session_signature(r) for r in cold.results]
            == [session_signature(r) for r in legacy.results]
            == [session_signature(r) for r in off.results]
        )

    def test_one_shard_per_group_and_no_session_pickles(
        self, sweep_context, tmp_path
    ):
        jobs = make_jobs()
        store = ShardedResultsStore(tmp_path)
        run_session_jobs(sweep_context, jobs, workers=1, results=store)

        shards = list((tmp_path / "results-shards").glob("*.shard"))
        assert len(shards) == 1  # one (context, video) group in this sweep
        assert not list(tmp_path.rglob("results/*.pkl"))
        context_digest = sweep_context_digest(
            sweep_context.slice({2})
        )
        assert shards[0].stem == results_shard_key(context_digest, 2)

    def test_warm_run_opens_only_the_shard(self, sweep_context, tmp_path,
                                           monkeypatch):
        """A fully warm sharded run executes no session and never reads
        a per-session pickle (the group's one shard serves everything)."""
        jobs = make_jobs()
        run_session_jobs(sweep_context, jobs, workers=1,
                         results=ShardedResultsStore(tmp_path))

        def boom(self, job):  # pragma: no cover - must not run
            raise AssertionError("a session ran on a warm shard store")

        def no_pickle_get(self, kind, digest):  # pragma: no cover
            raise AssertionError("per-session pickle read on a warm shard")

        monkeypatch.setattr(SweepContext, "run_job", boom)
        monkeypatch.setattr(ShardedResultsStore, "get", no_pickle_get)
        warm = run_session_jobs(sweep_context, jobs, workers=1,
                                results=ShardedResultsStore(tmp_path))
        assert warm.cache_hits == len(jobs)
        assert all(r is not None for r in warm.results)
        assert not warm.failures and not warm.timings

    def test_partial_miss_appends_into_existing_shard(self, sweep_context,
                                                      tmp_path):
        first = make_jobs(schemes=("ctile",))
        run_session_jobs(sweep_context, first, workers=1,
                         results=ShardedResultsStore(tmp_path))

        both = make_jobs(schemes=("ctile", "ours"))
        store = ShardedResultsStore(tmp_path)
        mixed = run_session_jobs(sweep_context, both, workers=1,
                                 results=store)
        assert mixed.cache_hits == len(first)
        assert len(list((tmp_path / "results-shards").glob("*.shard"))) == 1

        baseline = run_session_jobs(sweep_context, both, workers=1)
        assert [session_signature(r) for r in mixed.results] == [
            session_signature(r) for r in baseline.results
        ]
        # And the merged shard now serves everything.
        warm = run_session_jobs(sweep_context, both, workers=1,
                                results=ShardedResultsStore(tmp_path))
        assert warm.cache_hits == len(both)

    def test_legacy_pickles_migrate_into_shard(self, sweep_context,
                                               tmp_path):
        """A cache populated by the flat store serves a sharded run with
        all hits, and the run folds the rows into a shard that then
        serves alone (the legacy pickles can be deleted)."""
        jobs = make_jobs()
        legacy = run_session_jobs(sweep_context, jobs, workers=1,
                                  results=ArtifactStore(tmp_path))

        store = ShardedResultsStore(tmp_path)
        migrated = run_session_jobs(sweep_context, jobs, workers=1,
                                    results=store)
        assert migrated.cache_hits == len(jobs)
        assert len(list((tmp_path / "results-shards").glob("*.shard"))) == 1

        for pkl in (tmp_path / "results").glob("*.pkl"):
            pkl.unlink()
        warm = run_session_jobs(sweep_context, jobs, workers=1,
                                results=ShardedResultsStore(tmp_path))
        assert warm.cache_hits == len(jobs)
        assert [session_signature(r) for r in warm.results] == [
            session_signature(r) for r in legacy.results
        ]

    def test_shard_rows_byte_identical_to_legacy_pickles(self, sweep_context,
                                                         tmp_path):
        """The shard column of a job is bit-for-bit the pickle the
        legacy per-session path would have written."""
        jobs = make_jobs(schemes=("ctile",), users=1)
        legacy_store = ArtifactStore(tmp_path / "legacy")
        run_session_jobs(sweep_context, jobs, workers=1,
                         results=legacy_store)
        shard_store = ShardedResultsStore(tmp_path / "shards")
        run_session_jobs(sweep_context, jobs, workers=1,
                         results=shard_store)

        context_digest = sweep_context_digest(sweep_context.slice({2}))
        legacy_blob = legacy_store.path_for(
            "results", results_key(context_digest, jobs[0])
        ).read_bytes()

        raw = shard_store._read_shard_raw(
            results_shard_key(context_digest, 2)
        )
        digests, offsets, ends, buf, base = raw
        want = np.frombuffer(
            bytes.fromhex(session_job_digest(jobs[0])), dtype="S32"
        )
        row = int(np.searchsorted(digests, want)[0])
        shard_blob = buf[base + int(offsets[row]) : base + int(ends[row])]
        assert shard_blob == legacy_blob
