"""DP-parity regression: vectorized MPC == scalar reference.

``EnergyQoEMpc.choose`` (the vectorized production path) must return
decisions bit-identical to ``choose_reference`` (the original scalar
dynamic program) — same (v, f), same planned energy to the last ulp —
across randomized lookahead windows, bandwidths, and buffer levels.
Anything less means the vectorization changed experiment results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optimizer import EnergyQoEMpc, MpcConfig, MpcSegment, MpcWindow
from repro.power import PIXEL_3
from repro.power.energy import EnergyModel
from repro.video.framerate import DEFAULT_LADDER


def random_segment(rng: np.random.Generator, rates: tuple[float, ...]) -> MpcSegment:
    """A plausible lookahead segment: sizes and QoE grow with quality."""
    v_count = int(rng.integers(2, 6))
    base_sizes = np.sort(rng.lognormal(mean=1.0, sigma=0.8, size=v_count))
    rate_factor = 0.7 + 0.3 * np.asarray(rates) / max(rates)
    sizes = base_sizes[:, None] * rate_factor[None, :]
    base_qoe = np.sort(rng.uniform(1.0, 5.0, size=v_count))
    qoe_factor = np.sort(rng.uniform(0.6, 1.0, size=len(rates)))
    qoe = base_qoe[:, None] * qoe_factor[None, :]
    return MpcSegment(sizes_mbit=sizes, qoe=qoe, frame_rates=rates)


def assert_same_decision(mpc, segments, bandwidth, buffer_s):
    got = mpc.choose(segments, bandwidth, buffer_s)
    want = mpc.choose_reference(segments, bandwidth, buffer_s)
    assert (got.quality, got.frame_rate_index) == (
        want.quality,
        want.frame_rate_index,
    ), f"decision mismatch at bw={bandwidth}, buffer={buffer_s}"
    assert got.frame_rate == want.frame_rate
    # Bit-identical, not approximately equal: the vectorized path must
    # preserve the reference's floating-point operation order.
    assert got.planned_energy_j == want.planned_energy_j


class TestDpParity:
    def test_randomized_windows(self):
        rng = np.random.default_rng(20220360)
        rates = DEFAULT_LADDER.rates()
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        for _ in range(200):
            window = [
                random_segment(rng, rates)
                for _ in range(int(rng.integers(1, 6)))
            ]
            bandwidth = float(10 ** rng.uniform(-1.0, 2.0))
            buffer_s = float(rng.uniform(0.0, 3.0))
            assert_same_decision(mpc, window, bandwidth, buffer_s)

    def test_starved_bandwidth_fallback_branch(self):
        # Bandwidth so low nothing is sustainable: the vm == 0 fallback
        # (lowest bitrate, own frame-rate ladder) must agree too.
        rng = np.random.default_rng(7)
        rates = DEFAULT_LADDER.rates()
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        for _ in range(50):
            window = [random_segment(rng, rates) for _ in range(3)]
            assert_same_decision(mpc, window, 0.05, float(rng.uniform(0.0, 3.0)))

    def test_single_rate_ladder(self):
        rng = np.random.default_rng(11)
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        for _ in range(50):
            window = [random_segment(rng, (30.0,)) for _ in range(4)]
            assert_same_decision(
                mpc, window, float(10 ** rng.uniform(0.0, 1.5)), 1.5
            )

    def test_nonstandard_config(self):
        rng = np.random.default_rng(13)
        rates = DEFAULT_LADDER.rates()
        config = MpcConfig(
            horizon=3,
            buffer_granularity_s=0.25,
            buffer_threshold_s=4.0,
            qoe_tolerance=0.15,
        )
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0), config)
        for _ in range(100):
            window = [
                random_segment(rng, rates)
                for _ in range(int(rng.integers(1, 5)))
            ]
            bandwidth = float(10 ** rng.uniform(-0.5, 2.0))
            assert_same_decision(
                mpc, window, bandwidth, float(rng.uniform(0.0, 4.0))
            )

    def test_repeated_calls_are_stable(self):
        # The per-rate energy cache must not perturb later decisions.
        rng = np.random.default_rng(17)
        rates = DEFAULT_LADDER.rates()
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        window = [random_segment(rng, rates) for _ in range(5)]
        first = mpc.choose(window, 25.0, 2.0)
        for _ in range(3):
            again = mpc.choose(window, 25.0, 2.0)
            assert (again.quality, again.frame_rate_index, again.planned_energy_j) == (
                first.quality,
                first.frame_rate_index,
                first.planned_energy_j,
            )

    def test_validation_matches_reference(self):
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        with pytest.raises(ValueError):
            mpc.choose([], 10.0, 1.0)
        with pytest.raises(ValueError):
            mpc.choose_reference([], 10.0, 1.0)
        seg = random_segment(np.random.default_rng(1), DEFAULT_LADDER.rates())
        with pytest.raises(ValueError):
            mpc.choose([seg], 0.0, 1.0)
        with pytest.raises(ValueError):
            mpc.choose_reference([seg], 0.0, 1.0)


def random_window(
    rng: np.random.Generator, rates: tuple[float, ...], n_segments: int
) -> MpcWindow:
    """A stacked lookahead window sharing one (V, F) version grid."""
    v_count = int(rng.integers(2, 6))
    sizes = np.empty((n_segments, v_count, len(rates)))
    qoe = np.empty((n_segments, v_count, len(rates)))
    rate_factor = 0.7 + 0.3 * np.asarray(rates) / max(rates)
    for h in range(n_segments):
        base_sizes = np.sort(rng.lognormal(mean=1.0, sigma=0.8, size=v_count))
        sizes[h] = base_sizes[:, None] * rate_factor[None, :]
        base_qoe = np.sort(rng.uniform(1.0, 5.0, size=v_count))
        qoe_factor = np.sort(rng.uniform(0.6, 1.0, size=len(rates)))
        qoe[h] = base_qoe[:, None] * qoe_factor[None, :]
    return MpcWindow(sizes_mbit=sizes, qoe=qoe, frame_rates=rates)


class TestBatchedWindowParity:
    """The stacked MpcWindow hot path must equal the scalar oracle."""

    def test_randomized_windows_across_durations_and_horizons(self):
        # Property test over the axes that shape the DP: segment
        # duration (buffer dynamics), horizon 1..5, short tail windows
        # (video end), and the full bandwidth/buffer range.
        rng = np.random.default_rng(20260360)
        rates = DEFAULT_LADDER.rates()
        for _ in range(200):
            seg_s = float(rng.choice([0.5, 1.0, 2.0]))
            horizon = int(rng.integers(1, 6))
            config = MpcConfig(horizon=horizon, segment_seconds=seg_s)
            mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, seg_s), config)
            # Window lengths both short of and beyond the horizon.
            n = int(rng.integers(1, horizon + 3))
            window = random_window(rng, rates, n)
            bandwidth = float(10 ** rng.uniform(-1.0, 2.0))
            buffer_s = float(rng.uniform(0.0, 3.0))
            assert_same_decision(mpc, window, bandwidth, buffer_s)

    def test_window_equals_equivalent_segment_list(self):
        # The same data fed as a stacked window and as a per-segment
        # list must produce bit-identical decisions.
        rng = np.random.default_rng(42)
        rates = DEFAULT_LADDER.rates()
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        for _ in range(50):
            window = random_window(rng, rates, int(rng.integers(1, 6)))
            bandwidth = float(10 ** rng.uniform(-0.5, 1.5))
            buffer_s = float(rng.uniform(0.0, 3.0))
            batched = mpc.choose(window, bandwidth, buffer_s)
            listed = mpc.choose(window.segments(), bandwidth, buffer_s)
            assert (batched.quality, batched.frame_rate_index) == (
                listed.quality, listed.frame_rate_index
            )
            assert batched.planned_energy_j == listed.planned_energy_j

    def test_cold_start_nothing_stall_free(self):
        # Empty buffer and starved bandwidth: the vm == 0 relaxation
        # (lowest bitrate, own ladder) must agree in the batched path.
        rng = np.random.default_rng(99)
        rates = DEFAULT_LADDER.rates()
        for seg_s in (0.5, 1.0, 2.0):
            mpc = EnergyQoEMpc(
                EnergyModel(PIXEL_3, seg_s), MpcConfig(segment_seconds=seg_s)
            )
            for _ in range(25):
                window = random_window(rng, rates, int(rng.integers(1, 6)))
                assert_same_decision(mpc, window, 0.05, 0.0)

    def test_window_validation(self):
        rates = DEFAULT_LADDER.rates()
        with pytest.raises(ValueError):
            MpcWindow(
                sizes_mbit=np.ones((2, 3)), qoe=np.ones((2, 3)),
                frame_rates=rates,
            )
        with pytest.raises(ValueError):
            MpcWindow(
                sizes_mbit=np.ones((2, 3, 2)), qoe=np.ones((2, 3, 2)),
                frame_rates=rates,
            )
        with pytest.raises(ValueError):
            MpcWindow(
                sizes_mbit=np.zeros((2, 3, len(rates))),
                qoe=np.ones((2, 3, len(rates))),
                frame_rates=rates,
            )

    def test_segments_roundtrip(self):
        window = random_window(
            np.random.default_rng(3), DEFAULT_LADDER.rates(), 4
        )
        segments = window.segments()
        assert len(segments) == window.num_segments
        for h, segment in enumerate(segments):
            assert np.array_equal(segment.sizes_mbit, window.sizes_mbit[h])
            assert np.array_equal(segment.qoe, window.qoe[h])
            assert segment.frame_rates == window.frame_rates
