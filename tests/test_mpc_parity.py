"""DP-parity regression: vectorized MPC == scalar reference.

``EnergyQoEMpc.choose`` (the vectorized production path) must return
decisions bit-identical to ``choose_reference`` (the original scalar
dynamic program) — same (v, f), same planned energy to the last ulp —
across randomized lookahead windows, bandwidths, and buffer levels.
Anything less means the vectorization changed experiment results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optimizer import EnergyQoEMpc, MpcConfig, MpcSegment
from repro.power import PIXEL_3
from repro.power.energy import EnergyModel
from repro.video.framerate import DEFAULT_LADDER


def random_segment(rng: np.random.Generator, rates: tuple[float, ...]) -> MpcSegment:
    """A plausible lookahead segment: sizes and QoE grow with quality."""
    v_count = int(rng.integers(2, 6))
    base_sizes = np.sort(rng.lognormal(mean=1.0, sigma=0.8, size=v_count))
    rate_factor = 0.7 + 0.3 * np.asarray(rates) / max(rates)
    sizes = base_sizes[:, None] * rate_factor[None, :]
    base_qoe = np.sort(rng.uniform(1.0, 5.0, size=v_count))
    qoe_factor = np.sort(rng.uniform(0.6, 1.0, size=len(rates)))
    qoe = base_qoe[:, None] * qoe_factor[None, :]
    return MpcSegment(sizes_mbit=sizes, qoe=qoe, frame_rates=rates)


def assert_same_decision(mpc, segments, bandwidth, buffer_s):
    got = mpc.choose(segments, bandwidth, buffer_s)
    want = mpc.choose_reference(segments, bandwidth, buffer_s)
    assert (got.quality, got.frame_rate_index) == (
        want.quality,
        want.frame_rate_index,
    ), f"decision mismatch at bw={bandwidth}, buffer={buffer_s}"
    assert got.frame_rate == want.frame_rate
    # Bit-identical, not approximately equal: the vectorized path must
    # preserve the reference's floating-point operation order.
    assert got.planned_energy_j == want.planned_energy_j


class TestDpParity:
    def test_randomized_windows(self):
        rng = np.random.default_rng(20220360)
        rates = DEFAULT_LADDER.rates()
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        for _ in range(200):
            window = [
                random_segment(rng, rates)
                for _ in range(int(rng.integers(1, 6)))
            ]
            bandwidth = float(10 ** rng.uniform(-1.0, 2.0))
            buffer_s = float(rng.uniform(0.0, 3.0))
            assert_same_decision(mpc, window, bandwidth, buffer_s)

    def test_starved_bandwidth_fallback_branch(self):
        # Bandwidth so low nothing is sustainable: the vm == 0 fallback
        # (lowest bitrate, own frame-rate ladder) must agree too.
        rng = np.random.default_rng(7)
        rates = DEFAULT_LADDER.rates()
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        for _ in range(50):
            window = [random_segment(rng, rates) for _ in range(3)]
            assert_same_decision(mpc, window, 0.05, float(rng.uniform(0.0, 3.0)))

    def test_single_rate_ladder(self):
        rng = np.random.default_rng(11)
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        for _ in range(50):
            window = [random_segment(rng, (30.0,)) for _ in range(4)]
            assert_same_decision(
                mpc, window, float(10 ** rng.uniform(0.0, 1.5)), 1.5
            )

    def test_nonstandard_config(self):
        rng = np.random.default_rng(13)
        rates = DEFAULT_LADDER.rates()
        config = MpcConfig(
            horizon=3,
            buffer_granularity_s=0.25,
            buffer_threshold_s=4.0,
            qoe_tolerance=0.15,
        )
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0), config)
        for _ in range(100):
            window = [
                random_segment(rng, rates)
                for _ in range(int(rng.integers(1, 5)))
            ]
            bandwidth = float(10 ** rng.uniform(-0.5, 2.0))
            assert_same_decision(
                mpc, window, bandwidth, float(rng.uniform(0.0, 4.0))
            )

    def test_repeated_calls_are_stable(self):
        # The per-rate energy cache must not perturb later decisions.
        rng = np.random.default_rng(17)
        rates = DEFAULT_LADDER.rates()
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        window = [random_segment(rng, rates) for _ in range(5)]
        first = mpc.choose(window, 25.0, 2.0)
        for _ in range(3):
            again = mpc.choose(window, 25.0, 2.0)
            assert (again.quality, again.frame_rate_index, again.planned_energy_j) == (
                first.quality,
                first.frame_rate_index,
                first.planned_energy_j,
            )

    def test_validation_matches_reference(self):
        mpc = EnergyQoEMpc(EnergyModel(PIXEL_3, 1.0))
        with pytest.raises(ValueError):
            mpc.choose([], 10.0, 1.0)
        with pytest.raises(ValueError):
            mpc.choose_reference([], 10.0, 1.0)
        seg = random_segment(np.random.default_rng(1), DEFAULT_LADDER.rates())
        with pytest.raises(ValueError):
            mpc.choose([seg], 0.0, 1.0)
        with pytest.raises(ValueError):
            mpc.choose_reference([seg], 0.0, 1.0)
