"""Paper-fidelity checks: every constant the paper states, in one place.

A reproduction's most silent failure mode is a drifted constant.  This
module pins each number the paper fixes to the module that owns it, so
any accidental change fails loudly with a pointer to the paper section.
"""

import pytest

from repro.core import MpcConfig, StreamingConfig
from repro.geometry import DEFAULT_FOV_DEG, DEFAULT_GRID, FTILE_BLOCK_GRID
from repro.power import GALAXY_S20, NEXUS_5X, PIXEL_3, PIXEL3_DECODER_MODEL
from repro.ptile import PtileConfig
from repro.qoe import QoEWeights, TABLE_II
from repro.streaming import SessionConfig
from repro.video import DEFAULT_LADDER, VIDEO_CATALOG, quality_to_crf


class TestSectionII:
    """Background and motivation."""

    def test_4x8_grid(self):
        assert (DEFAULT_GRID.rows, DEFAULT_GRID.cols) == (4, 8)

    def test_fov_100_degrees(self):
        assert DEFAULT_FOV_DEG == 100.0

    def test_4k30_source(self):
        for meta in VIDEO_CATALOG:
            assert (meta.width_px, meta.height_px, meta.fps) == (3840, 2160, 30)

    def test_fig2b_endpoints(self):
        m = PIXEL3_DECODER_MODEL
        assert (m.time_1_s, m.power_1_mw) == (1.3, 241.0)
        assert (m.time_9_s, m.power_9_mw) == (0.5, 846.0)
        assert (m.ptile_time_s, m.ptile_power_mw) == (0.24, 287.0)


class TestSectionIII:
    """Video, power, and QoE models."""

    def test_table1_spot_values(self):
        # One value per device/row family; the full grid is covered in
        # test_power_models.py.
        assert NEXUS_5X.transmission_mw == 1709.12
        assert PIXEL_3.decoding["ctile"].base_mw == 574.89
        assert PIXEL_3.decoding["ptile"].slope_mw_per_fps == 5.96
        assert GALAXY_S20.rendering.base_mw == 108.21

    def test_table2_coefficients(self):
        assert (TABLE_II.c1, TABLE_II.c2, TABLE_II.c3, TABLE_II.c4) == (
            -0.2163, 0.0581, -0.1578, 0.7821,
        )

    def test_speed_tolerance_threshold(self):
        from repro.qoe import SPEED_TOLERANCE_THRESHOLD_DEG_S

        assert SPEED_TOLERANCE_THRESHOLD_DEG_S == 10.0


class TestSectionIV:
    """Problem formulation and algorithm."""

    def test_buffer_granularity_500ms(self):
        assert MpcConfig().buffer_granularity_s == 0.5

    def test_qoe_tolerance_5_percent(self):
        assert MpcConfig().qoe_tolerance == 0.05

    def test_sigma_is_tile_width_delta_quarter(self):
        cfg = PtileConfig()
        assert cfg.resolved_sigma(DEFAULT_GRID) == DEFAULT_GRID.tile_width
        assert cfg.resolved_delta(DEFAULT_GRID) == DEFAULT_GRID.tile_width / 4

    def test_min_five_users_per_ptile(self):
        assert PtileConfig().min_users == 5


class TestSectionV:
    """Experiment setup."""

    def test_crf_ladder_38_to_18_step_5(self):
        assert [quality_to_crf(q) for q in (1, 2, 3, 4, 5)] == [
            38, 33, 28, 23, 18,
        ]

    def test_one_second_segments(self):
        assert SessionConfig().segment_seconds == 1.0
        assert StreamingConfig().segment_seconds == 1.0

    def test_three_second_buffer(self):
        assert SessionConfig().buffer_threshold_s == 3.0
        assert MpcConfig().buffer_threshold_s == 3.0

    def test_qoe_weights_1_1(self):
        weights = QoEWeights()
        assert (weights.variation, weights.rebuffering) == (1.0, 1.0)

    def test_frame_rate_reductions_10_20_30(self):
        assert DEFAULT_LADDER.reductions == (0.3, 0.2, 0.1)
        assert DEFAULT_LADDER.rates() == (21.0, 24.0, 27.0, 30.0)

    def test_ftile_450_blocks_into_10(self):
        from repro.streaming.ftile import _N_FTILES

        assert FTILE_BLOCK_GRID.num_tiles == 450
        assert _N_FTILES == 10

    def test_48_users_40_train(self):
        cfg = StreamingConfig()
        assert (cfg.n_users, cfg.n_train_users) == (48, 40)

    def test_table3_durations_and_titles(self):
        expected = {
            1: ("Basketball Match", 361),
            2: ("Showtime Boxing", 172),
            3: ("Festival Gala", 373),
            4: ("Idol Dancing", 278),
            5: ("Moving Rhinos", 292),
            6: ("Football Match", 164),
            7: ("Tahiti Surf", 205),
            8: ("Freestyle Skiing", 201),
        }
        for meta in VIDEO_CATALOG:
            title, duration = expected[meta.video_id]
            assert meta.title == title
            assert meta.duration_s == duration

    def test_trace2_statistics(self, network_traces):
        trace1, trace2 = network_traces
        assert trace2.mean_mbps == pytest.approx(3.9, abs=0.05)
        assert trace2.min_mbps == pytest.approx(2.3, abs=0.01)
        assert trace2.max_mbps == pytest.approx(8.4, abs=0.01)
        assert trace1.mean_mbps == pytest.approx(2 * trace2.mean_mbps)

    def test_mpc_horizon_default(self):
        assert MpcConfig().horizon == 5
        assert SessionConfig().horizon == 5
