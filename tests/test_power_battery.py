"""Unit tests for the battery model."""

import pytest

from repro.power import BatteryModel, TYPICAL_PHONE_BATTERY


class TestBatteryModel:
    def test_capacity_joules(self):
        battery = BatteryModel(capacity_mah=1000.0, nominal_voltage_v=1.0)
        assert battery.capacity_j == pytest.approx(3600.0)

    def test_typical_capacity(self):
        # ~3000 mAh at 3.85 V: about 41.6 kJ.
        assert TYPICAL_PHONE_BATTERY.capacity_j == pytest.approx(41580.0)

    def test_session_drain(self):
        battery = BatteryModel(capacity_mah=1000.0, nominal_voltage_v=1.0,
                               screen_power_mw=0.0)
        # 1 W for 360 s = 360 J of 3600 J = 10 %.
        assert battery.session_drain_fraction(1.0, 360.0) == pytest.approx(0.1)

    def test_screen_included(self):
        battery = BatteryModel(capacity_mah=1000.0, nominal_voltage_v=1.0,
                               screen_power_mw=1000.0)
        with_screen = battery.session_drain_fraction(1.0, 360.0,
                                                     include_screen=True)
        assert with_screen == pytest.approx(0.2)

    def test_streaming_hours(self):
        battery = BatteryModel(capacity_mah=1000.0, nominal_voltage_v=3.6,
                               screen_power_mw=0.0)
        # 12960 J at 3.6 W = 3600 s = 1 h.
        assert battery.streaming_hours(3.6, include_screen=False) == (
            pytest.approx(1.0)
        )

    def test_zero_power_infinite(self):
        battery = BatteryModel(screen_power_mw=0.0)
        assert battery.streaming_hours(0.0, include_screen=False) == float("inf")

    def test_savings_extend_lifetime(self):
        extra = TYPICAL_PHONE_BATTERY.extra_hours_from_saving(2.3, 0.497)
        assert extra > 0.5  # the paper's saving buys real hours

    def test_saving_monotone(self):
        small = TYPICAL_PHONE_BATTERY.extra_hours_from_saving(2.3, 0.3)
        large = TYPICAL_PHONE_BATTERY.extra_hours_from_saving(2.3, 0.5)
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryModel(capacity_mah=0.0)
        with pytest.raises(ValueError):
            BatteryModel(screen_power_mw=-1.0)
        with pytest.raises(ValueError):
            TYPICAL_PHONE_BATTERY.session_drain_fraction(-1.0, 10.0)
        with pytest.raises(ValueError):
            TYPICAL_PHONE_BATTERY.streaming_hours(-1.0)
        with pytest.raises(ValueError):
            TYPICAL_PHONE_BATTERY.extra_hours_from_saving(2.0, 1.0)
