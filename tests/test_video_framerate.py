"""Unit tests for the frame-rate ladder."""

import pytest

from repro.video import DEFAULT_LADDER, FrameRateLadder


class TestDefaultLadder:
    def test_paper_rates(self):
        # 30 fps reduced by 30/20/10 percent, then the original.
        assert DEFAULT_LADDER.rates() == (21.0, 24.0, 27.0, 30.0)

    def test_indices(self):
        assert DEFAULT_LADDER.rate(1) == 21.0
        assert DEFAULT_LADDER.rate(4) == 30.0
        assert DEFAULT_LADDER.max_index == 4
        assert DEFAULT_LADDER.num_levels == 4

    def test_index_of(self):
        assert DEFAULT_LADDER.index_of(24.0) == 2
        assert DEFAULT_LADDER.index_of(30.0) == 4

    def test_index_of_unknown(self):
        with pytest.raises(ValueError):
            DEFAULT_LADDER.index_of(25.0)

    def test_index_bounds(self):
        with pytest.raises(ValueError):
            DEFAULT_LADDER.rate(0)
        with pytest.raises(ValueError):
            DEFAULT_LADDER.rate(5)


class TestCustomLadders:
    def test_sixty_fps(self):
        ladder = FrameRateLadder(fps=60.0, reductions=(0.5, 0.25))
        assert ladder.rates() == (30.0, 45.0, 60.0)

    def test_no_reductions(self):
        ladder = FrameRateLadder(fps=30.0, reductions=())
        assert ladder.rates() == (30.0,)
        assert ladder.max_index == 1

    def test_rates_ascending(self):
        assert list(DEFAULT_LADDER.rates()) == sorted(DEFAULT_LADDER.rates())

    def test_invalid_fps(self):
        with pytest.raises(ValueError):
            FrameRateLadder(fps=0.0)

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            FrameRateLadder(reductions=(1.0,))
        with pytest.raises(ValueError):
            FrameRateLadder(reductions=(0.0,))

    def test_unsorted_reductions_rejected(self):
        with pytest.raises(ValueError):
            FrameRateLadder(reductions=(0.1, 0.3, 0.2))

    def test_duplicate_reductions_rejected(self):
        with pytest.raises(ValueError):
            FrameRateLadder(reductions=(0.2, 0.2))
