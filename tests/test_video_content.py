"""Unit tests for the video catalog and content features."""

import pytest

from repro.video import (
    SI_RANGE,
    TI_RANGE,
    SegmentFeatures,
    VIDEO_CATALOG,
    VideoMeta,
    build_catalog,
    build_video,
)


class TestCatalogMetadata:
    def test_eight_videos(self):
        assert len(VIDEO_CATALOG) == 8
        assert [m.video_id for m in VIDEO_CATALOG] == list(range(1, 9))

    def test_table3_durations(self):
        durations = {m.video_id: m.duration_s for m in VIDEO_CATALOG}
        assert durations[1] == 6 * 60 + 1
        assert durations[2] == 2 * 60 + 52
        assert durations[5] == 4 * 60 + 52
        assert durations[8] == 3 * 60 + 21

    def test_behavior_split(self):
        for meta in VIDEO_CATALOG:
            expected = "focused" if meta.video_id <= 4 else "exploratory"
            assert meta.behavior == expected

    def test_table3_titles(self):
        titles = {m.video_id: m.title for m in VIDEO_CATALOG}
        assert titles[1] == "Basketball Match"
        assert titles[8] == "Freestyle Skiing"

    def test_4k30_defaults(self):
        for meta in VIDEO_CATALOG:
            assert meta.fps == 30
            assert (meta.width_px, meta.height_px) == (3840, 2160)

    def test_invalid_behavior_rejected(self):
        with pytest.raises(ValueError):
            VideoMeta(9, "x", 10, 30.0, 10.0, "confused")

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            VideoMeta(9, "x", 0, 30.0, 10.0, "focused")


class TestSegmentFeatures:
    def test_valid(self):
        seg = SegmentFeatures(0, 30.0, 10.0)
        assert seg.index == 0

    def test_si_out_of_range(self):
        with pytest.raises(ValueError):
            SegmentFeatures(0, SI_RANGE[1] + 1, 10.0)

    def test_ti_out_of_range(self):
        with pytest.raises(ValueError):
            SegmentFeatures(0, 30.0, TI_RANGE[0] - 1)

    def test_negative_index(self):
        with pytest.raises(ValueError):
            SegmentFeatures(-1, 30.0, 10.0)


class TestBuildVideo:
    def test_segment_count_equals_duration(self):
        video = build_video(VIDEO_CATALOG[0])
        assert video.num_segments == VIDEO_CATALOG[0].duration_s

    def test_deterministic(self):
        a = build_video(VIDEO_CATALOG[2])
        b = build_video(VIDEO_CATALOG[2])
        assert a.segments == b.segments

    def test_seed_changes_features(self):
        a = build_video(VIDEO_CATALOG[2], seed=1)
        b = build_video(VIDEO_CATALOG[2], seed=2)
        assert a.segments != b.segments

    def test_features_near_base(self):
        video = build_video(VIDEO_CATALOG[0])
        assert video.mean_si() == pytest.approx(VIDEO_CATALOG[0].si_base, abs=5.0)
        assert video.mean_ti() == pytest.approx(VIDEO_CATALOG[0].ti_base, abs=3.0)

    def test_features_in_range(self):
        for video in build_catalog():
            for seg in video:
                assert SI_RANGE[0] <= seg.si <= SI_RANGE[1]
                assert TI_RANGE[0] <= seg.ti <= TI_RANGE[1]

    def test_autocorrelated(self):
        import numpy as np

        video = build_video(VIDEO_CATALOG[0])
        si = np.array([s.si for s in video.segments])
        corr = np.corrcoef(si[:-1], si[1:])[0, 1]
        assert corr > 0.5  # AR(1) with phi=0.9 should correlate strongly

    def test_segment_accessor_bounds(self):
        video = build_video(VIDEO_CATALOG[1])
        assert video.segment(0).index == 0
        with pytest.raises(IndexError):
            video.segment(video.num_segments)
        with pytest.raises(IndexError):
            video.segment(-1)


class TestBuildCatalog:
    def test_videos_distinct(self):
        catalog = build_catalog(seed=7)
        si_means = [v.mean_si() for v in catalog]
        assert len(set(round(x, 3) for x in si_means)) == len(catalog)

    def test_catalog_order(self):
        catalog = build_catalog()
        assert [v.meta.video_id for v in catalog] == list(range(1, 9))
