"""Unit tests for the Table II fitting pipeline."""

import numpy as np
import pytest

from repro.qoe import TABLE_II, VMAFOracle, build_training_set, fit_qo_model
from repro.video import build_catalog


class TestVMAFOracle:
    def test_scores_in_range(self):
        oracle = VMAFOracle()
        si = np.linspace(20, 45, 50)
        ti = np.linspace(5, 22, 50)
        b = np.linspace(0.5, 8, 50)
        scores = oracle.measure(si, ti, b)
        assert np.all(scores >= 0) and np.all(scores <= 100)

    def test_deterministic(self):
        oracle = VMAFOracle()
        si = np.array([30.0])
        ti = np.array([12.0])
        b = np.array([3.0])
        assert oracle.measure(si, ti, b) == oracle.measure(si, ti, b)

    def test_noise_free_matches_model(self):
        oracle = VMAFOracle(noise_std=0.0)
        from repro.qoe import QualityModel

        si, ti, b = np.array([30.0]), np.array([12.0]), np.array([3.0])
        truth = QualityModel().qo(30.0, 12.0, 3.0)
        assert oracle.measure(si, ti, b)[0] == pytest.approx(truth)


class TestTrainingSet:
    def test_ten_segments_five_qualities(self):
        videos = build_catalog()
        si, ti, b = build_training_set(videos, __import__("repro").EncoderModel())
        assert si.size == 8 * 10 * 5
        assert si.shape == ti.shape == b.shape

    def test_bitrates_positive_and_varied(self, encoder):
        videos = build_catalog()
        _, __, b = build_training_set(videos, encoder, segments_per_video=5)
        assert np.all(b > 0)
        assert b.max() > 2 * b.min()

    def test_validation(self, encoder):
        with pytest.raises(ValueError):
            build_training_set(build_catalog(), encoder, segments_per_video=0)


class TestFit:
    def test_recovers_table2(self, encoder):
        videos = build_catalog()
        si, ti, b = build_training_set(videos, encoder)
        vmaf = VMAFOracle().measure(si, ti, b)
        result = fit_qo_model(si, ti, b, vmaf)
        assert result.coefficients.c2 == pytest.approx(TABLE_II.c2, abs=0.02)
        assert result.coefficients.c3 == pytest.approx(TABLE_II.c3, abs=0.03)
        assert result.coefficients.c4 == pytest.approx(TABLE_II.c4, abs=0.08)
        assert result.pearson_r > 0.97  # paper: 0.9791

    def test_perfect_data_near_perfect_fit(self, encoder):
        videos = build_catalog()[:4]
        si, ti, b = build_training_set(videos, encoder, segments_per_video=6)
        vmaf = VMAFOracle(noise_std=0.0).measure(si, ti, b)
        result = fit_qo_model(si, ti, b, vmaf)
        assert result.pearson_r > 0.9999
        assert result.coefficients.c1 == pytest.approx(TABLE_II.c1, abs=1e-3)

    def test_model_factory(self, encoder):
        videos = build_catalog()[:2]
        si, ti, b = build_training_set(videos, encoder, segments_per_video=5)
        vmaf = VMAFOracle().measure(si, ti, b)
        result = fit_qo_model(si, ti, b, vmaf)
        model = result.model()
        assert 0 < model.qo(30.0, 12.0, 3.0) < 100

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_qo_model(
                np.zeros(3), np.zeros(3), np.zeros(4), np.zeros(3)
            )

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_qo_model(
                np.zeros(2), np.zeros(2), np.zeros(2), np.zeros(2)
            )
