"""Unit tests for the frame-rate QoE factor (Eq. 4)."""

import pytest

from repro.qoe import alpha_from_behavior, frame_rate_factor
from repro.qoe.framerate import TI_NORMALIZATION


class TestAlpha:
    def test_eq4_with_normalization(self):
        # alpha = S / (TI / 60).
        assert alpha_from_behavior(10.0, 15.0) == pytest.approx(
            10.0 / (15.0 / TI_NORMALIZATION)
        )

    def test_faster_switching_larger_alpha(self):
        assert alpha_from_behavior(20.0, 15.0) > alpha_from_behavior(5.0, 15.0)

    def test_more_motion_smaller_alpha(self):
        assert alpha_from_behavior(10.0, 20.0) < alpha_from_behavior(10.0, 5.0)

    def test_static_view_clamped_positive(self):
        assert alpha_from_behavior(0.0, 15.0) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            alpha_from_behavior(-1.0, 15.0)
        with pytest.raises(ValueError):
            alpha_from_behavior(10.0, 15.0, ti_normalization=0.0)

    def test_static_content_returns_large_alpha_limit(self):
        # TI <= 0 (a static segment) no longer crashes: frame-rate
        # reduction on still content is free, i.e. the large-alpha limit.
        alpha = alpha_from_behavior(10.0, 0.0)
        assert alpha >= 1e5
        assert frame_rate_factor(21.0, 30.0, alpha) == pytest.approx(1.0)
        # Even a static gaze on static content takes the same limit.
        assert alpha_from_behavior(0.0, 0.0) == alpha
        assert alpha_from_behavior(0.0, -3.0) == alpha


class TestFrameRateFactor:
    def test_full_rate_is_one(self):
        for alpha in (0.1, 1.0, 10.0):
            assert frame_rate_factor(30.0, 30.0, alpha) == pytest.approx(1.0)

    def test_monotone_in_frame_rate(self):
        values = [frame_rate_factor(f, 30.0, 2.0) for f in (15.0, 21.0, 27.0, 30.0)]
        assert values == sorted(values)

    def test_larger_alpha_slower_falling(self):
        # Paper: "a larger alpha indicates a slower falling rate".
        drop_small = 1 - frame_rate_factor(21.0, 30.0, 0.5)
        drop_large = 1 - frame_rate_factor(21.0, 30.0, 20.0)
        assert drop_large < drop_small

    def test_fast_switching_makes_reduction_nearly_free(self):
        # A user sweeping 30 deg/s over moderate-motion content.
        alpha = alpha_from_behavior(30.0, 15.0)
        assert frame_rate_factor(21.0, 30.0, alpha) > 0.99

    def test_static_gaze_penalized_linearly(self):
        # Tiny alpha degenerates to f/fm.
        assert frame_rate_factor(21.0, 30.0, 1e-6) == pytest.approx(0.7, abs=1e-3)

    def test_bounds(self):
        with pytest.raises(ValueError):
            frame_rate_factor(0.0, 30.0, 1.0)
        with pytest.raises(ValueError):
            frame_rate_factor(31.0, 30.0, 1.0)
        with pytest.raises(ValueError):
            frame_rate_factor(21.0, 30.0, 0.0)

    def test_factor_in_unit_interval(self):
        for f in (5.0, 15.0, 29.0):
            for alpha in (0.01, 1.0, 50.0):
                factor = frame_rate_factor(f, 30.0, alpha)
                assert 0.0 < factor <= 1.0

    def test_continuity_at_alpha_threshold(self):
        # The small-alpha series expansion matches the exact formula.
        just_below = frame_rate_factor(21.0, 30.0, 9.9e-5)
        just_above = frame_rate_factor(21.0, 30.0, 1.01e-4)
        assert just_below == pytest.approx(just_above, abs=1e-4)
