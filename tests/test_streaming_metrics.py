"""Unit tests for session metrics aggregation."""

import pytest

from repro.power import SegmentEnergy, TilingScheme
from repro.qoe import SegmentQoE
from repro.streaming import (
    SegmentRecord,
    SessionResult,
    mean_sessions,
    normalize_by,
)


def make_record(index=0, quality=3, stall=0.0, used_ptile=False,
                energy=(1.0, 0.5, 0.2), qo=80.0):
    return SegmentRecord(
        index=index,
        quality=quality,
        frame_rate=30.0,
        size_mbit=3.0,
        download_time_s=0.7,
        wait_s=0.0,
        stall_s=stall,
        buffer_before_s=2.0,
        coverage=0.9,
        qo_effective=qo,
        qoe=SegmentQoE(qo, 1.0, 0.0),
        energy=SegmentEnergy(*energy),
        decode_scheme=TilingScheme.CTILE,
        used_ptile=used_ptile,
    )


def make_session(n=4, **kwargs):
    session = SessionResult("ctile", 1, 0, "Pixel 3", "trace2")
    for i in range(n):
        session.add(make_record(index=i, **kwargs))
    return session


class TestSessionResult:
    def test_energy_totals(self):
        session = make_session(3)
        assert session.total_energy_j == pytest.approx(3 * 1.7)
        assert session.energy_per_segment_j == pytest.approx(1.7)

    def test_session_qoe(self):
        session = make_session(2)
        assert session.mean_qoe == pytest.approx(79.0)  # 80 - 1 variation

    def test_mean_statistics(self):
        session = make_session(5, quality=4)
        assert session.mean_quality_level == 4.0
        assert session.mean_frame_rate == 30.0
        assert session.mean_coverage == pytest.approx(0.9)

    def test_rebuffer_count_excludes_startup(self):
        session = SessionResult("c", 1, 0, "d", "n")
        session.add(make_record(index=0, stall=1.0))
        session.add(make_record(index=1, stall=0.5))
        session.add(make_record(index=2, stall=0.0))
        assert session.rebuffer_count == 1
        assert session.total_stall_s == pytest.approx(1.5)

    def test_ptile_hit_rate(self):
        session = SessionResult("p", 1, 0, "d", "n")
        session.add(make_record(index=0, used_ptile=True))
        session.add(make_record(index=1, used_ptile=False))
        assert session.ptile_hit_rate == 0.5

    def test_empty_session_guards(self):
        session = SessionResult("c", 1, 0, "d", "n")
        with pytest.raises(ValueError):
            session.energy_per_segment_j


class TestAggregation:
    def test_mean_sessions_keys(self):
        metrics = mean_sessions([make_session(), make_session()])
        for key in ("energy_j", "qoe", "quality_level", "rebuffer_count"):
            assert key in metrics

    def test_mean_sessions_values(self):
        a = make_session(2, energy=(1.0, 0.0, 0.0))
        b = make_session(2, energy=(3.0, 0.0, 0.0))
        metrics = mean_sessions([a, b])
        assert metrics["transmission_j"] == pytest.approx(4.0)
        assert metrics["energy_per_segment_j"] == pytest.approx(2.0)

    def test_mean_sessions_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_sessions([])

    def test_normalize_by(self):
        metrics = {
            "ctile": {"energy_j": 10.0},
            "ours": {"energy_j": 5.0},
        }
        normalized = normalize_by(metrics, "ctile", "energy_j")
        assert normalized["ours"] == 0.5
        assert normalized["ctile"] == 1.0

    def test_normalize_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize_by({"a": {"x": 1.0}}, "b", "x")

    def test_normalize_zero_baseline(self):
        with pytest.raises(ZeroDivisionError):
            normalize_by({"a": {"x": 0.0}}, "a", "x")
