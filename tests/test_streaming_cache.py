"""Unit tests for the edge-cache extension."""

import pytest

from repro.streaming import (
    CacheStats,
    EdgeCache,
    ptile_vs_ctile_caching,
    simulate_cache,
)


class TestEdgeCache:
    def test_miss_then_hit(self):
        cache = EdgeCache(capacity_mbit=10.0)
        assert not cache.request("a", 1.0)
        assert cache.request("a", 1.0)

    def test_lru_eviction(self):
        cache = EdgeCache(capacity_mbit=2.0, policy="lru")
        cache.request("a", 1.0)
        cache.request("b", 1.0)
        cache.request("a", 1.0)  # refresh a
        cache.request("c", 1.0)  # evicts b (least recently used)
        assert cache.request("a", 1.0)
        assert not cache.request("b", 1.0)

    def test_lfu_eviction(self):
        cache = EdgeCache(capacity_mbit=2.0, policy="lfu")
        for _ in range(3):
            cache.request("hot", 1.0)
        cache.request("cold", 1.0)
        cache.request("new", 1.0)  # evicts cold (lowest frequency)
        assert cache.request("hot", 1.0)
        assert not cache.request("cold", 1.0)

    def test_oversized_object_not_stored(self):
        cache = EdgeCache(capacity_mbit=1.0)
        assert not cache.request("big", 5.0)
        assert not cache.request("big", 5.0)  # still a miss
        assert cache.used_mbit == 0.0

    def test_capacity_respected(self):
        cache = EdgeCache(capacity_mbit=3.0)
        for i in range(10):
            cache.request(f"o{i}", 1.0)
        assert cache.used_mbit <= 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeCache(capacity_mbit=0.0)
        with pytest.raises(ValueError):
            EdgeCache(capacity_mbit=1.0, policy="fifo")
        with pytest.raises(ValueError):
            EdgeCache(capacity_mbit=1.0).request("a", -1.0)


class TestSimulateCache:
    def test_stats_accounting(self):
        stats = simulate_cache(
            [("a", 2.0), ("a", 2.0), ("b", 3.0)], capacity_mbit=10.0
        )
        assert stats.requests == 3
        assert stats.hits == 1
        assert stats.bytes_requested_mbit == pytest.approx(7.0)
        assert stats.bytes_backhaul_mbit == pytest.approx(5.0)
        assert stats.hit_ratio == pytest.approx(1 / 3)
        assert stats.byte_hit_ratio == pytest.approx(2 / 7)

    def test_empty_stream(self):
        stats = simulate_cache([], capacity_mbit=1.0)
        assert stats.hit_ratio == 0.0
        assert stats.byte_hit_ratio == 0.0


class TestPtileVsCtileCaching:
    @pytest.fixture(scope="class")
    def comparison(self, manifest2, small_dataset, ptiles2):
        return ptile_vs_ctile_caching(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=50.0,
        )

    def test_both_schemes_present(self, comparison):
        assert set(comparison) == {"ctile", "ptile"}

    def test_concurrent_viewers_hit(self, comparison):
        # Viewers of the same segment share objects.
        assert comparison["ctile"].hit_ratio > 0.5
        assert comparison["ptile"].hit_ratio > 0.5

    def test_ptile_cuts_backhaul(self, comparison):
        """The extension's headline: Ptiles reduce backhaul traffic."""
        assert (
            comparison["ptile"].bytes_backhaul_mbit
            < comparison["ctile"].bytes_backhaul_mbit
        )

    def test_requires_viewers(self, manifest2, ptiles2):
        with pytest.raises(ValueError):
            ptile_vs_ctile_caching(manifest2, [], ptiles2)

    def test_stats_type(self, comparison):
        assert isinstance(comparison["ctile"], CacheStats)
