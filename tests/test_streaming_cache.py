"""Unit tests for the edge-cache extension."""

import pytest

from repro.streaming import (
    CacheStats,
    CacheTenant,
    EdgeCache,
    EdgeHitModel,
    SharedCacheResult,
    build_edge_hit_model,
    build_shared_edge_hit_models,
    interleave_tenant_requests,
    ptile_vs_ctile_caching,
    simulate_cache,
)


class TestEdgeCache:
    def test_miss_then_hit(self):
        cache = EdgeCache(capacity_mbit=10.0)
        assert not cache.request("a", 1.0)
        assert cache.request("a", 1.0)

    def test_lru_eviction(self):
        cache = EdgeCache(capacity_mbit=2.0, policy="lru")
        cache.request("a", 1.0)
        cache.request("b", 1.0)
        cache.request("a", 1.0)  # refresh a
        cache.request("c", 1.0)  # evicts b (least recently used)
        assert cache.request("a", 1.0)
        assert not cache.request("b", 1.0)

    def test_lfu_eviction(self):
        cache = EdgeCache(capacity_mbit=2.0, policy="lfu")
        for _ in range(3):
            cache.request("hot", 1.0)
        cache.request("cold", 1.0)
        cache.request("new", 1.0)  # evicts cold (lowest frequency)
        assert cache.request("hot", 1.0)
        assert not cache.request("cold", 1.0)

    def test_oversized_object_not_stored(self):
        cache = EdgeCache(capacity_mbit=1.0)
        assert not cache.request("big", 5.0)
        assert not cache.request("big", 5.0)  # still a miss
        assert cache.used_mbit == 0.0

    def test_capacity_respected(self):
        cache = EdgeCache(capacity_mbit=3.0)
        for i in range(10):
            cache.request(f"o{i}", 1.0)
        assert cache.used_mbit <= 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeCache(capacity_mbit=0.0)
        with pytest.raises(ValueError):
            EdgeCache(capacity_mbit=1.0, policy="fifo")
        with pytest.raises(ValueError):
            EdgeCache(capacity_mbit=1.0).request("a", -1.0)

    @pytest.mark.parametrize("policy", ["lru", "lfu"])
    def test_frequency_table_bounded_on_long_streams(self, policy):
        """Regression: _frequency must not grow with the stream length.

        It used to keep one entry per key ever requested — including
        long-evicted keys and oversized objects that were never stored —
        leaking memory over long request streams and skewing LFU toward
        keys whose popularity came from an evicted tenure.
        """
        cache = EdgeCache(capacity_mbit=4.0, policy=policy)
        for i in range(1000):  # stream far longer than capacity
            cache.request(f"obj-{i}", 1.0)
        cache.request("oversized", 9.0)  # served, never stored
        assert len(cache._frequency) <= len(cache._objects)
        assert "oversized" not in cache._frequency
        assert cache.used_mbit <= 4.0

    def test_lfu_eviction_ignores_evicted_tenure(self):
        """An evicted key re-enters with a fresh count, not its old one."""
        cache = EdgeCache(capacity_mbit=2.0, policy="lfu")
        for _ in range(5):
            cache.request("hot", 1.0)
        cache.request("filler", 1.0)
        cache.request("evictor", 1.0)  # evicts filler (freq 1 < 5)
        assert not cache.request("filler", 1.0)  # re-admitted (evictor out)
        # filler's count restarts at 1 for the new tenure; before the
        # fix it would have carried over to 2.
        assert cache._frequency["filler"] == 1

    def test_hit_with_changed_size_updates_accounting(self):
        """Regression: a resident key re-requested at a new size must
        update the stored size and _used_mbit (they used to go stale)."""
        cache = EdgeCache(capacity_mbit=10.0)
        assert not cache.request("a", 2.0)
        assert cache.request("a", 5.0)  # still a hit, size updated
        assert cache.used_mbit == pytest.approx(5.0)
        assert cache._objects["a"] == pytest.approx(5.0)
        assert cache.request("a", 1.0)  # shrink updates too
        assert cache.used_mbit == pytest.approx(1.0)

    def test_hit_with_grown_size_evicts_to_fit(self):
        cache = EdgeCache(capacity_mbit=10.0, policy="lru")
        cache.request("a", 4.0)
        cache.request("b", 4.0)
        assert cache.request("a", 8.0)  # grows; must evict b to fit
        assert cache.used_mbit == pytest.approx(8.0)
        assert not cache.request("b", 4.0)  # b was evicted
        assert cache.used_mbit <= 10.0

    def test_hit_with_oversized_new_size_drops_object(self):
        cache = EdgeCache(capacity_mbit=10.0)
        cache.request("a", 2.0)
        assert not cache.request("a", 11.0)  # no longer storable: miss
        assert cache.used_mbit == 0.0
        assert "a" not in cache._objects
        assert "a" not in cache._frequency

    def test_capacity_sized_regrow_survives_float_residue(self):
        # Regression (hypothesis falsifying example): subtraction residue
        # in _used_mbit made a capacity-sized re-admission evict past an
        # empty cache and crash.
        capacity = 2.542870980097112
        cache = EdgeCache(capacity_mbit=capacity, policy="lru")
        cache.request((0,), 1.0)
        cache.request((1,), 1.2549724979308496)
        assert cache.request((0,), capacity)  # grows to exactly capacity
        assert cache.used_mbit == pytest.approx(capacity)
        assert list(cache._objects) == [(0,)]

    def test_empty_cache_accounting_resets_exactly(self):
        cache = EdgeCache(capacity_mbit=3.0, policy="lfu")
        cache.request("a", 0.1 + 0.2)  # sums with float error
        cache.request("b", 2.0)
        cache.request("c", 2.9)  # evicts both
        assert list(cache._objects) == ["c"]
        assert not cache.request("a", 0.3)
        assert cache.used_mbit <= cache.capacity_mbit


class TestSimulateCache:
    def test_stats_accounting(self):
        stats = simulate_cache(
            [("a", 2.0), ("a", 2.0), ("b", 3.0)], capacity_mbit=10.0
        )
        assert stats.requests == 3
        assert stats.hits == 1
        assert stats.bytes_requested_mbit == pytest.approx(7.0)
        assert stats.bytes_backhaul_mbit == pytest.approx(5.0)
        assert stats.hit_ratio == pytest.approx(1 / 3)
        assert stats.byte_hit_ratio == pytest.approx(2 / 7)

    def test_empty_stream(self):
        stats = simulate_cache([], capacity_mbit=1.0)
        assert stats.hit_ratio == 0.0
        assert stats.byte_hit_ratio == 0.0


class TestPtileVsCtileCaching:
    @pytest.fixture(scope="class")
    def comparison(self, manifest2, small_dataset, ptiles2):
        return ptile_vs_ctile_caching(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=50.0,
        )

    def test_both_schemes_present(self, comparison):
        assert set(comparison) == {"ctile", "ptile"}

    def test_concurrent_viewers_hit(self, comparison):
        # Viewers of the same segment share objects.
        assert comparison["ctile"].hit_ratio > 0.5
        assert comparison["ptile"].hit_ratio > 0.5

    def test_ptile_cuts_backhaul(self, comparison):
        """The extension's headline: Ptiles reduce backhaul traffic."""
        assert (
            comparison["ptile"].bytes_backhaul_mbit
            < comparison["ctile"].bytes_backhaul_mbit
        )

    def test_requires_viewers(self, manifest2, ptiles2):
        with pytest.raises(ValueError):
            ptile_vs_ctile_caching(manifest2, [], ptiles2)

    def test_stats_type(self, comparison):
        assert isinstance(comparison["ctile"], CacheStats)


class TestEdgeHitModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeHitModel(hit_ratios=(0.5,), edge_bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            EdgeHitModel(hit_ratios=(1.5,))
        with pytest.raises(ValueError):
            EdgeHitModel(hit_ratios=(-0.1,))

    def test_hit_ratio_clamps_past_the_end(self):
        model = EdgeHitModel(hit_ratios=(0.2, 0.4, 0.6))
        assert model.hit_ratio(0) == 0.2
        assert model.hit_ratio(2) == 0.6
        assert model.hit_ratio(99) == 0.6  # last ratio past the end

    def test_hit_ratio_clamps_negative_index(self):
        model = EdgeHitModel(hit_ratios=(0.2, 0.4, 0.6))
        assert model.hit_ratio(-5) == 0.2

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            EdgeHitModel(hit_ratios=(0.5,), edge_bandwidth_mbps=-10.0)

    def test_empty_model_never_hits(self):
        model = EdgeHitModel(hit_ratios=())
        assert model.hit_ratio(0) == 0.0
        assert model.mean_hit_ratio == 0.0

    def test_mean(self):
        model = EdgeHitModel(hit_ratios=(0.0, 0.5, 1.0))
        assert model.mean_hit_ratio == pytest.approx(0.5)


class TestBuildEdgeHitModel:
    @pytest.fixture(scope="class")
    def model(self, manifest2, small_dataset, ptiles2):
        return build_edge_hit_model(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=2000.0,
        )

    def test_one_ratio_per_segment_in_bounds(self, model, manifest2):
        assert len(model.hit_ratios) == manifest2.num_segments
        assert all(0.0 <= r <= 1.0 for r in model.hit_ratios)

    def test_deterministic(self, model, manifest2, small_dataset, ptiles2):
        again = build_edge_hit_model(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=2000.0,
        )
        assert again.hit_ratios == model.hit_ratios

    def test_population_sharing_yields_hits(self, model):
        # Eight concurrent viewers share Ptile objects per segment, so
        # an ample cache must serve a meaningful byte fraction.
        assert model.mean_hit_ratio > 0.3

    def test_capacity_monotone(self, manifest2, small_dataset, ptiles2):
        tiny = build_edge_hit_model(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=1.0,
        )
        big = build_edge_hit_model(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=8000.0,
        )
        assert big.mean_hit_ratio >= tiny.mean_hit_ratio

    def test_requires_viewers(self, manifest2, ptiles2):
        with pytest.raises(ValueError):
            build_edge_hit_model(manifest2, [], ptiles2)


class TestSharedEdgeCache:
    @pytest.fixture(scope="class")
    def tenants(self, manifest2, manifest8, small_dataset, ptiles2, ptiles8):
        return [
            CacheTenant(2, manifest2, small_dataset.traces[2][:6], ptiles2),
            CacheTenant(8, manifest8, small_dataset.traces[8][:6], ptiles8),
        ]

    @pytest.fixture(scope="class")
    def shared(self, tenants):
        return build_shared_edge_hit_models(tenants, capacity_mbit=2000.0)

    def test_one_model_per_video_in_bounds(self, shared, tenants):
        assert isinstance(shared, SharedCacheResult)
        assert set(shared.models) == {2, 8}
        for tenant in tenants:
            ratios = shared.models[tenant.video_id].hit_ratios
            assert len(ratios) == tenant.manifest.num_segments
            assert all(0.0 <= r <= 1.0 for r in ratios)

    def test_per_video_stats_sum_to_overall(self, shared):
        assert shared.overall.requests == sum(
            s.requests for s in shared.per_video.values()
        )
        assert shared.overall.hits == sum(
            s.hits for s in shared.per_video.values()
        )
        assert 0.0 <= shared.overall.hit_ratio <= 1.0
        assert 0.0 <= shared.overall.byte_hit_ratio <= 1.0

    def test_deterministic(self, shared, tenants):
        again = build_shared_edge_hit_models(tenants, capacity_mbit=2000.0)
        assert again.models == shared.models
        assert again.overall == shared.overall

    def test_huge_capacity_matches_private_caches(
        self, tenants, manifest2, manifest8, small_dataset, ptiles2, ptiles8
    ):
        # With effectively infinite capacity tenants cannot evict each
        # other, so the shared cache degenerates to private caches.
        shared = build_shared_edge_hit_models(tenants, capacity_mbit=1e9)
        private2 = build_edge_hit_model(
            manifest2, small_dataset.traces[2][:6], ptiles2,
            capacity_mbit=1e9,
        )
        private8 = build_edge_hit_model(
            manifest8, small_dataset.traces[8][:6], ptiles8,
            capacity_mbit=1e9,
        )
        assert shared.models[2].hit_ratios == private2.hit_ratios
        assert shared.models[8].hit_ratios == private8.hit_ratios

    def test_contention_lowers_hit_ratio(self, tenants):
        tiny = build_shared_edge_hit_models(tenants, capacity_mbit=2.0)
        huge = build_shared_edge_hit_models(tenants, capacity_mbit=1e9)
        assert tiny.mean_hit_ratio <= huge.mean_hit_ratio

    def test_ptile_beats_ctile_byte_hit(self, tenants):
        ptile = build_shared_edge_hit_models(
            tenants, capacity_mbit=50.0, scheme="ptile"
        )
        ctile = build_shared_edge_hit_models(
            tenants, capacity_mbit=50.0, scheme="ctile"
        )
        assert (
            ptile.overall.byte_hit_ratio >= ctile.overall.byte_hit_ratio
        )

    def test_ctile_scheme_supported(self, tenants):
        result = build_shared_edge_hit_models(
            tenants, capacity_mbit=500.0, scheme="ctile"
        )
        assert result.scheme == "ctile"
        assert result.overall.requests > 0

    def test_validation(self, tenants, manifest2, small_dataset):
        with pytest.raises(ValueError, match="tenant"):
            build_shared_edge_hit_models([])
        with pytest.raises(ValueError, match="duplicate"):
            build_shared_edge_hit_models([tenants[0], tenants[0]])
        no_ptiles = CacheTenant(2, manifest2, small_dataset.traces[2][:2])
        with pytest.raises(ValueError, match="ptile"):
            build_shared_edge_hit_models([no_ptiles])
        with pytest.raises(ValueError, match="scheme"):
            build_shared_edge_hit_models(tenants, scheme="fifo")
        with pytest.raises(ValueError, match="viewer"):
            CacheTenant(2, manifest2, ())

    def test_interleaver_namespaces_and_alternates(self, tenants):
        stream = list(
            interleave_tenant_requests(tenants, scheme="ptile")
        )
        assert stream
        segments = [seg for _, seg, _, _ in stream]
        assert segments == sorted(segments)  # segment-synchronous rounds
        for video_id, _, key, size in stream:
            assert key[0] == video_id  # namespaced: no cross-video clash
            assert size >= 0.0
        # Within the first round the tenants must alternate at viewer
        # granularity, not stream one whole population contiguously —
        # otherwise contention is invisible to the cache.
        round0 = [vid for vid, seg, _, _ in stream if seg == 0]
        changes = sum(
            1 for a, b in zip(round0, round0[1:]) if a != b
        )
        assert changes > 2

    def test_empty_tenant_stream_rejected(self):
        # Silently yielding an empty stream (or training all-miss
        # models) hides configuration bugs; both entry points must
        # refuse loudly instead.
        with pytest.raises(ValueError, match="empty tenant collection"):
            list(interleave_tenant_requests(()))
        with pytest.raises(ValueError, match="at least one CacheTenant"):
            build_shared_edge_hit_models([])
        with pytest.raises(ValueError, match="at least one CacheTenant"):
            build_shared_edge_hit_models(iter(()))
