"""Unit tests for the edge-cache extension."""

import pytest

from repro.streaming import (
    CacheStats,
    EdgeCache,
    EdgeHitModel,
    build_edge_hit_model,
    ptile_vs_ctile_caching,
    simulate_cache,
)


class TestEdgeCache:
    def test_miss_then_hit(self):
        cache = EdgeCache(capacity_mbit=10.0)
        assert not cache.request("a", 1.0)
        assert cache.request("a", 1.0)

    def test_lru_eviction(self):
        cache = EdgeCache(capacity_mbit=2.0, policy="lru")
        cache.request("a", 1.0)
        cache.request("b", 1.0)
        cache.request("a", 1.0)  # refresh a
        cache.request("c", 1.0)  # evicts b (least recently used)
        assert cache.request("a", 1.0)
        assert not cache.request("b", 1.0)

    def test_lfu_eviction(self):
        cache = EdgeCache(capacity_mbit=2.0, policy="lfu")
        for _ in range(3):
            cache.request("hot", 1.0)
        cache.request("cold", 1.0)
        cache.request("new", 1.0)  # evicts cold (lowest frequency)
        assert cache.request("hot", 1.0)
        assert not cache.request("cold", 1.0)

    def test_oversized_object_not_stored(self):
        cache = EdgeCache(capacity_mbit=1.0)
        assert not cache.request("big", 5.0)
        assert not cache.request("big", 5.0)  # still a miss
        assert cache.used_mbit == 0.0

    def test_capacity_respected(self):
        cache = EdgeCache(capacity_mbit=3.0)
        for i in range(10):
            cache.request(f"o{i}", 1.0)
        assert cache.used_mbit <= 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeCache(capacity_mbit=0.0)
        with pytest.raises(ValueError):
            EdgeCache(capacity_mbit=1.0, policy="fifo")
        with pytest.raises(ValueError):
            EdgeCache(capacity_mbit=1.0).request("a", -1.0)

    @pytest.mark.parametrize("policy", ["lru", "lfu"])
    def test_frequency_table_bounded_on_long_streams(self, policy):
        """Regression: _frequency must not grow with the stream length.

        It used to keep one entry per key ever requested — including
        long-evicted keys and oversized objects that were never stored —
        leaking memory over long request streams and skewing LFU toward
        keys whose popularity came from an evicted tenure.
        """
        cache = EdgeCache(capacity_mbit=4.0, policy=policy)
        for i in range(1000):  # stream far longer than capacity
            cache.request(f"obj-{i}", 1.0)
        cache.request("oversized", 9.0)  # served, never stored
        assert len(cache._frequency) <= len(cache._objects)
        assert "oversized" not in cache._frequency
        assert cache.used_mbit <= 4.0

    def test_lfu_eviction_ignores_evicted_tenure(self):
        """An evicted key re-enters with a fresh count, not its old one."""
        cache = EdgeCache(capacity_mbit=2.0, policy="lfu")
        for _ in range(5):
            cache.request("hot", 1.0)
        cache.request("filler", 1.0)
        cache.request("evictor", 1.0)  # evicts filler (freq 1 < 5)
        assert not cache.request("filler", 1.0)  # re-admitted (evictor out)
        # filler's count restarts at 1 for the new tenure; before the
        # fix it would have carried over to 2.
        assert cache._frequency["filler"] == 1

    def test_hit_with_changed_size_updates_accounting(self):
        """Regression: a resident key re-requested at a new size must
        update the stored size and _used_mbit (they used to go stale)."""
        cache = EdgeCache(capacity_mbit=10.0)
        assert not cache.request("a", 2.0)
        assert cache.request("a", 5.0)  # still a hit, size updated
        assert cache.used_mbit == pytest.approx(5.0)
        assert cache._objects["a"] == pytest.approx(5.0)
        assert cache.request("a", 1.0)  # shrink updates too
        assert cache.used_mbit == pytest.approx(1.0)

    def test_hit_with_grown_size_evicts_to_fit(self):
        cache = EdgeCache(capacity_mbit=10.0, policy="lru")
        cache.request("a", 4.0)
        cache.request("b", 4.0)
        assert cache.request("a", 8.0)  # grows; must evict b to fit
        assert cache.used_mbit == pytest.approx(8.0)
        assert not cache.request("b", 4.0)  # b was evicted
        assert cache.used_mbit <= 10.0

    def test_hit_with_oversized_new_size_drops_object(self):
        cache = EdgeCache(capacity_mbit=10.0)
        cache.request("a", 2.0)
        assert not cache.request("a", 11.0)  # no longer storable: miss
        assert cache.used_mbit == 0.0
        assert "a" not in cache._objects
        assert "a" not in cache._frequency


class TestSimulateCache:
    def test_stats_accounting(self):
        stats = simulate_cache(
            [("a", 2.0), ("a", 2.0), ("b", 3.0)], capacity_mbit=10.0
        )
        assert stats.requests == 3
        assert stats.hits == 1
        assert stats.bytes_requested_mbit == pytest.approx(7.0)
        assert stats.bytes_backhaul_mbit == pytest.approx(5.0)
        assert stats.hit_ratio == pytest.approx(1 / 3)
        assert stats.byte_hit_ratio == pytest.approx(2 / 7)

    def test_empty_stream(self):
        stats = simulate_cache([], capacity_mbit=1.0)
        assert stats.hit_ratio == 0.0
        assert stats.byte_hit_ratio == 0.0


class TestPtileVsCtileCaching:
    @pytest.fixture(scope="class")
    def comparison(self, manifest2, small_dataset, ptiles2):
        return ptile_vs_ctile_caching(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=50.0,
        )

    def test_both_schemes_present(self, comparison):
        assert set(comparison) == {"ctile", "ptile"}

    def test_concurrent_viewers_hit(self, comparison):
        # Viewers of the same segment share objects.
        assert comparison["ctile"].hit_ratio > 0.5
        assert comparison["ptile"].hit_ratio > 0.5

    def test_ptile_cuts_backhaul(self, comparison):
        """The extension's headline: Ptiles reduce backhaul traffic."""
        assert (
            comparison["ptile"].bytes_backhaul_mbit
            < comparison["ctile"].bytes_backhaul_mbit
        )

    def test_requires_viewers(self, manifest2, ptiles2):
        with pytest.raises(ValueError):
            ptile_vs_ctile_caching(manifest2, [], ptiles2)

    def test_stats_type(self, comparison):
        assert isinstance(comparison["ctile"], CacheStats)


class TestEdgeHitModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeHitModel(hit_ratios=(0.5,), edge_bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            EdgeHitModel(hit_ratios=(1.5,))
        with pytest.raises(ValueError):
            EdgeHitModel(hit_ratios=(-0.1,))

    def test_hit_ratio_clamps_past_the_end(self):
        model = EdgeHitModel(hit_ratios=(0.2, 0.4, 0.6))
        assert model.hit_ratio(0) == 0.2
        assert model.hit_ratio(2) == 0.6
        assert model.hit_ratio(99) == 0.6  # last ratio past the end

    def test_empty_model_never_hits(self):
        model = EdgeHitModel(hit_ratios=())
        assert model.hit_ratio(0) == 0.0
        assert model.mean_hit_ratio == 0.0

    def test_mean(self):
        model = EdgeHitModel(hit_ratios=(0.0, 0.5, 1.0))
        assert model.mean_hit_ratio == pytest.approx(0.5)


class TestBuildEdgeHitModel:
    @pytest.fixture(scope="class")
    def model(self, manifest2, small_dataset, ptiles2):
        return build_edge_hit_model(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=2000.0,
        )

    def test_one_ratio_per_segment_in_bounds(self, model, manifest2):
        assert len(model.hit_ratios) == manifest2.num_segments
        assert all(0.0 <= r <= 1.0 for r in model.hit_ratios)

    def test_deterministic(self, model, manifest2, small_dataset, ptiles2):
        again = build_edge_hit_model(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=2000.0,
        )
        assert again.hit_ratios == model.hit_ratios

    def test_population_sharing_yields_hits(self, model):
        # Eight concurrent viewers share Ptile objects per segment, so
        # an ample cache must serve a meaningful byte fraction.
        assert model.mean_hit_ratio > 0.3

    def test_capacity_monotone(self, manifest2, small_dataset, ptiles2):
        tiny = build_edge_hit_model(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=1.0,
        )
        big = build_edge_hit_model(
            manifest2, small_dataset.traces[2][:8], ptiles2,
            capacity_mbit=8000.0,
        )
        assert big.mean_hit_ratio >= tiny.mean_hit_ratio

    def test_requires_viewers(self, manifest2, ptiles2):
        with pytest.raises(ValueError):
            build_edge_hit_model(manifest2, [], ptiles2)
