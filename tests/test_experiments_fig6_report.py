"""Tests for the Fig. 6 experiment and the full-report generator."""

import pytest

from repro.experiments import (
    ReportConfig,
    generate_report,
    make_wide_cluster,
    run_fig6,
)


class TestFig6:
    def test_wide_cluster_shape(self):
        centers = make_wide_cluster(n_users=20, span_deg=70.0)
        assert len(centers) == 20
        yaws = [c.yaw for c in centers]
        assert max(yaws) - min(yaws) == pytest.approx(70.0)

    def test_split_demonstrated(self):
        result = run_fig6()
        assert result.unbounded.num_ptiles == 1
        assert result.bounded.num_ptiles == 2
        assert max(result.unbounded_diameters) > result.sigma
        assert all(d <= result.sigma for d in result.bounded_diameters)

    def test_report_contains_maps(self):
        lines = run_fig6().report()
        assert any("A" in ln and "B" in ln for ln in lines)

    def test_deterministic(self):
        a = run_fig6()
        b = run_fig6()
        assert a.bounded_diameters == b.bounded_diameters


class TestFullReport:
    @pytest.fixture(scope="class")
    def report_text(self):
        config = ReportConfig(
            max_duration_s=12, users_per_video=1, video_ids=(2,)
        )
        return generate_report(config)

    def test_all_sections_present(self, report_text):
        for section in (
            "Table I", "Table II", "Table III", "Fig. 2", "Fig. 5",
            "Fig. 7", "Fig. 8", "Figs. 9-11",
        ):
            assert section in report_text

    def test_charts_rendered(self, report_text):
        assert "█" in report_text  # bar charts
        assert "normalized by Ctile" in report_text

    def test_written_to_disk(self, tmp_path):
        config = ReportConfig(
            max_duration_s=10, users_per_video=1, video_ids=(2,)
        )
        path = tmp_path / "report.md"
        text = generate_report(config, path=path)
        assert path.read_text(encoding="utf-8") == text
