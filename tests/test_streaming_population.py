"""Parity and unit tests for the batched population session engine.

The engine's contract is numeric agreement with
:func:`~repro.streaming.session.run_session` on identical inputs, so
most tests here run both paths and compare per-session aggregates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import OursScheme
from repro.streaming import (
    CtileScheme,
    PopulationEngine,
    PtileScheme,
    SessionConfig,
    run_session,
)
from repro.streaming.cache import build_edge_hit_model
from repro.traces import DiurnalPoissonArrivals, NetworkTrace, assign_users

RTOL = 1e-9
CFG = SessionConfig(max_segments=10)


def _assert_parity(engine, scheme, manifest, traces, network, device,
                   ptiles, config, user_indices, **run_kwargs):
    res = engine.run(user_indices, **run_kwargs)
    for j, u in enumerate(user_indices):
        scalar = run_session(
            scheme, manifest, traces[u], network, device,
            ptiles=ptiles, config=config,
        )
        sq = scalar.session_qoe
        pairs = [
            ("transmission_j", res.transmission_j[j], scalar.energy.transmission_j),
            ("decoding_j", res.decoding_j[j], scalar.energy.decoding_j),
            ("rendering_j", res.rendering_j[j], scalar.energy.rendering_j),
            ("total_energy_j", res.total_energy_j[j], scalar.total_energy_j),
            ("mean_qoe", res.mean_qoe[j], sq.mean_q),
            ("mean_qo", res.mean_qo[j], sq.mean_qo),
            ("mean_variation", res.mean_variation[j], sq.mean_variation),
            ("mean_rebuffer", res.mean_rebuffer[j], sq.mean_rebuffer),
            ("total_stall_s", res.total_stall_s[j], scalar.total_stall_s),
            ("mean_quality_level", res.mean_quality_level[j],
             scalar.mean_quality_level),
            ("mean_frame_rate", res.mean_frame_rate[j], scalar.mean_frame_rate),
            ("mean_coverage", res.mean_coverage[j], scalar.mean_coverage),
            ("ptile_hit_rate", res.ptile_hit_rate[j], scalar.ptile_hit_rate),
            ("total_edge_hit_mbit", res.total_edge_hit_mbit[j],
             scalar.total_edge_hit_mbit),
        ]
        for name, got, want in pairs:
            assert got == pytest.approx(want, rel=RTOL, abs=1e-12), (
                f"{name} diverged for session {j} (user {u}): "
                f"engine={got!r} scalar={want!r}"
            )
        assert int(res.rebuffer_count[j]) == scalar.rebuffer_count
    return res


class TestParity:
    def test_ctile_single_session(self, manifest2, small_dataset,
                                  network_traces, device):
        traces = small_dataset.test_traces(2)
        scheme = CtileScheme()
        engine = PopulationEngine(
            scheme, manifest2, traces, network_traces[1], device, config=CFG
        )
        _assert_parity(engine, scheme, manifest2, traces, network_traces[1],
                       device, None, CFG, [0])

    def test_ptile_all_users(self, manifest2, ptiles2, small_dataset,
                             network_traces, device):
        traces = small_dataset.test_traces(2)
        scheme = PtileScheme()
        engine = PopulationEngine(
            scheme, manifest2, traces, network_traces[1], device,
            ptiles=ptiles2, config=CFG,
        )
        _assert_parity(engine, scheme, manifest2, traces, network_traces[1],
                       device, ptiles2, CFG, list(range(len(traces))))

    def test_ours_bandwidth_window_boundary(self, manifest2, ptiles2,
                                            small_dataset, network_traces,
                                            device):
        # Exactly bandwidth_window (5) sessions: the harmonic-estimator
        # ring wraps for the first time on the last segment feeds.
        traces = small_dataset.test_traces(2)
        scheme = OursScheme(device=device)
        engine = PopulationEngine(
            scheme, manifest2, traces, network_traces[1], device,
            ptiles=ptiles2, config=CFG,
        )
        _assert_parity(engine, scheme, manifest2, traces, network_traces[1],
                       device, ptiles2, CFG, [0, 1, 2, 3, 0])

    def test_repeated_users_chunked(self, manifest2, ptiles2, small_dataset,
                                    network_traces, device):
        # Seven sessions over four traces in chunks of 3: session count
        # is not a multiple of the chunk, and repeats must share the
        # per-trace precomputation without cross-talk.
        traces = small_dataset.test_traces(2)
        scheme = OursScheme(device=device)
        engine = PopulationEngine(
            scheme, manifest2, traces, network_traces[1], device,
            ptiles=ptiles2, config=CFG,
        )
        users = [0, 1, 2, 3, 0, 1, 2]
        res = _assert_parity(engine, scheme, manifest2, traces,
                             network_traces[1], device, ptiles2, CFG, users,
                             chunk_size=3)
        # Identical inputs yield identical rows.
        assert res.total_energy_j[0] == res.total_energy_j[4]
        assert res.mean_qoe[1] == res.mean_qoe[5]

    def test_ours_without_ptiles_falls_back(self, manifest2, small_dataset,
                                            network_traces, device):
        traces = small_dataset.test_traces(2)
        scheme = OursScheme(device=device)
        engine = PopulationEngine(
            scheme, manifest2, traces, network_traces[1], device, config=CFG
        )
        res = _assert_parity(engine, scheme, manifest2, traces,
                             network_traces[1], device, None, CFG, [0, 1])
        assert np.all(res.ptile_hit_rate == 0.0)

    def test_edge_model_parity(self, manifest2, ptiles2, small_dataset,
                               network_traces, device):
        traces = small_dataset.test_traces(2)
        edge = build_edge_hit_model(
            manifest2, small_dataset.train_traces(2), ptiles2,
            capacity_mbit=500,
        )
        config = SessionConfig(max_segments=10, edge_model=edge)
        scheme = PtileScheme()
        engine = PopulationEngine(
            scheme, manifest2, traces, network_traces[1], device,
            ptiles=ptiles2, config=config,
        )
        res = _assert_parity(engine, scheme, manifest2, traces,
                             network_traces[1], device, ptiles2, config,
                             [0, 1])
        assert np.all(res.total_edge_hit_mbit > 0)

    def test_zero_bandwidth_bins_parity(self, manifest2, small_dataset,
                                        device):
        # A trace that starts with outage seconds exercises the startup
        # probe and the instantaneous-download estimator fallback on
        # both paths.
        traces = small_dataset.test_traces(2)
        trace = NetworkTrace("zeros", np.array([0.0, 0.0] + [6.0] * 40))
        scheme = CtileScheme()
        engine = PopulationEngine(
            scheme, manifest2, traces, trace, device, config=CFG
        )
        _assert_parity(engine, scheme, manifest2, traces, trace, device,
                       None, CFG, [0, 1])


class TestRunSemantics:
    def test_start_times_shift_network_phase(self, manifest2, small_dataset,
                                             network_traces, device):
        traces = small_dataset.test_traces(2)
        engine = PopulationEngine(
            CtileScheme(), manifest2, traces, network_traces[1], device,
            config=CFG,
        )
        res = engine.run([0, 0], [0.0, 41.0])
        assert res.total_energy_j[0] != res.total_energy_j[1]

    def test_default_runs_every_trace(self, manifest2, small_dataset,
                                      network_traces, device):
        traces = small_dataset.test_traces(2)
        engine = PopulationEngine(
            CtileScheme(), manifest2, traces, network_traces[1], device,
            config=CFG,
        )
        res = engine.run()
        assert res.num_sessions == len(traces)
        assert res.num_segments == 10
        means = res.mean_sessions()
        assert means["energy_j"] == pytest.approx(
            float(np.mean(res.total_energy_j))
        )

    def test_run_validation(self, manifest2, small_dataset, network_traces,
                            device):
        traces = small_dataset.test_traces(2)
        engine = PopulationEngine(
            CtileScheme(), manifest2, traces, network_traces[1], device,
            config=CFG,
        )
        with pytest.raises(ValueError):
            engine.run([])
        with pytest.raises(ValueError):
            engine.run([len(traces)])
        with pytest.raises(ValueError):
            engine.run([0, 1], [0.0])
        with pytest.raises(ValueError):
            engine.run([0], [-1.0])
        with pytest.raises(ValueError):
            engine.run([0], chunk_size=0)


class TestConstructorValidation:
    def test_rejects_dead_network(self, manifest2, small_dataset, device):
        dead = NetworkTrace("dead", np.array([0.0, 0.0]))
        with pytest.raises(ValueError, match="zero bandwidth"):
            PopulationEngine(
                CtileScheme(), manifest2, small_dataset.test_traces(2),
                dead, device, config=CFG,
            )

    def test_rejects_resilience_config(self, manifest2, small_dataset,
                                       network_traces, device):
        from repro.resilience import DownloadPolicy

        config = SessionConfig(
            max_segments=10, download_policy=DownloadPolicy()
        )
        with pytest.raises(ValueError, match="run_session"):
            PopulationEngine(
                CtileScheme(), manifest2, small_dataset.test_traces(2),
                network_traces[1], device, config=config,
            )

    def test_rejects_custom_predictor(self, manifest2, small_dataset,
                                      network_traces, device):
        config = SessionConfig(
            max_segments=10, predictor_factory=lambda *a: None
        )
        with pytest.raises(ValueError, match="predictor"):
            PopulationEngine(
                CtileScheme(), manifest2, small_dataset.test_traces(2),
                network_traces[1], device, config=config,
            )

    def test_rejects_oversized_late_fetch(self, manifest2, small_dataset,
                                          network_traces, device):
        config = SessionConfig(max_segments=10, late_fetch_horizon_s=2.0)
        with pytest.raises(ValueError, match="late_fetch"):
            PopulationEngine(
                CtileScheme(), manifest2, small_dataset.test_traces(2),
                network_traces[1], device, config=config,
            )

    def test_rejects_unknown_scheme(self, manifest2, small_dataset,
                                    network_traces, device):
        from repro.streaming import NontileScheme

        with pytest.raises(ValueError, match="unsupported scheme"):
            PopulationEngine(
                NontileScheme(), manifest2, small_dataset.test_traces(2),
                network_traces[1], device, config=CFG,
            )


class TestArrivals:
    def test_deterministic(self):
        a = DiurnalPoissonArrivals(rate_per_s=2.0, amplitude=0.5,
                                   period_s=60.0, seed=11)
        xs = a.sample(120.0)
        ys = a.sample(120.0)
        assert np.array_equal(xs, ys)
        assert np.all(np.diff(xs) > 0)
        assert np.all((xs >= 0) & (xs < 120.0))

    def test_rate_profile(self):
        a = DiurnalPoissonArrivals(rate_per_s=1.0, amplitude=0.5,
                                   period_s=100.0)
        assert a.rate_at(25.0) == pytest.approx(1.5)
        assert a.rate_at(75.0) == pytest.approx(0.5)
        flat = DiurnalPoissonArrivals(rate_per_s=2.0, amplitude=0.0)
        assert flat.rate_at(12345.0) == pytest.approx(2.0)

    def test_mean_rate_is_respected(self):
        a = DiurnalPoissonArrivals(rate_per_s=3.0, amplitude=0.4, seed=3)
        n = a.sample(2000.0).size
        assert n == pytest.approx(6000, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalPoissonArrivals(rate_per_s=0.0)
        with pytest.raises(ValueError):
            DiurnalPoissonArrivals(amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalPoissonArrivals(period_s=0.0)
        with pytest.raises(ValueError):
            DiurnalPoissonArrivals().sample(0.0)

    def test_assign_users(self):
        times = np.array([0.5, 3.0, 9.9])
        users, starts = assign_users(times, 4, seed=7)
        users2, _ = assign_users(times, 4, seed=7)
        assert np.array_equal(users, users2)
        assert np.array_equal(starts, times)
        assert np.all((users >= 0) & (users < 4))
        with pytest.raises(ValueError):
            assign_users(times, 0)
        with pytest.raises(ValueError):
            assign_users(np.array([-1.0]), 4)
