"""Shared fixtures: small, fast instances of the heavy objects.

Session-scoped so the synthetic dataset, Ptiles, and manifests are built
once per test run.
"""

from __future__ import annotations

import pytest

from repro.geometry import DEFAULT_GRID
from repro.power import PIXEL_3
from repro.ptile import build_video_ptiles
from repro.streaming import build_video_ftiles
from repro.traces import build_dataset, paper_traces
from repro.video import EncoderModel, VideoManifest


@pytest.fixture(scope="session")
def small_dataset():
    """Videos 2 (focused) and 8 (exploratory), 16 users, 30 s each."""
    return build_dataset(
        n_users=16, n_train=12, video_ids=(2, 8), max_duration_s=30
    )


@pytest.fixture(scope="session")
def encoder():
    return EncoderModel()


@pytest.fixture(scope="session")
def noise_free_encoder():
    return EncoderModel(noise_sigma=0.0)


@pytest.fixture(scope="session")
def network_traces():
    return paper_traces(duration_s=300)


@pytest.fixture(scope="session")
def video2(small_dataset):
    return small_dataset.video(2)


@pytest.fixture(scope="session")
def video8(small_dataset):
    return small_dataset.video(8)


@pytest.fixture(scope="session")
def manifest2(video2, encoder):
    return VideoManifest(video2, encoder)


@pytest.fixture(scope="session")
def manifest8(video8, encoder):
    return VideoManifest(video8, encoder)


@pytest.fixture(scope="session")
def ptiles2(small_dataset, video2):
    return build_video_ptiles(
        video2, small_dataset.train_traces(2), DEFAULT_GRID
    )


@pytest.fixture(scope="session")
def ptiles8(small_dataset, video8):
    return build_video_ptiles(
        video8, small_dataset.train_traces(8), DEFAULT_GRID
    )


@pytest.fixture(scope="session")
def ftiles2(small_dataset, video2):
    return build_video_ftiles(video2, small_dataset.train_traces(2))


@pytest.fixture(scope="session")
def device():
    return PIXEL_3
