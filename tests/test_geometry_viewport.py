"""Unit tests for viewport geometry (FoV rectangles, wraparound)."""

import pytest

from repro.geometry import DEFAULT_FOV_DEG, Rect, Viewport


class TestRect:
    def test_dimensions(self):
        r = Rect(10, -20, 40, 10)
        assert r.width == 30
        assert r.height == 30
        assert r.area == 900

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(10, 0, 5, 10)
        with pytest.raises(ValueError):
            Rect(0, 10, 10, 5)

    def test_contains_boundary_closed(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(0, 0)
        assert r.contains(10, 10)
        assert not r.contains(10.01, 5)

    def test_overlap_positive_area_only(self):
        a = Rect(0, 0, 10, 10)
        touching = Rect(10, 0, 20, 10)
        overlapping = Rect(9, 9, 20, 20)
        assert not a.overlaps(touching)  # zero-area contact
        assert a.overlaps(overlapping)

    def test_intersection_area(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 15, 15)
        assert a.intersection_area(b) == pytest.approx(25.0)
        assert a.intersection_area(Rect(20, 20, 30, 30)) == 0.0

    def test_intersection_symmetric(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(-5, -5, 3, 3)
        assert a.intersection_area(b) == pytest.approx(b.intersection_area(a))


class TestViewport:
    def test_default_fov(self):
        vp = Viewport(180, 0)
        assert vp.fov_h == DEFAULT_FOV_DEG
        assert vp.fov_v == DEFAULT_FOV_DEG

    def test_yaw_normalized(self):
        assert Viewport(370, 0).yaw == pytest.approx(10.0)
        assert Viewport(-10, 0).yaw == pytest.approx(350.0)

    def test_pitch_clamped(self):
        assert Viewport(0, 120).pitch == 90.0
        assert Viewport(0, -120).pitch == -90.0

    def test_invalid_fov_rejected(self):
        with pytest.raises(ValueError):
            Viewport(0, 0, fov_h=0.0)
        with pytest.raises(ValueError):
            Viewport(0, 0, fov_v=200.0)

    def test_central_viewport_single_rect(self):
        rects = Viewport(180, 0).rects()
        assert len(rects) == 1
        r = rects[0]
        assert r.x0 == pytest.approx(130)
        assert r.x1 == pytest.approx(230)
        assert r.y0 == pytest.approx(-50)
        assert r.y1 == pytest.approx(50)

    def test_seam_viewport_splits(self):
        rects = Viewport(10, 0).rects()
        assert len(rects) == 2
        total_width = sum(r.width for r in rects)
        assert total_width == pytest.approx(100.0)

    def test_seam_right_edge(self):
        rects = Viewport(350, 0).rects()
        assert len(rects) == 2
        assert sum(r.width for r in rects) == pytest.approx(100.0)

    def test_pole_viewport_clamped_vertically(self):
        vp = Viewport(180, 80)
        (rect,) = vp.rects()
        assert rect.y1 == 90.0
        assert rect.y0 == pytest.approx(30.0)
        assert vp.area == pytest.approx(100.0 * 60.0)

    def test_contains_center(self):
        vp = Viewport(200, -10)
        assert vp.contains(200, -10)

    def test_contains_across_seam(self):
        vp = Viewport(5, 0)
        assert vp.contains(350, 0)
        assert vp.contains(20, 0)
        assert not vp.contains(180, 0)

    def test_area_fraction(self):
        vp = Viewport(180, 0)
        assert vp.area_fraction() == pytest.approx((100 * 100) / (360 * 180))

    def test_full_wrap_fov(self):
        vp = Viewport(0, 0, fov_h=360.0, fov_v=180.0)
        (rect,) = vp.rects()
        assert rect.width == pytest.approx(360.0)
        assert vp.area_fraction() == pytest.approx(1.0)
