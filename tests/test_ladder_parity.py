"""Parity gate for the encoding-ladder generalization.

The load-bearing guarantee of this subsystem: under the default ladder
(the paper's CRF 38..18, step 5), every code path that now consumes a
per-video :class:`~repro.encoding.EncodingLadder` — the encoder rate
law, sessions, the population engine, and the serving plan tables — is
byte-identical to the hard-coded ``quality -> 43 - 5q`` it replaced.
Anything less means the ladder subsystem changed baseline experiment
results just by existing.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import OursScheme
from repro.encoding import DEFAULT_ENCODING_LADDER, EncodingLadder
from repro.experiments import make_setup
from repro.streaming import PopulationEngine, SessionConfig, run_session
from repro.video import VideoManifest

CFG = SessionConfig(max_segments=10)


def _quarter_steps():
    q = 1.0
    steps = []
    while q <= 5.0:
        steps.append(q)
        q += 0.25
    return steps


class TestEncoderParity:
    """The ladder-backed rate law equals the legacy affine formula."""

    def test_crf_matches_legacy_formula(self):
        for q in _quarter_steps():
            assert DEFAULT_ENCODING_LADDER.crf(q) == 43.0 - 5.0 * q

    def test_bitrate_matches_legacy_formula(self, noise_free_encoder):
        # The pre-ladder code computed ref * 2**((28 - (43 - 5q)) / 4)
        # scaled by content; exact float equality, not approx.
        for q in _quarter_steps():
            legacy = (
                noise_free_encoder.ref_bitrate_mbps
                * 2.0 ** ((28.0 - (43.0 - 5.0 * q)) / 4.0)
                * noise_free_encoder.content_factor(33.0, 14.0)
            )
            assert noise_free_encoder.full_frame_bitrate_mbps(
                q, 33.0, 14.0
            ) == legacy

    def test_default_field_is_default_ladder(self, encoder):
        assert encoder.ladder == DEFAULT_ENCODING_LADDER
        assert encoder.ladder.digest() == DEFAULT_ENCODING_LADDER.digest()


class TestSessionParity:
    """Explicit default ladder == implicit default, record for record."""

    @pytest.fixture(scope="class")
    def explicit_manifest(self, video8, encoder):
        explicit = dataclasses.replace(encoder, ladder=EncodingLadder())
        return VideoManifest(video8, explicit)

    def test_session_records_identical(
        self, manifest8, explicit_manifest, ptiles8, small_dataset,
        network_traces, device,
    ):
        for user in range(2):
            trace = small_dataset.test_traces(8)[user]
            a = run_session(OursScheme(device=device), manifest8, trace,
                            network_traces[1], device, ptiles=ptiles8,
                            config=CFG)
            b = run_session(OursScheme(device=device), explicit_manifest,
                            trace, network_traces[1], device, ptiles=ptiles8,
                            config=CFG)
            assert a.records == b.records

    def test_population_engine_identical(
        self, manifest8, explicit_manifest, ptiles8, small_dataset,
        network_traces, device,
    ):
        traces = small_dataset.test_traces(8)

        def run_pop(manifest):
            engine = PopulationEngine(
                OursScheme(device=device), manifest, traces,
                network_traces[1], device, ptiles=ptiles8, config=CFG,
            )
            return engine.run([0, 1, 2])

        base = run_pop(manifest8)
        explicit = run_pop(explicit_manifest)
        for field in dataclasses.fields(base):
            a = getattr(base, field.name)
            b = getattr(explicit, field.name)
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b), field.name
            else:
                assert a == b, field.name

    def test_plan_tables_memo_shared(
        self, manifest8, explicit_manifest, device,
    ):
        # Serving path: identical ladders share one memoized PlanTables
        # entry — the digest-keyed memo does not split the default case.
        from repro.geometry import DEFAULT_GRID, Viewport
        from repro.streaming.schemes import PlanContext

        scheme = OursScheme(device=device)
        for manifest in (manifest8, explicit_manifest):
            ctx = PlanContext(
                segment_index=0,
                manifest=manifest[0],
                predicted_viewport=Viewport(yaw=0.0, pitch=0.0),
                buffer_s=2.0,
                bandwidth_mbps=20.0,
                grid=DEFAULT_GRID,
                video_manifest=manifest,
            )
            scheme._plan_tables(ctx)
        assert len(scheme._tables_cache) == 1


class TestSetupParity:
    """ExperimentSetup.with_ladders with the default ladder is a no-op."""

    @pytest.fixture(scope="class")
    def setup(self):
        return make_setup(max_duration_s=20, n_users=6, n_train=4,
                          video_ids=(8,))

    def test_manifest_unchanged(self, setup):
        override = setup.with_ladders({8: EncodingLadder()})
        assert override.manifest(8).encoder == setup.manifest(8).encoder

    def test_session_records_identical(self, setup, device):
        override = setup.with_ladders({8: EncodingLadder()})
        trace = setup.dataset.test_traces(8)[0]
        runs = []
        for s in (setup, override):
            runs.append(run_session(
                OursScheme(device=device), s.manifest(8), trace,
                s.trace2, device, ptiles=s.ptiles(8), config=CFG,
            ))
        assert runs[0].records == runs[1].records
