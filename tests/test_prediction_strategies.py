"""Unit tests for the alternative viewport-prediction strategies."""

import pytest

from repro.prediction import (
    OraclePredictor,
    StaticPredictor,
    oracle_predictor_factory,
    ridge_predictor_factory,
    static_predictor_factory,
)
from repro.streaming import PtileScheme, SessionConfig, run_session


class TestStaticPredictor:
    def test_persists_last_position(self):
        p = StaticPredictor()
        p.observe(0.0, 100.0, 5.0)
        p.observe(0.1, 110.0, 6.0)
        vp = p.predict_viewport(5.0)
        assert vp.yaw == pytest.approx(110.0)
        assert vp.pitch == pytest.approx(6.0)

    def test_requires_observation(self):
        with pytest.raises(RuntimeError):
            StaticPredictor().predict_viewport(1.0)

    def test_time_ordering(self):
        p = StaticPredictor()
        p.observe(0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            p.observe(0.0, 1.0, 0.0)

    def test_speed_tracking(self):
        p = StaticPredictor()
        for i in range(11):
            p.observe(i * 0.1, i * 2.0, 0.0)  # 20 deg/s
        assert p.recent_speed_deg_s() == pytest.approx(20.0, abs=0.5)

    def test_speed_empty(self):
        assert StaticPredictor().recent_speed_deg_s() == 0.0

    def test_seam_handling(self):
        p = StaticPredictor()
        p.observe(0.0, 359.0, 0.0)
        p.observe(0.1, 1.0, 0.0)
        vp = p.predict_viewport(1.0)
        assert vp.yaw == pytest.approx(1.0)


class TestOraclePredictor:
    def test_reads_future(self, small_dataset):
        trace = small_dataset.traces[2][0]
        oracle = OraclePredictor(trace=trace)
        vp = oracle.predict_viewport(10.0)
        yaw, pitch = trace.orientation_at(10.0)
        assert vp.yaw == pytest.approx(yaw)
        assert vp.pitch == pytest.approx(pitch)

    def test_always_ready(self, small_dataset):
        oracle = OraclePredictor(trace=small_dataset.traces[2][0])
        assert oracle.num_observations >= 1

    def test_speed_non_negative(self, small_dataset):
        oracle = OraclePredictor(trace=small_dataset.traces[2][0])
        oracle.observe(0.0, 0.0, 0.0)
        assert oracle.recent_speed_deg_s() >= 0.0


class TestFactories:
    def test_factory_types(self, small_dataset):
        trace = small_dataset.traces[2][0]
        from repro.prediction import ViewportPredictor

        assert isinstance(
            ridge_predictor_factory(trace, 100.0), ViewportPredictor
        )
        assert isinstance(
            static_predictor_factory(trace, 100.0), StaticPredictor
        )
        assert isinstance(
            oracle_predictor_factory(trace, 100.0), OraclePredictor
        )

    def test_fov_propagated(self, small_dataset):
        trace = small_dataset.traces[2][0]
        predictor = static_predictor_factory(trace, 90.0)
        predictor.observe(0.0, 0.0, 0.0)
        assert predictor.predict_viewport(1.0).fov_h == 90.0


class TestSessionIntegration:
    def test_oracle_improves_coverage(
        self, small_dataset, manifest2, network_traces, device, ptiles2
    ):
        head = small_dataset.test_traces(2)[0]

        def run_with(factory):
            return run_session(
                PtileScheme(), manifest2, head, network_traces[1], device,
                ptiles=ptiles2,
                config=SessionConfig(predictor_factory=factory),
            )

        oracle = run_with(oracle_predictor_factory)
        ridge = run_with(None)
        assert oracle.mean_coverage >= ridge.mean_coverage - 0.02
        assert oracle.mean_coverage > 0.9

    def test_static_session_completes(
        self, small_dataset, manifest2, network_traces, device, ptiles2
    ):
        head = small_dataset.test_traces(2)[0]
        result = run_session(
            PtileScheme(), manifest2, head, network_traces[1], device,
            ptiles=ptiles2,
            config=SessionConfig(predictor_factory=static_predictor_factory),
        )
        assert result.num_segments == manifest2.num_segments
