"""Unit tests for external dataset-format loaders."""

import numpy as np
import pytest

from repro.geometry import angles_to_quaternion
from repro.traces import (
    load_angle_trace,
    load_dataset_directory,
    load_quaternion_trace,
)


def write_quaternion_log(path, samples, header=True):
    """samples: list of (timestamp, playback_t, yaw, pitch)."""
    lines = []
    if header:
        lines.append("Timestamp,PlaybackTime,UnitQuaternion.w,x,y,z,extra")
    for ts, pt, yaw, pitch in samples:
        q = angles_to_quaternion(yaw, pitch)
        lines.append(
            f"{ts},{pt},{q[0]:.8f},{q[1]:.8f},{q[2]:.8f},{q[3]:.8f},junk"
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


class TestQuaternionTrace:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "user_0.csv"
        write_quaternion_log(
            path,
            [(100.0 + i, i * 0.1, 50.0 + i, -5.0) for i in range(20)],
        )
        trace = load_quaternion_trace(path, user_id=3, video_id=2)
        assert trace.user_id == 3
        assert trace.video_id == 2
        assert trace.num_samples == 20
        yaw, pitch = trace.orientation_at(0.05)
        assert yaw == pytest.approx(50.5, abs=0.1)
        assert pitch == pytest.approx(-5.0, abs=0.1)

    def test_playback_vs_wall_time(self, tmp_path):
        path = tmp_path / "user_0.csv"
        write_quaternion_log(
            path, [(100.0 + i, i * 0.5, 10.0, 0.0) for i in range(5)]
        )
        playback = load_quaternion_trace(path)
        wall = load_quaternion_trace(path, use_playback_time=False)
        assert playback.timestamps[0] == 0.0
        assert wall.timestamps[0] == 100.0

    def test_headerless(self, tmp_path):
        path = tmp_path / "user_0.csv"
        write_quaternion_log(
            path, [(i, i * 0.1, 30.0, 10.0) for i in range(5)], header=False
        )
        trace = load_quaternion_trace(path)
        assert trace.num_samples == 5

    def test_duplicate_timestamps_dropped(self, tmp_path):
        path = tmp_path / "user_0.csv"
        write_quaternion_log(
            path,
            [(0, 0.0, 10.0, 0.0), (1, 0.1, 11.0, 0.0), (2, 0.1, 12.0, 0.0),
             (3, 0.2, 13.0, 0.0)],
        )
        trace = load_quaternion_trace(path)
        assert trace.num_samples == 3

    def test_seam_crossing_unwrapped(self, tmp_path):
        path = tmp_path / "user_0.csv"
        write_quaternion_log(
            path,
            [(i, i * 0.1, yaw, 0.0)
             for i, yaw in enumerate([350.0, 355.0, 0.0, 5.0])],
        )
        trace = load_quaternion_trace(path)
        speeds = trace.switching_speeds()
        assert np.all(speeds < 100.0)  # no 360-degree jumps

    def test_too_few_rows(self, tmp_path):
        path = tmp_path / "user_0.csv"
        write_quaternion_log(path, [(0, 0.0, 10.0, 0.0)])
        with pytest.raises(ValueError):
            load_quaternion_trace(path)

    def test_too_few_columns(self, tmp_path):
        path = tmp_path / "user_0.csv"
        path.write_text("h\n1,2,3\n4,5,6\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_quaternion_trace(path)


class TestAngleTrace:
    def test_native_round_trip(self, tmp_path, small_dataset):
        original = small_dataset.traces[2][0]
        path = tmp_path / "user_0.csv"
        original.to_csv(path)
        loaded = load_angle_trace(path, user_id=0, video_id=2)
        assert np.allclose(loaded.pitch, original.pitch, atol=1e-5)


class TestDatasetDirectory:
    @pytest.fixture
    def dataset_dir(self, tmp_path, small_dataset):
        root = tmp_path / "external"
        for vid in (2, 8):
            video_dir = root / f"video_{vid}"
            video_dir.mkdir(parents=True)
            for trace in small_dataset.traces[vid][:8]:
                # Mix native and quaternion formats per user.
                path = video_dir / f"user_{trace.user_id}.csv"
                if trace.user_id % 2 == 0:
                    trace.to_csv(path)
                else:
                    samples = [
                        (float(t), float(t),
                         float(trace.yaw_wrapped[i]), float(trace.pitch[i]))
                        for i, t in enumerate(trace.timestamps[:100])
                    ]
                    write_quaternion_log(path, samples)
        return root

    def test_loads_mixed_formats(self, dataset_dir):
        dataset = load_dataset_directory(dataset_dir, n_train=5)
        assert {v.meta.video_id for v in dataset.videos} == {2, 8}
        assert len(dataset.traces[2]) == 8
        assert len(dataset.train_users[2]) == 5
        assert len(dataset.test_users[2]) == 3

    def test_split_seeded(self, dataset_dir):
        a = load_dataset_directory(dataset_dir, n_train=5, seed=1)
        b = load_dataset_directory(dataset_dir, n_train=5, seed=1)
        assert a.train_users == b.train_users

    def test_fraction_split(self, dataset_dir):
        dataset = load_dataset_directory(dataset_dir)
        assert len(dataset.train_users[2]) == round(8 * 40 / 48)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_directory(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError):
            load_dataset_directory(tmp_path / "empty")

    def test_unknown_video_id(self, tmp_path, small_dataset):
        root = tmp_path / "bad"
        video_dir = root / "video_99"
        video_dir.mkdir(parents=True)
        small_dataset.traces[2][0].to_csv(video_dir / "user_0.csv")
        with pytest.raises(KeyError):
            load_dataset_directory(root)

    def test_pipeline_runs_on_loaded_dataset(self, dataset_dir):
        """The loaded dataset drives Ptile construction end to end."""
        from repro.geometry import DEFAULT_GRID
        from repro.ptile import build_video_ptiles

        dataset = load_dataset_directory(dataset_dir, n_train=6)
        video = dataset.video(2)
        ptiles = build_video_ptiles(
            video, dataset.train_traces(2), DEFAULT_GRID
        )
        assert len(ptiles) == video.num_segments
