"""Unit tests for equirectangular projection and view generation."""

import numpy as np
import pytest

from repro.geometry import EquirectFrame, ViewRenderer, Viewport


class TestEquirectFrame:
    def test_default_is_4k(self):
        frame = EquirectFrame()
        assert frame.width_px == 3840
        assert frame.height_px == 2160

    def test_pixel_round_trip(self):
        frame = EquirectFrame()
        for px, py in [(0.0, 0.0), (1920.0, 1080.0), (3000.0, 500.0)]:
            yaw, pitch = frame.pixel_to_angles(px, py)
            px2, py2 = frame.angles_to_pixel(yaw, pitch)
            assert px2 == pytest.approx(px % 3840, abs=1e-6)
            assert py2 == pytest.approx(py, abs=1e-6)

    def test_top_left_is_north_seam(self):
        frame = EquirectFrame()
        yaw, pitch = frame.pixel_to_angles(0, 0)
        assert yaw == pytest.approx(0.0)
        assert pitch == pytest.approx(90.0)

    def test_center_is_equator(self):
        frame = EquirectFrame()
        yaw, pitch = frame.pixel_to_angles(1920, 1080)
        assert yaw == pytest.approx(180.0)
        assert pitch == pytest.approx(0.0)

    def test_pixel_density(self):
        frame = EquirectFrame()
        assert frame.pixels_per_sq_degree == pytest.approx(
            3840 * 2160 / (360 * 180)
        )

    def test_tiny_frame_rejected(self):
        with pytest.raises(ValueError):
            EquirectFrame(1, 100)


class TestViewRenderer:
    def test_invalid_display_rejected(self):
        with pytest.raises(ValueError):
            ViewRenderer(1, 10)

    def test_center_pixel_looks_at_viewport_center(self):
        renderer = ViewRenderer(65, 65)
        vp = Viewport(120.0, -15.0)
        directions = renderer.sample_directions(vp)
        yaw, pitch = directions[32, 32]
        assert yaw == pytest.approx(120.0, abs=1.0)
        assert pitch == pytest.approx(-15.0, abs=1.0)

    def test_directions_within_viewport_cone(self):
        renderer = ViewRenderer(33, 33)
        vp = Viewport(200.0, 0.0)
        directions = renderer.sample_directions(vp).reshape(-1, 2)
        # Gnomonic corners extend past the planar FoV box, but every
        # sample must stay within the diagonal half-angle of the cone.
        from repro.geometry import angular_distance

        max_angle = max(
            angular_distance(200.0, 0.0, float(y), float(p))
            for y, p in directions
        )
        assert max_angle < 75.0  # corner of a 100x100 gnomonic view

    def test_coverage_full_region(self):
        renderer = ViewRenderer(17, 17)
        vp = Viewport(180.0, 0.0)
        assert renderer.coverage_fraction(vp, lambda y, p: True) == 1.0

    def test_coverage_empty_region(self):
        renderer = ViewRenderer(17, 17)
        vp = Viewport(180.0, 0.0)
        assert renderer.coverage_fraction(vp, lambda y, p: False) == 0.0

    def test_coverage_half_plane(self):
        renderer = ViewRenderer(33, 33)
        vp = Viewport(180.0, 0.0)
        frac = renderer.coverage_fraction(vp, lambda y, p: p >= 0.0)
        assert 0.4 < frac < 0.6

    def test_shape(self):
        renderer = ViewRenderer(8, 12)
        directions = renderer.sample_directions(Viewport(0, 0))
        assert directions.shape == (12, 8, 2)
        assert np.all(directions[..., 0] >= 0.0)
        assert np.all(directions[..., 0] < 360.0)
        assert np.all(np.abs(directions[..., 1]) <= 90.0)
