"""Unit tests for the Ftile variable tiling."""

import pytest

from repro.geometry import Viewport
from repro.streaming import build_ftile_partition, build_video_ftiles


def viewports(centers):
    return [Viewport(yaw, pitch) for yaw, pitch in centers]


class TestBuildPartition:
    def test_exactly_ten_cells(self):
        part = build_ftile_partition(viewports([(100, 0)] * 10))
        assert len(part.cells) == 10

    def test_cells_tile_the_frame(self):
        part = build_ftile_partition(viewports([(100, 0), (250, 10)]))
        total = sum(c.area_fraction for c in part.cells)
        assert total == pytest.approx(1.0)

    def test_cells_disjoint(self):
        part = build_ftile_partition(viewports([(100, 0)] * 6))
        cells = part.cells
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                assert not cells[i].rect.overlaps(cells[j].rect)

    def test_popular_region_gets_small_cells(self):
        """Popularity-weighted splitting focuses cells on the hot spot."""
        part = build_ftile_partition(viewports([(100.0, 0.0)] * 20))
        hot = Viewport(100.0, 0.0)
        hot_cells = [c for c in part.cells if c.overlaps_viewport(hot)]
        cold_cells = [c for c in part.cells if not c.overlaps_viewport(hot)]
        assert hot_cells and cold_cells
        mean_hot = sum(c.area_fraction for c in hot_cells) / len(hot_cells)
        mean_cold = sum(c.area_fraction for c in cold_cells) / len(cold_cells)
        assert mean_hot < mean_cold

    def test_no_viewers_still_partitions(self):
        part = build_ftile_partition([])
        assert len(part.cells) == 10
        assert sum(c.area_fraction for c in part.cells) == pytest.approx(1.0)

    def test_custom_tile_count(self):
        part = build_ftile_partition(viewports([(100, 0)] * 5), n_tiles=4)
        assert len(part.cells) == 4

    def test_invalid_tile_count(self):
        with pytest.raises(ValueError):
            build_ftile_partition([], n_tiles=0)

    def test_keys_unique(self):
        part = build_ftile_partition(viewports([(50, 10), (200, -20)]))
        keys = [c.key for c in part.cells]
        assert len(set(keys)) == len(keys)


class TestViewportCells:
    def test_viewport_hits_some_cells(self):
        part = build_ftile_partition(viewports([(100, 0)] * 8))
        hit = part.viewport_cells(Viewport(100.0, 0.0))
        assert hit
        assert all(c.overlaps_viewport(Viewport(100.0, 0.0)) for c in hit)

    def test_far_viewport_hits_other_cells(self):
        part = build_ftile_partition(viewports([(100, 0)] * 8))
        near = {c.key for c in part.viewport_cells(Viewport(100.0, 0.0))}
        far = {c.key for c in part.viewport_cells(Viewport(280.0, 0.0))}
        assert near != far


class TestBuildVideoFtiles:
    def test_one_partition_per_segment(self, small_dataset, video2, ftiles2):
        assert len(ftiles2) == video2.num_segments
        assert all(len(p.cells) == 10 for p in ftiles2)

    def test_requires_traces(self, video2):
        with pytest.raises(ValueError):
            build_video_ftiles(video2, [])
