"""Segment and session QoE (paper Eq. 2).

For each downloaded segment::

    Q = Q_o - w_v * I_v - w_r * I_r

* ``I_v = |Q_o^k - Q_o^{k-1}|`` penalizes quality variation between
  consecutive segments.
* ``I_r = max(S_k / R_k - B_k, 0) / B_k * Q_o^k`` penalizes rebuffering:
  the stall time a download causes relative to the buffer level, scaled
  by the segment quality.

The paper sets ``(w_v, w_r) = (1, 1)`` (Section V-A).  Session QoE is
the mean segment QoE.  For numerical robustness the rebuffer ratio is
evaluated with a small floor on ``B_k`` and capped, so a cold-start
segment cannot produce an unbounded penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .quality import QualityModel

__all__ = ["QoEWeights", "SegmentQoE", "QoEModel", "SessionQoE"]

_BUFFER_FLOOR_S = 0.1
_REBUFFER_RATIO_CAP = 3.0


@dataclass(frozen=True)
class QoEWeights:
    """Impairment weights (w_v, w_r) from Eq. 2."""

    variation: float = 1.0
    rebuffering: float = 1.0

    def __post_init__(self) -> None:
        if self.variation < 0 or self.rebuffering < 0:
            raise ValueError("weights must be non-negative")


@dataclass(frozen=True)
class SegmentQoE:
    """Eq. 2 evaluated for a single segment."""

    qo: float
    variation_penalty: float
    rebuffer_penalty: float

    @property
    def q(self) -> float:
        return self.qo - self.variation_penalty - self.rebuffer_penalty


@dataclass(frozen=True)
class QoEModel:
    """Computes Eq. 2 given per-segment quality and buffer dynamics."""

    quality: QualityModel = field(default_factory=QualityModel)
    weights: QoEWeights = field(default_factory=QoEWeights)

    def rebuffer_ratio(self, download_time_s: float, buffer_s: float) -> float:
        """``max(S/R - B, 0) / B`` with floor/cap for robustness."""
        if download_time_s < 0:
            raise ValueError("download time must be non-negative")
        if buffer_s < 0:
            raise ValueError("buffer must be non-negative")
        stall = max(download_time_s - buffer_s, 0.0)
        if stall == 0.0:
            return 0.0
        ratio = stall / max(buffer_s, _BUFFER_FLOOR_S)
        return min(ratio, _REBUFFER_RATIO_CAP)

    def segment_qoe(
        self,
        qo: float,
        prev_qo: float | None,
        download_time_s: float,
        buffer_s: float,
    ) -> SegmentQoE:
        """Eq. 2 for one segment.

        ``prev_qo`` is the previous segment's Q_o (None for the first
        segment, which has no variation penalty).  ``buffer_s`` is the
        buffer level when the download started.
        """
        variation = 0.0 if prev_qo is None else abs(qo - prev_qo)
        ratio = self.rebuffer_ratio(download_time_s, buffer_s)
        return SegmentQoE(
            qo=qo,
            variation_penalty=self.weights.variation * variation,
            rebuffer_penalty=self.weights.rebuffering * ratio * qo,
        )


@dataclass
class SessionQoE:
    """Accumulates per-segment QoE into session-level statistics."""

    segments: list[SegmentQoE] = field(default_factory=list)

    def add(self, segment: SegmentQoE) -> None:
        self.segments.append(segment)

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def mean_q(self) -> float:
        """Session QoE: mean Eq. 2 value over all segments."""
        self._require_segments()
        return sum(s.q for s in self.segments) / len(self.segments)

    @property
    def mean_qo(self) -> float:
        """Average video quality (first QoE component in Fig. 11(d))."""
        self._require_segments()
        return sum(s.qo for s in self.segments) / len(self.segments)

    @property
    def mean_variation(self) -> float:
        """Average quality-variation impairment."""
        self._require_segments()
        return sum(s.variation_penalty for s in self.segments) / len(self.segments)

    @property
    def mean_rebuffer(self) -> float:
        """Average rebuffering impairment."""
        self._require_segments()
        return sum(s.rebuffer_penalty for s in self.segments) / len(self.segments)

    @property
    def rebuffer_count(self) -> int:
        """Number of segments with a non-zero rebuffering penalty."""
        return sum(1 for s in self.segments if s.rebuffer_penalty > 0)

    def _require_segments(self) -> None:
        if not self.segments:
            raise ValueError("no segments recorded")
