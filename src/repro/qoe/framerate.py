"""Frame-rate impact on perceived quality (paper Section III-C-2).

Reducing the frame rate scales Q_o by an inverted-exponential factor::

    factor(f) = (1 - exp(-alpha * f / f_m)) / (1 - exp(-alpha))

where ``f`` is the reduced frame rate, ``f_m`` the original rate, and
``alpha = S_fov / TI`` (Eq. 4) couples the user's view-switching speed
(degrees/second, Eq. 5) with the video's motion complexity: fast
switching or static content (large alpha) makes frame-rate reduction
nearly free, while attentive viewing of high-motion content (small
alpha) makes it costly.
"""

from __future__ import annotations

import math

__all__ = [
    "alpha_from_behavior",
    "frame_rate_factor",
    "SPEED_TOLERANCE_THRESHOLD_DEG_S",
    "TI_NORMALIZATION",
]

SPEED_TOLERANCE_THRESHOLD_DEG_S = 10.0
"""Above this switching speed users tolerate ~50 % more distortion
(paper Section III-C-2, citing Pano [7])."""

TI_NORMALIZATION = 60.0
"""TI is normalized to [0, 1] by its practical ITU-T P.910 maximum
before entering Eq. 4.

Dimensional analysis fixes this choice: with raw TI (tens) and typical
switching speeds (units to tens of degrees/second), alpha would sit
below ~1 almost everywhere and the exponential factor would forbid any
frame-rate reduction within the paper's 5 % tolerance — contradicting
the paper's own results (20 % energy reduction below Ptile at <5 % QoE
cost, enabled whenever users move faster than ~10 degrees/second).
Normalizing TI places alpha in the 1..50 range where the Eq. 4
mechanism reproduces exactly that reported behaviour: reduction is
near-free while the view moves, and costly only for a static gaze on
high-motion content.
"""

_MIN_ALPHA = 1e-6
_MAX_ALPHA = 1e6
_TI_FLOOR = 1e-3


def alpha_from_behavior(
    switching_speed_deg_s: float,
    ti: float,
    ti_normalization: float = TI_NORMALIZATION,
) -> float:
    """Eq. 4: ``alpha = S_fov / TI`` with TI normalized to [0, 1].

    Clamped below by a tiny positive value so that a perfectly static
    view keeps the factor well-defined (it degenerates to the linear
    ``f / f_m`` limit, the harshest penalty).

    A non-positive TI (a static segment: nothing moves between frames)
    is clamped to a small positive floor and the result capped at the
    large-alpha limit, where Eq. 4 says frame-rate reduction is free —
    dropping frames of a still image costs nothing.  The previous
    behaviour (a hard ``ValueError``) crashed the controller mid-session
    on synthetic static content.
    """
    if switching_speed_deg_s < 0:
        raise ValueError("switching speed must be non-negative")
    if ti_normalization <= 0:
        raise ValueError("TI normalization must be positive")
    if ti <= _TI_FLOOR:
        # Static content: the large-alpha limit regardless of how fast
        # the user is switching (0/0 in the raw Eq. 4).
        return _MAX_ALPHA
    alpha = max(switching_speed_deg_s / (ti / ti_normalization), _MIN_ALPHA)
    return min(alpha, _MAX_ALPHA)


def frame_rate_factor(frame_rate: float, max_frame_rate: float, alpha: float) -> float:
    """Quality multiplier in (0, 1] for a reduced frame rate.

    Equals 1 at ``frame_rate == max_frame_rate`` and decreases
    monotonically as frames are dropped; larger ``alpha`` means a slower
    fall (frame rate matters less).
    """
    if not (0 < frame_rate <= max_frame_rate):
        raise ValueError(
            f"frame rate {frame_rate} outside (0, {max_frame_rate}]"
        )
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    ratio = frame_rate / max_frame_rate
    if alpha < 1e-4:
        # exp(-a*x) ~ 1 - a*x: the factor tends to f / f_m.
        return ratio
    return (1.0 - math.exp(-alpha * ratio)) / (1.0 - math.exp(-alpha))
