"""Fitting the Q_o model coefficients (paper Table II).

The paper obtains c1..c4 by measuring VMAF over segments that sweep SI,
TI and bitrate, then running nonlinear least squares (Matlab's
``nlinfit``; here ``scipy.optimize.least_squares``).  The fitted model
correlates with the measurements at Pearson r = 0.9791.

Offline we cannot run the real VMAF tool, so :class:`VMAFOracle` stands
in for it: a ground-truth logistic (the published Table II coefficients)
plus bounded measurement noise, mimicking VMAF's deviation from any
smooth parametric model.  The *fitting pipeline itself* — training-set
construction, NLLS optimization, correlation reporting — is reproduced
faithfully, and recovers Table II to within the noise level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from ..video.content import Video
from ..video.encoder import EncoderModel
from .quality import QoCoefficients, QualityModel, TABLE_II

__all__ = ["VMAFOracle", "FitResult", "build_training_set", "fit_qo_model"]


@dataclass(frozen=True)
class VMAFOracle:
    """Synthetic VMAF measurements around the Table II ground truth."""

    coefficients: QoCoefficients = TABLE_II
    noise_std: float = 2.5
    seed: int = 910  # ITU-T P.910, for flavour

    def measure(
        self, si: np.ndarray, ti: np.ndarray, bitrate_mbps: np.ndarray
    ) -> np.ndarray:
        """VMAF scores (clipped to [0, 100]) for the given segments."""
        model = QualityModel(self.coefficients)
        truth = model.qo_array(si, ti, bitrate_mbps)
        rng = np.random.default_rng(self.seed)
        noisy = truth + rng.normal(0.0, self.noise_std, size=truth.shape)
        return np.clip(noisy, 0.0, 100.0)


@dataclass(frozen=True)
class FitResult:
    """Outcome of the nonlinear least-squares fit."""

    coefficients: QoCoefficients
    pearson_r: float
    n_samples: int

    def model(self) -> QualityModel:
        return QualityModel(self.coefficients)


def build_training_set(
    videos: tuple[Video, ...] | list[Video],
    encoder: EncoderModel,
    segments_per_video: int = 10,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assemble the (SI, TI, bitrate) training design.

    As in the paper, ten segments are uniformly selected from each video
    and each is paired with every quality level's FoV bitrate, sweeping
    all three regressors.
    """
    if segments_per_video < 1:
        raise ValueError("need at least one segment per video")
    si_list: list[float] = []
    ti_list: list[float] = []
    b_list: list[float] = []
    for video in videos:
        n = video.num_segments
        count = min(segments_per_video, n)
        indices = np.unique(np.linspace(0, n - 1, count).astype(int))
        for idx in indices:
            seg = video.segment(int(idx))
            for quality in encoder.ladder.levels:
                si_list.append(seg.si)
                ti_list.append(seg.ti)
                b_list.append(encoder.qoe_bitrate_mbps(quality, seg.si, seg.ti))
    return np.array(si_list), np.array(ti_list), np.array(b_list)


def fit_qo_model(
    si: np.ndarray, ti: np.ndarray, bitrate_mbps: np.ndarray, vmaf: np.ndarray
) -> FitResult:
    """Nonlinear least-squares fit of Eq. 3 to VMAF measurements.

    Returns the fitted coefficients and the Pearson correlation between
    model predictions and measurements (the paper reports 0.9791).
    """
    si = np.asarray(si, dtype=float)
    ti = np.asarray(ti, dtype=float)
    b = np.asarray(bitrate_mbps, dtype=float)
    vmaf = np.asarray(vmaf, dtype=float)
    if not (si.shape == ti.shape == b.shape == vmaf.shape):
        raise ValueError("all inputs must share the same shape")
    if si.size < 4:
        raise ValueError("need at least 4 samples to fit 4 coefficients")

    def predict(params: np.ndarray) -> np.ndarray:
        c1, c2, c3, c4 = params
        z = c1 + c2 * si + c3 * ti + c4 * b
        return 100.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))

    def residuals(params: np.ndarray) -> np.ndarray:
        return predict(params) - vmaf

    start = np.array([0.0, 0.01, -0.01, 0.1])
    solution = least_squares(residuals, start, method="lm", max_nfev=20000)
    fitted = QoCoefficients(*(float(v) for v in solution.x))

    predictions = predict(solution.x)
    pred_std = float(np.std(predictions))
    meas_std = float(np.std(vmaf))
    if pred_std == 0.0 or meas_std == 0.0:
        pearson = 0.0
    else:
        pearson = float(np.corrcoef(predictions, vmaf)[0, 1])
    return FitResult(coefficients=fitted, pearson_r=pearson, n_samples=si.size)
