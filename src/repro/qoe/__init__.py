"""QoE substrate: Eq. 3 quality, frame-rate factor, Eq. 2 metrics, fitting."""

from .fitting import FitResult, VMAFOracle, build_training_set, fit_qo_model
from .framerate import (
    SPEED_TOLERANCE_THRESHOLD_DEG_S,
    alpha_from_behavior,
    frame_rate_factor,
)
from .metrics import QoEModel, QoEWeights, SegmentQoE, SessionQoE
from .quality import QoCoefficients, QualityModel, TABLE_II

__all__ = [
    "FitResult",
    "VMAFOracle",
    "build_training_set",
    "fit_qo_model",
    "SPEED_TOLERANCE_THRESHOLD_DEG_S",
    "alpha_from_behavior",
    "frame_rate_factor",
    "QoEModel",
    "QoEWeights",
    "SegmentQoE",
    "SessionQoE",
    "QoCoefficients",
    "QualityModel",
    "TABLE_II",
]
