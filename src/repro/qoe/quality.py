"""Perceived video quality Q_o (paper Eq. 3, Table II).

Following ITU-T G.1070, the paper models the "original" perceived
quality of a segment (VMAF scale, 0..100) as a logistic function of the
spatial perceptual information SI, the temporal perceptual information
TI, and the video bitrate b (Mbps)::

    Q_o = 100 / (1 + exp(-(c1 + c2*SI + c3*TI + c4*b)))

The coefficients are fitted against VMAF with nonlinear least squares
(paper Table II); ``repro.qoe.fitting`` reproduces that fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["QoCoefficients", "TABLE_II", "QualityModel"]


@dataclass(frozen=True)
class QoCoefficients:
    """Coefficients c1..c4 of the Eq. 3 logistic."""

    c1: float
    c2: float
    c3: float
    c4: float

    def as_array(self) -> np.ndarray:
        return np.array([self.c1, self.c2, self.c3, self.c4])


TABLE_II = QoCoefficients(c1=-0.2163, c2=0.0581, c3=-0.1578, c4=0.7821)
"""The fitted coefficients reported in the paper's Table II."""


@dataclass(frozen=True)
class QualityModel:
    """Eq. 3 evaluated with a fixed coefficient set (default Table II)."""

    coefficients: QoCoefficients = TABLE_II
    scale: float = 100.0

    def exponent(self, si: float, ti: float, bitrate_mbps: float) -> float:
        """The logistic argument ``c1 + c2*SI + c3*TI + c4*b``."""
        c = self.coefficients
        return c.c1 + c.c2 * si + c.c3 * ti + c.c4 * bitrate_mbps

    def qo(self, si: float, ti: float, bitrate_mbps: float) -> float:
        """Perceived quality Q_o in [0, scale]."""
        if bitrate_mbps < 0:
            raise ValueError("bitrate must be non-negative")
        z = self.exponent(si, ti, bitrate_mbps)
        # Numerically stable logistic.
        if z >= 0:
            return self.scale / (1.0 + math.exp(-z))
        ez = math.exp(z)
        return self.scale * ez / (1.0 + ez)

    def qo_array(
        self,
        si: np.ndarray | float,
        ti: np.ndarray | float,
        bitrate_mbps: np.ndarray | float,
    ) -> np.ndarray:
        """Vectorized Q_o for fitting and surface plots (Fig. 4(b))."""
        z = (
            self.coefficients.c1
            + self.coefficients.c2 * np.asarray(si, dtype=float)
            + self.coefficients.c3 * np.asarray(ti, dtype=float)
            + self.coefficients.c4 * np.asarray(bitrate_mbps, dtype=float)
        )
        out = np.empty_like(z, dtype=float)
        pos = z >= 0
        out[pos] = self.scale / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = self.scale * ez / (1.0 + ez)
        return out
