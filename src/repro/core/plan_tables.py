"""Horizon-batched lookahead tables for the MPC planner.

The paper's MPC (Sec. IV-C) slides a one-segment window: at segment k
the planner needs per-version download sizes and predicted quality for
segments k..k+H-1, and at k+1 it needs k+1..k+H.  H-1 of the H tables
were therefore already computed the previous segment — and once a video
has been planned by one user, every other session over the same video
needs the *same* tables again.

:class:`PlanTables` precomputes those tables per (video, encoding
ladder, frame-rate ladder, fps, quality model), batched across the
whole video — the quality axis enumerates the levels of the video's
own :class:`~repro.encoding.ladder.EncodingLadder`:

* ``qo`` — a stacked ``(S, V)`` tensor of Eq. 3 qualities, one row per
  segment, one column per bitrate level;
* :meth:`sizes_for` — per Ptile geometry, a stacked ``(S, V, F)``
  tensor of download sizes (Ptile region + low-quality remainder
  blocks) covering every segment, built in one pass on first use and
  reused for every later plan and session.

Each ``plan()`` then assembles its :class:`~repro.core.optimizer.MpcWindow`
by slicing H rows out of the stacked tensors instead of rebuilding H
tables, and only the per-plan quantities — the Ptile match against the
predicted viewport and the switching-speed-dependent frame-rate factor
(Eq. 4) — are computed per call.  Cached tensors are never mutated, so
batched and per-call planning are bit-identical.
"""

from __future__ import annotations

import threading
from typing import Iterable

import numpy as np

from ..ptile.construction import Ptile, partition_remainder
from ..qoe.framerate import alpha_from_behavior, frame_rate_factor
from ..qoe.quality import QualityModel
from ..video.segments import SegmentManifest
from .optimizer import MpcWindow

__all__ = ["PlanTables"]

_LOWEST_QUALITY = 1


class PlanTables:
    """Stacked per-segment version tables for one video configuration.

    ``manifests`` is the sequence of segment manifests the tables cover
    (normally the whole video); rows are addressed by absolute segment
    index.  ``rates`` is the frame-rate ladder, ascending, and ``fps``
    the source frame rate the sizes are evaluated at.
    """

    def __init__(
        self,
        manifests: tuple[SegmentManifest, ...],
        rates: tuple[float, ...],
        fps: float,
        quality_model: QualityModel,
    ):
        if not manifests:
            raise ValueError("need at least one segment manifest")
        self.manifests = tuple(manifests)
        self.rates = tuple(rates)
        self.fps = float(fps)
        self._row = {m.segment_index: i for i, m in enumerate(self.manifests)}
        self.ti = np.array([m.ti for m in self.manifests])
        # Quality levels come from the video's own encoding ladder (the
        # per-content optimizer may have swapped the default rungs out).
        self.levels = self.manifests[0].encoder.ladder.levels
        self.qo = np.array([
            [
                quality_model.qo(m.si, m.ti, m.qoe_bitrate_mbps(v))
                for v in self.levels
            ]
            for m in self.manifests
        ])  # (S, V)
        # (region_key, tiles) -> (S, V, F) size tensor.  Keyed by the
        # Ptile's geometry, not its segment: the same geometry applied
        # to every segment is exactly what the MPC needs when a future
        # segment has no matching Ptile of its own.  The lock serializes
        # first-build only; hits read the dict without it (dict.get is
        # atomic under the GIL) and tensors are never mutated, so tables
        # shared across concurrent planners cannot observe a torn build.
        self._sizes: dict[tuple, np.ndarray] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks don't pickle; the size memo is pure and rebuilds lazily.
        state = self.__dict__.copy()
        state["_sizes"] = {}
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._sizes = {}
        self._lock = threading.Lock()

    @property
    def num_segments(self) -> int:
        return len(self.manifests)

    def row(self, segment_index: int) -> int:
        """Tensor row of an absolute segment index."""
        try:
            return self._row[segment_index]
        except KeyError:
            raise ValueError(
                f"segment {segment_index} outside the planned tables"
            ) from None

    def sizes_for(self, ptile: Ptile) -> np.ndarray:
        """The ``(S, V, F)`` download-size tensor for one Ptile geometry.

        Built in one batched pass over every covered segment on first
        use; the returned tensor is shared and must not be mutated.
        """
        key = (ptile.region_key, ptile.tiles)
        tensor = self._sizes.get(key)
        if tensor is None:
            with self._lock:
                tensor = self._sizes.get(key)
                if tensor is None:
                    tensor = self._build_sizes(ptile)
                    self._sizes[key] = tensor
        return tensor

    def prime(self, ptiles: Iterable[Ptile]) -> None:
        """Precompute the size tensors for every given geometry.

        Lets a long-lived owner (the decision service) build all
        tensors up front and then serve plan requests from effectively
        frozen tables, instead of paying first-touch builds under load.
        """
        for ptile in ptiles:
            self.sizes_for(ptile)

    def _build_sizes(self, ptile: Ptile) -> np.ndarray:
        # The remainder partition depends only on the geometry; the
        # per-block sizes are summed in partition order, matching the
        # per-call computation bit for bit.
        remainder = partition_remainder(ptile.grid, ptile)
        rates = self.rates
        sizes = np.empty((len(self.manifests), len(self.levels), len(rates)))
        for row, manifest in enumerate(self.manifests):
            background = sum(
                manifest.region_size_mbit(b.key, b.area_fraction, _LOWEST_QUALITY)
                for b in remainder
            )
            for vi, v in enumerate(self.levels):
                for fi, rate in enumerate(rates):
                    sizes[row, vi, fi] = (
                        manifest.region_size_mbit(
                            ptile.region_key,
                            ptile.area_fraction,
                            v,
                            frame_rate=rate,
                            fps=self.fps,
                        )
                        + background
                    )
        return sizes

    def window(self, ctx, current_ptile: Ptile) -> MpcWindow:
        """Assemble the stacked MPC window for one plan.

        Future segments reuse the predicted viewport; when a future
        segment has no matching Ptile its sizes come from the current
        Ptile's geometry tensor (the client cannot know better).  Only
        the Ptile match and the Eq. 4 frame-rate factors are per-plan
        work — the size and Q_o rows are views into the stacked tables.
        """
        manifests = ctx.future_manifests or (ctx.manifest,)
        speed = max(ctx.predicted_speed_deg_s, 0.0)
        n = len(manifests)
        v_count = self.qo.shape[1]
        f_count = len(self.rates)
        sizes = np.empty((n, v_count, f_count))
        qoe = np.empty((n, v_count, f_count))
        future_ptiles = ctx.future_ptiles
        for offset, manifest in enumerate(manifests):
            ptile = current_ptile
            future = (
                future_ptiles[offset] if offset < len(future_ptiles) else None
            )
            if future is not None:
                matched = future.match(ctx.predicted_viewport)
                if matched is not None:
                    ptile = matched
            row = self.row(manifest.segment_index)
            sizes[offset] = self.sizes_for(ptile)[row]
            alpha = alpha_from_behavior(speed, manifest.ti)
            factors = np.array([
                frame_rate_factor(rate, ctx.fps, alpha) for rate in self.rates
            ])
            qoe[offset] = self.qo[row, :, None] * factors[None, :]
        return MpcWindow(sizes_mbit=sizes, qoe=qoe, frame_rates=self.rates)
