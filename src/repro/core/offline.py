"""Offline-optimal solver for the Eq. 8 streaming problem.

Section IV-C opens with: "Ideally, if the future bandwidth for
downloading each video segment is known, the optimization problem in
Eq. 8 can be solved, and the optimal (v, f) tuple can be obtained for
each segment."  This module implements exactly that oracle: a dynamic
program over the whole session with perfect knowledge of the network
trace, which lower-bounds the energy any online controller (including
the paper's MPC) can achieve.

The state space is the same discretized buffer as the MPC's
(500 ms granularity); wall-clock time is tracked per state so download
times can be evaluated against the *actual* trace rather than a
prediction.  Comparing :func:`solve_offline` with the MPC's realized
energy measures the online algorithm's optimality gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power.energy import EnergyModel
from ..power.models import TilingScheme
from ..traces.network import NetworkTrace
from .optimizer import MpcConfig, MpcSegment

__all__ = ["OfflinePlan", "solve_offline"]


@dataclass(frozen=True)
class OfflinePlan:
    """The oracle's per-segment decisions and their cost."""

    decisions: tuple[tuple[int, int], ...]  # (quality, frame-rate index)
    total_energy_j: float
    total_qoe: float
    final_buffer_s: float

    @property
    def num_segments(self) -> int:
        return len(self.decisions)

    def mean_quality(self) -> float:
        return float(np.mean([v for v, _ in self.decisions]))

    def mean_frame_rate_index(self) -> float:
        return float(np.mean([f for _, f in self.decisions]))


def solve_offline(
    segments: list[MpcSegment],
    network: NetworkTrace,
    energy_model: EnergyModel,
    config: MpcConfig = MpcConfig(),
    initial_buffer_s: float = 0.0,
) -> OfflinePlan:
    """Solve Eq. 8 over a whole session with perfect future knowledge.

    ``segments`` holds every segment's (sizes, QoE) version tables (the
    same :class:`MpcSegment` structure the MPC consumes).  The DP state
    is (segment index, discretized buffer level); each state carries the
    earliest wall-clock time it can be reached at minimum energy, so
    download durations are integrated over the true trace.

    The QoE floor of constraint (8c) is applied per segment against the
    best version sustainable at the true average bandwidth of that
    segment's download window, mirroring the online controller's
    sustainable-vm rule but with oracle knowledge.
    """
    if not segments:
        raise ValueError("need at least one segment")
    levels = config.state_levels()
    n_states = len(levels)

    # Per-state: (energy, wall_time, path); the session starts at t=0
    # with the given (usually empty) buffer.
    best: list[tuple[float, float, list[tuple[int, int]]] | None] = [
        None
    ] * n_states
    best[config.snap(initial_buffer_s)] = (0.0, 0.0, [])

    for segment in segments:
        nxt: list[tuple[float, float, list[tuple[int, int]]] | None] = [
            None
        ] * n_states
        for allow_stall in (False, True):
            for state, entry in enumerate(best):
                if entry is None:
                    continue
                energy_so_far, wall_t, path = entry
                buffer_level = float(levels[state])
                wait = max(buffer_level - config.buffer_threshold_s, 0.0)
                t_request = wall_t + wait
                level_at_request = buffer_level - wait

                for v, f in _feasible(segment, network, t_request,
                                       level_at_request, config):
                    size = float(segment.sizes_mbit[v - 1, f - 1])
                    dl = network.download_time(size, t_request)
                    stall = max(dl - level_at_request, 0.0)
                    # Eq. 7 forbids rebuffering; startup is exempt, and
                    # a second pass allows forced stalls when the
                    # network leaves no stall-free option at all.
                    if stall > 0 and path and not allow_stall:
                        continue
                    rate = segment.frame_rates[f - 1]
                    energy = (
                        energy_model.transmission_energy_from_time_j(dl)
                        + energy_model.decoding_energy_j(
                            TilingScheme.PTILE, rate
                        )
                        + energy_model.rendering_energy_j(rate)
                    )
                    next_level = min(
                        max(level_at_request - dl, 0.0)
                        + config.segment_seconds,
                        config.buffer_threshold_s,
                    )
                    next_state = config.snap(next_level)
                    total = energy_so_far + energy
                    current = nxt[next_state]
                    if current is None or total < current[0]:
                        nxt[next_state] = (
                            total,
                            t_request + dl,
                            path + [(v, f)],
                        )
            if any(e is not None for e in nxt):
                break
        best = nxt
        if all(e is None for e in best):  # pragma: no cover - safety net
            raise RuntimeError("offline DP has no feasible trajectory")

    final_state, entry = min(
        ((i, e) for i, e in enumerate(best) if e is not None),
        key=lambda item: item[1][0],
    )
    energy, _, path = entry
    qoe = sum(
        float(seg.qoe[v - 1, f - 1]) for seg, (v, f) in zip(segments, path)
    )
    return OfflinePlan(
        decisions=tuple(path),
        total_energy_j=energy,
        total_qoe=qoe,
        final_buffer_s=float(levels[final_state]),
    )


def _feasible(
    segment: MpcSegment,
    network: NetworkTrace,
    t_request: float,
    buffer_s: float,
    config: MpcConfig,
) -> list[tuple[int, int]]:
    """Versions satisfying the oracle's QoE floor (constraint 8c)."""
    v_count = segment.num_qualities
    f_count = segment.num_rates
    top_f = f_count

    def sustainable(v: int) -> bool:
        # Purely rate-based: one segment per segment duration.  Letting
        # vm grow with the instantaneous buffer would make the QoE floor
        # buffer-dependent and reward the oracle for starving its own
        # buffer to keep the floor low.
        size = float(segment.sizes_mbit[v - 1, top_f - 1])
        dl = network.download_time(size, t_request)
        return dl <= config.segment_seconds

    vm = 0
    for v in range(v_count, 0, -1):
        if sustainable(v):
            vm = v
            break
    if vm == 0:
        floor = (1.0 - config.qoe_tolerance) * float(segment.qoe[0, top_f - 1])
        return [
            (1, f) for f in range(1, f_count + 1)
            if segment.qoe[0, f - 1] >= floor
        ]
    floor = (1.0 - config.qoe_tolerance) * float(segment.qoe[vm - 1, top_f - 1])
    feasible = [
        (v, f)
        for v in range(1, v_count + 1)
        for f in range(1, f_count + 1)
        if segment.qoe[v - 1, f - 1] >= floor
    ]
    return feasible or [(vm, top_f)]
