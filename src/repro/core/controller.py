"""The "Ours" streaming controller (paper Sections IV-B and IV-C).

For each segment the client:

1. predicts the viewing area (ridge regression, done by the session
   loop) and checks whether a Ptile covers it;
2. if so, slices the lookahead window out of the session's precomputed
   :class:`~repro.core.plan_tables.PlanTables` — per-future-segment
   download sizes for every (bitrate, frame rate) version and their
   predicted QoE — and runs the MPC dynamic program to pick the
   energy-minimal version within the 5 % QoE tolerance;
3. otherwise falls back to conventional tiles at the best possible
   quality (Ctile behaviour, including its multi-decoder energy cost).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from ..power.energy import EnergyModel
from ..power.models import DevicePowerModel, TilingScheme
from ..qoe.quality import QualityModel
from ..streaming.schemes import (
    CtileScheme,
    DownloadPlan,
    PlanContext,
    split_wrapped_rect,
)
from ..video.framerate import DEFAULT_LADDER, FrameRateLadder
from .optimizer import EnergyQoEMpc, MpcConfig
from .plan_tables import PlanTables

__all__ = ["OursScheme"]


@dataclass(frozen=True)
class OursScheme:
    """Energy-efficient and QoE-aware Ptile streaming with MPC.

    The instance carries two memoization caches (attached via
    ``object.__setattr__`` since the dataclass is frozen):

    * ``_mpc_cache`` — one :class:`EnergyQoEMpc` (and its
      :class:`EnergyModel`) per segment duration, so the controller is
      built once per session configuration instead of once per segment.
      The :class:`MpcConfig` handed to it has its ``segment_seconds``
      derived from the session context, keeping the DP buffer dynamics
      consistent with the actual segment duration;
    * ``_tables_cache`` — one :class:`PlanTables` per (video, ladder,
      fps): stacked (S, V, F) size and (S, V) Q_o tensors covering every
      segment, built once and sliced by each ``plan()``.  The H-segment
      lookahead window slides one segment per plan, so without the
      batched tables each (segment, Ptile) matrix would be rebuilt up to
      H times per session — and once per user on top of that, although
      every session over the same video shares identical manifests and
      Ptiles.

    Only the Ptile match and the switching-speed-dependent frame-rate
    factor (Eq. 4) are recomputed per plan; cached tensors are never
    mutated, so batched and per-call planning are bit-identical.
    """

    device: DevicePowerModel
    ladder: FrameRateLadder = DEFAULT_LADDER
    quality_model: QualityModel = field(default_factory=QualityModel)
    mpc_config: MpcConfig = field(default_factory=MpcConfig)
    fallback: CtileScheme = field(default_factory=CtileScheme)
    name: str = "ours"

    def __post_init__(self) -> None:
        object.__setattr__(self, "_mpc_cache", {})
        object.__setattr__(self, "_tables_cache", {})
        # Serializes first-build of both memos so one scheme instance
        # can plan for many threads (the decision service does); cache
        # hits stay lock-free (dict.get is atomic under the GIL) and
        # cached values are never mutated.
        object.__setattr__(self, "_memo_lock", threading.Lock())

    def __getstate__(self) -> dict:
        # Locks don't pickle (sweep workers receive schemes through a
        # process pool); the memo caches are pure and rebuild lazily.
        state = self.__dict__.copy()
        state.pop("_memo_lock", None)
        state["_mpc_cache"] = {}
        state["_tables_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self.__post_init__()

    def plan(self, ctx: PlanContext) -> DownloadPlan:
        if ctx.segment_ptiles is None:
            return self._fallback_plan(ctx)
        ptile = ctx.segment_ptiles.match(ctx.predicted_viewport)
        if ptile is None:
            return self._fallback_plan(ctx)

        window = self._plan_tables(ctx).window(ctx, ptile)
        mpc = self._mpc(ctx.segment_seconds)
        decision = mpc.choose(window, ctx.bandwidth_mbps, ctx.buffer_s)
        size = float(
            window.sizes_mbit[
                0, decision.quality - 1, decision.frame_rate_index - 1
            ]
        )
        return DownloadPlan(
            scheme_name=self.name,
            quality=decision.quality,
            frame_rate=decision.frame_rate,
            total_size_mbit=size,
            decode_scheme=TilingScheme.PTILE,
            hq_rects=split_wrapped_rect(ptile.rect),
            used_ptile=True,
        )

    # ------------------------------------------------------------------

    def _mpc(self, segment_seconds: float) -> EnergyQoEMpc:
        mpc = self._mpc_cache.get(segment_seconds)
        if mpc is None:
            with self._memo_lock:
                mpc = self._mpc_cache.get(segment_seconds)
                if mpc is None:
                    config = self.mpc_config
                    if config.segment_seconds != segment_seconds:
                        # The DP buffer dynamics must advance by the
                        # *session's* segment duration, not the config
                        # default.
                        config = replace(
                            config, segment_seconds=segment_seconds
                        )
                    mpc = EnergyQoEMpc(
                        EnergyModel(self.device, segment_seconds), config
                    )
                    self._mpc_cache[segment_seconds] = mpc
        return mpc

    def _plan_tables(self, ctx: PlanContext) -> PlanTables:
        """The stacked version tables covering this plan's window.

        When the context carries the whole video manifest (the session
        loop always provides it), one :class:`PlanTables` spans every
        segment and is shared by every plan and session over that video.
        Contexts built without it (e.g. unit tests driving ``plan()``
        directly) get tables keyed by the exact window instead.
        """
        rates = self.ladder.rates()
        # The encoding ladder is per-video state carried by the manifest's
        # encoder; one scheme instance may plan the same video under both
        # the fixed and an optimized ladder (the ladder sweep does), so
        # the memo key must separate them.
        encoding = ctx.manifest.encoder.ladder.digest()
        video = ctx.video_manifest
        if video is not None:
            key = (
                ctx.manifest.video_id,
                "video",
                video.num_segments,
                ctx.fps,
                rates,
                encoding,
            )
            return self._tables_for(key, tuple(video), ctx.fps)
        manifests = ctx.future_manifests or (ctx.manifest,)
        key = (
            ctx.manifest.video_id,
            "window",
            tuple(m.segment_index for m in manifests),
            ctx.fps,
            rates,
            encoding,
        )
        return self._tables_for(key, tuple(manifests), ctx.fps)

    def _tables_for(self, key: tuple, manifests: tuple, fps: float) -> PlanTables:
        tables = self._tables_cache.get(key)
        if tables is None:
            with self._memo_lock:
                tables = self._tables_cache.get(key)
                if tables is None:
                    tables = PlanTables(
                        manifests, self.ladder.rates(), fps,
                        self.quality_model,
                    )
                    self._tables_cache[key] = tables
        return tables

    def _fallback_plan(self, ctx: PlanContext) -> DownloadPlan:
        plan = self.fallback.plan(ctx)
        return DownloadPlan(
            scheme_name=self.name,
            quality=plan.quality,
            frame_rate=plan.frame_rate,
            total_size_mbit=plan.total_size_mbit,
            decode_scheme=plan.decode_scheme,
            hq_rects=plan.hq_rects,
        )
