"""The "Ours" streaming controller (paper Sections IV-B and IV-C).

For each segment the client:

1. predicts the viewing area (ridge regression, done by the session
   loop) and checks whether a Ptile covers it;
2. if so, builds the lookahead window — per-future-segment download
   sizes for every (bitrate, frame rate) version and their predicted
   QoE — and runs the MPC dynamic program to pick the energy-minimal
   version within the 5 % QoE tolerance;
3. otherwise falls back to conventional tiles at the best possible
   quality (Ctile behaviour, including its multi-decoder energy cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..power.energy import EnergyModel
from ..power.models import DevicePowerModel, TilingScheme
from ..ptile.construction import Ptile, SegmentPtiles, partition_remainder
from ..video.encoder import QUALITY_LEVELS
from ..qoe.framerate import alpha_from_behavior, frame_rate_factor
from ..qoe.quality import QualityModel
from ..streaming.schemes import (
    CtileScheme,
    DownloadPlan,
    LOWEST_QUALITY,
    PlanContext,
    split_wrapped_rect,
)
from ..video.framerate import DEFAULT_LADDER, FrameRateLadder
from ..video.segments import SegmentManifest
from .optimizer import EnergyQoEMpc, MpcConfig, MpcSegment

__all__ = ["OursScheme"]


@dataclass(frozen=True)
class OursScheme:
    """Energy-efficient and QoE-aware Ptile streaming with MPC.

    The instance carries two memoization caches (attached via
    ``object.__setattr__`` since the dataclass is frozen):

    * ``_mpc_cache`` — one :class:`EnergyQoEMpc` (and its
      :class:`EnergyModel`) per segment duration, so the controller is
      built once per session configuration instead of once per segment;
    * ``_version_cache`` — per (video, segment, Ptile geometry, fps,
      ladder) download-size matrices and Q_o columns.  The H-segment
      lookahead window slides one segment per plan, so without the cache
      each (segment, Ptile) matrix is rebuilt up to H times per session
      — and once per user on top of that, although every session over
      the same video shares identical manifests and Ptiles.

    Only the switching-speed-dependent frame-rate factor (Eq. 4) is
    recomputed per plan; cached entries are never mutated, so cached and
    uncached planning are bit-identical.
    """

    device: DevicePowerModel
    ladder: FrameRateLadder = DEFAULT_LADDER
    quality_model: QualityModel = field(default_factory=QualityModel)
    mpc_config: MpcConfig = field(default_factory=MpcConfig)
    fallback: CtileScheme = field(default_factory=CtileScheme)
    name: str = "ours"

    def __post_init__(self) -> None:
        object.__setattr__(self, "_mpc_cache", {})
        object.__setattr__(self, "_version_cache", {})

    def plan(self, ctx: PlanContext) -> DownloadPlan:
        if ctx.segment_ptiles is None:
            return self._fallback_plan(ctx)
        ptile = ctx.segment_ptiles.match(ctx.predicted_viewport)
        if ptile is None:
            return self._fallback_plan(ctx)

        segments = self._lookahead(ctx, ptile)
        mpc = self._mpc(ctx.segment_seconds)
        decision = mpc.choose(segments, ctx.bandwidth_mbps, ctx.buffer_s)
        size = float(
            segments[0].sizes_mbit[decision.quality - 1, decision.frame_rate_index - 1]
        )
        return DownloadPlan(
            scheme_name=self.name,
            quality=decision.quality,
            frame_rate=decision.frame_rate,
            total_size_mbit=size,
            decode_scheme=TilingScheme.PTILE,
            hq_rects=split_wrapped_rect(ptile.rect),
            used_ptile=True,
        )

    # ------------------------------------------------------------------

    def _mpc(self, segment_seconds: float) -> EnergyQoEMpc:
        mpc = self._mpc_cache.get(segment_seconds)
        if mpc is None:
            mpc = EnergyQoEMpc(
                EnergyModel(self.device, segment_seconds), self.mpc_config
            )
            self._mpc_cache[segment_seconds] = mpc
        return mpc

    def _lookahead(self, ctx: PlanContext, current_ptile: Ptile) -> list[MpcSegment]:
        """Build the MPC window from the metadata of the next H segments.

        Future segments reuse the predicted viewport; when a future
        segment has no matching Ptile its sizes are approximated with
        the current Ptile's geometry (the client cannot know better).
        """
        segments: list[MpcSegment] = []
        manifests = ctx.future_manifests or (ctx.manifest,)
        for offset, manifest in enumerate(manifests):
            ptile = current_ptile
            future = (
                ctx.future_ptiles[offset]
                if offset < len(ctx.future_ptiles)
                else None
            )
            if future is not None:
                matched = future.match(ctx.predicted_viewport)
                if matched is not None:
                    ptile = matched
            segments.append(self._segment_versions(ctx, manifest, ptile, future))
        return segments

    def _segment_versions(
        self,
        ctx: PlanContext,
        manifest: SegmentManifest,
        ptile: Ptile,
        segment_ptiles: SegmentPtiles | None,
    ) -> MpcSegment:
        """Download sizes and predicted QoE for every (v, f) version.

        The size matrix and per-quality Q_o column depend only on the
        segment, the Ptile, and the ladder, so they are memoized; the
        frame-rate factor depends on the per-plan switching-speed
        prediction and is recomputed each call.
        """
        rates = self.ladder.rates()
        alpha = alpha_from_behavior(
            max(ctx.predicted_speed_deg_s, 0.0), manifest.ti
        )
        sizes, qo = self._version_tables(
            ctx, manifest, ptile, segment_ptiles, rates
        )
        factors = np.array([
            frame_rate_factor(rate, ctx.fps, alpha) for rate in rates
        ])
        qoe = qo[:, None] * factors[None, :]
        return MpcSegment(sizes_mbit=sizes, qoe=qoe, frame_rates=rates)

    def _version_tables(
        self,
        ctx: PlanContext,
        manifest: SegmentManifest,
        ptile: Ptile,
        segment_ptiles: SegmentPtiles | None,
        rates: tuple[float, ...],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Memoized (sizes, qo) tables; the cached arrays are shared and
        must not be mutated."""
        from_segment = (
            segment_ptiles is not None
            and ptile.index < len(segment_ptiles.ptiles)
            and segment_ptiles.ptiles[ptile.index] is ptile
        )
        key = (
            manifest.video_id,
            manifest.segment_index,
            ptile.region_key,
            ptile.tiles,
            from_segment,
            ctx.fps,
            rates,
        )
        cached = self._version_cache.get(key)
        if cached is not None:
            return cached

        qualities = QUALITY_LEVELS
        # Low-quality remainder blocks: fixed cost across versions.
        if from_segment:
            remainder = segment_ptiles.remainder_for(ptile)
        else:
            remainder = partition_remainder(ptile.grid, ptile)
        background = sum(
            manifest.region_size_mbit(b.key, b.area_fraction, LOWEST_QUALITY)
            for b in remainder
        )

        sizes = np.empty((len(qualities), len(rates)))
        qo = np.empty(len(qualities))
        for vi, v in enumerate(qualities):
            qo[vi] = self.quality_model.qo(
                manifest.si, manifest.ti, manifest.qoe_bitrate_mbps(v)
            )
            for fi, rate in enumerate(rates):
                sizes[vi, fi] = (
                    manifest.region_size_mbit(
                        ptile.region_key,
                        ptile.area_fraction,
                        v,
                        frame_rate=rate,
                        fps=ctx.fps,
                    )
                    + background
                )
        self._version_cache[key] = (sizes, qo)
        return sizes, qo

    def _fallback_plan(self, ctx: PlanContext) -> DownloadPlan:
        plan = self.fallback.plan(ctx)
        return DownloadPlan(
            scheme_name=self.name,
            quality=plan.quality,
            frame_rate=plan.frame_rate,
            total_size_mbit=plan.total_size_mbit,
            decode_scheme=plan.decode_scheme,
            hq_rects=plan.hq_rects,
        )
