"""Central experiment configuration (paper Section V-A defaults).

One dataclass gathers every tunable the paper fixes, so experiments,
examples, and tests share a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..encoding.ladder import DEFAULT_ENCODING_LADDER, EncodingLadder
from ..geometry.tiling import TileGrid
from ..ptile.construction import PtileConfig
from ..qoe.metrics import QoEWeights
from ..video.framerate import FrameRateLadder
from .optimizer import MpcConfig

__all__ = ["StreamingConfig"]


@dataclass(frozen=True)
class StreamingConfig:
    """All paper defaults in one place.

    * 1 s segments on a 4x8 grid, five quality levels (CRF 38..18);
    * 100 degree FoV, 3 s playback buffer;
    * frame-rate ladder reducing {10, 20, 30} % of 30 fps;
    * QoE weights (1, 1) and 5 % QoE tolerance;
    * MPC horizon 5 with 500 ms buffer granularity;
    * Ptile parameters sigma = tile width, delta = sigma / 4, >= 5 users.
    """

    segment_seconds: float = 1.0
    grid_rows: int = 4
    grid_cols: int = 8
    fov_deg: float = 100.0
    buffer_threshold_s: float = 3.0
    qualities: tuple[int, ...] = DEFAULT_ENCODING_LADDER.levels
    encoding_ladder: EncodingLadder = DEFAULT_ENCODING_LADDER
    ladder: FrameRateLadder = field(default_factory=FrameRateLadder)
    qoe_weights: QoEWeights = field(default_factory=QoEWeights)
    qoe_tolerance: float = 0.05
    mpc_horizon: int = 5
    buffer_granularity_s: float = 0.5
    bandwidth_window: int = 5
    n_users: int = 48
    n_train_users: int = 40

    def __post_init__(self) -> None:
        # ``qualities`` and the encoding ladder are two views of the same
        # ladder; a silent mismatch would let ABR enumerate levels the
        # encoder cannot price (or skip ones it can).
        if tuple(self.qualities) != self.encoding_ladder.levels:
            raise ValueError(
                f"qualities {tuple(self.qualities)} disagree with the "
                f"encoding ladder's {self.encoding_ladder.num_levels} "
                f"levels {self.encoding_ladder.levels}; pass matching "
                "qualities/encoding_ladder"
            )

    def make_grid(self) -> TileGrid:
        return TileGrid(self.grid_rows, self.grid_cols)

    def make_ptile_config(self) -> PtileConfig:
        grid = self.make_grid()
        sigma = grid.tile_width
        return PtileConfig(sigma=sigma, delta=sigma / 4.0, fov_deg=self.fov_deg)

    def make_mpc_config(self) -> MpcConfig:
        return MpcConfig(
            horizon=self.mpc_horizon,
            buffer_granularity_s=self.buffer_granularity_s,
            buffer_threshold_s=self.buffer_threshold_s,
            qoe_tolerance=self.qoe_tolerance,
            segment_seconds=self.segment_seconds,
        )
