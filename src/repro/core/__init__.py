"""Core contribution: configuration, MPC optimizer, Ours controller."""

from .config import StreamingConfig
from .controller import OursScheme
from .offline import OfflinePlan, solve_offline
from .optimizer import EnergyQoEMpc, MpcConfig, MpcDecision, MpcSegment, MpcWindow
from .plan_tables import PlanTables
from .robust import RobustScheme, expected_quality_window

__all__ = [
    "StreamingConfig",
    "OursScheme",
    "RobustScheme",
    "expected_quality_window",
    "OfflinePlan",
    "solve_offline",
    "EnergyQoEMpc",
    "MpcConfig",
    "MpcDecision",
    "MpcSegment",
    "MpcWindow",
    "PlanTables",
]
