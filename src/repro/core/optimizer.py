"""MPC + dynamic-programming quality/frame-rate selection (Section IV-C).

The energy-efficient and QoE-aware streaming problem (Eq. 8) minimizes
total energy subject to (a) no rebuffering (Eq. 6-7), (b) one quality
version per segment (8b), and (c) a bounded QoE loss relative to the
best downloadable version (8c, tolerance epsilon = 5 %).

Perfect future knowledge being impossible, the paper solves it online
with Model Predictive Control: at each segment, predict bandwidth for
the next H segments (harmonic mean), solve Eq. 8 over that window by
dynamic programming on a discretized buffer state (500 ms granularity),
apply the first decision, slide the window.  The DP's Bellman equation::

    U*(B_i, v_i, f_i) = min_{v,f} { U*(B_{i-1}, v_{i-1}, f_{i-1}) + E(T_i^{v,f}) }

runs in O(H * V * F) per chosen buffer state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power.energy import EnergyModel
from ..power.models import TilingScheme

__all__ = ["MpcConfig", "MpcSegment", "MpcWindow", "MpcDecision", "EnergyQoEMpc"]


@dataclass(frozen=True)
class MpcConfig:
    """MPC parameters (paper Section IV-C / V-A defaults)."""

    horizon: int = 5
    buffer_granularity_s: float = 0.5
    buffer_threshold_s: float = 3.0
    qoe_tolerance: float = 0.05  # epsilon in constraint (8c)
    segment_seconds: float = 1.0
    bandwidth_safety: float = 0.9  # discount on the bandwidth estimate

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must be at least 1")
        if self.buffer_granularity_s <= 0 or self.buffer_threshold_s <= 0:
            raise ValueError("buffer parameters must be positive")
        if not (0.0 <= self.qoe_tolerance < 1.0):
            raise ValueError("tolerance must be in [0, 1)")

    @property
    def num_states(self) -> int:
        return int(round(self.buffer_threshold_s / self.buffer_granularity_s)) + 1

    def state_levels(self) -> np.ndarray:
        """The discretized buffer levels (0 .. beta, 500 ms steps)."""
        return np.arange(self.num_states) * self.buffer_granularity_s

    def snap(self, buffer_s: float) -> int:
        """Nearest state index for a continuous buffer level."""
        idx = int(round(buffer_s / self.buffer_granularity_s))
        return min(max(idx, 0), self.num_states - 1)


@dataclass(frozen=True)
class MpcSegment:
    """Per-segment lookahead data: sizes and quality for every version.

    ``sizes_mbit[v-1, f-1]`` is the download size of the segment with
    bitrate level v and frame-rate index f (both 1-based in the paper);
    ``qoe[v-1, f-1]`` is the predicted per-segment quality
    ``Q_o(v) * factor(f)``.  ``frame_rates[f-1]`` are the actual fps
    values, needed for the decode/render power terms.
    """

    sizes_mbit: np.ndarray
    qoe: np.ndarray
    frame_rates: tuple[float, ...]

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes_mbit, dtype=float)
        qoe = np.asarray(self.qoe, dtype=float)
        if sizes.shape != qoe.shape or sizes.ndim != 2:
            raise ValueError("sizes and qoe must be equal-shape 2D arrays")
        if sizes.shape[1] != len(self.frame_rates):
            raise ValueError("frame-rate axis mismatch")
        if np.any(sizes <= 0):
            raise ValueError("sizes must be positive")
        object.__setattr__(self, "sizes_mbit", sizes)
        object.__setattr__(self, "qoe", qoe)

    @property
    def num_qualities(self) -> int:
        return int(self.sizes_mbit.shape[0])

    @property
    def num_rates(self) -> int:
        return int(self.sizes_mbit.shape[1])


@dataclass(frozen=True)
class MpcWindow:
    """A whole lookahead window stacked into single tensors.

    ``sizes_mbit[h, v-1, f-1]`` and ``qoe[h, v-1, f-1]`` are the size
    and predicted quality of version (v, f) of the h-th lookahead
    segment (the current segment is ``h = 0``).  All segments share one
    frame-rate ladder, which is what lets :meth:`EnergyQoEMpc.choose`
    compute every per-version download time and Eq. 1 energy for the
    whole horizon in one vectorized pass instead of once per segment.
    A shorter-than-horizon window near the video end is fine.
    """

    sizes_mbit: np.ndarray
    qoe: np.ndarray
    frame_rates: tuple[float, ...]

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes_mbit, dtype=float)
        qoe = np.asarray(self.qoe, dtype=float)
        if sizes.shape != qoe.shape or sizes.ndim != 3:
            raise ValueError("sizes and qoe must be equal-shape 3D arrays")
        if sizes.shape[0] < 1:
            raise ValueError("need at least one lookahead segment")
        if sizes.shape[2] != len(self.frame_rates):
            raise ValueError("frame-rate axis mismatch")
        if np.any(sizes <= 0):
            raise ValueError("sizes must be positive")
        object.__setattr__(self, "sizes_mbit", sizes)
        object.__setattr__(self, "qoe", qoe)

    @property
    def num_segments(self) -> int:
        return int(self.sizes_mbit.shape[0])

    @property
    def num_qualities(self) -> int:
        return int(self.sizes_mbit.shape[1])

    @property
    def num_rates(self) -> int:
        return int(self.sizes_mbit.shape[2])

    def segments(self) -> list[MpcSegment]:
        """The equivalent per-segment list (for the reference DP)."""
        return [
            MpcSegment(
                sizes_mbit=self.sizes_mbit[i],
                qoe=self.qoe[i],
                frame_rates=self.frame_rates,
            )
            for i in range(self.num_segments)
        ]


@dataclass(frozen=True)
class MpcDecision:
    """The (v, f) decision for the current segment."""

    quality: int  # 1-based bitrate level
    frame_rate_index: int  # 1-based frame-rate index
    frame_rate: float
    planned_energy_j: float  # DP total over the horizon


class EnergyQoEMpc:
    """Solves the horizon problem of Eq. 8 by buffer-state DP.

    :meth:`choose` is the production hot path: the per-(v, f) download
    times and Eq. 1 energies are computed as numpy matrices once per
    lookahead segment instead of once per (state, version) pair, the
    per-frame-rate decode/render energies are cached across calls, and
    the DP scan itself runs over pre-flattened plain-Python lists (at
    the paper's 5x5 version grid, per-element numpy indexing costs more
    than the arithmetic it feeds).  :meth:`choose_reference` keeps the
    original scalar dynamic program; both return bit-identical decisions
    (the fast path replicates the reference's iteration order and
    tie-breaking exactly), which the parity regression test enforces.
    """

    def __init__(self, energy_model: EnergyModel, config: MpcConfig = MpcConfig()):
        self.energy_model = energy_model
        self.config = config
        # (frame_rates tuple) -> (decode_j, render_j) arrays, one per rate.
        self._rate_cache: dict[tuple[float, ...], tuple[np.ndarray, np.ndarray]] = {}

    def choose(
        self,
        segments: "list[MpcSegment] | MpcWindow",
        bandwidth_mbps: float,
        buffer_s: float,
    ) -> MpcDecision:
        """Pick (v, f) for the first of the lookahead segments.

        ``segments`` holds the current segment first, then up to H-1
        future segments (a shorter list near the video end is fine) —
        either a per-segment :class:`MpcSegment` list or a stacked
        :class:`MpcWindow`.  The stacked form computes every download
        time and Eq. 1 energy for the whole horizon in one vectorized
        pass; both forms feed the same DP scan and return bit-identical
        decisions (numpy elementwise ops don't depend on whether they
        run per 2D segment or over the stacked 3D window).
        """
        if isinstance(segments, MpcWindow):
            return self._choose_window(segments, bandwidth_mbps, buffer_s)
        if not segments:
            raise ValueError("need at least one lookahead segment")
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        bandwidth_mbps = bandwidth_mbps * self.config.bandwidth_safety
        window = segments[: self.config.horizon]
        trans_w = self.energy_model.device.transmission_mw * 1e-3

        per_segment = []
        for segment in window:
            dl = segment.sizes_mbit / bandwidth_mbps  # (V, F)
            decode_j, render_j = self._rate_energies(segment.frame_rates)
            # Same association order as _version_energy: (t + d) + r.
            energy = trans_w * dl + decode_j + render_j
            # Flatten to plain-Python lists once: the DP scan below is
            # pure scalar work, where list indexing beats numpy scalar
            # indexing by an order of magnitude at this problem size.
            per_segment.append((
                energy.ravel().tolist(),
                dl.ravel().tolist(),
                dl[:, -1].tolist(),
                segment.qoe.ravel().tolist(),
                segment.qoe[:, -1].tolist(),
                segment.num_qualities,
                segment.num_rates,
            ))
        return self._dp_scan(per_segment, window[0].frame_rates, buffer_s)

    def _choose_window(
        self, window: MpcWindow, bandwidth_mbps: float, buffer_s: float
    ) -> MpcDecision:
        """Stacked hot path: one vectorized energy pass for the horizon."""
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        bandwidth_mbps = bandwidth_mbps * self.config.bandwidth_safety
        horizon = min(window.num_segments, self.config.horizon)
        trans_w = self.energy_model.device.transmission_mw * 1e-3

        sizes = window.sizes_mbit[:horizon]  # (H, V, F)
        qoe = window.qoe[:horizon]
        dl_stack = sizes / bandwidth_mbps
        decode_j, render_j = self._rate_energies(window.frame_rates)
        # Broadcasting the (F,) energy vectors over (H, V, F) applies the
        # exact elementwise ops of the per-segment path — bit-identical.
        energy_stack = trans_w * dl_stack + decode_j + render_j
        v_count = window.num_qualities
        f_count = window.num_rates

        per_segment = []
        for h in range(horizon):
            dl = dl_stack[h]
            per_segment.append((
                energy_stack[h].ravel().tolist(),
                dl.ravel().tolist(),
                dl[:, -1].tolist(),
                qoe[h].ravel().tolist(),
                qoe[h][:, -1].tolist(),
                v_count,
                f_count,
            ))
        return self._dp_scan(per_segment, window.frame_rates, buffer_s)

    def _dp_scan(
        self,
        per_segment: list[tuple],
        first_frame_rates: tuple[float, ...],
        buffer_s: float,
    ) -> MpcDecision:
        """The flat-list DP over precomputed per-segment tables.

        Each entry of ``per_segment`` is ``(energy_flat, dl_flat,
        dl_top, qoe_flat, qoe_top, v_count, f_count)`` with the flat
        index ``j = (v - 1) * f_count + (f - 1)``.
        """
        cfg = self.config
        levels = cfg.state_levels()

        start = cfg.snap(buffer_s)
        costs: dict[int, float] = {start: 0.0}
        paths: dict[int, list[tuple[int, int]]] = {start: []}

        levels_list = levels.tolist()
        seg_s = cfg.segment_seconds
        threshold = cfg.buffer_threshold_s
        one_minus_eps = 1.0 - cfg.qoe_tolerance

        for (energy_flat, dl_flat, dl_top, qoe_flat, qoe_top,
             v_count, f_count) in per_segment:
            n_versions = v_count * f_count

            new_costs: dict[int, float] = {}
            new_paths: dict[int, list[tuple[int, int]]] = {}
            for state, cost in costs.items():
                buffer_level = levels_list[state]
                # Feasible versions, reference semantics: highest
                # bitrate sustainable at the top frame rate sets the
                # QoE floor; candidates must download before the
                # buffer drains.
                cap = seg_s if seg_s < buffer_level else buffer_level
                vm = 0
                for v in range(v_count, 0, -1):
                    if dl_top[v - 1] <= cap:
                        vm = v
                        break
                if vm == 0:
                    # Nothing stall-free: lowest bitrate, QoE tolerance
                    # within its own frame-rate ladder.
                    floor = one_minus_eps * qoe_top[0]
                    feasible = [
                        f for f in range(f_count) if qoe_flat[f] >= floor
                    ]
                else:
                    floor = one_minus_eps * qoe_top[vm - 1]
                    feasible = [
                        j
                        for j in range(n_versions)
                        if dl_flat[j] <= buffer_level
                        and qoe_flat[j] >= floor
                    ]
                    if not feasible:  # pragma: no cover - safety net
                        feasible = [(vm - 1) * f_count + f_count - 1]
                # Flat ascending j is exactly the reference's (v asc,
                # f asc) scan, so strict-< updates reproduce its
                # tie-breaking and dict insertion order.
                for j in feasible:
                    next_level = buffer_level - dl_flat[j]
                    if next_level < 0.0:
                        next_level = 0.0
                    next_level += seg_s
                    target = cfg.snap(
                        next_level if next_level < threshold else threshold
                    )
                    total = cost + energy_flat[j]
                    prev = new_costs.get(target)
                    if prev is None or total < prev:
                        new_costs[target] = total
                        new_paths[target] = paths[state] + [
                            (j // f_count + 1, j % f_count + 1)
                        ]
            costs, paths = new_costs, new_paths

        best_state = min(costs, key=lambda s: costs[s])
        first_v, first_f = paths[best_state][0]
        return MpcDecision(
            quality=first_v,
            frame_rate_index=first_f,
            frame_rate=first_frame_rates[first_f - 1],
            planned_energy_j=float(costs[best_state]),
        )

    def choose_batch(
        self,
        sizes_mbit: np.ndarray,
        qoe: np.ndarray,
        frame_rates: tuple[float, ...],
        bandwidths_mbps: np.ndarray,
        buffers_s: np.ndarray,
    ) -> list[MpcDecision]:
        """Solve B same-shape windows in one dense DP pass.

        ``sizes_mbit`` and ``qoe`` are stacked ``(B, H, V, F)`` tensors
        (one :class:`MpcWindow` per batch row, all sharing one
        frame-rate ladder and horizon length); ``bandwidths_mbps`` and
        ``buffers_s`` are per-request ``(B,)`` vectors.  Returns the
        per-request decisions in batch order, bit-identical to calling
        :meth:`choose` once per row.

        Identity with the scalar DP is not just numerical but
        *order-exact*: the scalar scan resolves equal-cost ties by dict
        insertion order (first state reaching a buffer level owns its
        slot until strictly beaten, and the final ``min`` keeps the
        earliest inserted state among equals).  The dense pass carries
        that order explicitly as an integer rank per (request, state):
        candidate keys ``rank * J + j`` reproduce the (state insertion,
        version index) scan order, winners take the minimal key among
        equal-minimal costs, and next-step ranks are assigned by each
        state's first-reach key.  Ties between float-identical paths —
        common when consecutive segments share size tables — therefore
        break exactly as in :meth:`choose`.
        """
        sizes = np.asarray(sizes_mbit, dtype=float)
        qo_all = np.asarray(qoe, dtype=float)
        if sizes.ndim != 4 or sizes.shape != qo_all.shape:
            raise ValueError("sizes and qoe must be equal-shape (B, H, V, F)")
        bandwidths = np.asarray(bandwidths_mbps, dtype=float)
        buffers = np.asarray(buffers_s, dtype=float)
        batch = sizes.shape[0]
        if bandwidths.shape != (batch,) or buffers.shape != (batch,):
            raise ValueError("bandwidths and buffers must be (B,) vectors")
        if batch == 0:
            return []
        if np.any(bandwidths <= 0):
            raise ValueError("bandwidth must be positive")

        cfg = self.config
        horizon = min(sizes.shape[1], cfg.horizon)
        v_count = sizes.shape[2]
        f_count = sizes.shape[3]
        n_versions = v_count * f_count
        num_states = cfg.num_states
        levels = cfg.state_levels()
        seg_s = cfg.segment_seconds
        threshold = cfg.buffer_threshold_s
        gran = cfg.buffer_granularity_s
        one_minus_eps = 1.0 - cfg.qoe_tolerance
        trans_w = self.energy_model.device.transmission_mw * 1e-3

        bw = bandwidths * cfg.bandwidth_safety
        # Same elementwise ops as the scalar path, broadcast over B.
        dl = sizes[:, :horizon] / bw[:, None, None, None]  # (B, H, V, F)
        decode_j, render_j = self._rate_energies(frame_rates)
        energy = trans_w * dl + decode_j + render_j
        qo = qo_all[:, :horizon]

        dl_flat = dl.reshape(batch, horizon, n_versions)
        qo_flat = qo.reshape(batch, horizon, n_versions)
        en_flat = energy.reshape(batch, horizon, n_versions)
        dl_top = dl[:, :, :, f_count - 1]  # (B, H, V)
        qo_top = qo[:, :, :, f_count - 1]

        b_idx = np.arange(batch)
        j_idx = np.arange(n_versions, dtype=np.int32)
        big_key = np.int32(num_states * n_versions)  # > any rank * J + j
        cap = np.minimum(seg_s, levels)  # (S,)
        src_state = np.repeat(np.arange(num_states), n_versions)
        src_j = np.tile(j_idx, num_states)
        rank_fill = np.broadcast_to(
            np.arange(num_states, dtype=np.int32), (batch, num_states)
        )
        t_range = np.arange(num_states)[None, :, None]
        # ``np.where`` and masked (``where=``) reductions are an order
        # of magnitude slower than plain ufuncs on the (B, S, S*J)
        # working set, so masking is done arithmetically: excluded
        # entries get a huge additive penalty and plain min/argmin do
        # the selection.  Unreached states therefore carry the finite
        # sentinel BIG instead of inf (penalties must compose by
        # addition without producing nan); any cost at or above REACHED
        # means "not a real path".  Real path energies are bounded far
        # below REACHED for any physical input, and reached costs are
        # exact because masking only ever adds 0.0 to live entries.
        BIG = 1e300
        REACHED = 1e250

        # int(round(x)) == np.rint(x): both round half to even.
        start = np.clip(
            np.rint(buffers / gran).astype(np.int64), 0, num_states - 1
        )
        costs = np.full((batch, num_states), BIG)
        costs[b_idx, start] = 0.0
        # rank[b, s] = insertion order of state s in the scalar DP's
        # dict (num_states = never inserted); first_dec[b, s] = flat j
        # of the h=0 decision on the best path into s.
        rank = np.full((batch, num_states), num_states, dtype=np.int32)
        rank[b_idx, start] = 0
        first_dec = np.full((batch, num_states), -1, dtype=np.int64)

        for h in range(horizon):
            dlh = dl_flat[:, h]  # (B, J)
            qoh = qo_flat[:, h]
            enh = en_flat[:, h]
            dth = dl_top[:, h]  # (B, V)
            qth = qo_top[:, h]

            # vm: highest bitrate sustainable at the top frame rate.
            sustain = dth[:, :, None] <= cap[None, None, :]  # (B, V, S)
            has_vm = sustain.any(axis=1)  # (B, S)
            vm = np.where(
                has_vm, v_count - np.argmax(sustain[:, ::-1, :], axis=1), 0
            )
            vm_row = np.maximum(vm - 1, 0)  # row 0 doubles as the vm==0 floor
            floor = one_minus_eps * np.take_along_axis(qth, vm_row, axis=1)

            qoe_ok = qoh[:, None, :] >= floor[:, :, None]  # (B, S, J)
            has_vm3 = has_vm[:, :, None]
            feasible = (
                ((dlh[:, None, :] <= levels[None, :, None]) & has_vm3)
                | ((j_idx[None, None, :] < f_count) & ~has_vm3)
            ) & qoe_ok
            # vm > 0 with nothing feasible: (vm, top f) fallback.
            need_fb = has_vm & ~feasible.any(axis=2)
            if need_fb.any():
                fb_b, fb_s = np.nonzero(need_fb)
                feasible[fb_b, fb_s, (vm[fb_b, fb_s] - 1) * f_count
                         + f_count - 1] = True

            # Target state per (state, version), scalar-snap semantics.
            next_level = np.maximum(
                levels[None, :, None] - dlh[:, None, :], 0.0
            ) + seg_s
            capped = np.minimum(next_level, threshold)
            target = np.clip(
                np.rint(capped / gran).astype(np.int64), 0, num_states - 1
            )

            # Arithmetic masking: invalid candidates get +BIG on their
            # cost and +big_key on their scan key, which keeps every
            # live entry bit-exact (x + 0.0 == x) while pushing dead
            # ones past any real value.
            invalid = ~(feasible & (costs < REACHED)[:, :, None])
            totals = costs[:, :, None] + enh[:, None, :] + invalid * BIG
            keys = rank[:, :, None] * n_versions + j_idx + invalid * big_key

            flat_tot = totals.reshape(batch, -1)
            flat_key = keys.reshape(batch, -1)
            flat_tgt = target.reshape(batch, -1)

            # All target states at once: one-hot the candidates along a
            # target-major (B, S_target, S*J) axis, mask non-hits with
            # the same additive penalties, and reduce over the
            # contiguous candidate axis with plain min/argmin.
            miss = flat_tgt[:, None, :] != t_range  # (B, S, S*J)
            masked_tot = flat_tot[:, None, :] + miss * BIG
            new_costs = masked_tot.min(axis=2)  # (B, S)
            # Winner = minimal scan key among equal-minimal costs (the
            # scalar strict-< update keeps the first one).  Equality
            # with new_costs already implies "hit and minimal": missed
            # or invalid entries sit at least BIG above any real cost.
            not_best = masked_tot != new_costs[:, :, None]
            winner = (
                flat_key[:, None, :] + not_best * big_key
            ).argmin(axis=2)  # (B, S)
            reached = new_costs < REACHED
            if h == 0:
                new_first = np.where(reached, src_j[winner], -1)
            else:
                new_first = np.where(
                    reached, first_dec[b_idx[:, None], src_state[winner]], -1
                )
            # Insertion order = first candidate reaching t at all.
            # Unreached targets end up >= big_key in some arbitrary
            # order, which is fine: their ranks only ever label states
            # whose candidates are masked as invalid anyway.
            reach_key = (flat_key[:, None, :] + miss * big_key).min(axis=2)

            order = np.argsort(reach_key, axis=1, kind="stable")
            rank = np.empty((batch, num_states), dtype=np.int32)
            np.put_along_axis(rank, order, rank_fill, axis=1)
            costs, first_dec = new_costs, new_first

        best_cost = costs.min(axis=1)
        if not np.all(best_cost < REACHED):
            raise ValueError("no feasible version sequence for some request")
        # Final min over dict iteration order: earliest-inserted state
        # among equal-minimal costs.
        best_state = np.where(
            costs == best_cost[:, None], rank, num_states + 1
        ).argmin(axis=1)
        first = first_dec[b_idx, best_state]
        quality = first // f_count + 1
        rate_idx = first % f_count + 1
        return [
            MpcDecision(
                quality=int(quality[b]),
                frame_rate_index=int(rate_idx[b]),
                frame_rate=frame_rates[int(rate_idx[b]) - 1],
                planned_energy_j=float(best_cost[b]),
            )
            for b in range(batch)
        ]

    def choose_reference(
        self,
        segments: "list[MpcSegment] | MpcWindow",
        bandwidth_mbps: float,
        buffer_s: float,
    ) -> MpcDecision:
        """The original scalar DP, kept as the parity oracle for tests."""
        if isinstance(segments, MpcWindow):
            segments = segments.segments()
        if not segments:
            raise ValueError("need at least one lookahead segment")
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        bandwidth_mbps = bandwidth_mbps * self.config.bandwidth_safety
        window = segments[: self.config.horizon]
        cfg = self.config
        levels = cfg.state_levels()

        # DP tables: per state, the minimum energy and the decision path.
        start = cfg.snap(buffer_s)
        costs: dict[int, float] = {start: 0.0}
        paths: dict[int, list[tuple[int, int]]] = {start: []}

        for segment in window:
            new_costs: dict[int, float] = {}
            new_paths: dict[int, list[tuple[int, int]]] = {}
            for state, cost in costs.items():
                buffer_level = float(levels[state])
                for v, f in self._feasible_versions(
                    segment, bandwidth_mbps, buffer_level
                ):
                    size = float(segment.sizes_mbit[v - 1, f - 1])
                    dl = size / bandwidth_mbps
                    energy = self._version_energy(size, bandwidth_mbps,
                                                  segment.frame_rates[f - 1])
                    next_level = max(buffer_level - dl, 0.0) + cfg.segment_seconds
                    next_state = cfg.snap(min(next_level, cfg.buffer_threshold_s))
                    total = cost + energy
                    if total < new_costs.get(next_state, np.inf):
                        new_costs[next_state] = total
                        new_paths[next_state] = paths[state] + [(v, f)]
            costs, paths = new_costs, new_paths

        best_state = min(costs, key=lambda s: costs[s])
        first_v, first_f = paths[best_state][0]
        return MpcDecision(
            quality=first_v,
            frame_rate_index=first_f,
            frame_rate=window[0].frame_rates[first_f - 1],
            planned_energy_j=float(costs[best_state]),
        )

    # ------------------------------------------------------------------

    def _rate_energies(
        self, frame_rates: tuple[float, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-frame-rate decode and render energies, cached."""
        cached = self._rate_cache.get(frame_rates)
        if cached is None:
            decode_j = np.array([
                self.energy_model.decoding_energy_j(TilingScheme.PTILE, rate)
                for rate in frame_rates
            ])
            render_j = np.array([
                self.energy_model.rendering_energy_j(rate)
                for rate in frame_rates
            ])
            cached = (decode_j, render_j)
            self._rate_cache[frame_rates] = cached
        return cached

    def _feasible_versions(
        self, segment: MpcSegment, bandwidth_mbps: float, buffer_s: float
    ) -> list[tuple[int, int]]:
        """Versions satisfying the no-stall and QoE constraints.

        The QoE floor is ``(1 - eps) * Q(vm, fm)`` where (vm, fm) is the
        highest bitrate at the full frame rate whose version can be
        *successfully downloaded*, i.e. sustained at the predicted
        bandwidth (one segment per segment duration) — the same quality
        a pure quality-maximizing Ptile client would pick.  Actual
        candidates must additionally finish before the buffer drains
        (no-stall, Eq. 7).  When nothing is stall-free (e.g. cold
        start), the constraint relaxes to the lowest bitrate's
        frame-rate ladder.
        """
        v_count = segment.num_qualities
        f_count = segment.num_rates
        top_f = f_count  # highest frame rate index

        def downloadable(v: int, f: int) -> bool:
            return segment.sizes_mbit[v - 1, f - 1] / bandwidth_mbps <= buffer_s

        def sustainable(v: int, f: int) -> bool:
            dl = segment.sizes_mbit[v - 1, f - 1] / bandwidth_mbps
            return dl <= min(self.config.segment_seconds, buffer_s)

        vm = 0
        for v in range(v_count, 0, -1):
            if sustainable(v, top_f):
                vm = v
                break

        if vm == 0:
            # Nothing stall-free: fall back to the lowest bitrate and
            # keep the QoE tolerance within its own frame-rate ladder.
            floor = (1.0 - self.config.qoe_tolerance) * float(
                segment.qoe[0, top_f - 1]
            )
            return [
                (1, f)
                for f in range(1, f_count + 1)
                if segment.qoe[0, f - 1] >= floor
            ]

        floor = (1.0 - self.config.qoe_tolerance) * float(
            segment.qoe[vm - 1, top_f - 1]
        )
        feasible = [
            (v, f)
            for v in range(1, v_count + 1)
            for f in range(1, f_count + 1)
            if downloadable(v, f) and segment.qoe[v - 1, f - 1] >= floor
        ]
        if not feasible:  # (vm, top_f) always qualifies, but be safe
            feasible = [(vm, top_f)]
        return feasible

    def _version_energy(
        self, size_mbit: float, bandwidth_mbps: float, frame_rate: float
    ) -> float:
        """Eq. 1 energy of one version under the predicted bandwidth."""
        return (
            self.energy_model.transmission_energy_j(size_mbit, bandwidth_mbps)
            + self.energy_model.decoding_energy_j(TilingScheme.PTILE, frame_rate)
            + self.energy_model.rendering_energy_j(frame_rate)
        )
