"""Uncertainty-aware robust planning on top of the MPC controller.

:class:`RobustScheme` is :class:`~repro.core.controller.OursScheme`
with the trust in the point FoV prediction removed.  Where Ours bets
the segment on the single predicted center (deterministic Ptile match,
QoE table rows that assume the viewport is fully covered), Robust:

1. spreads the predicted center into a distribution over FoV
   hypotheses using the session's
   :class:`~repro.prediction.viewport.AngularErrorModel` at the actual
   prediction horizon (:mod:`repro.prediction.uncertainty`);
2. selects the candidate Ptile maximizing **expected viewport
   coverage** under that distribution (optionally weighted by the
   Pano-style perceptual prior), instead of the deterministic
   center-containment match — the robust tile selection of Ghosh et
   al.;
3. feeds the MPC an **expected-quality** window
   (:func:`expected_quality_window`): each lookahead segment's QoE row
   is mixed toward the lowest-quality row by its expected coverage,
   mirroring how the session scores a delivered segment as
   ``coverage * qo_high + (1 - coverage) * qo_low``.  The unchanged
   energy-minimizing DP then optimizes expected viewport quality.

Parity guarantee: when the error model is degenerate (sigma = 0 at the
query horizon) ``plan()`` delegates to the superclass — the *same
code path, tables, and floats* as Ours — so zero uncertainty is
bit-identical to the point-prediction scheme, not merely close.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..power.models import TilingScheme
from ..prediction.uncertainty import (
    HypothesisGrid,
    PanoWeight,
    deterministic_coverage,
    expected_coverage,
    hypothesis_grid,
    hypothesis_weights,
)
from ..prediction.viewport import AngularErrorModel
from ..streaming.schemes import DownloadPlan, PlanContext, split_wrapped_rect
from .controller import OursScheme
from .optimizer import MpcWindow

__all__ = ["RobustScheme", "expected_quality_window"]


def expected_quality_window(
    window: MpcWindow, coverage: np.ndarray
) -> MpcWindow:
    """The expected-viewport-quality variant of an MPC window.

    ``coverage[h]`` is the expected viewport coverage of the region
    chosen for lookahead segment ``h``.  Each QoE entry is mixed toward
    that segment's lowest-quality entry at the same frame rate —
    exactly the quality the uncovered viewport fraction plays back at —
    so the DP's QoE axis becomes the expectation of the session's
    delivered-quality accounting.  Sizes are untouched: uncertainty
    changes what a download is *worth*, not what it costs.
    """
    cov = np.clip(np.asarray(coverage, dtype=float), 0.0, 1.0)
    if cov.ndim == 0:
        cov = np.full(window.num_segments, float(cov))
    if cov.shape != (window.num_segments,):
        raise ValueError("need one expected coverage per lookahead segment")
    qoe = window.qoe
    low = qoe[:, :1, :]
    mixed = cov[:, None, None] * qoe + (1.0 - cov[:, None, None]) * low
    return MpcWindow(
        sizes_mbit=window.sizes_mbit,
        qoe=mixed,
        frame_rates=window.frame_rates,
    )


@dataclass(frozen=True)
class RobustScheme(OursScheme):
    """Ours with probabilistic viewport coverage and robust selection.

    ``error_model`` maps the prediction horizon carried by the
    :class:`PlanContext` to an angular error scale; ``perceptual``
    optionally weights FoV hypotheses by the Pano polar discount during
    tile selection; ``min_expected_coverage`` is the robust analog of
    the deterministic match threshold — when no Ptile reaches it the
    scheme falls back to conventional tiles, same as Ours does on a
    failed match.
    """

    error_model: AngularErrorModel = field(default_factory=AngularErrorModel)
    perceptual: PanoWeight | None = None
    min_expected_coverage: float = 0.5
    name: str = "robust"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 <= self.min_expected_coverage <= 1.0):
            raise ValueError("min_expected_coverage must be in [0, 1]")

    def plan(self, ctx: PlanContext) -> DownloadPlan:
        sigma = self.error_model.sigma_deg(ctx.prediction_horizon_s)
        if sigma <= 0.0:
            # Degenerate uncertainty: take the superclass path verbatim
            # so sigma -> 0 degrades bit-for-bit to the ours objective.
            return super().plan(ctx)
        if ctx.segment_ptiles is None:
            return self._fallback_plan(ctx)
        selection = self.select_robust(ctx, sigma)
        if selection is None:
            return self._fallback_plan(ctx)
        ptile, horizon_cov = selection
        window = self._plan_tables(ctx).window(ctx, ptile)
        robust_window = expected_quality_window(window, horizon_cov)
        mpc = self._mpc(ctx.segment_seconds)
        decision = mpc.choose(robust_window, ctx.bandwidth_mbps, ctx.buffer_s)
        size = float(
            robust_window.sizes_mbit[
                0, decision.quality - 1, decision.frame_rate_index - 1
            ]
        )
        return DownloadPlan(
            scheme_name=self.name,
            quality=decision.quality,
            frame_rate=decision.frame_rate,
            total_size_mbit=size,
            decode_scheme=TilingScheme.PTILE,
            hq_rects=split_wrapped_rect(ptile.rect),
            used_ptile=True,
            expected_coverage=float(horizon_cov[0]),
            sigma_deg=sigma,
        )

    # ------------------------------------------------------------------

    def select_robust(self, ctx: PlanContext, sigma: float):
        """Robust tile selection: argmax expected (perceptual) coverage.

        Returns ``(ptile, horizon_coverage)`` where ``horizon_coverage``
        holds the expected coverage of the chosen region for every
        lookahead segment, or ``None`` when the best candidate falls
        below ``min_expected_coverage`` (conventional-tile fallback).
        Ties keep the lowest-index Ptile, so selection is deterministic.
        """
        if ctx.segment_ptiles is None or not ctx.segment_ptiles.ptiles:
            return None
        viewport = ctx.predicted_viewport
        hyp = hypothesis_grid(ctx.grid, viewport.fov_h, viewport.fov_v)
        weights = hypothesis_weights(hyp, viewport.yaw, viewport.pitch, sigma)
        score_weights = weights
        if self.perceptual is not None:
            perceptual = weights * self.perceptual.weight(hyp.centers_pitch)
            total = float(perceptual.sum())
            if total > 0.0:
                score_weights = perceptual / total
        best = None
        best_score = -1.0
        for ptile in ctx.segment_ptiles.ptiles:
            score = expected_coverage(
                score_weights, hyp, split_wrapped_rect(ptile.rect)
            )
            if score > best_score:
                best, best_score = ptile, score
        if best is None or best_score < self.min_expected_coverage:
            return None
        return best, self._horizon_coverage(ctx, hyp, best, weights)

    def _horizon_coverage(
        self,
        ctx: PlanContext,
        hyp: HypothesisGrid,
        ptile,
        base_weights: np.ndarray,
    ) -> np.ndarray:
        """Expected coverage per lookahead segment of the MPC window.

        Mirrors :meth:`PlanTables.window`'s future-Ptile rematch (later
        segments may be served by a different Ptile of the same
        geometry sweep) and widens the error model with each extra
        segment of lookahead.
        """
        manifests = ctx.future_manifests or (ctx.manifest,)
        viewport = ctx.predicted_viewport
        cov = np.empty(len(manifests))
        for offset in range(len(manifests)):
            chosen = ptile
            if 0 < offset < len(ctx.future_ptiles):
                future = ctx.future_ptiles[offset]
                if future is not None:
                    matched = future.match(viewport)
                    if matched is not None:
                        chosen = matched
            rects = split_wrapped_rect(chosen.rect)
            if offset == 0:
                cov[offset] = expected_coverage(base_weights, hyp, rects)
                continue
            sigma = self.error_model.sigma_deg(
                ctx.prediction_horizon_s + offset * ctx.segment_seconds
            )
            if sigma <= 0.0:
                cov[offset] = deterministic_coverage(viewport, rects)
            else:
                weights = hypothesis_weights(
                    hyp, viewport.yaw, viewport.pitch, sigma
                )
                cov[offset] = expected_coverage(weights, hyp, rects)
        return cov
