"""Quaternion utilities for head-orientation data.

Real VR head-movement datasets (including the Wu et al. MMSys'17
dataset the paper uses) log headset orientation as unit quaternions.
This module converts between quaternions and the (yaw, pitch) viewing
directions the rest of the library works with.

Convention: quaternions are ``(w, x, y, z)`` with the scalar first,
rotating the world-frame forward vector (+x towards yaw 0 on the
equator, +z up — the same frame as :mod:`repro.geometry.sphere`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .sphere import orientation_angles

__all__ = [
    "quaternion_normalize",
    "quaternion_multiply",
    "quaternion_conjugate",
    "quaternion_rotate",
    "quaternion_to_direction",
    "quaternion_to_angles",
    "angles_to_quaternion",
    "quaternion_slerp",
]

_FORWARD = np.array([1.0, 0.0, 0.0])


def quaternion_normalize(q: Sequence[float]) -> np.ndarray:
    """Normalize to a unit quaternion; rejects the zero quaternion."""
    arr = np.asarray(q, dtype=float)
    if arr.shape != (4,):
        raise ValueError(f"quaternion must have 4 components, got {arr.shape}")
    norm = float(np.linalg.norm(arr))
    if norm == 0.0:
        raise ValueError("zero quaternion cannot be normalized")
    return arr / norm


def quaternion_multiply(a: Sequence[float], b: Sequence[float]) -> np.ndarray:
    """Hamilton product ``a * b`` (w, x, y, z convention)."""
    w1, x1, y1, z1 = np.asarray(a, dtype=float)
    w2, x2, y2, z2 = np.asarray(b, dtype=float)
    return np.array(
        [
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        ]
    )


def quaternion_conjugate(q: Sequence[float]) -> np.ndarray:
    w, x, y, z = np.asarray(q, dtype=float)
    return np.array([w, -x, -y, -z])


def quaternion_rotate(q: Sequence[float], v: Sequence[float]) -> np.ndarray:
    """Rotate a 3-vector by a unit quaternion."""
    q = quaternion_normalize(q)
    vq = np.array([0.0, *np.asarray(v, dtype=float)])
    rotated = quaternion_multiply(
        quaternion_multiply(q, vq), quaternion_conjugate(q)
    )
    return rotated[1:]


def quaternion_to_direction(q: Sequence[float]) -> np.ndarray:
    """The world-frame viewing direction of a head orientation."""
    return quaternion_rotate(q, _FORWARD)


def quaternion_to_angles(q: Sequence[float]) -> tuple[float, float]:
    """(yaw, pitch) in degrees of the quaternion's viewing direction."""
    return orientation_angles(quaternion_to_direction(q))


def angles_to_quaternion(yaw: float, pitch: float) -> np.ndarray:
    """A quaternion looking at (yaw, pitch): yaw about +z then pitch.

    Only the viewing direction is constrained (roll is zero), matching
    how viewing-center traces discard roll.
    """
    half_yaw = math.radians(yaw) / 2.0
    half_pitch = math.radians(-pitch) / 2.0  # pitch up = negative about +y
    q_yaw = np.array([math.cos(half_yaw), 0.0, 0.0, math.sin(half_yaw)])
    q_pitch = np.array([math.cos(half_pitch), 0.0, math.sin(half_pitch), 0.0])
    return quaternion_multiply(q_yaw, q_pitch)


def quaternion_slerp(
    a: Sequence[float], b: Sequence[float], t: float
) -> np.ndarray:
    """Spherical linear interpolation between two unit quaternions."""
    if not (0.0 <= t <= 1.0):
        raise ValueError("t must be in [0, 1]")
    qa = quaternion_normalize(a)
    qb = quaternion_normalize(b)
    dot = float(np.dot(qa, qb))
    if dot < 0.0:  # take the short arc
        qb = -qb
        dot = -dot
    if dot > 0.9995:  # nearly parallel: lerp and renormalize
        return quaternion_normalize(qa + t * (qb - qa))
    theta = math.acos(min(dot, 1.0))
    sin_theta = math.sin(theta)
    wa = math.sin((1.0 - t) * theta) / sin_theta
    wb = math.sin(t * theta) / sin_theta
    return quaternion_normalize(wa * qa + wb * qb)
