"""Spherical geometry for 360-degree video viewing directions.

A viewing direction is described either as a pair of angles
``(yaw, pitch)`` in degrees or as a 3D unit *orientation vector*.

* ``yaw`` (longitude) is the horizontal angle in ``[0, 360)`` degrees,
  increasing eastwards, with 0 at the center of the equirectangular frame.
* ``pitch`` (latitude) is the vertical angle in ``[-90, +90]`` degrees,
  positive above the equator.

The paper (Section III-C, Eq. 5) computes the *view switching speed* from
consecutive orientation vectors::

    S_fov = arccos(o1 . o2 / (|o1| |o2|)) / (t2 - t1)

expressed in degrees per second.  This module provides the orientation
vector conversion, great-circle (angular) distances, and vectorized
switching-speed computation used throughout the library.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "wrap_yaw",
    "clamp_pitch",
    "orientation_vector",
    "orientation_angles",
    "angular_distance",
    "equirect_distance",
    "switching_speed",
    "switching_speed_series",
]


def wrap_yaw(yaw: float | np.ndarray) -> float | np.ndarray:
    """Wrap a yaw angle (degrees) into the canonical range ``[0, 360)``.

    Works on scalars and numpy arrays alike.
    """
    return np.asarray(yaw) % 360.0 if isinstance(yaw, np.ndarray) else yaw % 360.0


def clamp_pitch(pitch: float | np.ndarray) -> float | np.ndarray:
    """Clamp a pitch angle (degrees) into ``[-90, +90]``."""
    if isinstance(pitch, np.ndarray):
        return np.clip(pitch, -90.0, 90.0)
    return max(-90.0, min(90.0, pitch))


def orientation_vector(yaw: float, pitch: float) -> np.ndarray:
    """Convert ``(yaw, pitch)`` in degrees to a 3D unit orientation vector.

    The convention is x towards ``yaw=0`` on the equator, y towards
    ``yaw=90`` on the equator, and z towards the north pole
    (``pitch=+90``).

    >>> orientation_vector(0.0, 0.0)
    array([1., 0., 0.])
    """
    yaw_rad = math.radians(yaw)
    pitch_rad = math.radians(pitch)
    cos_pitch = math.cos(pitch_rad)
    return np.array(
        [
            cos_pitch * math.cos(yaw_rad),
            cos_pitch * math.sin(yaw_rad),
            math.sin(pitch_rad),
        ]
    )


def orientation_angles(vector: Sequence[float]) -> tuple[float, float]:
    """Convert a 3D orientation vector back to ``(yaw, pitch)`` degrees.

    The vector does not need to be normalized.  Raises ``ValueError`` for
    the zero vector, which has no direction.
    """
    x, y, z = float(vector[0]), float(vector[1]), float(vector[2])
    norm = math.sqrt(x * x + y * y + z * z)
    if norm == 0.0:
        raise ValueError("zero vector has no orientation")
    pitch = math.degrees(math.asin(max(-1.0, min(1.0, z / norm))))
    yaw = math.degrees(math.atan2(y, x)) % 360.0
    return yaw, pitch


def angular_distance(
    yaw1: float, pitch1: float, yaw2: float, pitch2: float
) -> float:
    """Great-circle angle (degrees) between two viewing directions.

    This is the ``arccos`` term of Eq. 5 in the paper, evaluated for unit
    orientation vectors.
    """
    o1 = orientation_vector(yaw1, pitch1)
    o2 = orientation_vector(yaw2, pitch2)
    dot = float(np.dot(o1, o2))
    return math.degrees(math.acos(max(-1.0, min(1.0, dot))))


def equirect_distance(
    yaw1: float, pitch1: float, yaw2: float, pitch2: float
) -> float:
    """Euclidean distance (degrees) between two viewing centers.

    Distances between viewing centers in the Ptile clustering algorithm
    (Section IV-A) are planar Euclidean distances on the equirectangular
    frame; the horizontal axis wraps around at 360 degrees so that two
    users looking across the seam are still considered close.
    """
    dyaw = abs(yaw1 % 360.0 - yaw2 % 360.0)
    dyaw = min(dyaw, 360.0 - dyaw)
    dpitch = pitch1 - pitch2
    return math.hypot(dyaw, dpitch)


def switching_speed(
    yaw1: float,
    pitch1: float,
    t1: float,
    yaw2: float,
    pitch2: float,
    t2: float,
) -> float:
    """View switching speed in degrees per second (paper Eq. 5).

    ``t1`` and ``t2`` are timestamps in seconds; ``t2`` must be strictly
    after ``t1``.
    """
    if t2 <= t1:
        raise ValueError(f"timestamps must be increasing, got {t1} -> {t2}")
    return angular_distance(yaw1, pitch1, yaw2, pitch2) / (t2 - t1)


def switching_speed_series(
    timestamps: Iterable[float],
    yaws: Iterable[float],
    pitches: Iterable[float],
) -> np.ndarray:
    """Vectorized switching speed for a sampled head-orientation series.

    Returns an array of length ``n - 1`` where element ``i`` is the
    switching speed between samples ``i`` and ``i + 1`` in degrees per
    second.  Raises ``ValueError`` if the series is shorter than two
    samples or timestamps are not strictly increasing.
    """
    t = np.asarray(list(timestamps), dtype=float)
    yaw = np.radians(np.asarray(list(yaws), dtype=float))
    pitch = np.radians(np.asarray(list(pitches), dtype=float))
    if t.size < 2:
        raise ValueError("need at least two samples")
    dt = np.diff(t)
    if np.any(dt <= 0):
        raise ValueError("timestamps must be strictly increasing")

    cos_pitch = np.cos(pitch)
    vecs = np.stack(
        [cos_pitch * np.cos(yaw), cos_pitch * np.sin(yaw), np.sin(pitch)],
        axis=1,
    )
    dots = np.clip(np.sum(vecs[:-1] * vecs[1:], axis=1), -1.0, 1.0)
    angles = np.degrees(np.arccos(dots))
    return angles / dt
