"""Viewport (viewing area) geometry on the equirectangular frame.

The paper models the viewing area as the rectangle on the
equirectangular frame centered at the user's viewing center and spanning
the device Field-of-View, which is 100 degrees both horizontally and
vertically (Section II).  The horizontal axis wraps around at 360
degrees; the vertical axis is clamped to the frame.

A :class:`Viewport` therefore consists of one or two non-wrapping
rectangles (two when the viewport straddles the yaw seam).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rect", "Viewport", "DEFAULT_FOV_DEG"]

DEFAULT_FOV_DEG = 100.0
"""Device field of view used throughout the paper (100 degrees H and V)."""


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle on the equirectangular frame (degrees).

    ``x0 <= x1`` always holds; rectangles produced by
    :meth:`Viewport.rects` never wrap around the yaw seam.  ``y`` follows
    pitch: ``y0`` is the bottom edge and ``y1`` the top edge.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate rectangle {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, x: float, y: float) -> bool:
        """Whether the point lies inside the rectangle (closed)."""
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def overlaps(self, other: "Rect") -> bool:
        """Whether two rectangles share a region of positive area."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of overlap with another rectangle (0 when disjoint)."""
        dx = min(self.x1, other.x1) - max(self.x0, other.x0)
        dy = min(self.y1, other.y1) - max(self.y0, other.y0)
        if dx <= 0 or dy <= 0:
            return 0.0
        return dx * dy


@dataclass(frozen=True)
class Viewport:
    """A user viewport: viewing center plus field of view.

    ``yaw`` is normalized to ``[0, 360)`` and ``pitch`` clamped to
    ``[-90, 90]`` at construction time.
    """

    yaw: float
    pitch: float
    fov_h: float = DEFAULT_FOV_DEG
    fov_v: float = DEFAULT_FOV_DEG

    def __post_init__(self) -> None:
        if not (0.0 < self.fov_h <= 360.0) or not (0.0 < self.fov_v <= 180.0):
            raise ValueError(f"invalid FoV ({self.fov_h}, {self.fov_v})")
        object.__setattr__(self, "yaw", self.yaw % 360.0)
        object.__setattr__(self, "pitch", max(-90.0, min(90.0, self.pitch)))

    @property
    def center(self) -> tuple[float, float]:
        return (self.yaw, self.pitch)

    def rects(self) -> tuple[Rect, ...]:
        """The viewing area as one or two non-wrapping rectangles.

        The vertical span is clamped to the frame; the horizontal span is
        split in two when the viewport crosses the yaw seam at 0/360.
        """
        y0 = max(-90.0, self.pitch - self.fov_v / 2.0)
        y1 = min(90.0, self.pitch + self.fov_v / 2.0)
        x0 = self.yaw - self.fov_h / 2.0
        x1 = self.yaw + self.fov_h / 2.0
        if self.fov_h >= 360.0:
            return (Rect(0.0, y0, 360.0, y1),)
        if x0 < 0.0:
            return (Rect(0.0, y0, x1, y1), Rect(x0 + 360.0, y0, 360.0, y1))
        if x1 > 360.0:
            return (Rect(x0, y0, 360.0, y1), Rect(0.0, y0, x1 - 360.0, y1))
        return (Rect(x0, y0, x1, y1),)

    def contains(self, yaw: float, pitch: float) -> bool:
        """Whether a direction falls inside the viewing area."""
        yaw = yaw % 360.0
        return any(r.contains(yaw, pitch) for r in self.rects())

    @property
    def area(self) -> float:
        """Viewing-area size in square degrees (after vertical clamping)."""
        return sum(r.area for r in self.rects())

    def area_fraction(self) -> float:
        """Fraction of the full equirectangular frame the viewport covers."""
        return self.area / (360.0 * 180.0)
