"""Geometry substrate: spherical math, viewports, tile grids, projection."""

from .projection import EquirectFrame, ViewRenderer
from .quaternion import (
    angles_to_quaternion,
    quaternion_conjugate,
    quaternion_multiply,
    quaternion_normalize,
    quaternion_rotate,
    quaternion_slerp,
    quaternion_to_angles,
    quaternion_to_direction,
)
from .sphere import (
    angular_distance,
    clamp_pitch,
    equirect_distance,
    orientation_angles,
    orientation_vector,
    switching_speed,
    switching_speed_series,
    wrap_yaw,
)
from .tiling import DEFAULT_GRID, FTILE_BLOCK_GRID, Tile, TileGrid
from .viewport import DEFAULT_FOV_DEG, Rect, Viewport

__all__ = [
    "EquirectFrame",
    "ViewRenderer",
    "angles_to_quaternion",
    "quaternion_conjugate",
    "quaternion_multiply",
    "quaternion_normalize",
    "quaternion_rotate",
    "quaternion_slerp",
    "quaternion_to_angles",
    "quaternion_to_direction",
    "angular_distance",
    "clamp_pitch",
    "equirect_distance",
    "orientation_angles",
    "orientation_vector",
    "switching_speed",
    "switching_speed_series",
    "wrap_yaw",
    "DEFAULT_GRID",
    "FTILE_BLOCK_GRID",
    "Tile",
    "TileGrid",
    "DEFAULT_FOV_DEG",
    "Rect",
    "Viewport",
]
