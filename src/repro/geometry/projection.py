"""Equirectangular projection and view generation.

After decoding, the client generates the displayed view by mapping
display pixels back onto the equirectangular frame based on the head
orientation ("drawing the pixel values onto the display", paper
Section II).  This module implements that coordinate mapping: the
gnomonic (perspective) projection used by real 360-degree players, plus
pixel/angle conversions for the equirectangular frame.

These routines let examples and tests verify which parts of the frame a
rendered view actually samples — e.g. that a Ptile covering the
predicted viewport contains every pixel the renderer needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .viewport import Viewport

__all__ = ["EquirectFrame", "ViewRenderer"]


@dataclass(frozen=True)
class EquirectFrame:
    """Pixel-space description of an equirectangular video frame.

    The paper's test videos are 4K (3840x2160), i.e. 10.67 pixels per
    degree horizontally and 12 vertically.
    """

    width_px: int = 3840
    height_px: int = 2160

    def __post_init__(self) -> None:
        if self.width_px < 2 or self.height_px < 2:
            raise ValueError("frame must be at least 2x2 pixels")

    def pixel_to_angles(self, px: float, py: float) -> tuple[float, float]:
        """Map a pixel (origin top-left) to ``(yaw, pitch)`` degrees."""
        yaw = (px / self.width_px) * 360.0 % 360.0
        pitch = 90.0 - (py / self.height_px) * 180.0
        return yaw, max(-90.0, min(90.0, pitch))

    def angles_to_pixel(self, yaw: float, pitch: float) -> tuple[float, float]:
        """Map ``(yaw, pitch)`` degrees to a pixel position."""
        px = (yaw % 360.0) / 360.0 * self.width_px
        py = (90.0 - max(-90.0, min(90.0, pitch))) / 180.0 * self.height_px
        return px, py

    @property
    def pixels_per_sq_degree(self) -> float:
        return (self.width_px * self.height_px) / (360.0 * 180.0)


class ViewRenderer:
    """Gnomonic view generation from an equirectangular frame.

    Produces, for each display pixel, the ``(yaw, pitch)`` direction it
    samples.  This is the coordinate-mapping half of view generation; the
    energy cost of executing it on a phone GPU is captured separately by
    the power model (``repro.power``).
    """

    def __init__(self, display_width: int = 256, display_height: int = 256):
        if display_width < 2 or display_height < 2:
            raise ValueError("display must be at least 2x2 pixels")
        self.display_width = display_width
        self.display_height = display_height

    def sample_directions(self, viewport: Viewport) -> np.ndarray:
        """Directions sampled by each display pixel.

        Returns an array of shape ``(display_height, display_width, 2)``
        holding ``(yaw, pitch)`` in degrees for every display pixel under
        a gnomonic projection centered on the viewport.
        """
        half_h = math.tan(math.radians(viewport.fov_h / 2.0))
        half_v = math.tan(math.radians(viewport.fov_v / 2.0))
        xs = np.linspace(-half_h, half_h, self.display_width)
        ys = np.linspace(half_v, -half_v, self.display_height)
        grid_x, grid_y = np.meshgrid(xs, ys)

        # Camera-space rays: +x forward, +y left, +z up.
        rays = np.stack([np.ones_like(grid_x), -grid_x, grid_y], axis=-1)
        rays /= np.linalg.norm(rays, axis=-1, keepdims=True)

        yaw0 = math.radians(viewport.yaw)
        pitch0 = math.radians(viewport.pitch)
        # Rotate by pitch about the y axis, then by yaw about z.
        rot_pitch = np.array(
            [
                [math.cos(pitch0), 0.0, -math.sin(pitch0)],
                [0.0, 1.0, 0.0],
                [math.sin(pitch0), 0.0, math.cos(pitch0)],
            ]
        )
        rot_yaw = np.array(
            [
                [math.cos(yaw0), -math.sin(yaw0), 0.0],
                [math.sin(yaw0), math.cos(yaw0), 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        world = rays @ rot_pitch.T @ rot_yaw.T

        yaw = np.degrees(np.arctan2(world[..., 1], world[..., 0])) % 360.0
        pitch = np.degrees(np.arcsin(np.clip(world[..., 2], -1.0, 1.0)))
        return np.stack([yaw, pitch], axis=-1)

    def coverage_fraction(self, viewport: Viewport, region_contains) -> float:
        """Fraction of display pixels whose source direction satisfies
        ``region_contains(yaw, pitch)``.

        Used to check how much of a rendered view a downloaded region
        (e.g. a Ptile) can actually supply.
        """
        directions = self.sample_directions(viewport)
        flat = directions.reshape(-1, 2)
        hits = sum(1 for yaw, pitch in flat if region_contains(yaw, pitch))
        return hits / len(flat)
