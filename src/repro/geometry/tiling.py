"""Tile grids over the equirectangular frame.

The conventional tiling scheme (*Ctile*) divides each one-second video
segment into a fixed grid of 4 rows x 8 columns (paper Section II,
Fig. 1).  The *Ftile* baseline starts from a much finer 15 x 30 grid of
blocks.  Both are instances of :class:`TileGrid`.

Tiles are addressed by ``(row, col)`` with row 0 at the *top* of the
frame (pitch +90) and column 0 at yaw 0, matching the visual layout of
Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .viewport import Rect, Viewport

__all__ = ["Tile", "TileGrid", "DEFAULT_GRID", "FTILE_BLOCK_GRID"]


@dataclass(frozen=True, order=True)
class Tile:
    """A single tile in a :class:`TileGrid`, addressed by row and column."""

    row: int
    col: int


class TileGrid:
    """A fixed rows x cols tiling of the 360x180 equirectangular frame.

    Provides tile geometry lookups and viewport -> tile coverage queries,
    which are the building blocks for segment encoding, Ptile
    construction, and all streaming schemes.
    """

    FRAME_WIDTH_DEG = 360.0
    FRAME_HEIGHT_DEG = 180.0

    def __init__(self, rows: int = 4, cols: int = 8):
        if rows < 1 or cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.tile_width = self.FRAME_WIDTH_DEG / cols
        self.tile_height = self.FRAME_HEIGHT_DEG / rows
        self._viewport_cache: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TileGrid(rows={self.rows}, cols={self.cols})"

    def __getstate__(self) -> dict:
        # The viewport-coverage memo is pure derived state and can grow
        # to thousands of entries on a shared grid (DEFAULT_GRID is a
        # process-wide singleton); serializing it would bloat worker
        # payloads and disk artifacts for no benefit.
        state = self.__dict__.copy()
        state["_viewport_cache"] = {}
        return state

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TileGrid)
            and self.rows == other.rows
            and self.cols == other.cols
        )

    def __hash__(self) -> int:
        return hash((self.rows, self.cols))

    @property
    def num_tiles(self) -> int:
        return self.rows * self.cols

    def tiles(self) -> Iterator[Tile]:
        """Iterate over all tiles in row-major order."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield Tile(row, col)

    def tile_rect(self, tile: Tile) -> Rect:
        """The rectangle (degrees) a tile covers on the frame."""
        self._check(tile)
        x0 = tile.col * self.tile_width
        y1 = 90.0 - tile.row * self.tile_height
        return Rect(x0, y1 - self.tile_height, x0 + self.tile_width, y1)

    def tile_area_fraction(self, tile: Tile) -> float:
        """Fraction of the full frame covered by one tile."""
        self._check(tile)
        return 1.0 / self.num_tiles

    def tile_at(self, yaw: float, pitch: float) -> Tile:
        """The tile containing a direction (edges belong to the
        lower-index tile on ties, except the frame boundary)."""
        yaw = yaw % 360.0
        pitch = max(-90.0, min(90.0, pitch))
        col = min(int(yaw / self.tile_width), self.cols - 1)
        row = min(int((90.0 - pitch) / self.tile_height), self.rows - 1)
        return Tile(row, col)

    def tiles_overlapping(self, rect: Rect, min_overlap: float = 0.0) -> set[Tile]:
        """Tiles overlapping a non-wrapping rectangle.

        ``min_overlap`` is the minimum share of the *tile's* area that
        must be covered; 0 keeps any positive overlap.
        """
        if not (0.0 <= min_overlap < 1.0):
            raise ValueError("min_overlap must be in [0, 1)")
        tile_area = self.tile_width * self.tile_height
        result: set[Tile] = set()
        for tile in self.tiles():
            overlap = self.tile_rect(tile).intersection_area(rect)
            if overlap > min_overlap * tile_area:
                result.add(tile)
        return result

    def viewport_tiles(
        self, viewport: Viewport, min_overlap: float = 0.1
    ) -> frozenset[Tile]:
        """The set of tiles covering a user viewport (the *FoV tiles*).

        Tiles with only a sliver of overlap (below ``min_overlap`` of
        the tile area) are excluded, matching practical tile selection.
        With the paper defaults (4x8 grid, 100 degree FoV) a viewport
        then typically covers 9 tiles (3 rows x 3 columns) — the "nine
        tiles" of the paper's Fig. 2(b) experiment.

        Results are memoized per (viewport, min_overlap): the same
        predicted viewport is looked up by every scheme and by every
        Ptile's overlap test, so the geometry sweep repeats many times
        per segment.  The returned frozenset must not be mutated.
        """
        cache_key = (viewport, min_overlap)
        cached = self._viewport_cache.get(cache_key)
        if cached is not None:
            return cached
        overlap_by_tile: dict[Tile, float] = {}
        tile_area = self.tile_width * self.tile_height
        for rect in viewport.rects():
            for tile in self.tiles():
                area = self.tile_rect(tile).intersection_area(rect)
                if area > 0:
                    overlap_by_tile[tile] = overlap_by_tile.get(tile, 0.0) + area
        result = frozenset(
            tile
            for tile, area in overlap_by_tile.items()
            if area > min_overlap * tile_area
        )
        self._viewport_cache[cache_key] = result
        return result

    def bounding_rect(self, tiles: Iterable[Tile]) -> Rect:
        """Smallest tile-aligned rectangle containing the given tiles.

        Column wraparound is handled by choosing the contiguous arc of
        columns with the smallest width that contains every tile column.
        Raises ``ValueError`` on an empty tile set.
        """
        tile_list = list(tiles)
        if not tile_list:
            raise ValueError("cannot bound an empty tile set")
        for tile in tile_list:
            self._check(tile)
        rows = [t.row for t in tile_list]
        row0, row1 = min(rows), max(rows)
        y1 = 90.0 - row0 * self.tile_height
        y0 = 90.0 - (row1 + 1) * self.tile_height

        cols = sorted({t.col for t in tile_list})
        if len(cols) == self.cols:
            return Rect(0.0, y0, 360.0, y1)
        # Find the largest gap in the circular column sequence; the
        # bounding arc is everything outside that gap.
        gaps = []
        for i, col in enumerate(cols):
            nxt = cols[(i + 1) % len(cols)]
            gap = (nxt - col - 1) % self.cols
            gaps.append((gap, i))
        __, gap_index = max(gaps)
        start_col = cols[(gap_index + 1) % len(cols)]
        end_col = cols[gap_index]
        x0 = start_col * self.tile_width
        x1 = (end_col + 1) * self.tile_width
        if x1 <= x0:
            x1 += 360.0  # wrapping arc, expressed as x1 > 360
        return Rect(x0, y0, x1, y1)

    def rect_tiles(self, rect: Rect) -> set[Tile]:
        """Tiles overlapping a rectangle that may extend past yaw 360.

        Accepts the (possibly wrapping) rectangles produced by
        :meth:`bounding_rect`.
        """
        if rect.x1 <= 360.0:
            return self.tiles_overlapping(rect)
        left = Rect(rect.x0, rect.y0, 360.0, rect.y1)
        right = Rect(0.0, rect.y0, rect.x1 - 360.0, rect.y1)
        return self.tiles_overlapping(left) | self.tiles_overlapping(right)

    def _check(self, tile: Tile) -> None:
        if not (0 <= tile.row < self.rows and 0 <= tile.col < self.cols):
            raise ValueError(f"{tile} outside {self!r}")


DEFAULT_GRID = TileGrid(rows=4, cols=8)
"""The conventional 4x8 tiling used throughout the paper."""

FTILE_BLOCK_GRID = TileGrid(rows=15, cols=30)
"""The fine 450-block grid from which Ftile builds its ten tiles."""
