"""Session timelines: per-segment event logs for debugging and analysis.

Reconstructs a wall-clock timeline (request, wait, stall, playback
deadline) from a finished :class:`SessionResult`, and exports it as CSV
so sessions can be inspected outside Python.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

from .metrics import SessionResult

__all__ = ["TimelineEntry", "session_timeline", "timeline_csv"]


@dataclass(frozen=True)
class TimelineEntry:
    """One segment's life on the wall clock."""

    segment: int
    request_t: float  # when the request was issued
    download_end_t: float
    wait_s: float
    stall_s: float
    buffer_before_s: float
    quality: float
    frame_rate: float
    size_mbit: float
    coverage: float
    qoe: float


def session_timeline(result: SessionResult) -> list[TimelineEntry]:
    """Reconstruct the wall-clock timeline of a session.

    The simulator's clock advances by waits and download times only (the
    same accounting as :func:`repro.streaming.session.run_session`), so
    the timeline is exact.
    """
    entries: list[TimelineEntry] = []
    clock = 0.0
    for record in result.records:
        clock += record.wait_s
        request_t = clock
        clock += record.download_time_s
        entries.append(
            TimelineEntry(
                segment=record.index,
                request_t=request_t,
                download_end_t=clock,
                wait_s=record.wait_s,
                stall_s=record.stall_s,
                buffer_before_s=record.buffer_before_s,
                quality=record.quality,
                frame_rate=record.frame_rate,
                size_mbit=record.size_mbit,
                coverage=record.coverage,
                qoe=record.qoe.q,
            )
        )
    return entries


def timeline_csv(result: SessionResult, path: str | Path | None = None) -> str:
    """Export a session timeline as CSV (returned; optionally written)."""
    entries = session_timeline(result)
    buf = io.StringIO()
    buf.write(
        "segment,request_t,download_end_t,wait_s,stall_s,buffer_before_s,"
        "quality,frame_rate,size_mbit,coverage,qoe\n"
    )
    for e in entries:
        buf.write(
            f"{e.segment},{e.request_t:.4f},{e.download_end_t:.4f},"
            f"{e.wait_s:.4f},{e.stall_s:.4f},{e.buffer_before_s:.4f},"
            f"{e.quality:.3f},{e.frame_rate:.1f},{e.size_mbit:.4f},"
            f"{e.coverage:.4f},{e.qoe:.4f}\n"
        )
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
