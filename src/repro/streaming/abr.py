"""Quality selection for the baseline schemes.

Ctile, Ftile, Nontile and the Ptile variant pick the *highest quality
the predicted bandwidth can sustain* (the paper's baselines maximize
quality under the network constraint; energy is not part of their
objective).  The rule is a standard throughput-based DASH heuristic:
the download budget is one segment duration of predicted throughput
(with a safety factor), tightened when the buffer is nearly empty.
Surplus buffer does not raise the budget by default — spending beyond
the sustainable rate just oscillates the quality and keeps the radio
busy; set ``surplus_scale > 0`` to study that behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["ThroughputBufferABR"]


@dataclass(frozen=True)
class ThroughputBufferABR:
    """Pick the largest quality whose size fits the download budget."""

    safety: float = 0.95
    low_buffer_s: float = 1.0
    low_buffer_scale: float = 0.6
    surplus_start_s: float = 2.0
    surplus_scale: float = 0.0

    def __post_init__(self) -> None:
        if not (0 < self.safety <= 1):
            raise ValueError("safety must be in (0, 1]")

    def budget_mbit(
        self, bandwidth_mbps: float, buffer_s: float, segment_s: float = 1.0
    ) -> float:
        """Megabits the client is willing to spend on this segment."""
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if buffer_s < 0:
            raise ValueError("buffer must be non-negative")
        budget_time = segment_s
        if buffer_s < self.low_buffer_s:
            budget_time = segment_s * self.low_buffer_scale
        elif buffer_s > self.surplus_start_s:
            budget_time = segment_s + self.surplus_scale * (
                buffer_s - self.surplus_start_s
            )
        return bandwidth_mbps * self.safety * budget_time

    def choose_quality(
        self,
        size_for_quality: Callable[[float], float],
        bandwidth_mbps: float,
        buffer_s: float,
        segment_s: float = 1.0,
        qualities: Sequence[float] = (1, 2, 3, 4, 5),
    ) -> float:
        """Highest quality whose total segment size fits the budget.

        Falls back to the lowest quality when nothing fits.
        """
        if not qualities:
            raise ValueError("need at least one quality level")
        budget = self.budget_mbit(bandwidth_mbps, buffer_s, segment_s)
        for quality in sorted(qualities, reverse=True):
            if size_for_quality(quality) <= budget:
                return quality
        return min(qualities)
