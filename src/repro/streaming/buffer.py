"""Playback-buffer dynamics (paper Eq. 6 and 7).

The buffer holds downloaded-but-not-yet-viewed video (seconds).  When
the buffered video after a download reaches the threshold beta, the
player waits ``dt = max(B - beta, 0)`` before requesting the next
segment; while downloading, the buffer drains in real time; a segment
adds L seconds when it arrives.  A download outlasting the buffer causes
a stall (rebuffering).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BufferEvent", "PlaybackBuffer"]


@dataclass(frozen=True)
class BufferEvent:
    """Outcome of downloading one segment against the buffer."""

    wait_s: float  # time waited before issuing the request
    stall_s: float  # rebuffering time caused by this download
    level_before_s: float  # buffer level when the request was issued
    level_after_s: float  # buffer level after the segment arrived


class PlaybackBuffer:
    """Client playback buffer with threshold-gated requests.

    ``threshold_s`` is beta; ``segment_s`` is L.  The level starts empty
    (cold start: the first download always stalls for its own duration,
    i.e. startup delay).
    """

    def __init__(self, threshold_s: float = 3.0, segment_s: float = 1.0):
        if threshold_s <= 0 or segment_s <= 0:
            raise ValueError("threshold and segment duration must be positive")
        self.threshold_s = threshold_s
        self.segment_s = segment_s
        self._level = 0.0

    @property
    def level_s(self) -> float:
        return self._level

    def wait_time(self) -> float:
        """dt_k = max(B_k - beta, 0): idle time before the next request."""
        return max(self._level - self.threshold_s, 0.0)

    def advance(self, download_time_s: float) -> BufferEvent:
        """Simulate waiting for the gate, downloading, and enqueueing.

        Implements Eq. 6: ``B_{k+1} = max(B_k - S/R, 0) + L - dt_k``
        (the wait happens first, draining the buffer to the threshold,
        which is equivalent to subtracting dt at the end).
        """
        if download_time_s < 0:
            raise ValueError("download time must be non-negative")
        wait = self.wait_time()
        level_at_request = self._level - wait  # drains while waiting
        stall = max(download_time_s - level_at_request, 0.0)
        self._level = max(level_at_request - download_time_s, 0.0) + self.segment_s
        return BufferEvent(
            wait_s=wait,
            stall_s=stall,
            level_before_s=level_at_request,
            level_after_s=self._level,
        )

    def reset(self) -> None:
        self._level = 0.0
