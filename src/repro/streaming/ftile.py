"""Ftile: variable-size tiling (paper Section V-A, baseline from [12]).

The Ftile baseline divides each segment into a *fixed number* of
variable-size tiles: the frame is first cut into 450 small blocks
(15 rows x 30 columns) whose viewing popularity is accumulated from the
training users, and the blocks are then clustered into ten rectangular
tiles.  Popular regions end up covered by small focused tiles and the
rest by large ones.

We build the partition with a deterministic popularity-weighted KD
split: starting from the whole frame, repeatedly split the leaf with the
highest popularity variance at the popularity-weighted median of its
longer axis, until ten leaves remain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.tiling import FTILE_BLOCK_GRID, TileGrid
from ..geometry.viewport import Rect, Viewport
from ..traces.head_movement import HeadTrace
from ..video.content import Video

__all__ = ["FtileCell", "FtilePartition", "build_ftile_partition",
           "build_video_ftiles"]

_N_FTILES = 10


@dataclass(frozen=True)
class FtileCell:
    """One variable-size tile: a block-aligned rectangle."""

    key: str
    rect: Rect  # degrees, never wrapping (block-aligned)
    n_blocks: int
    area_fraction: float

    def overlaps_viewport(self, viewport: Viewport) -> bool:
        return any(self.rect.overlaps(r) for r in viewport.rects())


@dataclass(frozen=True)
class FtilePartition:
    """The ten-cell partition of one segment."""

    segment_index: int
    cells: tuple[FtileCell, ...]

    def viewport_cells(self, viewport: Viewport) -> tuple[FtileCell, ...]:
        """Cells overlapping the viewport (downloaded at high quality)."""
        return tuple(c for c in self.cells if c.overlaps_viewport(viewport))


def _popularity_map(
    viewports: list[Viewport], grid: TileGrid = FTILE_BLOCK_GRID
) -> np.ndarray:
    """How many users' viewports cover each block (rows x cols array)."""
    pop = np.zeros((grid.rows, grid.cols))
    for viewport in viewports:
        for rect in viewport.rects():
            c0 = int(np.floor(rect.x0 / grid.tile_width))
            c1 = int(np.ceil(rect.x1 / grid.tile_width))
            r0 = int(np.floor((90.0 - rect.y1) / grid.tile_height))
            r1 = int(np.ceil((90.0 - rect.y0) / grid.tile_height))
            pop[max(r0, 0) : min(r1, grid.rows), max(c0, 0) : min(c1, grid.cols)] += 1
    return pop


def build_ftile_partition(
    viewports: list[Viewport],
    segment_index: int = 0,
    n_tiles: int = _N_FTILES,
    grid: TileGrid = FTILE_BLOCK_GRID,
) -> FtilePartition:
    """Cluster the 450 blocks into ``n_tiles`` rectangular tiles."""
    if n_tiles < 1:
        raise ValueError("need at least one tile")
    pop = _popularity_map(viewports, grid)
    leaves: list[tuple[int, int, int, int]] = [(0, grid.rows, 0, grid.cols)]

    def score(leaf: tuple[int, int, int, int]) -> float:
        r0, r1, c0, c1 = leaf
        region = pop[r0:r1, c0:c1]
        if region.size <= 1:
            return -1.0
        return float(np.var(region) * region.size)

    while len(leaves) < n_tiles:
        leaves.sort(key=score, reverse=True)
        target = leaves[0]
        split = _split_leaf(target, pop)
        if split is None:
            # Nothing splittable by popularity: split the largest leaf in
            # half to keep the tile count fixed.
            leaves.sort(key=lambda lf: (lf[1] - lf[0]) * (lf[3] - lf[2]), reverse=True)
            split = _split_half(leaves[0])
            if split is None:
                break
            target = leaves[0]
        leaves.remove(target)
        leaves.extend(split)

    cells = []
    for i, (r0, r1, c0, c1) in enumerate(sorted(leaves)):
        rect = Rect(
            c0 * grid.tile_width,
            90.0 - r1 * grid.tile_height,
            c1 * grid.tile_width,
            90.0 - r0 * grid.tile_height,
        )
        n_blocks = (r1 - r0) * (c1 - c0)
        cells.append(
            FtileCell(
                key=f"ftile-{i}",
                rect=rect,
                n_blocks=n_blocks,
                area_fraction=n_blocks / grid.num_tiles,
            )
        )
    return FtilePartition(segment_index=segment_index, cells=tuple(cells))


def _split_leaf(
    leaf: tuple[int, int, int, int], pop: np.ndarray
) -> list[tuple[int, int, int, int]] | None:
    """Split at the popularity-weighted median of the longer axis."""
    r0, r1, c0, c1 = leaf
    height, width = r1 - r0, c1 - c0
    if height * width <= 1:
        return None
    region = pop[r0:r1, c0:c1]
    if float(np.var(region)) == 0.0:
        return None
    if width >= height and width > 1:
        col_mass = region.sum(axis=0)
        cut = _weighted_median_cut(col_mass)
        return [(r0, r1, c0, c0 + cut), (r0, r1, c0 + cut, c1)]
    if height > 1:
        row_mass = region.sum(axis=1)
        cut = _weighted_median_cut(row_mass)
        return [(r0, r0 + cut, c0, c1), (r0 + cut, r1, c0, c1)]
    col_mass = region.sum(axis=0)
    cut = _weighted_median_cut(col_mass)
    return [(r0, r1, c0, c0 + cut), (r0, r1, c0 + cut, c1)]


def _split_half(leaf: tuple[int, int, int, int]) -> list[tuple[int, int, int, int]] | None:
    r0, r1, c0, c1 = leaf
    if (r1 - r0) * (c1 - c0) <= 1:
        return None
    if c1 - c0 >= r1 - r0:
        mid = c0 + (c1 - c0) // 2
        return [(r0, r1, c0, mid), (r0, r1, mid, c1)]
    mid = r0 + (r1 - r0) // 2
    return [(r0, mid, c0, c1), (mid, r1, c0, c1)]


def _weighted_median_cut(mass: np.ndarray) -> int:
    """Index (1..len-1) splitting the mass roughly in half."""
    total = float(mass.sum())
    if total <= 0:
        return max(len(mass) // 2, 1)
    cumulative = np.cumsum(mass)
    cut = int(np.searchsorted(cumulative, total / 2.0)) + 1
    return min(max(cut, 1), len(mass) - 1)


def build_video_ftiles(
    video: Video,
    train_traces: list[HeadTrace],
    segment_seconds: float = 1.0,
    n_tiles: int = _N_FTILES,
) -> list[FtilePartition]:
    """Build the Ftile partition of every segment of a video."""
    if not train_traces:
        raise ValueError("need at least one training trace")
    partitions = []
    for segment in video.segments:
        viewports = [
            trace.viewport_at((segment.index + 0.5) * segment_seconds)
            for trace in train_traces
        ]
        partitions.append(
            build_ftile_partition(viewports, segment.index, n_tiles)
        )
    return partitions
