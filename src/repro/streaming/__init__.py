"""Streaming layer: buffer, ABR, schemes, Ftile partition, simulator."""

from .abr import ThroughputBufferABR
from .buffer import BufferEvent, PlaybackBuffer
from .cache import (
    CacheStats,
    CacheTenant,
    EdgeCache,
    EdgeHitModel,
    SharedCacheResult,
    build_edge_hit_model,
    build_shared_edge_hit_models,
    interleave_tenant_requests,
    ptile_vs_ctile_caching,
    simulate_cache,
)
from .events import TimelineEntry, session_timeline, timeline_csv
from .ftile import (
    FtileCell,
    FtilePartition,
    build_ftile_partition,
    build_video_ftiles,
)
from .metrics import (
    SegmentRecord,
    SessionResult,
    mean_sessions,
    normalize_by,
)
from .multiclient import SharedLinkResult, capacity_sweep, run_shared_link
from .population import PopulationEngine, PopulationResult
from .schemes import (
    CtileScheme,
    DownloadPlan,
    FtileScheme,
    LOWEST_QUALITY,
    NontileScheme,
    PlanContext,
    PtileScheme,
    StreamingScheme,
    split_wrapped_rect,
)
from .session import SessionConfig, run_session

__all__ = [
    "ThroughputBufferABR",
    "BufferEvent",
    "PlaybackBuffer",
    "CacheStats",
    "CacheTenant",
    "EdgeCache",
    "EdgeHitModel",
    "SharedCacheResult",
    "build_edge_hit_model",
    "build_shared_edge_hit_models",
    "interleave_tenant_requests",
    "ptile_vs_ctile_caching",
    "simulate_cache",
    "TimelineEntry",
    "session_timeline",
    "timeline_csv",
    "SharedLinkResult",
    "capacity_sweep",
    "run_shared_link",
    "PopulationEngine",
    "PopulationResult",
    "FtileCell",
    "FtilePartition",
    "build_ftile_partition",
    "build_video_ftiles",
    "SegmentRecord",
    "SessionResult",
    "mean_sessions",
    "normalize_by",
    "CtileScheme",
    "DownloadPlan",
    "FtileScheme",
    "LOWEST_QUALITY",
    "NontileScheme",
    "PlanContext",
    "PtileScheme",
    "StreamingScheme",
    "split_wrapped_rect",
    "SessionConfig",
    "run_session",
]
