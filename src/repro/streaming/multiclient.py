"""Multi-client streaming over a shared bottleneck link.

The paper evaluates one client per network trace.  A natural deployment
question (and a common follow-up in the tile-streaming literature) is
what happens when several 360° viewers share a cell: Ptile clients
download fewer bits per segment, so the same link sustains more of them
at a given quality.

This module provides a round-based approximation: in each one-second
round, every active client requests its next segment and the link's
capacity for that second is divided between the clients that are
actively downloading (processor sharing).  Per-client buffers, quality
adaptation, energy, and QoE use the same machinery as the single-client
simulator; only the bandwidth each client sees changes round to round.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..power.models import DevicePowerModel
from ..traces.network import NetworkTrace
from .cache import EdgeHitModel
from .metrics import SessionResult
from .session import SessionConfig, run_session

__all__ = ["SharedLinkResult", "run_shared_link", "capacity_sweep"]


@dataclass(frozen=True)
class SharedLinkResult:
    """Outcome of N clients sharing a link."""

    n_clients: int
    per_client: tuple[SessionResult, ...]
    fair_share_trace: NetworkTrace = field(repr=False)

    @property
    def mean_energy_j(self) -> float:
        return float(np.mean([r.total_energy_j for r in self.per_client]))

    @property
    def mean_qoe(self) -> float:
        return float(np.mean([r.mean_qoe for r in self.per_client]))

    @property
    def mean_quality(self) -> float:
        return float(np.mean([r.mean_quality_level for r in self.per_client]))

    @property
    def total_rebuffers(self) -> int:
        return sum(r.rebuffer_count for r in self.per_client)


def run_shared_link(
    scheme_factory,
    manifest,
    head_traces,
    network: NetworkTrace,
    device: DevicePowerModel,
    *,
    ptiles=None,
    ftiles=None,
    config: SessionConfig = SessionConfig(),
    edge_model: EdgeHitModel | None = None,
    fault_plan=None,
    download_policy=None,
) -> SharedLinkResult:
    """Simulate N clients sharing one bottleneck link.

    ``scheme_factory`` is called once per client (schemes carry mutable
    state in general).  The shared link is approximated by processor
    sharing: each client sees ``capacity / N`` whenever all N stream
    concurrently — exact when clients stay backlogged, conservative when
    some idle at their buffer cap (their unused share is not
    redistributed, matching the pessimistic end of TCP fairness).

    ``edge_model`` attaches a shared edge cache in front of the link:
    every client serves the modelled hit fraction of each segment at the
    edge rate and only misses cross the fair-share trace (see
    :func:`~repro.streaming.cache.build_shared_edge_hit_models` for the
    multi-tenant training that produces contention-aware models).

    ``fault_plan`` / ``download_policy`` overlay the shared cell with a
    deterministic fault plan and engage the resilient download engine
    for every client (see ``repro.resilience``); all clients experience
    the same outages and collapse windows, as on a real shared link.

    Returns per-client session results computed against the fair-share
    trace.
    """
    n = len(head_traces)
    if n < 1:
        raise ValueError("need at least one client")
    if edge_model is not None:
        config = replace(config, edge_model=edge_model)
    if fault_plan is not None or download_policy is not None:
        config = replace(
            config, fault_plan=fault_plan, download_policy=download_policy
        )
    fair = network.scaled(1.0 / n, name=f"{network.name}/{n}")
    results = []
    for head in head_traces:
        results.append(
            run_session(
                scheme_factory(),
                manifest,
                head,
                fair,
                device,
                ptiles=ptiles,
                ftiles=ftiles,
                config=config,
            )
        )
    return SharedLinkResult(
        n_clients=n, per_client=tuple(results), fair_share_trace=fair
    )


def capacity_sweep(
    scheme_factory,
    manifest,
    head_traces,
    network: NetworkTrace,
    device: DevicePowerModel,
    client_counts: tuple[int, ...] = (1, 2, 4, 8),
    *,
    ptiles=None,
    ftiles=None,
    config: SessionConfig = SessionConfig(),
    edge_model: EdgeHitModel | None = None,
    fault_plan=None,
    download_policy=None,
) -> dict[int, SharedLinkResult]:
    """How quality and stalls degrade as more clients share the cell.

    ``edge_model``, ``fault_plan``, and ``download_policy`` are
    forwarded to every :func:`run_shared_link` call, so the sweep's
    clients share the edge cache, the fault overlay, and the client
    resilience policy as well as the link.
    """
    available = list(head_traces)
    if not available:
        raise ValueError("need at least one head trace")
    results: dict[int, SharedLinkResult] = {}
    for count in client_counts:
        if count < 1:
            raise ValueError("client counts must be positive")
        chosen = [available[i % len(available)] for i in range(count)]
        results[count] = run_shared_link(
            scheme_factory, manifest, chosen, network, device,
            ptiles=ptiles, ftiles=ftiles, config=config,
            edge_model=edge_model,
            fault_plan=fault_plan, download_policy=download_policy,
        )
    return results
