"""The streaming schemes compared in the paper (Section V-A).

* **Ctile** — conventional fixed 4x8 tiling; FoV tiles at the ABR
  quality, everything else at the lowest quality; four parallel
  decoders.
* **Ftile** — ten variable-size tiles clustered from 450 blocks; tiles
  overlapping the predicted FoV at the ABR quality, the rest lowest.
* **Nontile** — the whole frame as one stream at the ABR quality
  (YouTube style).
* **Ptile** — the popularity tile covering the predicted viewport at the
  ABR quality plus low-quality remainder blocks; one decoder; original
  frame rate.
* **Ours** — Ptile plus MPC-chosen (quality, frame rate); lives in
  :mod:`repro.core.controller` since it builds on the optimizer.
* **Robust** — Ours with probabilistic viewport coverage: tile
  selection and the MPC objective maximize *expected* viewport quality
  under the FoV-prediction error model; lives in
  :mod:`repro.core.robust` since it subclasses the MPC controller.

Every scheme turns a :class:`PlanContext` (what the client knows when it
requests segment k) into a :class:`DownloadPlan` (what is downloaded and
how it will be decoded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..geometry.tiling import Tile, TileGrid
from ..geometry.viewport import Rect, Viewport
from ..power.models import TilingScheme
from ..ptile.construction import SegmentPtiles
from ..video.segments import SegmentManifest, VideoManifest
from .abr import ThroughputBufferABR
from .ftile import FtilePartition

__all__ = [
    "PlanContext",
    "DownloadPlan",
    "StreamingScheme",
    "CtileScheme",
    "FtileScheme",
    "NontileScheme",
    "PtileScheme",
    "split_wrapped_rect",
    "LOWEST_QUALITY",
]

LOWEST_QUALITY = 1


def split_wrapped_rect(rect: Rect) -> tuple[Rect, ...]:
    """Normalize a rectangle that may extend past yaw 360 into
    non-wrapping pieces."""
    if rect.x1 <= 360.0:
        return (rect,)
    return (
        Rect(rect.x0, rect.y0, 360.0, rect.y1),
        Rect(0.0, rect.y0, rect.x1 - 360.0, rect.y1),
    )


@dataclass(frozen=True)
class PlanContext:
    """Everything the client knows when requesting one segment."""

    segment_index: int
    manifest: SegmentManifest
    predicted_viewport: Viewport
    buffer_s: float
    bandwidth_mbps: float
    grid: TileGrid
    fps: float = 30.0
    segment_ptiles: SegmentPtiles | None = None
    ftile_partition: FtilePartition | None = None
    future_manifests: tuple[SegmentManifest, ...] = ()
    future_ptiles: tuple[SegmentPtiles | None, ...] = ()
    predicted_speed_deg_s: float = 0.0
    segment_seconds: float = 1.0
    # The whole video's manifest, when the caller has it (the session
    # loop always does).  Lets planners precompute tables spanning every
    # segment instead of rebuilding the sliding lookahead window.
    video_manifest: VideoManifest | None = None
    # How far ahead of the head-trace history the predicted viewport
    # is (seconds).  Uncertainty-aware planners scale their error model
    # with it; deterministic schemes ignore it.
    prediction_horizon_s: float = 0.0


@dataclass(frozen=True)
class DownloadPlan:
    """What gets downloaded for one segment and how it is decoded."""

    scheme_name: str
    quality: float
    frame_rate: float
    total_size_mbit: float
    decode_scheme: TilingScheme
    hq_rects: tuple[Rect, ...] = field(default_factory=tuple)
    full_coverage: bool = False
    used_ptile: bool = False
    # Uncertainty accounting (robust planning): the expected viewport
    # coverage of the chosen region under the FoV-error distribution,
    # and the error scale that produced it.  Point-prediction schemes
    # keep the trusting defaults (certain full hit, zero error).
    expected_coverage: float = 1.0
    sigma_deg: float = 0.0

    def coverage_of(self, viewport: Viewport) -> float:
        """Fraction of the viewport area served at high quality."""
        if self.full_coverage:
            return 1.0
        total = viewport.area
        if total <= 0 or not self.hq_rects:
            return 0.0
        covered = 0.0
        for vp_rect in viewport.rects():
            for hq in self.hq_rects:
                covered += vp_rect.intersection_area(hq)
        return min(covered / total, 1.0)


class StreamingScheme(Protocol):
    """A streaming scheme plans the download of each segment."""

    name: str

    def plan(self, ctx: PlanContext) -> DownloadPlan:  # pragma: no cover
        ...


def _tile_rects(grid: TileGrid, tiles: set[Tile]) -> tuple[Rect, ...]:
    return tuple(grid.tile_rect(t) for t in sorted(tiles))


@dataclass(frozen=True)
class CtileScheme:
    """Conventional fixed-grid tile streaming (4 decoders)."""

    abr: ThroughputBufferABR = field(default_factory=ThroughputBufferABR)
    name: str = "ctile"

    def plan(self, ctx: PlanContext) -> DownloadPlan:
        fov_tiles = ctx.grid.viewport_tiles(ctx.predicted_viewport)
        other_tiles = set(ctx.grid.tiles()) - fov_tiles
        background = ctx.manifest.tiles_size_mbit(other_tiles, LOWEST_QUALITY)

        def size_at(quality: int) -> float:
            return ctx.manifest.tiles_size_mbit(fov_tiles, quality) + background

        quality = self.abr.choose_quality(
            size_at,
            ctx.bandwidth_mbps,
            ctx.buffer_s,
            ctx.segment_seconds,
            qualities=ctx.manifest.encoder.ladder.levels,
        )
        return DownloadPlan(
            scheme_name=self.name,
            quality=quality,
            frame_rate=ctx.fps,
            total_size_mbit=size_at(quality),
            decode_scheme=TilingScheme.CTILE,
            hq_rects=_tile_rects(ctx.grid, fov_tiles),
        )


@dataclass(frozen=True)
class FtileScheme:
    """Variable-size tiling with a fixed tile count (4 decoders)."""

    abr: ThroughputBufferABR = field(default_factory=ThroughputBufferABR)
    name: str = "ftile"

    def plan(self, ctx: PlanContext) -> DownloadPlan:
        if ctx.ftile_partition is None:
            raise ValueError("FtileScheme requires a per-segment partition")
        cells = ctx.ftile_partition.cells
        hq_cells = ctx.ftile_partition.viewport_cells(ctx.predicted_viewport)
        hq_keys = {c.key for c in hq_cells}
        lq_cells = [c for c in cells if c.key not in hq_keys]
        background = sum(
            ctx.manifest.region_size_mbit(c.key, c.area_fraction, LOWEST_QUALITY)
            for c in lq_cells
        )

        def size_at(quality: int) -> float:
            hq = sum(
                ctx.manifest.region_size_mbit(c.key, c.area_fraction, quality)
                for c in hq_cells
            )
            return hq + background

        quality = self.abr.choose_quality(
            size_at,
            ctx.bandwidth_mbps,
            ctx.buffer_s,
            ctx.segment_seconds,
            qualities=ctx.manifest.encoder.ladder.levels,
        )
        return DownloadPlan(
            scheme_name=self.name,
            quality=quality,
            frame_rate=ctx.fps,
            total_size_mbit=size_at(quality),
            decode_scheme=TilingScheme.FTILE,
            hq_rects=tuple(c.rect for c in hq_cells),
        )


@dataclass(frozen=True)
class NontileScheme:
    """Whole-frame streaming, no tiling (one decoder, full coverage).

    Whole-video players (YouTube-style) use much denser quality ladders
    than the five tile CRF levels, so Nontile selects from a fractional
    ladder interpolating the CRF sweep in 0.25-level steps.
    """

    abr: ThroughputBufferABR = field(default_factory=ThroughputBufferABR)
    name: str = "nontile"
    ladder_step: float = 0.25

    def plan(self, ctx: PlanContext) -> DownloadPlan:
        def size_at(quality: float) -> float:
            return ctx.manifest.full_frame_size_mbit(quality)

        span = float(ctx.manifest.encoder.ladder.num_levels - 1)
        steps = int(round(span / self.ladder_step))
        qualities = [1.0 + i * self.ladder_step for i in range(steps + 1)]
        quality = self.abr.choose_quality(
            size_at,
            ctx.bandwidth_mbps,
            ctx.buffer_s,
            ctx.segment_seconds,
            qualities=qualities,
        )
        return DownloadPlan(
            scheme_name=self.name,
            quality=quality,
            frame_rate=ctx.fps,
            total_size_mbit=size_at(quality),
            decode_scheme=TilingScheme.NONTILE,
            full_coverage=True,
        )


@dataclass(frozen=True)
class PtileScheme:
    """Ptile streaming at the original frame rate (one decoder).

    Falls back to Ctile behaviour when no Ptile covers the predicted
    viewing center (the paper: "the client will download conventional
    tiles with the best possible quality").
    """

    abr: ThroughputBufferABR = field(default_factory=ThroughputBufferABR)
    name: str = "ptile"
    fallback: CtileScheme = field(default_factory=CtileScheme)

    def plan(self, ctx: PlanContext) -> DownloadPlan:
        if ctx.segment_ptiles is None:
            return self._fallback_plan(ctx)
        ptile = ctx.segment_ptiles.match(ctx.predicted_viewport)
        if ptile is None:
            return self._fallback_plan(ctx)
        remainder = ctx.segment_ptiles.remainder_for(ptile)
        background = sum(
            ctx.manifest.region_size_mbit(b.key, b.area_fraction, LOWEST_QUALITY)
            for b in remainder
        )

        def size_at(quality: int) -> float:
            return (
                ctx.manifest.region_size_mbit(
                    ptile.region_key, ptile.area_fraction, quality
                )
                + background
            )

        quality = self.abr.choose_quality(
            size_at,
            ctx.bandwidth_mbps,
            ctx.buffer_s,
            ctx.segment_seconds,
            qualities=ctx.manifest.encoder.ladder.levels,
        )
        return DownloadPlan(
            scheme_name=self.name,
            quality=quality,
            frame_rate=ctx.fps,
            total_size_mbit=size_at(quality),
            decode_scheme=TilingScheme.PTILE,
            hq_rects=split_wrapped_rect(ptile.rect),
            used_ptile=True,
        )

    def _fallback_plan(self, ctx: PlanContext) -> DownloadPlan:
        plan = self.fallback.plan(ctx)
        # Report under this scheme's name but keep Ctile decode costs.
        return DownloadPlan(
            scheme_name=self.name,
            quality=plan.quality,
            frame_rate=plan.frame_rate,
            total_size_mbit=plan.total_size_mbit,
            decode_scheme=plan.decode_scheme,
            hq_rects=plan.hq_rects,
        )
