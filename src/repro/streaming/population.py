"""Structure-of-arrays population session engine.

:func:`~repro.streaming.session.run_session` advances one viewer at a
time through a Python loop; simulating the region-scale populations the
ROADMAP targets (10^4+ concurrent sessions) is wall-clock-bound on that
loop.  :class:`PopulationEngine` layers *under* the same per-session
semantics and steps every session of a batch per segment in numpy
passes:

* **Per-head-trace precomputation, shared across sessions.**  Under the
  session loop's late-fetch rule the prediction time of segment k is
  ``max((k + 0.5) L - late_fetch_horizon_s, 0)`` — independent of the
  network (the buffer gate keeps the playhead at least that far behind;
  the constructor validates the configuration guarantees it).  Viewport
  prediction, Ptile matching, tile geometry, coverage against the
  viewport actually watched, and the MPC lookahead windows sliced from
  :class:`~repro.core.plan_tables.PlanTables` are therefore pure
  functions of (head trace, segment) and are computed once per unique
  trace by the *scalar* production code — bit-identical by construction
  — then indexed as stacked arrays by every session sharing the trace.
* **Vectorized session dynamics.**  Buffer levels, wait gates, the
  harmonic-mean bandwidth-estimator windows, ABR quality selection,
  download-time integration over the shared network trace, energy, and
  QoE advance as (num_sessions,)-shaped arrays, replicating the scalar
  arithmetic operation for operation so per-session aggregates agree
  with ``run_session`` to numeric tolerance (most sums are bit-exact).
* **MPC decisions over shared windows.**  The Ours scheme's buffer-state
  DP has per-session inputs (bandwidth estimate, buffer level), so it
  runs the production :class:`~repro.core.optimizer.EnergyQoEMpc`
  solver per session — but over the precomputed shared windows, which
  removes the predictor/geometry/table-assembly cost that dominates the
  scalar loop.

Supported: :class:`~repro.streaming.schemes.CtileScheme`,
:class:`~repro.streaming.schemes.PtileScheme`,
:class:`~repro.core.controller.OursScheme`, and
:class:`~repro.core.robust.RobustScheme` (whose per-trace precompute
additionally stacks the probability tensors — expected coverage, error
scale, per-tile viewing probabilities — next to the Ptile-match data)
against a plain
:class:`~repro.traces.network.NetworkTrace` (optionally scaled for fair
sharing, as :mod:`repro.streaming.multiclient` does) with an optional
:class:`~repro.streaming.cache.EdgeHitModel`.  Resilience overlays and
custom predictor factories keep per-session control flow and stay on
``run_session``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..power.energy import EnergyModel
from ..power.models import DevicePowerModel, TilingScheme
from ..prediction.viewport import ViewportPredictor
from ..ptile.construction import SegmentPtiles
from ..qoe.framerate import alpha_from_behavior, frame_rate_factor
from ..qoe.metrics import _BUFFER_FLOOR_S, _REBUFFER_RATIO_CAP, QoEModel
from ..traces.head_movement import HeadTrace
from ..traces.network import NetworkTrace
from ..video.segments import VideoManifest
from .schemes import (
    LOWEST_QUALITY,
    CtileScheme,
    DownloadPlan,
    PtileScheme,
    _tile_rects,
    split_wrapped_rect,
)
from .session import SessionConfig, _TraceFeeder

__all__ = ["PopulationEngine", "PopulationResult"]


@dataclass
class PopulationResult:
    """Per-session aggregate arrays for one population run.

    Every array is indexed by session; the fields mirror the
    :class:`~repro.streaming.metrics.SessionResult` aggregates the
    parity tests compare against.
    """

    scheme_name: str
    video_id: int
    network_name: str
    device_name: str
    num_segments: int
    user_indices: np.ndarray
    start_times: np.ndarray
    transmission_j: np.ndarray
    decoding_j: np.ndarray
    rendering_j: np.ndarray
    qoe_sum: np.ndarray
    qo_sum: np.ndarray
    variation_sum: np.ndarray
    rebuffer_sum: np.ndarray
    total_stall_s: np.ndarray
    rebuffer_count: np.ndarray
    quality_sum: np.ndarray
    frame_rate_sum: np.ndarray
    coverage_sum: np.ndarray
    used_ptile_count: np.ndarray
    total_edge_hit_mbit: np.ndarray
    total_size_mbit: np.ndarray

    @property
    def num_sessions(self) -> int:
        return int(self.user_indices.size)

    # -- energy --------------------------------------------------------

    @property
    def total_energy_j(self) -> np.ndarray:
        return self.transmission_j + self.decoding_j + self.rendering_j

    @property
    def energy_per_segment_j(self) -> np.ndarray:
        return self.total_energy_j / self.num_segments

    # -- QoE -----------------------------------------------------------

    @property
    def mean_qoe(self) -> np.ndarray:
        return self.qoe_sum / self.num_segments

    @property
    def mean_qo(self) -> np.ndarray:
        return self.qo_sum / self.num_segments

    @property
    def mean_variation(self) -> np.ndarray:
        return self.variation_sum / self.num_segments

    @property
    def mean_rebuffer(self) -> np.ndarray:
        return self.rebuffer_sum / self.num_segments

    # -- quality / coverage -------------------------------------------

    @property
    def mean_quality_level(self) -> np.ndarray:
        return self.quality_sum / self.num_segments

    @property
    def mean_frame_rate(self) -> np.ndarray:
        return self.frame_rate_sum / self.num_segments

    @property
    def mean_coverage(self) -> np.ndarray:
        return self.coverage_sum / self.num_segments

    @property
    def ptile_hit_rate(self) -> np.ndarray:
        return self.used_ptile_count / self.num_segments

    @property
    def edge_hit_fraction(self) -> np.ndarray:
        total = self.total_size_mbit
        return np.where(
            total > 0, self.total_edge_hit_mbit / np.where(total > 0, total, 1.0), 0.0
        )

    def mean_sessions(self) -> dict[str, float]:
        """Population means, keyed like
        :func:`repro.streaming.metrics.mean_sessions`."""
        return {
            "energy_j": float(np.mean(self.total_energy_j)),
            "energy_per_segment_j": float(np.mean(self.energy_per_segment_j)),
            "transmission_j": float(np.mean(self.transmission_j)),
            "decoding_j": float(np.mean(self.decoding_j)),
            "rendering_j": float(np.mean(self.rendering_j)),
            "qoe": float(np.mean(self.mean_qoe)),
            "qo": float(np.mean(self.mean_qo)),
            "variation": float(np.mean(self.mean_variation)),
            "rebuffer_penalty": float(np.mean(self.mean_rebuffer)),
            "rebuffer_count": float(np.mean(self.rebuffer_count)),
            "stall_s": float(np.mean(self.total_stall_s)),
            "quality_level": float(np.mean(self.mean_quality_level)),
            "frame_rate": float(np.mean(self.mean_frame_rate)),
            "coverage": float(np.mean(self.mean_coverage)),
        }


@dataclass
class _TracePlans:
    """Per-(head trace, segment) plan data shared by every session
    replaying that trace.  All arrays are indexed by segment."""

    sizes: np.ndarray  # (S, Q) candidate sizes per ABR quality level
    coverage: np.ndarray  # (S,) high-quality coverage of the watched viewport
    decode_j: np.ndarray  # (S,) decode energy of the ABR-delivered plan
    used_ptile: np.ndarray  # (S,) bool
    is_mpc: np.ndarray  # (S,) bool: Ours segments planned by the MPC
    factor_fps: np.ndarray  # (S,) Eq. 4 factor at the full frame rate
    factors: np.ndarray  # (S, F) Eq. 4 factors per ladder rate (Ours)
    windows: list  # (S,) MpcWindow | None
    viewports: list  # (S,) predicted Viewport (the MPC/planning input)
    speeds: np.ndarray  # (S,) predicted head speed at the request
    # Probability tensors (robust scheme only; trusting defaults
    # otherwise): the planner's expected coverage of the chosen region,
    # the angular error scale it planned against, and the per-tile
    # viewing probabilities under the FoV-error distribution.
    expected_cov: np.ndarray  # (S,)
    sigma_deg: np.ndarray  # (S,)
    tile_probs: np.ndarray  # (S, T) — T = 0 unless the scheme is robust


class PopulationEngine:
    """Batched many-session simulator with ``run_session`` parity.

    Parameters mirror :func:`~repro.streaming.session.run_session`; the
    engine is built once per (scheme, video, network, device)
    configuration and then :meth:`run` simulates arbitrary batches of
    sessions over the given head traces.
    """

    def __init__(
        self,
        scheme,
        manifest: VideoManifest,
        head_traces: Sequence[HeadTrace],
        network: NetworkTrace,
        device: DevicePowerModel,
        *,
        ptiles: list[SegmentPtiles] | None = None,
        qoe: QoEModel | None = None,
        config: SessionConfig = SessionConfig(),
        decision_client=None,
    ):
        if config.fault_plan is not None or config.download_policy is not None:
            raise ValueError(
                "the population engine runs the ideal-network path only; "
                "fault plans and download policies need run_session"
            )
        if config.predictor_factory is not None:
            raise ValueError(
                "custom predictor factories are per-session; use run_session"
            )
        if not isinstance(network, NetworkTrace):
            raise ValueError(
                "the population engine needs a plain NetworkTrace "
                f"(got {type(network).__name__})"
            )
        if not np.any(network.bandwidth_mbps > 0):
            raise ValueError(
                f"trace {network.name!r} has zero bandwidth everywhere"
            )
        if not head_traces:
            raise ValueError("need at least one head trace")
        seg_s = config.segment_seconds
        # The precomputation relies on the prediction time of segment k
        # being max((k + 0.5) L - late, 0) regardless of buffer state;
        # the buffer gate guarantees level >= min(L, threshold) at every
        # request past the first, which bounds the playhead term.
        if config.late_fetch_horizon_s > 0.5 * seg_s + min(
            seg_s, config.buffer_threshold_s
        ):
            raise ValueError(
                "late_fetch_horizon_s too large for batched prediction: "
                "needs late <= 0.5 * L + min(L, buffer_threshold_s)"
            )

        length = manifest.num_segments
        if config.max_segments is not None:
            length = min(length, config.max_segments)
        if length < 1:
            raise ValueError("nothing to stream")
        if ptiles is not None and len(ptiles) < length:
            raise ValueError("ptiles must cover every streamed segment")

        # Lazy import: repro.core.controller itself imports the schemes
        # module, so a top-level import here would be circular.
        from ..core.controller import OursScheme
        from ..core.robust import RobustScheme

        # RobustScheme subclasses OursScheme, so it must be checked
        # first; its windows carry the expected-quality transform.
        if isinstance(scheme, RobustScheme):
            kind = "robust"
            abr = scheme.fallback.abr
        elif isinstance(scheme, OursScheme):
            kind = "ours"
            abr = scheme.fallback.abr
        elif isinstance(scheme, PtileScheme):
            kind = "ptile"
            abr = scheme.abr
        elif isinstance(scheme, CtileScheme):
            kind = "ctile"
            abr = scheme.abr
        else:
            raise ValueError(
                f"unsupported scheme {getattr(scheme, 'name', scheme)!r}: "
                "the population engine handles ctile, ptile, ours, "
                "and robust"
            )

        if decision_client is not None and kind != "ours":
            raise ValueError(
                "decision_client only applies to the Ours scheme: other "
                "schemes never consult the MPC decision service"
            )
        self.decision_client = decision_client

        self.scheme = scheme
        self.kind = kind
        self.abr = abr
        self.manifest = manifest
        self.head_traces = list(head_traces)
        self.network = network
        self.device = device
        self.ptiles = ptiles
        self.qoe = qoe or QoEModel()
        self.config = config
        self.length = length

        self._energy_model = EnergyModel(device, seg_s)
        self._trans_w = device.transmission_mw * 1e-3
        fps = manifest.fps
        self._fps = fps
        self._render_fps_j = self._energy_model.rendering_energy_j(fps)
        self._decode_ctile_fps_j = self._energy_model.decoding_energy_j(
            TilingScheme.CTILE, fps
        )
        self._decode_ptile_fps_j = self._energy_model.decoding_energy_j(
            TilingScheme.PTILE, fps
        )
        if kind in ("ours", "robust"):
            self._rates = scheme.ladder.rates()
            self._decode_rate_j = np.array([
                self._energy_model.decoding_energy_j(TilingScheme.PTILE, r)
                for r in self._rates
            ])
            self._render_rate_j = np.array([
                self._energy_model.rendering_energy_j(r) for r in self._rates
            ])
            self._mpc = scheme._mpc(seg_s)
        else:
            self._rates = ()

        # ABR quality levels come from the video's encoding ladder; the
        # vectorized paths below are index-based (level = index + 1), which
        # EncodingLadder.levels guarantees for any ladder length.
        self._levels = manifest.encoder.ladder.levels

        # Eq. 3 quality per (segment, ABR quality) — trace-independent.
        quality_model = self.qoe.quality
        self._qo = np.array([
            [
                quality_model.qo(
                    manifest[k].si, manifest[k].ti,
                    manifest[k].qoe_bitrate_mbps(q),
                )
                for q in self._levels
            ]
            for k in range(length)
        ])

        self._plans: dict[int, _TracePlans] = {}

    # ------------------------------------------------------------------
    # Per-trace precomputation (scalar, shared across sessions)
    # ------------------------------------------------------------------

    def _ctile_row(self, ctx) -> tuple[list[float], tuple]:
        fov_tiles = ctx.grid.viewport_tiles(ctx.predicted_viewport)
        other = set(ctx.grid.tiles()) - fov_tiles
        background = ctx.manifest.tiles_size_mbit(other, LOWEST_QUALITY)
        sizes = [
            ctx.manifest.tiles_size_mbit(fov_tiles, q) + background
            for q in self._levels
        ]
        return sizes, _tile_rects(ctx.grid, fov_tiles)

    def _trace_plans(self, trace_index: int) -> _TracePlans:
        plans = self._plans.get(trace_index)
        if plans is not None:
            return plans

        trace = self.head_traces[trace_index]
        config = self.config
        manifest = self.manifest
        length = self.length
        seg_s = config.segment_seconds
        fps = self._fps
        n_rates = len(self._rates) if self.kind in ("ours", "robust") else 1

        predictor = ViewportPredictor(
            window_s=config.predictor_window_s, fov_deg=config.fov_deg
        )
        feeder = _TraceFeeder(trace, predictor)

        sizes = np.zeros((length, len(self._levels)))
        coverage = np.empty(length)
        decode_j = np.empty(length)
        used = np.zeros(length, dtype=bool)
        is_mpc = np.zeros(length, dtype=bool)
        factor_fps = np.empty(length)
        factors = np.zeros((length, n_rates))
        windows: list = [None] * length
        viewports: list = [None] * length
        speeds = np.zeros(length)
        expected_cov = np.ones(length)
        sigma_deg = np.zeros(length)
        grid = manifest.encoder.grid
        tile_probs = np.zeros(
            (length, grid.num_tiles if self.kind == "robust" else 0)
        )

        from .schemes import PlanContext  # local: avoids a cycle warning

        if self.kind == "robust":
            from ..core.robust import expected_quality_window
            from ..prediction.uncertainty import (
                hypothesis_grid,
                hypothesis_weights,
                tile_view_probabilities,
            )

        for k in range(length):
            playback_mid = (k + 0.5) * seg_s
            prediction_time = max(
                playback_mid - config.late_fetch_horizon_s, 0.0
            )
            feeder.feed_until(prediction_time)
            if predictor.num_observations > 0:
                predicted_vp = predictor.predict_viewport(playback_mid)
                predicted_speed = predictor.recent_speed_deg_s()
            else:
                predicted_vp = trace.viewport_at(0.0, config.fov_deg)
                predicted_speed = 0.0
            viewports[k] = predicted_vp
            speeds[k] = predicted_speed

            horizon_end = min(k + config.horizon, length)
            seg_ptiles = self.ptiles[k] if self.ptiles is not None else None
            ctx = PlanContext(
                segment_index=k,
                manifest=manifest[k],
                predicted_viewport=predicted_vp,
                buffer_s=0.0,  # per-session; only geometry is read here
                bandwidth_mbps=1.0,
                grid=manifest.encoder.grid,
                fps=fps,
                segment_ptiles=seg_ptiles,
                future_manifests=tuple(
                    manifest[i] for i in range(k, horizon_end)
                ),
                future_ptiles=tuple(
                    self.ptiles[i] if self.ptiles is not None else None
                    for i in range(k, horizon_end)
                ),
                predicted_speed_deg_s=predicted_speed,
                segment_seconds=seg_s,
                video_manifest=manifest,
                prediction_horizon_s=playback_mid - prediction_time,
            )

            matched = (
                seg_ptiles.match(predicted_vp)
                if seg_ptiles is not None
                else None
            )
            robust_sigma = 0.0
            if self.kind == "robust":
                robust_sigma = self.scheme.error_model.sigma_deg(
                    ctx.prediction_horizon_s
                )
            if robust_sigma > 0.0:
                # Robust tile selection replaces the deterministic
                # match; the window carries the expected-quality
                # transform so _run_chunk's MPC loop needs no changes.
                sigma_deg[k] = robust_sigma
                hyp = hypothesis_grid(
                    grid, predicted_vp.fov_h, predicted_vp.fov_v
                )
                tile_probs[k] = tile_view_probabilities(
                    hypothesis_weights(
                        hyp, predicted_vp.yaw, predicted_vp.pitch,
                        robust_sigma,
                    ),
                    hyp,
                )
                selection = self.scheme.select_robust(ctx, robust_sigma)
                if selection is None:
                    sizes[k], hq_rects = self._ctile_row(ctx)
                    decode_j[k] = self._decode_ctile_fps_j
                else:
                    chosen, horizon_cov = selection
                    tables = self.scheme._plan_tables(ctx)
                    windows[k] = expected_quality_window(
                        tables.window(ctx, chosen), horizon_cov
                    )
                    expected_cov[k] = float(horizon_cov[0])
                    hq_rects = split_wrapped_rect(chosen.rect)
                    decode_j[k] = 0.0  # per-decision, filled at run time
                    used[k] = True
                    is_mpc[k] = True
            elif self.kind == "ctile" or matched is None:
                sizes[k], hq_rects = self._ctile_row(ctx)
                decode_j[k] = self._decode_ctile_fps_j
            elif self.kind == "ptile":
                remainder = seg_ptiles.remainder_for(matched)
                background = sum(
                    ctx.manifest.region_size_mbit(
                        b.key, b.area_fraction, LOWEST_QUALITY
                    )
                    for b in remainder
                )
                sizes[k] = [
                    ctx.manifest.region_size_mbit(
                        matched.region_key, matched.area_fraction, q
                    )
                    + background
                    for q in self._levels
                ]
                hq_rects = split_wrapped_rect(matched.rect)
                decode_j[k] = self._decode_ptile_fps_j
                used[k] = True
            else:  # ours, Ptile matched: MPC over the shared window
                tables = self.scheme._plan_tables(ctx)
                windows[k] = tables.window(ctx, matched)
                hq_rects = split_wrapped_rect(matched.rect)
                decode_j[k] = 0.0  # per-decision, filled at run time
                used[k] = True
                is_mpc[k] = True

            seg = manifest[k]
            actual_vp = trace.viewport_at(playback_mid, config.fov_deg)
            actual_speed = trace.speed_quantile_in(
                k * seg_s, (k + 1) * seg_s
            )
            alpha = alpha_from_behavior(actual_speed, seg.ti)
            factor_fps[k] = frame_rate_factor(fps, fps, alpha)
            if is_mpc[k]:
                factors[k] = [
                    frame_rate_factor(rate, fps, alpha)
                    for rate in self._rates
                ]
            coverage[k] = DownloadPlan(
                scheme_name="population",
                quality=LOWEST_QUALITY,
                frame_rate=fps,
                total_size_mbit=1.0,
                decode_scheme=TilingScheme.CTILE,
                hq_rects=hq_rects,
            ).coverage_of(actual_vp)

        plans = _TracePlans(
            sizes=sizes,
            coverage=coverage,
            decode_j=decode_j,
            used_ptile=used,
            is_mpc=is_mpc,
            factor_fps=factor_fps,
            factors=factors,
            windows=windows,
            viewports=viewports,
            speeds=speeds,
            expected_cov=expected_cov,
            sigma_deg=sigma_deg,
            tile_probs=tile_probs,
        )
        self._plans[trace_index] = plans
        return plans

    # ------------------------------------------------------------------
    # Vectorized helpers
    # ------------------------------------------------------------------

    def _bandwidth_at(self, t: np.ndarray) -> np.ndarray:
        bw = self.network.bandwidth_mbps
        bin_s = self.network.bin_seconds
        idx = (t / bin_s).astype(np.int64) % bw.size
        return bw[idx]

    def _download_vec(self, size: np.ndarray, start: np.ndarray) -> np.ndarray:
        """Vector twin of :meth:`NetworkTrace.download_time`.

        Replicates the scalar bin-walk arithmetic operation for
        operation per session, so the returned times are bit-identical.
        """
        bw_arr = self.network.bandwidth_mbps
        bin_s = self.network.bin_seconds
        positive_min = float(bw_arr[bw_arr > 0].min())
        max_size = float(size.max(initial=0.0))
        max_iterations = bw_arr.size * (
            10 + int(max_size / (positive_min * bin_s))
        ) + 16

        remaining = size.astype(float).copy()
        t = start.astype(float).copy()
        elapsed = np.zeros_like(remaining)
        active = remaining > 1e-12
        guard = 0
        while active.any():
            rows = np.flatnonzero(active)
            bins = (t[rows] / bin_s).astype(np.int64)
            bw = bw_arr[bins % bw_arr.size]
            bin_end = (bins + 1) * bin_s
            window = bin_end - t[rows]
            capacity = bw * window
            done = capacity >= remaining[rows]
            done_rows = rows[done]
            elapsed[done_rows] += remaining[done_rows] / bw[done]
            remaining[done_rows] = 0.0
            cont_rows = rows[~done]
            remaining[cont_rows] -= capacity[~done]
            elapsed[cont_rows] += window[~done]
            t[cont_rows] = bin_end[~done]
            active[done_rows] = False
            active[cont_rows] = remaining[cont_rows] > 1e-12
            guard += 1
            if guard > max_iterations:  # pragma: no cover - safety net
                raise RuntimeError("population download did not converge")
        return elapsed

    @staticmethod
    def _ring_add(
        ring: np.ndarray,
        pos: np.ndarray,
        cnt: np.ndarray,
        mask: np.ndarray,
        values: np.ndarray,
        window: int,
    ) -> None:
        rows = np.flatnonzero(mask)
        if rows.size == 0:
            return
        ring[rows, pos[rows]] = values[rows]
        pos[rows] = (pos[rows] + 1) % window
        cnt[rows] = np.minimum(cnt[rows] + 1, window)

    @staticmethod
    def _estimate(
        ring: np.ndarray, pos: np.ndarray, cnt: np.ndarray, window: int
    ) -> np.ndarray:
        """Harmonic mean over each session's chronological window.

        Reciprocals accumulate oldest-first, matching the estimator's
        sequential ``sum`` bit for bit.
        """
        recip = np.zeros(pos.shape, dtype=float)
        for i in range(window):
            rows = np.flatnonzero(i < cnt)
            if rows.size == 0:
                break
            idx = (pos[rows] - cnt[rows] + i) % window
            recip[rows] += 1.0 / ring[rows, idx]
        return cnt / recip

    # ------------------------------------------------------------------
    # Batch run
    # ------------------------------------------------------------------

    def run(
        self,
        user_indices: Sequence[int] | None = None,
        start_times: Sequence[float] | None = None,
        *,
        chunk_size: int = 2048,
    ) -> PopulationResult:
        """Simulate one session per entry of ``user_indices``.

        ``user_indices`` select head traces (repeats share all
        precomputation); ``start_times`` offset each session's wall
        clock against the network trace (an arrival process), defaulting
        to 0 — at which every session is exactly ``run_session`` on the
        same inputs.  Sessions are processed in ``chunk_size`` batches;
        the chunking only bounds memory, results are identical.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if user_indices is None:
            idx = np.arange(len(self.head_traces), dtype=np.int64)
        else:
            idx = np.asarray(user_indices, dtype=np.int64)
        if idx.ndim != 1 or idx.size == 0:
            raise ValueError("need at least one session")
        if np.any(idx < 0) or np.any(idx >= len(self.head_traces)):
            raise ValueError("user index outside the head-trace list")
        if start_times is None:
            starts = np.zeros(idx.size)
        else:
            starts = np.asarray(start_times, dtype=float)
            if starts.shape != idx.shape:
                raise ValueError("start_times must match user_indices")
            if np.any(starts < 0):
                raise ValueError("start times must be non-negative")

        n = idx.size
        sums = {
            name: np.zeros(n)
            for name in (
                "transmission_j", "decoding_j", "rendering_j", "qoe_sum",
                "qo_sum", "variation_sum", "rebuffer_sum", "total_stall_s",
                "quality_sum", "frame_rate_sum", "coverage_sum",
                "total_edge_hit_mbit", "total_size_mbit",
            )
        }
        rebuffer_count = np.zeros(n, dtype=np.int64)
        used_count = np.zeros(n, dtype=np.int64)

        for lo in range(0, n, chunk_size):
            hi = min(lo + chunk_size, n)
            chunk = self._run_chunk(idx[lo:hi], starts[lo:hi])
            for name in sums:
                sums[name][lo:hi] = chunk[name]
            rebuffer_count[lo:hi] = chunk["rebuffer_count"]
            used_count[lo:hi] = chunk["used_ptile_count"]

        return PopulationResult(
            scheme_name=self.scheme.name,
            video_id=self.manifest.video.meta.video_id,
            network_name=self.network.name,
            device_name=self.device.name,
            num_segments=self.length,
            user_indices=idx,
            start_times=starts,
            rebuffer_count=rebuffer_count,
            used_ptile_count=used_count,
            **sums,
        )

    def _run_chunk(self, traces_idx: np.ndarray, starts: np.ndarray) -> dict:
        config = self.config
        seg_s = config.segment_seconds
        threshold = config.buffer_threshold_s
        window = config.bandwidth_window
        abr = self.abr
        qoe_weights = self.qoe.weights
        edge = config.edge_model
        n = traces_idx.size

        unique, inv = np.unique(traces_idx, return_inverse=True)
        plans = [self._trace_plans(int(u)) for u in unique]
        SZ = np.stack([p.sizes for p in plans])  # (U, S, Q)
        COV = np.stack([p.coverage for p in plans])
        DEC = np.stack([p.decode_j for p in plans])
        USED = np.stack([p.used_ptile for p in plans])
        MPC = np.stack([p.is_mpc for p in plans])
        FACT = np.stack([p.factor_fps for p in plans])
        FACTS = np.stack([p.factors for p in plans])  # (U, S, F)

        level = np.zeros(n)
        wall = starts.astype(float).copy()
        ring = np.zeros((n, window))
        pos = np.zeros(n, dtype=np.int64)
        cnt = np.zeros(n, dtype=np.int64)
        prev_qo = np.zeros(n)

        out = {
            name: np.zeros(n)
            for name in (
                "transmission_j", "decoding_j", "rendering_j", "qoe_sum",
                "qo_sum", "variation_sum", "rebuffer_sum", "total_stall_s",
                "quality_sum", "frame_rate_sum", "coverage_sum",
                "total_edge_hit_mbit", "total_size_mbit",
            )
        }
        rebuffer_count = np.zeros(n, dtype=np.int64)
        used_count = np.zeros(n, dtype=np.int64)

        # Startup probe: first positive sample at or after each start.
        probe = self._bandwidth_at(wall).astype(float)
        for i in np.flatnonzero(probe <= 0):
            probe[i] = self.network.next_positive_bandwidth(float(wall[i]))
        self._ring_add(ring, pos, cnt, np.ones(n, dtype=bool), probe, window)

        arange = np.arange(n)
        for k in range(self.length):
            wait = np.maximum(level - threshold, 0.0)
            wall = wall + wait
            level_req = level - wait
            est = self._estimate(ring, pos, cnt, window)

            # --- plan: vectorized ABR, per-session MPC over shared windows
            sizes_k = SZ[inv, k]  # (n, Q)
            budget_time = np.where(
                level_req < abr.low_buffer_s,
                seg_s * abr.low_buffer_scale,
                np.where(
                    level_req > abr.surplus_start_s,
                    seg_s + abr.surplus_scale * (level_req - abr.surplus_start_s),
                    seg_s,
                ),
            )
            budget = est * abr.safety * budget_time
            fits = sizes_k <= budget[:, None]
            rev_first = (fits.shape[1] - 1) - np.argmax(fits[:, ::-1], axis=1)
            q_idx = np.where(fits.any(axis=1), rev_first, 0)
            size = sizes_k[arange, q_idx]
            frame_rate = np.full(n, self._fps)
            decode = DEC[inv, k].copy()
            factor = FACT[inv, k].copy()

            render = np.full(n, self._render_fps_j)
            mpc_rows = np.flatnonzero(MPC[inv, k])
            if self.decision_client is not None and mpc_rows.size:
                # Service seam: one plan_many over every co-arriving MPC
                # request — the service batches them into vectorized
                # choose passes, decisions bit-identical to _mpc.choose.
                from ..serving.requests import PlanRequest

                horizon_end = min(k + config.horizon, self.length)
                video_id = self.manifest.video.meta.video_id
                requests = []
                for i in mpc_rows:
                    p = plans[inv[i]]
                    vp = p.viewports[k]
                    requests.append(PlanRequest(
                        video_id=video_id,
                        segment_index=k,
                        buffer_s=float(level_req[i]),
                        bandwidth_mbps=float(est[i]),
                        yaw=vp.yaw,
                        pitch=vp.pitch,
                        fov_h=vp.fov_h,
                        fov_v=vp.fov_v,
                        speed_deg_s=float(p.speeds[k]),
                        window=horizon_end - k,
                        segment_seconds=seg_s,
                        fps=self._fps,
                    ))
                for i, plan in zip(
                    mpc_rows, self.decision_client.plan_many(requests)
                ):
                    q_idx[i] = int(plan.quality) - 1
                    f_idx = self._rates.index(plan.frame_rate)
                    size[i] = float(plan.total_size_mbit)
                    frame_rate[i] = plan.frame_rate
                    decode[i] = self._decode_rate_j[f_idx]
                    render[i] = self._render_rate_j[f_idx]
                    factor[i] = FACTS[inv[i], k, f_idx]
            else:
                for i in mpc_rows:
                    win = plans[inv[i]].windows[k]
                    decision = self._mpc.choose(
                        win, float(est[i]), float(level_req[i])
                    )
                    q_idx[i] = decision.quality - 1
                    f_idx = decision.frame_rate_index - 1
                    size[i] = float(
                        win.sizes_mbit[0, decision.quality - 1, f_idx]
                    )
                    frame_rate[i] = decision.frame_rate
                    decode[i] = self._decode_rate_j[f_idx]
                    render[i] = self._render_rate_j[f_idx]
                    factor[i] = FACTS[inv[i], k, f_idx]

            # --- download against the shared trace (edge split first)
            if edge is not None:
                edge_hit = size * edge.hit_ratio(k)
                miss = size - edge_hit
                dt = self._download_vec(miss, wall) + (
                    edge_hit / edge.edge_bandwidth_mbps
                )
            else:
                edge_hit = np.zeros(n)
                dt = self._download_vec(size, wall)

            # --- estimator update (sample at the request time on
            #     instantaneous downloads, skipping zero-bandwidth bins)
            has_ratio = dt > 0
            val = np.zeros(n)
            val[has_ratio] = size[has_ratio] / dt[has_ratio]
            fb = ~has_ratio
            if fb.any():
                samp = self._bandwidth_at(wall)
                val[fb] = samp[fb]
            self._ring_add(ring, pos, cnt, has_ratio | (fb & (val > 0)),
                           val, window)

            # --- buffer advance (Eq. 6/7)
            stall = np.maximum(dt - level_req, 0.0)
            level = np.maximum(level_req - dt, 0.0) + seg_s
            wall = wall + dt

            # --- energy (Eq. 1)
            out["transmission_j"] += self._trans_w * dt
            out["decoding_j"] += decode
            out["rendering_j"] += render

            # --- QoE (Eq. 2) for what was actually watched
            coverage = COV[inv, k]
            qo_high = self._qo[k, q_idx]
            qo_low = self._qo[k, 0]
            qo_eff = (coverage * qo_high + (1.0 - coverage) * qo_low) * factor
            variation = np.abs(qo_eff - prev_qo) if k > 0 else np.zeros(n)
            count_stall = k > 0 or config.count_startup_stall
            stall_q = dt if count_stall else np.zeros(n)
            over = np.maximum(stall_q - level_req, 0.0)
            ratio = np.where(
                over == 0.0,
                0.0,
                np.minimum(
                    over / np.maximum(level_req, _BUFFER_FLOOR_S),
                    _REBUFFER_RATIO_CAP,
                ),
            )
            var_pen = qoe_weights.variation * variation
            reb_pen = qoe_weights.rebuffering * ratio * qo_eff
            out["qoe_sum"] += qo_eff - var_pen - reb_pen
            out["qo_sum"] += qo_eff
            out["variation_sum"] += var_pen
            out["rebuffer_sum"] += reb_pen
            prev_qo = qo_eff

            stall_recorded = stall if count_stall else np.zeros(n)
            out["total_stall_s"] += stall_recorded
            if k > 0:
                rebuffer_count += stall_recorded > 0
            out["quality_sum"] += q_idx + 1
            out["frame_rate_sum"] += frame_rate
            out["coverage_sum"] += coverage
            used_count += USED[inv, k]
            out["total_edge_hit_mbit"] += edge_hit
            out["total_size_mbit"] += size

        out["rebuffer_count"] = rebuffer_count
        out["used_ptile_count"] = used_count
        return out
