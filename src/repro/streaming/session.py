"""Trace-driven streaming session simulator.

Replays one user's head-movement trace against a network trace: for
every segment the client predicts the viewport, estimates bandwidth,
asks the scheme for a download plan, downloads against the network
trace, advances the playback buffer, and scores energy (Eq. 1) and QoE
(Eq. 2) for what the user actually saw.

Conventions:

* The head trace is indexed by *video time*; the playhead position when
  requesting segment k is ``k*L - B`` (downloaded minus buffered).
* Viewport-sensitive requests are issued *late*: as in deadline-driven
  players (e.g. Flare), the high-quality region of a segment is fixed
  only ``late_fetch_horizon_s`` before its playback, so the predictor
  sees head samples up to that point and extrapolates a short horizon
  instead of the full buffer pipeline.
* The viewport actually watched during segment k is the trace at the
  segment midpoint; the plan's high-quality region covers some fraction
  of it, and the rest is seen at the lowest quality.
* The frame-rate QoE factor uses the *actual* switching speed during
  the segment (the scheme chose the frame rate from a prediction).
* The first download is startup delay, not a rebuffering event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..power.energy import EnergyModel, SegmentEnergy
from ..power.models import DevicePowerModel
from ..prediction.bandwidth import HarmonicMeanEstimator
from ..prediction.viewport import ViewportPredictor
from ..ptile.construction import SegmentPtiles
from ..qoe.framerate import alpha_from_behavior, frame_rate_factor
from ..qoe.metrics import QoEModel
from ..traces.head_movement import HeadTrace
from ..traces.network import NetworkTrace
from ..video.segments import VideoManifest
from .buffer import PlaybackBuffer
from .cache import EdgeHitModel
from .ftile import FtilePartition
from .metrics import SegmentRecord, SessionResult
from .schemes import LOWEST_QUALITY, PlanContext, StreamingScheme

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from ..resilience.faults import FaultPlan
    from ..resilience.policy import DownloadPolicy

__all__ = ["SessionConfig", "run_session"]


@dataclass(frozen=True)
class SessionConfig:
    """Simulation parameters (paper Section V defaults)."""

    segment_seconds: float = 1.0
    buffer_threshold_s: float = 3.0
    bandwidth_window: int = 5
    predictor_window_s: float = 2.0
    horizon: int = 5
    fov_deg: float = 100.0
    late_fetch_horizon_s: float = 1.2
    count_startup_stall: bool = False
    max_segments: int | None = None
    # When set, the cached fraction of every download is served at the
    # edge link rate instead of the backhaul trace (see
    # repro.streaming.cache.build_edge_hit_model).
    edge_model: EdgeHitModel | None = None
    # Viewport-prediction strategy: a callable (trace, fov_deg, window_s)
    # -> predictor.  None selects the paper's ridge regression; see
    # repro.prediction.strategies for the static/oracle alternatives.
    predictor_factory: Callable | None = None
    # Resilience (docs/MODELING.md §10): a deterministic fault overlay
    # on the network trace plus the client's deadline/retry/degradation
    # policy.  With both None the session runs the exact ideal-network
    # code path; setting either engages the resilient download engine
    # (a missing policy falls back to DownloadPolicy() defaults, a
    # missing plan to no faults).
    fault_plan: FaultPlan | None = None
    download_policy: DownloadPolicy | None = None


@dataclass
class _TraceFeeder:
    """Feeds head samples to the predictor as the playhead advances."""

    trace: HeadTrace
    predictor: object  # anything satisfying PredictorProtocol
    _cursor: int = field(default=0)

    def feed_until(self, video_time: float) -> None:
        t = self.trace.timestamps
        while self._cursor < t.size and t[self._cursor] <= video_time:
            self.predictor.observe(
                float(t[self._cursor]),
                float(self.trace.yaw_unwrapped[self._cursor]),
                float(self.trace.pitch[self._cursor]),
            )
            self._cursor += 1


def run_session(
    scheme: StreamingScheme,
    manifest: VideoManifest,
    head_trace: HeadTrace,
    network: NetworkTrace,
    device: DevicePowerModel,
    *,
    ptiles: list[SegmentPtiles] | None = None,
    ftiles: list[FtilePartition] | None = None,
    qoe: QoEModel | None = None,
    config: SessionConfig = SessionConfig(),
) -> SessionResult:
    """Simulate one full streaming session and return its metrics."""
    qoe = qoe or QoEModel()
    length = manifest.num_segments
    if config.max_segments is not None:
        length = min(length, config.max_segments)
    if length < 1:
        raise ValueError("nothing to stream")

    buffer = PlaybackBuffer(config.buffer_threshold_s, config.segment_seconds)
    bandwidth = HarmonicMeanEstimator(config.bandwidth_window)
    # Startup probe: the client measures throughput while fetching the
    # manifest/metadata before the first segment request.  A trace may
    # open inside an outage second (zero-bandwidth bin), which the
    # harmonic-mean estimator rejects; probe forward to the first
    # positive sample instead.
    probe = network.bandwidth_at(0.0)
    if probe <= 0:
        probe = network.next_positive_bandwidth(0.0)
    bandwidth.add(probe)
    if config.predictor_factory is not None:
        predictor = config.predictor_factory(
            head_trace, config.fov_deg, config.predictor_window_s
        )
    else:
        predictor = ViewportPredictor(
            window_s=config.predictor_window_s, fov_deg=config.fov_deg
        )
    feeder = _TraceFeeder(head_trace, predictor)

    # Resilient download engine (lazy import: repro.resilience imports
    # streaming.schemes, so a top-level import here would be circular).
    resilient = (
        config.fault_plan is not None or config.download_policy is not None
    )
    if resilient:
        from ..resilience.network import FaultyNetwork
        from ..resilience.policy import DownloadPolicy, execute_download

        fault_plan = config.fault_plan
        policy = config.download_policy or DownloadPolicy()
        faulty_net = (
            FaultyNetwork(network, fault_plan)
            if fault_plan is not None and not fault_plan.is_idle
            else network
        )

    energy_model = EnergyModel(device, config.segment_seconds)
    result = SessionResult(
        scheme_name=scheme.name,
        video_id=manifest.video.meta.video_id,
        user_id=head_trace.user_id,
        device_name=device.name,
        network_name=network.name,
    )

    wall_t = 0.0
    prev_qo: float | None = None
    for k in range(length):
        wait = buffer.wait_time()
        wall_t += wait
        level_at_request = buffer.level_s - wait

        # The user has watched up to the playhead; late viewport-tile
        # updates let the client refine the prediction until shortly
        # before the segment plays.
        playhead = k * config.segment_seconds - level_at_request
        playback_mid = (k + 0.5) * config.segment_seconds
        prediction_time = max(
            playhead, playback_mid - config.late_fetch_horizon_s, 0.0
        )
        feeder.feed_until(prediction_time)
        if predictor.num_observations > 0:
            predicted_vp = predictor.predict_viewport(playback_mid)
            predicted_speed = predictor.recent_speed_deg_s()
        else:
            predicted_vp = head_trace.viewport_at(0.0, config.fov_deg)
            predicted_speed = 0.0

        horizon_end = min(k + config.horizon, length)
        ctx = PlanContext(
            segment_index=k,
            manifest=manifest[k],
            predicted_viewport=predicted_vp,
            buffer_s=level_at_request,
            bandwidth_mbps=bandwidth.estimate(),
            grid=manifest.encoder.grid,
            fps=manifest.fps,
            segment_ptiles=ptiles[k] if ptiles is not None else None,
            ftile_partition=ftiles[k] if ftiles is not None else None,
            future_manifests=tuple(manifest[i] for i in range(k, horizon_end)),
            future_ptiles=tuple(
                ptiles[i] if ptiles is not None else None
                for i in range(k, horizon_end)
            ),
            predicted_speed_deg_s=predicted_speed,
            segment_seconds=config.segment_seconds,
            video_manifest=manifest,
            # How far past the freshest head sample the prediction
            # reaches; uncertainty-aware planners scale their error
            # model with it.
            prediction_horizon_s=playback_mid - prediction_time,
        )
        plan = scheme.plan(ctx)

        if resilient:
            # Deadline-aware download with retry/backoff and the
            # degradation ladder; may deliver a cheaper plan (or skip).
            # The cold-start segment's fetch is startup delay, not a
            # deadline violation, so it runs unbounded.
            outcome = execute_download(
                faulty_net,
                plan,
                manifest[k],
                manifest.fps,
                policy=policy,
                fault_plan=fault_plan,
                start_wall_t=wall_t,
                buffer_level_s=level_at_request,
                segment_index=k,
                edge_model=config.edge_model,
                unlimited_deadline=k == 0,
            )
            delivered = outcome.plan
            skipped = outcome.skipped
            edge_hit_mbit = outcome.edge_hit_mbit
            download_time = outcome.elapsed_s
            active_time = outcome.active_s
            if download_time > 0 and delivered.total_size_mbit > 0:
                bandwidth.add(delivered.total_size_mbit / download_time)
            else:
                # Skipped/instant segment: sample the effective link at
                # the end of the fetch, unless an outage zeroes it (the
                # harmonic-mean estimator rejects non-positive samples).
                sample = faulty_net.bandwidth_at(wall_t + download_time)
                if sample > 0:
                    bandwidth.add(sample)
        else:
            delivered = plan
            skipped = False
            if config.edge_model is not None:
                # Split the download: edge-cached bytes arrive at the
                # edge link rate, only the miss fraction crosses the
                # backhaul.
                edge_hit_mbit = plan.total_size_mbit * config.edge_model.hit_ratio(k)
                miss_mbit = plan.total_size_mbit - edge_hit_mbit
                download_time = (
                    network.download_time(miss_mbit, wall_t)
                    + edge_hit_mbit / config.edge_model.edge_bandwidth_mbps
                )
            else:
                edge_hit_mbit = 0.0
                download_time = network.download_time(plan.total_size_mbit, wall_t)
            active_time = download_time
            if download_time > 0:
                bandwidth.add(plan.total_size_mbit / download_time)
            else:
                # An instantaneous download (empty or negligible payload)
                # carries no throughput ratio; feed the trace's current
                # bandwidth instead of dropping the sample so the
                # harmonic-mean estimator does not go stale.  Skip the
                # sample inside a zero-bandwidth bin (the estimator
                # rejects non-positive values).
                sample = network.bandwidth_at(wall_t)
                if sample > 0:
                    bandwidth.add(sample)
        event = buffer.advance(download_time)
        wall_t += download_time

        # Energy (Eq. 1): transmission from radio-active time (excludes
        # backoff waits), decode/render from what actually plays — a
        # skipped segment freezes the display and costs neither.
        energy = SegmentEnergy(
            transmission_j=energy_model.transmission_energy_from_time_j(
                active_time
            ),
            decoding_j=0.0
            if skipped
            else energy_model.decoding_energy_j(
                delivered.decode_scheme, delivered.frame_rate
            ),
            rendering_j=0.0
            if skipped
            else energy_model.rendering_energy_j(delivered.frame_rate),
        )

        # What the user actually saw.
        seg = manifest[k]
        actual_vp = head_trace.viewport_at(playback_mid, config.fov_deg)
        actual_speed = head_trace.speed_quantile_in(
            k * config.segment_seconds, (k + 1) * config.segment_seconds
        )
        alpha = alpha_from_behavior(actual_speed, seg.ti)
        factor = frame_rate_factor(delivered.frame_rate, manifest.fps, alpha)
        if skipped:
            # Nothing arrived: zero coverage and zero perceived quality
            # (the full coverage penalty of the ladder's last rung).
            coverage = 0.0
            qo_effective = 0.0
        else:
            coverage = delivered.coverage_of(actual_vp)
            qo_high = qoe.quality.qo(
                seg.si, seg.ti, seg.qoe_bitrate_mbps(delivered.quality)
            )
            qo_low = qoe.quality.qo(
                seg.si, seg.ti, seg.qoe_bitrate_mbps(LOWEST_QUALITY)
            )
            qo_effective = (
                coverage * qo_high + (1.0 - coverage) * qo_low
            ) * factor

        # Startup handling: the first download is startup delay, not a
        # rebuffering event, unless the config opts in.  The recorded
        # stall and the QoE penalty must agree on this.
        count_stall = k > 0 or config.count_startup_stall
        stall_for_qoe = download_time if count_stall else 0.0
        stall_recorded = event.stall_s if count_stall else 0.0
        buffer_for_qoe = event.level_before_s
        segment_qoe = qoe.segment_qoe(
            qo_effective, prev_qo, stall_for_qoe, buffer_for_qoe
        )
        prev_qo = qo_effective

        result.add(
            SegmentRecord(
                index=k,
                quality=delivered.quality,
                frame_rate=delivered.frame_rate,
                size_mbit=delivered.total_size_mbit,
                download_time_s=download_time,
                wait_s=event.wait_s,
                stall_s=stall_recorded,
                buffer_before_s=event.level_before_s,
                coverage=coverage,
                qo_effective=qo_effective,
                qoe=segment_qoe,
                energy=energy,
                decode_scheme=delivered.decode_scheme,
                used_ptile=delivered.used_ptile,
                edge_hit_mbit=edge_hit_mbit,
                retries=outcome.retries if resilient else 0,
                timeouts=outcome.timeouts if resilient else 0,
                degraded_level=int(outcome.level) if resilient else 0,
                expected_coverage=delivered.expected_coverage,
                uncertainty_deg=delivered.sigma_deg,
            )
        )
    return result
