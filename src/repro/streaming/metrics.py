"""Session results and aggregation.

A :class:`SessionResult` collects per-segment records from one simulated
streaming session (one user watching one video over one network trace on
one device) and exposes the aggregates the paper reports: total energy
and its three components (Fig. 9), session QoE and its three components
(Fig. 11), rebuffering counts, and quality statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..power.energy import SegmentEnergy
from ..power.models import TilingScheme
from ..qoe.metrics import SegmentQoE, SessionQoE

__all__ = ["SegmentRecord", "SessionResult", "mean_sessions", "normalize_by"]


@dataclass(frozen=True)
class SegmentRecord:
    """Everything measured for one downloaded segment."""

    index: int
    quality: int
    frame_rate: float
    size_mbit: float
    download_time_s: float
    wait_s: float
    stall_s: float
    buffer_before_s: float
    coverage: float
    qo_effective: float
    qoe: SegmentQoE
    energy: SegmentEnergy
    decode_scheme: TilingScheme
    used_ptile: bool
    # Bytes of this segment served by the edge cache (0 without an
    # attached EdgeHitModel); the miss remainder crossed the backhaul.
    edge_hit_mbit: float = 0.0
    # Resilience accounting (all zero on the ideal, fault-free path):
    # download attempts beyond the first, attempts aborted by the
    # playback deadline, and the delivered rung of the degradation
    # ladder as an int (repro.resilience.policy.DegradationLevel:
    # 0=FULL, 1=REDUCED, 2=LOW_LAYER, 3=SKIPPED).
    retries: int = 0
    timeouts: int = 0
    degraded_level: int = 0
    # Uncertainty accounting (robust planning; trusting defaults on the
    # point-prediction paths): the planner's expected viewport coverage
    # of the downloaded region and the angular error scale (degrees) it
    # planned against.
    expected_coverage: float = 1.0
    uncertainty_deg: float = 0.0


@dataclass
class SessionResult:
    """Aggregated outcome of one streaming session."""

    scheme_name: str
    video_id: int
    user_id: int
    device_name: str
    network_name: str
    records: list[SegmentRecord] = field(default_factory=list)

    def add(self, record: SegmentRecord) -> None:
        self.records.append(record)

    @property
    def num_segments(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Energy (Fig. 9 / Fig. 10)
    # ------------------------------------------------------------------

    @property
    def energy(self) -> SegmentEnergy:
        """Total session energy with its three components (joules)."""
        total = SegmentEnergy.zero()
        for record in self.records:
            total = total + record.energy
        return total

    @property
    def total_energy_j(self) -> float:
        return self.energy.total_j

    @property
    def energy_per_segment_j(self) -> float:
        self._require_records()
        return self.total_energy_j / self.num_segments

    # ------------------------------------------------------------------
    # QoE (Fig. 11)
    # ------------------------------------------------------------------

    @property
    def session_qoe(self) -> SessionQoE:
        session = SessionQoE()
        for record in self.records:
            session.add(record.qoe)
        return session

    @property
    def mean_qoe(self) -> float:
        return self.session_qoe.mean_q

    @property
    def mean_quality_level(self) -> float:
        self._require_records()
        return float(np.mean([r.quality for r in self.records]))

    @property
    def mean_frame_rate(self) -> float:
        self._require_records()
        return float(np.mean([r.frame_rate for r in self.records]))

    @property
    def mean_coverage(self) -> float:
        self._require_records()
        return float(np.mean([r.coverage for r in self.records]))

    # ------------------------------------------------------------------
    # Stalls
    # ------------------------------------------------------------------

    @property
    def total_stall_s(self) -> float:
        return sum(r.stall_s for r in self.records)

    @property
    def rebuffer_count(self) -> int:
        """Stalled segments, excluding the cold-start first download."""
        return sum(1 for r in self.records if r.stall_s > 0 and r.index > 0)

    @property
    def ptile_hit_rate(self) -> float:
        self._require_records()
        return float(np.mean([r.used_ptile for r in self.records]))

    # ------------------------------------------------------------------
    # Edge cache
    # ------------------------------------------------------------------

    @property
    def total_edge_hit_mbit(self) -> float:
        """Bytes the edge cache served across the whole session."""
        return sum(r.edge_hit_mbit for r in self.records)

    @property
    def edge_hit_fraction(self) -> float:
        """Fraction of downloaded bytes served at the edge."""
        total = sum(r.size_mbit for r in self.records)
        if total <= 0:
            return 0.0
        return self.total_edge_hit_mbit / total

    # ------------------------------------------------------------------
    # Resilience (fault-injected sessions; all zero on the ideal path)
    # ------------------------------------------------------------------

    @property
    def total_retries(self) -> int:
        """Download attempts beyond the first, summed over segments."""
        return sum(r.retries for r in self.records)

    @property
    def total_timeouts(self) -> int:
        """Attempts aborted by the playback deadline, summed."""
        return sum(r.timeouts for r in self.records)

    @property
    def degraded_segment_count(self) -> int:
        """Segments delivered below the scheme's planned rung."""
        return sum(1 for r in self.records if r.degraded_level > 0)

    @property
    def skipped_segment_count(self) -> int:
        """Segments skipped outright (DegradationLevel.SKIPPED)."""
        return sum(1 for r in self.records if r.degraded_level >= 3)

    # ------------------------------------------------------------------
    # Uncertainty (robust planning; trusting defaults elsewhere)
    # ------------------------------------------------------------------

    @property
    def mean_expected_coverage(self) -> float:
        """Mean planner-expected viewport coverage across segments."""
        self._require_records()
        return float(np.mean([r.expected_coverage for r in self.records]))

    @property
    def mean_uncertainty_deg(self) -> float:
        """Mean angular error scale (degrees) planned against."""
        self._require_records()
        return float(np.mean([r.uncertainty_deg for r in self.records]))

    def _require_records(self) -> None:
        if not self.records:
            raise ValueError("session has no records")


def mean_sessions(results: list[SessionResult]) -> dict[str, float]:
    """Average the headline metrics over a batch of sessions."""
    if not results:
        raise ValueError("no sessions to aggregate")
    return {
        "energy_j": float(np.mean([r.total_energy_j for r in results])),
        "energy_per_segment_j": float(
            np.mean([r.energy_per_segment_j for r in results])
        ),
        "transmission_j": float(np.mean([r.energy.transmission_j for r in results])),
        "decoding_j": float(np.mean([r.energy.decoding_j for r in results])),
        "rendering_j": float(np.mean([r.energy.rendering_j for r in results])),
        "qoe": float(np.mean([r.mean_qoe for r in results])),
        "qo": float(np.mean([r.session_qoe.mean_qo for r in results])),
        "variation": float(np.mean([r.session_qoe.mean_variation for r in results])),
        "rebuffer_penalty": float(
            np.mean([r.session_qoe.mean_rebuffer for r in results])
        ),
        "rebuffer_count": float(np.mean([r.rebuffer_count for r in results])),
        "stall_s": float(np.mean([r.total_stall_s for r in results])),
        "quality_level": float(np.mean([r.mean_quality_level for r in results])),
        "frame_rate": float(np.mean([r.mean_frame_rate for r in results])),
        "coverage": float(np.mean([r.mean_coverage for r in results])),
    }


def normalize_by(
    metrics: dict[str, dict[str, float]], baseline: str, key: str
) -> dict[str, float]:
    """Normalize one metric across schemes by a baseline scheme
    (the paper normalizes energy and QoE by Ctile)."""
    if baseline not in metrics:
        raise KeyError(f"baseline {baseline!r} missing from metrics")
    base = metrics[baseline][key]
    if base == 0:
        raise ZeroDivisionError(f"baseline metric {key!r} is zero")
    return {scheme: values[key] / base for scheme, values in metrics.items()}
