"""FoV-aware edge caching of tiles and Ptiles.

Related work the paper builds on (Mahzari et al. [11]) caches
360° video tiles at the network edge.  Ptiles are a natural fit: by
construction they concentrate most users' requests onto one or two
objects per segment, so a small edge cache absorbs almost all Ptile
traffic, while conventional tiling spreads requests over many
(tile, quality) objects.

:class:`EdgeCache` is a byte-capacity cache with LRU or LFU eviction;
:func:`simulate_cache` replays a request stream; and
:func:`ptile_vs_ctile_caching` builds the two request streams from a
video's viewing traces and compares hit ratios and backhaul traffic.

Multi-tenant sharing: one physical edge serves viewer populations of
*different* videos at once.  :class:`CacheTenant` names one video's
population, :func:`interleave_tenant_requests` merges the populations
into the segment-synchronous request stream the edge actually sees, and
:func:`build_shared_edge_hit_models` replays that stream through a
single capacity-bounded :class:`EdgeCache` to train contention-aware
per-video :class:`EdgeHitModel`\\ s (tenants compete for the same bytes
of capacity, so each video's hit ratios are lower than a private cache
of the same size would give it).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..geometry.tiling import TileGrid
from ..ptile.construction import SegmentPtiles
from ..traces.head_movement import HeadTrace
from ..video.segments import VideoManifest
from .schemes import LOWEST_QUALITY

__all__ = ["CacheStats", "EdgeCache", "EdgeHitModel", "simulate_cache",
           "build_edge_hit_model", "ptile_vs_ctile_caching",
           "CacheTenant", "SharedCacheResult", "interleave_tenant_requests",
           "build_shared_edge_hit_models"]


@dataclass
class CacheStats:
    """Request-stream outcome."""

    requests: int = 0
    hits: int = 0
    bytes_requested_mbit: float = 0.0
    bytes_backhaul_mbit: float = 0.0

    @property
    def hit_ratio(self) -> float:
        return 0.0 if self.requests == 0 else self.hits / self.requests

    @property
    def byte_hit_ratio(self) -> float:
        if self.bytes_requested_mbit == 0:
            return 0.0
        return 1.0 - self.bytes_backhaul_mbit / self.bytes_requested_mbit


@dataclass
class EdgeCache:
    """Capacity-bounded object cache with LRU or LFU eviction.

    LFU frequencies are tracked for *resident* objects only and dropped
    on eviction (LFU with aging): a re-admitted object restarts its
    count instead of inheriting request counts from a long-gone tenure,
    and the frequency table stays bounded by the number of resident
    objects no matter how long the request stream runs.  Never-stored
    objects (larger than the whole cache) are not counted at all.
    """

    capacity_mbit: float
    policy: str = "lru"
    _objects: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _frequency: dict = field(default_factory=dict, repr=False)
    _used_mbit: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_mbit <= 0:
            raise ValueError("capacity must be positive")
        if self.policy not in ("lru", "lfu"):
            raise ValueError(f"unknown policy {self.policy!r}")

    @property
    def used_mbit(self) -> float:
        return self._used_mbit

    def request(self, key, size_mbit: float) -> bool:
        """Serve one request; returns True on a cache hit.

        Misses fetch the object over the backhaul and insert it,
        evicting by policy until it fits (objects larger than the whole
        cache are served but not stored).  A hit whose ``size_mbit``
        differs from the stored size (a re-encoded object) updates the
        stored size and the capacity accounting, evicting as needed; if
        the new size no longer fits at all, the object is dropped and
        the request counts as a miss.
        """
        if size_mbit < 0:
            raise ValueError("size must be non-negative")
        if key in self._objects:
            stored = self._objects[key]
            if stored != size_mbit:
                # Stale size: re-admit at the new size so _used_mbit
                # tracks reality instead of drifting.
                self._used_mbit -= self._objects.pop(key)
                if not self._objects:
                    self._used_mbit = 0.0
                if size_mbit > self.capacity_mbit:
                    self._frequency.pop(key, None)
                    return False
                self._store(key, size_mbit)
                return True
            self._frequency[key] = self._frequency.get(key, 0) + 1
            self._objects.move_to_end(key)
            return True
        if size_mbit <= self.capacity_mbit:
            self._store(key, size_mbit)
        return False

    def _store(self, key, size_mbit: float) -> None:
        # Guard on residency: float residue in _used_mbit could otherwise
        # demand an eviction from an already-empty cache when size_mbit
        # is within rounding error of the full capacity.
        while self._objects and self._used_mbit + size_mbit > self.capacity_mbit:
            self._evict()
        self._objects[key] = size_mbit
        self._used_mbit += size_mbit
        self._frequency[key] = self._frequency.get(key, 0) + 1

    def _evict(self) -> None:
        if not self._objects:  # pragma: no cover - guarded by caller
            raise RuntimeError("evicting from an empty cache")
        if self.policy == "lru":
            key, size = self._objects.popitem(last=False)
        else:  # lfu: evict the least-frequently requested resident
            key = min(self._objects, key=lambda k: self._frequency.get(k, 0))
            size = self._objects.pop(key)
        self._used_mbit -= size
        if not self._objects:
            # An empty cache holds exactly zero bytes; reset so
            # subtraction residue never accumulates across tenures.
            self._used_mbit = 0.0
        # LFU aging: an evicted object's count dies with it, so the
        # table never outgrows the resident set and a re-admission
        # competes on its new tenure, not its ancient popularity.
        self._frequency.pop(key, None)


def simulate_cache(
    requests,
    capacity_mbit: float,
    policy: str = "lru",
) -> CacheStats:
    """Replay ``(key, size_mbit)`` requests through an edge cache."""
    cache = EdgeCache(capacity_mbit=capacity_mbit, policy=policy)
    stats = CacheStats()
    for key, size in requests:
        stats.requests += 1
        stats.bytes_requested_mbit += size
        if cache.request(key, size):
            stats.hits += 1
        else:
            stats.bytes_backhaul_mbit += size
    return stats


def _ctile_segment_requests(seg, traces, grid: TileGrid, quality: int,
                            fov_deg: float):
    """One segment's requests from a concurrent Ctile population."""
    for trace in traces:
        viewport = trace.viewport_at(
            (seg.segment_index + 0.5) * 1.0, fov_deg
        )
        fov_tiles = grid.viewport_tiles(viewport)
        for tile in sorted(fov_tiles):
            key = ("tile", seg.segment_index, tile.row, tile.col, quality)
            yield key, seg.tile_size_mbit(tile, quality)
        # Background tiles at the lowest quality.
        for tile in sorted(set(grid.tiles()) - fov_tiles):
            key = ("tile", seg.segment_index, tile.row, tile.col,
                   LOWEST_QUALITY)
            yield key, seg.tile_size_mbit(tile, LOWEST_QUALITY)


def _ptile_segment_requests(seg, sp: SegmentPtiles, traces, quality: int,
                            fov_deg: float):
    """One segment's requests from a concurrent Ptile population."""
    for trace in traces:
        viewport = trace.viewport_at(
            (seg.segment_index + 0.5) * 1.0, fov_deg
        )
        ptile = sp.match(viewport)
        if ptile is None:
            continue  # falls back to Ctile; not counted here
        key = ("ptile", seg.segment_index, ptile.index, quality)
        yield key, seg.region_size_mbit(
            ptile.region_key, ptile.area_fraction, quality
        )
        for block in sp.remainder_for(ptile):
            key = ("rem", seg.segment_index, block.key, LOWEST_QUALITY)
            yield key, seg.region_size_mbit(
                block.key, block.area_fraction, LOWEST_QUALITY
            )


def _ctile_requests(
    manifest: VideoManifest,
    traces: list[HeadTrace],
    grid: TileGrid,
    quality: int,
    fov_deg: float,
):
    """Requests a Ctile viewer population generates.

    Viewers watch concurrently, so the stream interleaves per segment:
    every viewer's requests for segment k arrive before segment k+1 —
    the temporal locality an edge cache actually sees.
    """
    for seg in manifest:
        yield from _ctile_segment_requests(seg, traces, grid, quality,
                                           fov_deg)


def _ptile_requests(
    manifest: VideoManifest,
    traces: list[HeadTrace],
    ptiles: list[SegmentPtiles],
    quality: int,
    fov_deg: float,
):
    """Ptile viewer population's requests, interleaved per segment."""
    for seg in manifest:
        yield from _ptile_segment_requests(
            seg, ptiles[seg.segment_index], traces, quality, fov_deg
        )


@dataclass(frozen=True)
class EdgeHitModel:
    """Per-segment byte hit ratios of an edge cache, for sessions.

    Trained offline from a viewing population (see
    :func:`build_edge_hit_model`) and attached to
    :class:`~repro.streaming.session.SessionConfig`: the session serves
    the cached fraction of every download at the edge link rate and only
    the miss fraction over the backhaul network trace, so edge caching
    shortens downloads — and thereby rebuffering — in fig9-style sweeps.
    Deterministic by construction, so cached sessions stay reproducible.
    """

    hit_ratios: tuple[float, ...]
    edge_bandwidth_mbps: float = 200.0

    def __post_init__(self) -> None:
        if self.edge_bandwidth_mbps <= 0:
            raise ValueError("edge bandwidth must be positive")
        if any(not 0.0 <= r <= 1.0 for r in self.hit_ratios):
            raise ValueError("hit ratios must be in [0, 1]")

    def hit_ratio(self, segment_index: int) -> float:
        """Byte hit ratio for one segment, clamped to the trained range
        (first ratio before index 0, last ratio past the end)."""
        if not self.hit_ratios:
            return 0.0
        clamped = max(0, min(segment_index, len(self.hit_ratios) - 1))
        return self.hit_ratios[clamped]

    @property
    def mean_hit_ratio(self) -> float:
        if not self.hit_ratios:
            return 0.0
        return sum(self.hit_ratios) / len(self.hit_ratios)


def build_edge_hit_model(
    manifest: VideoManifest,
    traces: list[HeadTrace],
    ptiles: list[SegmentPtiles],
    *,
    capacity_mbit: float = 2000.0,
    quality: int = 3,
    fov_deg: float = 100.0,
    policy: str = "lru",
    edge_bandwidth_mbps: float = 200.0,
) -> EdgeHitModel:
    """Train per-segment byte hit ratios from a viewing population.

    Replays the population's Ptile requests (the same stream as
    :func:`ptile_vs_ctile_caching`) through one :class:`EdgeCache` and
    tallies, per segment, what fraction of the requested bytes the cache
    served.  A later individual session then experiences those hit
    ratios: its per-segment Ptile request is statistically one of the
    population's.
    """
    if not traces:
        raise ValueError("need at least one viewer")
    n = manifest.num_segments
    requested = [0.0] * n
    hit = [0.0] * n
    cache = EdgeCache(capacity_mbit=capacity_mbit, policy=policy)
    for key, size in _ptile_requests(manifest, traces, ptiles, quality,
                                     fov_deg):
        segment_index = key[1]
        requested[segment_index] += size
        if cache.request(key, size):
            hit[segment_index] += size
    ratios = tuple(
        h / r if r > 0 else 0.0 for h, r in zip(hit, requested)
    )
    return EdgeHitModel(
        hit_ratios=ratios, edge_bandwidth_mbps=edge_bandwidth_mbps
    )


# ----------------------------------------------------------------------
# Multi-tenant sharing: populations of different videos, one edge cache.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheTenant:
    """One video's viewer population at a shared edge.

    ``ptiles`` may be omitted for Ctile-only replays; the Ptile request
    stream requires it.
    """

    video_id: int
    manifest: VideoManifest
    traces: tuple[HeadTrace, ...]
    ptiles: list[SegmentPtiles] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "traces", tuple(self.traces))
        if not self.traces:
            raise ValueError(
                f"tenant {self.video_id} needs at least one viewer"
            )


def interleave_tenant_requests(
    tenants,
    *,
    scheme: str = "ptile",
    quality: int = 3,
    fov_deg: float = 100.0,
):
    """Merge tenant populations into one edge-side request stream.

    The interleaving policy is segment-synchronous, viewer-interleaved
    round-robin: all populations start playback together and advance in
    lockstep, so in round ``k`` every tenant whose video still has a
    segment ``k`` participates; within the round, *viewers* alternate
    across tenants (viewer 0 of every tenant, then viewer 1, ...), each
    issuing its full request burst for its segment.  Tenant populations
    therefore genuinely compete for residency inside every round — a
    tenant-contiguous interleave would let each population finish with
    an object before the next tenant could evict it, hiding contention
    entirely.  Tenants whose video has ended drop out of later rounds.

    Keys are namespaced by video id, so objects of distinct videos can
    never collide in the cache.  Yields ``(video_id, segment_index, key,
    size_mbit)`` tuples.
    """
    tenants = tuple(tenants)
    if not tenants:
        raise ValueError(
            "cannot interleave an empty tenant collection; pass at least "
            "one CacheTenant (an empty stream would silently train "
            "all-miss hit models)"
        )
    if scheme not in ("ptile", "ctile"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if scheme == "ptile":
        missing = [t.video_id for t in tenants if t.ptiles is None]
        if missing:
            raise ValueError(
                f"tenants {missing} have no Ptiles (required for the "
                "ptile request stream)"
            )
    rounds = max((t.manifest.num_segments for t in tenants), default=0)
    max_viewers = max((len(t.traces) for t in tenants), default=0)
    for k in range(rounds):
        for viewer in range(max_viewers):
            for tenant in tenants:
                if k >= tenant.manifest.num_segments:
                    continue
                if viewer >= len(tenant.traces):
                    continue
                seg = tenant.manifest[k]
                viewers = (tenant.traces[viewer],)
                if scheme == "ctile":
                    stream = _ctile_segment_requests(
                        seg, viewers, tenant.manifest.encoder.grid,
                        quality, fov_deg,
                    )
                else:
                    stream = _ptile_segment_requests(
                        seg, tenant.ptiles[k], viewers, quality, fov_deg
                    )
                for key, size in stream:
                    yield tenant.video_id, k, (tenant.video_id,) + key, size


@dataclass
class SharedCacheResult:
    """Outcome of a multi-tenant replay through one edge cache.

    ``models`` holds one contention-aware :class:`EdgeHitModel` per
    tenant video — the per-segment byte hit ratios that video's viewers
    experienced while every other tenant competed for the same capacity.
    """

    capacity_mbit: float
    policy: str
    scheme: str
    models: dict[int, EdgeHitModel]
    per_video: dict[int, CacheStats]
    overall: CacheStats

    @property
    def mean_hit_ratio(self) -> float:
        """Population-mean of the per-video model hit ratios."""
        if not self.models:
            return 0.0
        ratios = [m.mean_hit_ratio for m in self.models.values()]
        return sum(ratios) / len(ratios)


def build_shared_edge_hit_models(
    tenants,
    *,
    capacity_mbit: float = 2000.0,
    quality: int = 3,
    fov_deg: float = 100.0,
    policy: str = "lru",
    edge_bandwidth_mbps: float = 200.0,
    scheme: str = "ptile",
) -> SharedCacheResult:
    """Train contention-aware per-video hit models at a shared edge.

    The interleaved request stream of every tenant population (see
    :func:`interleave_tenant_requests`) replays through **one**
    capacity-bounded :class:`EdgeCache`; per (video, segment) the
    requested and cache-served bytes are tallied, so each video's
    :class:`EdgeHitModel` reflects the capacity its objects actually won
    against the other tenants — unlike :func:`build_edge_hit_model`,
    which gives every video a private cache.  Deterministic for a fixed
    tenant tuple, so downstream sessions and their cached results stay
    reproducible.
    """
    tenants = tuple(tenants)
    if not tenants:
        raise ValueError(
            "cannot train shared edge hit models without tenants; pass "
            "at least one CacheTenant"
        )
    ids = [t.video_id for t in tenants]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate tenant video ids {sorted(ids)}")

    requested = {t.video_id: [0.0] * t.manifest.num_segments for t in tenants}
    hit = {t.video_id: [0.0] * t.manifest.num_segments for t in tenants}
    per_video = {t.video_id: CacheStats() for t in tenants}
    overall = CacheStats()
    cache = EdgeCache(capacity_mbit=capacity_mbit, policy=policy)
    for video_id, seg_index, key, size in interleave_tenant_requests(
        tenants, scheme=scheme, quality=quality, fov_deg=fov_deg
    ):
        stats = per_video[video_id]
        stats.requests += 1
        stats.bytes_requested_mbit += size
        overall.requests += 1
        overall.bytes_requested_mbit += size
        requested[video_id][seg_index] += size
        if cache.request(key, size):
            stats.hits += 1
            overall.hits += 1
            hit[video_id][seg_index] += size
        else:
            stats.bytes_backhaul_mbit += size
            overall.bytes_backhaul_mbit += size

    if overall.requests == 0:
        raise ValueError(
            "tenant populations produced an empty request stream "
            "(no video has any segment to request); refusing to train "
            "all-miss hit models"
        )
    models = {
        video_id: EdgeHitModel(
            hit_ratios=tuple(
                h / r if r > 0 else 0.0
                for h, r in zip(hit[video_id], requested[video_id])
            ),
            edge_bandwidth_mbps=edge_bandwidth_mbps,
        )
        for video_id in requested
    }
    return SharedCacheResult(
        capacity_mbit=capacity_mbit,
        policy=policy,
        scheme=scheme,
        models=models,
        per_video=per_video,
        overall=overall,
    )


def ptile_vs_ctile_caching(
    manifest: VideoManifest,
    traces: list[HeadTrace],
    ptiles: list[SegmentPtiles],
    capacity_mbit: float = 500.0,
    quality: int = 3,
    fov_deg: float = 100.0,
    policy: str = "lru",
) -> dict[str, CacheStats]:
    """Compare edge-cache behaviour of the two tiling schemes.

    The same viewer population replays through the same-capacity cache;
    returns per-scheme :class:`CacheStats`.
    """
    if not traces:
        raise ValueError("need at least one viewer")
    grid = manifest.encoder.grid
    return {
        "ctile": simulate_cache(
            _ctile_requests(manifest, traces, grid, quality, fov_deg),
            capacity_mbit,
            policy,
        ),
        "ptile": simulate_cache(
            _ptile_requests(manifest, traces, ptiles, quality, fov_deg),
            capacity_mbit,
            policy,
        ),
    }
