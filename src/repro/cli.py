"""Command-line interface.

``repro-360`` regenerates any of the paper's tables and figures from the
terminal::

    repro-360 table1
    repro-360 fig8
    repro-360 fig9 --device galaxys20 --duration 120 --users 2
    repro-360 all --duration 60 --users 1

Experiments that simulate streaming sessions accept ``--duration`` (clip
videos to a prefix, seconds) and ``--users`` (test users per video) to
trade fidelity for speed; the defaults run a moderate subsample.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    ArtifactStore,
    ShardedResultsStore,
    default_cache_dir,
    make_setup,
    print_lines,
    run_comparison,
    run_fig2,
    run_fig4,
    run_fig5,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig11,
    run_table2,
    summarize_energy,
    summarize_qoe,
    table1_rows,
    table3_rows,
)
from .power.models import PIXEL_3, get_device

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-360",
        description=(
            "Reproduce tables and figures of 'Energy-Efficient and "
            "QoE-Aware 360-Degree Video Streaming on Mobile Devices' "
            "(ICDCS 2022)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "table2", "table3",
            "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "ablation", "ladder", "shared-cache",
            "resilience", "robust", "population", "serve", "report", "all",
        ],
        help="which table/figure to regenerate (or 'serve' to run the "
             "online decision service)",
    )
    parser.add_argument(
        "--duration", type=int, default=120,
        help="clip videos to this many seconds (session experiments)",
    )
    parser.add_argument(
        "--users", type=int, default=2,
        help="test users per video (session experiments)",
    )
    parser.add_argument(
        "--device", default="pixel3",
        help="device for fig9/fig11 (pixel3, nexus5x, galaxys20)",
    )
    parser.add_argument(
        "--seed", type=int, default=2017, help="dataset seed"
    )
    parser.add_argument(
        "--workers", type=_workers_arg, default=1,
        help="worker processes for session sweeps (1 = serial,"
             " 0 = auto-detect CPUs); results are identical either way",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the report to this file (report command)",
    )
    parser.add_argument(
        "--artifact-cache", metavar="DIR", default=None,
        help="directory of the content-prep artifact cache (default: "
             f"{default_cache_dir()}; env REPRO_ARTIFACT_CACHE overrides). "
             "Warm runs skip manifest/Ptile/Ftile construction; results "
             "are identical either way",
    )
    parser.add_argument(
        "--no-artifact-cache", action="store_true",
        help="disable the artifact cache and rebuild all content-prep "
             "artifacts from scratch",
    )
    parser.add_argument(
        "--results-cache", metavar="DIR", default=None,
        help="directory of the session-results cache (default: shares "
             "the artifact-cache directory). Warm runs of an identical "
             "sweep deserialize stored results instead of re-simulating; "
             "aggregates are identical either way",
    )
    parser.add_argument(
        "--no-results-cache", action="store_true",
        help="disable the session-results cache and re-simulate every "
             "session",
    )
    parser.add_argument(
        "--legacy-results-cache", action="store_true",
        help="store session results as one pickle per session instead "
             "of columnar per-(context, video) shards; reads existing "
             "entries either way, but sweeps at population scale are "
             "much slower (one file open per session)",
    )
    parser.add_argument(
        "--cache-capacities", metavar="MBIT[,MBIT...]",
        default="0,500,2000,8000",
        help="shared edge-cache capacities to sweep, comma-separated "
             "Mbit (shared-cache experiment; 0 = no cache baseline)",
    )
    parser.add_argument(
        "--cache-policy", choices=("lru", "lfu"), default="lru",
        help="eviction policy of the shared edge cache "
             "(shared-cache experiment)",
    )
    parser.add_argument(
        "--tenant-videos", metavar="ID[,ID...]", default="5,8",
        help="video ids of the tenant populations competing for the "
             "shared edge cache (shared-cache experiment)",
    )
    parser.add_argument(
        "--tenant-viewers", type=int, default=8,
        help="training viewers per tenant video in the shared-cache "
             "population (shared-cache experiment)",
    )
    parser.add_argument(
        "--fault-profile", metavar="NAME[,NAME...]",
        default="none,outages,collapse,lossy,stress",
        help="fault profiles to sweep, comma-separated (resilience "
             "experiment); 'none' runs the ideal fault-free path",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed of the deterministic fault plans (resilience "
             "experiment); a fixed (profile, seed) pair always yields "
             "byte-identical sessions",
    )
    parser.add_argument(
        "--arrival-rate", type=float, default=0.5,
        help="mean session arrivals per second (population experiment)",
    )
    parser.add_argument(
        "--diurnal-amplitude", type=float, default=0.3,
        help="sinusoidal swing of the arrival rate in [0, 1) "
             "(population experiment; 0 = homogeneous Poisson)",
    )
    parser.add_argument(
        "--arrival-window", type=float, default=120.0,
        help="seconds of arrivals to simulate (population experiment)",
    )
    parser.add_argument(
        "--population-scheme", default="ours",
        choices=("ctile", "ptile", "ours"),
        help="streaming scheme the population runs (population "
             "experiment; the batched engine supports these three)",
    )
    parser.add_argument(
        "--port", type=int, default=7360,
        help="TCP port of the decision service (serve command; 0 picks "
             "an ephemeral port)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="most plan requests coalesced into one vectorized MPC "
             "pass (serve command)",
    )
    parser.add_argument(
        "--batch-wait-us", type=float, default=200.0,
        help="microseconds the dispatcher waits after the first queued "
             "request for co-arrivals before serving the batch (serve "
             "command; 0 = only coalesce what already queued)",
    )
    parser.add_argument(
        "--videos", metavar="ID[,ID...]", default="8",
        help="video ids the decision service builds plan tables for "
             "(serve command)",
    )
    parser.add_argument(
        "--quality-targets", metavar="QO[,QO...]", default=None,
        help="per-level mean-quality (Eq. 3 Qo) floors the ladder "
             "optimizer must hold, comma-separated lowest-to-highest "
             "level (ladder experiment; default: the catalog's 25th-"
             "percentile per-level quality under the fixed ladder)",
    )
    parser.add_argument(
        "--ladder-cache", metavar="DIR", default=None,
        help="directory of the per-video ladder-search cache (ladder "
             "experiment; default: shares the artifact-cache directory). "
             "Warm runs reuse searches keyed by video content, targets, "
             "and search config; results are identical either way",
    )
    parser.add_argument(
        "--movable-levels", type=int, default=1,
        help="how many of the lowest quality rungs the ladder search "
             "may move (ladder experiment; 0 = all non-pinned rungs). "
             "The default moves only the background rung, which is a "
             "strict bits-and-energy win; larger values shed more "
             "ladder bits but let the MPC trade them into quality",
    )
    parser.add_argument(
        "--uncertainty", type=float, default=8.0,
        help="base angular error scale sigma in degrees of the robust "
             "planner's Gaussian error model (robust experiment; 0 "
             "degenerates to the point-prediction 'ours' bit-for-bit)",
    )
    parser.add_argument(
        "--uncertainty-growth", type=float, default=6.0,
        help="degrees of additional error scale per second of "
             "prediction horizon (robust experiment)",
    )
    parser.add_argument(
        "--robust-scheme", choices=("robust", "pano"), default="robust",
        help="robust planner variant: 'robust' maximizes expected "
             "viewport coverage; 'pano' adds the Pano-style perceptual "
             "polar discount to the hypothesis weights (robust "
             "experiment)",
    )
    parser.add_argument(
        "--retry-budget", type=int, default=2,
        help="download attempts beyond the first per segment before "
             "degrading to a skip (resilience experiment)",
    )
    parser.add_argument(
        "--timeout-slack", type=float, default=0.75,
        help="seconds past the playback deadline a segment fetch may "
             "run before being aborted (resilience experiment)",
    )
    return parser


def _workers_arg(raw: str) -> int:
    """Validate ``--workers`` at parse time with an actionable message
    instead of failing deep inside the process pool."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count, got {raw!r}"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"{value} is not a valid worker count: pass a positive "
            "number of worker processes, or 0 to auto-detect CPUs"
        )
    return value


def _parse_csv(raw: str, convert, flag: str, parser) -> tuple:
    try:
        values = tuple(convert(part) for part in raw.split(",") if part.strip())
    except ValueError:
        parser.error(f"{flag} expects comma-separated values, got {raw!r}")
    if not values:
        parser.error(f"{flag} needs at least one value")
    return values


def _artifact_store(args: argparse.Namespace) -> ArtifactStore | None:
    if args.no_artifact_cache:
        return None
    return ArtifactStore(args.artifact_cache)


def _results_store(args: argparse.Namespace) -> ArtifactStore | None:
    # Columnar shards by default: one file per (context, video) group
    # instead of one pickle per session.  --legacy-results-cache keeps
    # the old per-session layout; both read entries written by either.
    store_cls = (
        ArtifactStore if args.legacy_results_cache else ShardedResultsStore
    )
    if args.no_results_cache:
        return None
    if args.results_cache is not None:
        return store_cls(args.results_cache)
    # By default the results cache shares the artifact-cache directory,
    # so disabling that disables this too unless a directory is given.
    if args.no_artifact_cache:
        return None
    return store_cls(args.artifact_cache)


def _run_one(name: str, args: argparse.Namespace) -> None:
    if name == "table1":
        print_lines(table1_rows())
    elif name == "table2":
        print_lines(run_table2().report())
    elif name == "table3":
        print_lines(table3_rows())
    elif name == "fig2":
        print_lines(run_fig2(workers=args.workers).report())
    elif name == "fig4":
        print_lines(run_fig4().report())
    elif name == "fig5":
        setup = make_setup(max_duration_s=args.duration, seed=args.seed)
        print_lines(run_fig5(setup.dataset).report())
    elif name == "fig6":
        from .experiments import run_fig6

        print_lines(run_fig6().report())
    elif name == "fig7":
        setup = make_setup(max_duration_s=args.duration, seed=args.seed,
                           artifacts=_artifact_store(args))
        print_lines(run_fig7(setup).report())
    elif name == "fig8":
        print_lines(run_fig8(segments_per_video=60).report())
    elif name in ("fig9", "fig11"):
        device = get_device(args.device)
        setup = make_setup(max_duration_s=args.duration, seed=args.seed,
                           artifacts=_artifact_store(args))
        results = run_comparison(setup, device, users_per_video=args.users,
                                 workers=args.workers,
                                 results_store=_results_store(args))
        if name == "fig9":
            print_lines(summarize_energy(results, device.name).report())
        else:
            print_lines(summarize_qoe(results).report())
    elif name == "fig10":
        setup = make_setup(max_duration_s=args.duration, seed=args.seed,
                           artifacts=_artifact_store(args))
        for device_name in ("nexus5x", "galaxys20"):
            device = get_device(device_name)
            comparison = run_fig9(setup, device, users_per_video=args.users,
                                  workers=args.workers,
                                  results_store=_results_store(args))
            print_lines(comparison.report())
    elif name == "shared-cache":
        from .experiments import sweep_shared_cache

        videos = args.tenant_videos_parsed
        setup = make_setup(max_duration_s=args.duration, seed=args.seed,
                           video_ids=videos,
                           artifacts=_artifact_store(args))
        points = sweep_shared_cache(
            setup,
            capacities_mbit=args.cache_capacities_parsed,
            video_ids=videos,
            tenant_viewers=args.tenant_viewers,
            users=args.users,
            policy=args.cache_policy,
            workers=args.workers,
            results=_results_store(args),
        )
        print(f"-- shared edge cache ({args.cache_policy},"
              f" {len(videos)} tenant video(s)) --")
        for point in points:
            print(point.report())
    elif name == "resilience":
        from .experiments import sweep_resilience

        setup = make_setup(max_duration_s=args.duration, seed=args.seed,
                           video_ids=(8,),
                           artifacts=_artifact_store(args))
        points = sweep_resilience(
            setup,
            profiles=args.fault_profiles_parsed,
            users=args.users,
            fault_seed=args.fault_seed,
            retry_budget=args.retry_budget,
            timeout_slack_s=args.timeout_slack,
            workers=args.workers,
            results=_results_store(args),
        )
        print(f"-- resilience (seed {args.fault_seed}, "
              f"retry budget {args.retry_budget}, "
              f"timeout slack {args.timeout_slack:g}s) --")
        for point in points:
            print(point.report())
    elif name == "robust":
        from .experiments import sweep_robust

        setup = make_setup(max_duration_s=args.duration, seed=args.seed,
                           video_ids=(8,),
                           artifacts=_artifact_store(args))
        points = sweep_robust(
            setup,
            profiles=args.fault_profiles_parsed,
            device=get_device(args.device),
            users=args.users,
            uncertainty_deg=args.uncertainty,
            uncertainty_growth_deg_s=args.uncertainty_growth,
            perceptual=args.robust_scheme == "pano",
            fault_seed=args.fault_seed,
            retry_budget=args.retry_budget,
            timeout_slack_s=args.timeout_slack,
            workers=args.workers,
            results=_results_store(args),
        )
        print(f"-- robust planning ({args.robust_scheme}, "
              f"sigma {args.uncertainty:g}deg "
              f"+{args.uncertainty_growth:g}deg/s, "
              f"fault seed {args.fault_seed}) --")
        for point in points:
            print(point.report())
    elif name == "population":
        from .experiments import run_population
        from .traces.arrivals import DiurnalPoissonArrivals

        setup = make_setup(max_duration_s=args.duration, seed=args.seed,
                           video_ids=(8,),
                           artifacts=_artifact_store(args))
        arrivals = DiurnalPoissonArrivals(
            rate_per_s=args.arrival_rate,
            amplitude=args.diurnal_amplitude,
            # diurnal cycle compressed onto the simulated window so the
            # swing is visible inside short runs
            period_s=max(args.arrival_window, 1.0),
            seed=args.seed,
        )
        summary = run_population(
            setup,
            get_device(args.device),
            scheme_name=args.population_scheme,
            arrivals=arrivals,
            window_s=args.arrival_window,
        )
        print(f"-- population ({args.population_scheme}, "
              f"rate {args.arrival_rate:g}/s, "
              f"amplitude {args.diurnal_amplitude:g}, "
              f"window {args.arrival_window:g}s) --")
        print(summary.report())
    elif name == "serve":
        from .serving import DecisionService, ServiceConfig, build_planners
        from .serving import run_server

        videos = args.videos_parsed
        setup = make_setup(max_duration_s=args.duration, seed=args.seed,
                           video_ids=videos,
                           artifacts=_artifact_store(args))
        planners = build_planners(setup, videos,
                                  device=get_device(args.device),
                                  workers=args.workers)
        service = DecisionService(planners, ServiceConfig(
            max_batch=args.max_batch, batch_wait_us=args.batch_wait_us,
        ))

        def _on_ready(port: int) -> None:
            print(f"decision service: videos {sorted(planners)} on "
                  f"127.0.0.1:{port} (max batch {args.max_batch}, "
                  f"batch wait {args.batch_wait_us:g}us); Ctrl-C stops",
                  flush=True)

        run_server(service, port=args.port, on_ready=_on_ready)
        snap = service.stats.snapshot()
        print(f"served {snap['requests']} request(s) in "
              f"{snap['batches']} batch(es), mean batch "
              f"{snap['mean_batch_size']:.2f}, p50 {snap['p50_ms']:.3f}ms, "
              f"p99 {snap['p99_ms']:.3f}ms, {snap['errors']} error(s)")
    elif name == "ladder":
        from .encoding import LadderSearchConfig
        from .experiments import sweep_ladder

        setup = make_setup(max_duration_s=args.duration, seed=args.seed,
                           artifacts=_artifact_store(args))
        if args.ladder_cache is not None:
            ladder_store = ArtifactStore(args.ladder_cache)
        else:
            ladder_store = _artifact_store(args)
        config = LadderSearchConfig(
            movable_levels=(
                None if args.movable_levels == 0 else args.movable_levels
            ),
        )
        points = sweep_ladder(
            setup,
            device=get_device(args.device),
            users=args.users,
            quality_targets=args.quality_targets_parsed,
            search_config=config,
            ladder_store=ladder_store,
            workers=args.workers,
            results=_results_store(args),
        )
        targets_desc = (
            "q25 catalog targets" if args.quality_targets_parsed is None
            else f"targets {args.quality_targets}"
        )
        movable_desc = (
            "all rungs" if args.movable_levels == 0
            else f"lowest {args.movable_levels} rung(s)"
        )
        print(f"-- encoding ladder ({targets_desc}, {movable_desc}) --")
        for point in points:
            print(point.report())
    elif name == "ablation":
        from .experiments import (
            make_setup as _make_setup,
            sweep_bandwidth_estimator,
            sweep_clustering_sigma,
            sweep_edge_cache,
            sweep_frame_rate_ladder,
            sweep_mpc_horizon,
            sweep_qoe_tolerance,
            sweep_shared_cache,
            sweep_viewport_predictor,
        )

        setup = _make_setup(max_duration_s=args.duration, seed=args.seed,
                            video_ids=(5, 8),
                            artifacts=_artifact_store(args))
        sweeps = {
            "MPC horizon": sweep_mpc_horizon(
                setup, users=args.users, workers=args.workers
            ),
            "QoE tolerance": sweep_qoe_tolerance(
                setup, users=args.users, workers=args.workers
            ),
            "frame-rate ladder": sweep_frame_rate_ladder(
                setup, users=args.users, workers=args.workers
            ),
            "bandwidth estimator": sweep_bandwidth_estimator(
                setup, users=args.users, workers=args.workers
            ),
            "clustering sigma": sweep_clustering_sigma(
                setup, workers=args.workers
            ),
            "edge cache": sweep_edge_cache(
                setup, users=args.users, workers=args.workers
            ),
            "shared edge cache": sweep_shared_cache(
                setup, users=args.users, workers=args.workers,
                tenant_viewers=args.tenant_viewers,
                policy=args.cache_policy,
            ),
            "viewport predictor": sweep_viewport_predictor(
                setup, users=args.users, workers=args.workers
            ),
        }
        for title, points in sweeps.items():
            print(f"-- {title} --")
            for point in points:
                print(point.report())
    elif name == "report":
        from .experiments.full_report import ReportConfig, generate_report

        report_config = ReportConfig(
            max_duration_s=args.duration,
            users_per_video=args.users,
            device=args.device,
            seed=args.seed,
            workers=args.workers,
            artifacts=_artifact_store(args),
            results=_results_store(args),
        )
        text = generate_report(report_config, path=args.output)
        if args.output:
            print(f"report written to {args.output}")
        else:
            print(text)
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(f"unknown experiment {name}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:  # e.g. piped into `head`
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os._exit(0)


def _main(argv: list[str] | None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.tenant_viewers < 1:
        parser.error("--tenant-viewers must be >= 1")
    args.cache_capacities_parsed = _parse_csv(
        args.cache_capacities, float, "--cache-capacities", parser
    )
    args.tenant_videos_parsed = _parse_csv(
        args.tenant_videos, int, "--tenant-videos", parser
    )
    if any(c < 0 for c in args.cache_capacities_parsed):
        parser.error("--cache-capacities must be non-negative")
    args.fault_profiles_parsed = _parse_csv(
        args.fault_profile, str.strip, "--fault-profile", parser
    )
    args.videos_parsed = _parse_csv(args.videos, int, "--videos", parser)
    if args.quality_targets is None:
        args.quality_targets_parsed = None
    else:
        args.quality_targets_parsed = _parse_csv(
            args.quality_targets, float, "--quality-targets", parser
        )
        if any(not 0.0 <= t <= 100.0 for t in args.quality_targets_parsed):
            parser.error("--quality-targets must be Qo scores in [0, 100]")
    if args.movable_levels < 0:
        parser.error("--movable-levels must be >= 0 (0 = all non-pinned "
                     "rungs)")
    if not 0 <= args.port <= 65535:
        parser.error("--port must be in [0, 65535]")
    if args.max_batch < 1:
        parser.error("--max-batch must be >= 1")
    if args.batch_wait_us < 0:
        parser.error("--batch-wait-us must be >= 0")
    from .resilience.faults import FAULT_PROFILES

    unknown_profiles = [
        p for p in args.fault_profiles_parsed if p not in FAULT_PROFILES
    ]
    if unknown_profiles:
        parser.error(
            f"unknown fault profile(s) {', '.join(map(repr, unknown_profiles))}; "
            f"available: {', '.join(sorted(FAULT_PROFILES))}"
        )
    if args.retry_budget < 0:
        parser.error("--retry-budget must be >= 0 (0 = no retries)")
    if args.uncertainty < 0:
        parser.error("--uncertainty must be >= 0 degrees")
    if args.uncertainty_growth < 0:
        parser.error("--uncertainty-growth must be >= 0 degrees/second")
    if args.timeout_slack < 0:
        parser.error("--timeout-slack must be >= 0 seconds")
    if args.arrival_rate <= 0:
        parser.error("--arrival-rate must be positive")
    if not 0.0 <= args.diurnal_amplitude < 1.0:
        parser.error("--diurnal-amplitude must be in [0, 1)")
    if args.arrival_window <= 0:
        parser.error("--arrival-window must be positive")
    if args.experiment == "all":
        names = [
            "table1", "table2", "table3",
            "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11",
        ]
    else:
        names = [args.experiment]
    for name in names:
        print(f"== {name} ==")
        _run_one(name, args)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
