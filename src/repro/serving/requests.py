"""Plan-request model and validation for the decision service.

A :class:`PlanRequest` carries exactly what the in-process planner
reads from a :class:`~repro.streaming.schemes.PlanContext`: which
segment of which video, the client's buffer level and bandwidth
estimate, the predicted viewport and head-switching speed, and the
lookahead window length.  Everything else the service reconstructs
from its own per-video state (manifests, Ptiles, plan tables), which
is what makes service-sourced decisions bit-identical to local
planning: the context rebuilt server-side contains the same floats the
client would have assembled.

Validation is split in two layers.  :meth:`PlanRequest.validate`
checks everything knowable without a video (finiteness, signs, field
types) and raises :class:`PlanRequestError` with a stable machine-
readable ``code``; the per-video bounds (segment range, window length,
fps agreement) live in :class:`~repro.serving.planner.VideoPlanner`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PlanRequest", "PlanRequestError", "request_from_context"]


class PlanRequestError(ValueError):
    """A malformed or unserviceable plan request.

    ``code`` is a stable identifier carried over the wire protocol
    (``unknown_video``, ``bad_segment``, ``bad_buffer``, ...);
    ``message`` describes the specific failure.  Subclassing
    :class:`ValueError` keeps the in-process client contract: callers
    that don't care about codes can catch the stdlib type.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def _require_finite(code: str, name: str, value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise PlanRequestError(code, f"{name} must be a number")
    value = float(value)
    if not math.isfinite(value):
        raise PlanRequestError(code, f"{name} must be finite, got {value!r}")
    return value


def _require_int(code: str, name: str, value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise PlanRequestError(code, f"{name} must be an integer")
    return value


@dataclass(frozen=True)
class PlanRequest:
    """One segment-plan request as the decision service sees it."""

    video_id: int
    segment_index: int
    buffer_s: float
    bandwidth_mbps: float
    yaw: float
    pitch: float
    fov_h: float = 100.0
    fov_v: float = 100.0
    speed_deg_s: float = 0.0
    # Lookahead length the client would have used (run_session clips
    # the horizon at the end of the video and at max_segments; the
    # service cannot know max_segments, so the request carries the
    # resulting window).  None = the service's full horizon.
    window: int | None = None
    segment_seconds: float = 1.0
    # When given, must match the video's source frame rate (tables are
    # built at the manifest fps; serving a different one would silently
    # change the Eq. 4 factors).
    fps: float | None = None
    # False replicates a client planning without Ptiles (pure fallback).
    use_ptile: bool = True

    def validate(self) -> None:
        """Check everything knowable without the video's manifest."""
        _require_int("bad_request", "video_id", self.video_id)
        segment = _require_int("bad_segment", "segment_index",
                               self.segment_index)
        if segment < 0:
            raise PlanRequestError(
                "bad_segment", f"segment_index {segment} is negative"
            )
        buffer_s = _require_finite("bad_buffer", "buffer_s", self.buffer_s)
        if buffer_s < 0:
            raise PlanRequestError(
                "bad_buffer", f"buffer_s {buffer_s!r} is negative"
            )
        bandwidth = _require_finite(
            "bad_bandwidth", "bandwidth_mbps", self.bandwidth_mbps
        )
        if bandwidth <= 0:
            raise PlanRequestError(
                "bad_bandwidth",
                f"bandwidth_mbps {bandwidth!r} must be positive",
            )
        _require_finite("bad_viewport", "yaw", self.yaw)
        _require_finite("bad_viewport", "pitch", self.pitch)
        fov_h = _require_finite("bad_viewport", "fov_h", self.fov_h)
        fov_v = _require_finite("bad_viewport", "fov_v", self.fov_v)
        if not (0.0 < fov_h <= 360.0) or not (0.0 < fov_v <= 180.0):
            raise PlanRequestError(
                "bad_viewport", f"invalid FoV ({fov_h!r}, {fov_v!r})"
            )
        _require_finite("bad_speed", "speed_deg_s", self.speed_deg_s)
        if self.window is not None:
            window = _require_int("bad_window", "window", self.window)
            if window < 1:
                raise PlanRequestError(
                    "bad_window", f"window {window} must be >= 1"
                )
        seg_s = _require_finite(
            "bad_segment_seconds", "segment_seconds", self.segment_seconds
        )
        if seg_s <= 0:
            raise PlanRequestError(
                "bad_segment_seconds",
                f"segment_seconds {seg_s!r} must be positive",
            )
        if self.fps is not None:
            fps = _require_finite("bad_fps", "fps", self.fps)
            if fps <= 0:
                raise PlanRequestError(
                    "bad_fps", f"fps {fps!r} must be positive"
                )
        if not isinstance(self.use_ptile, bool):
            raise PlanRequestError(
                "bad_request", "use_ptile must be a boolean"
            )


def request_from_context(ctx) -> PlanRequest:
    """The request a :class:`~repro.streaming.schemes.PlanContext` maps to.

    Used by the in-process/session client: every float is passed through
    unchanged, so the service rebuilds the exact context the local
    planner would have consumed.
    """
    viewport = ctx.predicted_viewport
    return PlanRequest(
        video_id=ctx.manifest.video_id,
        segment_index=ctx.segment_index,
        buffer_s=float(ctx.buffer_s),
        bandwidth_mbps=float(ctx.bandwidth_mbps),
        yaw=float(viewport.yaw),
        pitch=float(viewport.pitch),
        fov_h=float(viewport.fov_h),
        fov_v=float(viewport.fov_v),
        speed_deg_s=float(ctx.predicted_speed_deg_s),
        window=len(ctx.future_manifests) or 1,
        segment_seconds=float(ctx.segment_seconds),
        fps=float(ctx.fps),
        use_ptile=ctx.segment_ptiles is not None,
    )
