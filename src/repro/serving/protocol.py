"""Newline-delimited JSON wire protocol for the decision service.

One request per line, one response per line, correlated by ``id``::

    -> {"id": 1, "request": {"video_id": 8, "segment_index": 3, ...}}
    <- {"id": 1, "plan": {"quality": 4, "frame_rate": 25.0, ...}}
    <- {"id": 2, "error": {"code": "bad_buffer", "message": "..."}}

Floats survive the round trip exactly: ``json`` serializes them via
``repr`` (shortest representation that parses back to the same
double), so a plan decoded from the wire compares equal — float for
float — to the :class:`DownloadPlan` the in-process planner returns.
The identity tests rely on this.
"""

from __future__ import annotations

import dataclasses
import json

from ..geometry.viewport import Rect
from ..power.models import TilingScheme
from ..streaming.schemes import DownloadPlan
from .requests import PlanRequest, PlanRequestError

__all__ = [
    "encode_request_line",
    "decode_request_line",
    "encode_response_line",
    "decode_response_line",
]

_REQUEST_FIELDS = {f.name for f in dataclasses.fields(PlanRequest)}
_REQUIRED_FIELDS = {
    f.name
    for f in dataclasses.fields(PlanRequest)
    if f.default is dataclasses.MISSING
}


def encode_request_line(request_id: int, request: PlanRequest) -> bytes:
    payload = {"id": request_id, "request": dataclasses.asdict(request)}
    return json.dumps(payload).encode() + b"\n"


def decode_request_line(line: bytes) -> tuple[object, PlanRequest]:
    """Parse one request line; raises :class:`PlanRequestError`.

    Returns ``(id, request)``; the id is echoed in the response even
    when the request itself is malformed (when the line isn't valid
    JSON at all, the error response carries ``id: null``).
    """
    try:
        payload = json.loads(line)
    except ValueError:
        raise PlanRequestError("bad_request", "line is not valid JSON")
    if not isinstance(payload, dict):
        raise PlanRequestError("bad_request", "payload must be an object")
    request_id = payload.get("id")
    fields = payload.get("request")
    if not isinstance(fields, dict):
        error = PlanRequestError(
            "bad_request", "missing 'request' object"
        )
        error.request_id = request_id
        raise error
    unknown = set(fields) - _REQUEST_FIELDS
    missing = _REQUIRED_FIELDS - set(fields)
    if unknown or missing:
        parts = []
        if missing:
            parts.append(f"missing fields {sorted(missing)}")
        if unknown:
            parts.append(f"unknown fields {sorted(unknown)}")
        error = PlanRequestError("bad_request", "; ".join(parts))
        error.request_id = request_id
        raise error
    return request_id, PlanRequest(**fields)


def encode_response_line(request_id: object, outcome) -> bytes:
    """Encode a plan or a :class:`PlanRequestError` as one line."""
    if isinstance(outcome, PlanRequestError):
        payload = {
            "id": request_id,
            "error": {"code": outcome.code, "message": outcome.message},
        }
    else:
        payload = {
            "id": request_id,
            "plan": {
                "scheme_name": outcome.scheme_name,
                "quality": outcome.quality,
                "frame_rate": outcome.frame_rate,
                "total_size_mbit": outcome.total_size_mbit,
                "decode_scheme": outcome.decode_scheme.value,
                "hq_rects": [
                    [r.x0, r.y0, r.x1, r.y1] for r in outcome.hq_rects
                ],
                "full_coverage": outcome.full_coverage,
                "used_ptile": outcome.used_ptile,
            },
        }
    return json.dumps(payload).encode() + b"\n"


def decode_response_line(line: bytes) -> tuple[object, DownloadPlan]:
    """Parse one response line; raises the carried error, if any."""
    payload = json.loads(line)
    request_id = payload.get("id")
    error = payload.get("error")
    if error is not None:
        raised = PlanRequestError(error["code"], error["message"])
        raised.request_id = request_id
        raise raised
    plan = payload["plan"]
    return request_id, DownloadPlan(
        scheme_name=plan["scheme_name"],
        quality=plan["quality"],
        frame_rate=plan["frame_rate"],
        total_size_mbit=plan["total_size_mbit"],
        decode_scheme=TilingScheme(plan["decode_scheme"]),
        hq_rects=tuple(Rect(*r) for r in plan["hq_rects"]),
        full_coverage=plan["full_coverage"],
        used_ptile=plan["used_ptile"],
    )
