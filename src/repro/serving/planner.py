"""Per-video planning state for the decision service.

A :class:`VideoPlanner` owns everything needed to answer plan requests
for one video — the manifest, the per-segment Ptiles, and (through the
shared :class:`~repro.core.controller.OursScheme` memo) the stacked
:class:`~repro.core.plan_tables.PlanTables` — built once and then read
immutably by every request.  Construction primes the size tensors for
every Ptile geometry in the video, so steady-state serving never takes
the first-touch build path.

Two serving paths, bit-identical by construction:

* :meth:`plan_one` rebuilds the exact :class:`PlanContext` the session
  loop would have produced and calls ``scheme.plan`` — the sequential
  single-request reference.
* :meth:`plan_batch` coalesces co-arriving requests: per-request work
  is reduced to the Ptile matches and table-row gathers, then one
  stacked ``(B, H, V, F)`` tensor feeds a single
  :meth:`~repro.core.optimizer.EnergyQoEMpc.choose_batch` DP pass for
  the whole group.  The assembled rows are copies of the same table
  slices ``PlanTables.window`` copies, the Eq. 4 factors come from the
  same scalar :func:`frame_rate_factor` calls (``math.exp`` — a numpy
  vectorization could differ in the last ulp), and the batched DP
  replicates the scalar DP's tie-breaking exactly, so batch size never
  changes a decision.
"""

from __future__ import annotations

import numpy as np

from ..core.controller import OursScheme
from ..power.models import TilingScheme
from ..qoe.framerate import alpha_from_behavior, frame_rate_factor
from ..streaming.schemes import DownloadPlan, PlanContext, split_wrapped_rect
from ..video.segments import VideoManifest
from .requests import PlanRequest, PlanRequestError

__all__ = ["VideoPlanner"]

# The per-alpha factor memo is cleared when it reaches this size: alpha
# varies continuously with the predicted head speed, so a long-lived
# service would otherwise grow it without bound.
_FACTOR_MEMO_LIMIT = 65536


class VideoPlanner:
    """Immutable per-video planning state plus the batched plan path."""

    def __init__(
        self,
        scheme: OursScheme,
        manifest: VideoManifest,
        ptiles=None,
    ):
        if not isinstance(scheme, OursScheme):
            raise ValueError(
                "VideoPlanner serves the MPC controller; got "
                f"{getattr(scheme, 'name', scheme)!r}"
            )
        # The batched path gathers deterministic Ptile-match rows, so an
        # uncertainty-aware scheme would silently serve point-prediction
        # plans under the robust name; refuse it up front.
        from ..core.robust import RobustScheme

        if isinstance(scheme, RobustScheme):
            raise ValueError(
                "VideoPlanner serves point-prediction planning only; "
                "the robust scheme's probabilistic tile selection has "
                "no batched path — run it through the session loop"
            )
        self.scheme = scheme
        self.manifest = manifest
        self.num_segments = manifest.num_segments
        self.ptiles = list(ptiles) if ptiles is not None else None
        if self.ptiles is not None and len(self.ptiles) < self.num_segments:
            raise ValueError("ptiles must cover every segment")
        self.video_id = manifest[0].video_id
        self.fps = manifest.fps
        self.grid = manifest.encoder.grid
        self.horizon = scheme.mpc_config.horizon
        # Build the video-spanning tables through the scheme's memo so
        # the sequential path and the batched path slice the exact same
        # tensors, then prime every geometry's size tensor up front.
        self.tables = scheme._plan_tables(self._context(
            PlanRequest(
                video_id=self.video_id,
                segment_index=0,
                buffer_s=0.0,
                bandwidth_mbps=1.0,
                yaw=0.0,
                pitch=0.0,
            )
        ))
        if self.ptiles is not None:
            self.tables.prime(
                p
                for segment in self.ptiles[: self.num_segments]
                for p in segment.ptiles
            )
        self._factor_memo: dict[float, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Request -> context
    # ------------------------------------------------------------------

    def validate(self, request: PlanRequest) -> None:
        """Full validation against this video; raises PlanRequestError."""
        request.validate()
        k = request.segment_index
        if k >= self.num_segments:
            raise PlanRequestError(
                "bad_segment",
                f"segment_index {k} outside video {self.video_id} "
                f"({self.num_segments} segments)",
            )
        if request.window is not None and k + request.window > self.num_segments:
            raise PlanRequestError(
                "bad_window",
                f"window {request.window} at segment {k} runs past the "
                f"video end ({self.num_segments} segments)",
            )
        if request.fps is not None and request.fps != self.fps:
            raise PlanRequestError(
                "bad_fps",
                f"video {self.video_id} is served at {self.fps} fps, "
                f"request asked for {request.fps}",
            )

    def context(self, request: PlanRequest) -> PlanContext:
        """The validated :class:`PlanContext` this request maps to."""
        self.validate(request)
        return self._context(request)

    def _context(self, request: PlanRequest) -> PlanContext:
        from ..geometry.viewport import Viewport

        k = request.segment_index
        window = request.window
        if window is None:
            window = min(self.horizon, self.num_segments - k)
        end = k + window
        use_ptiles = request.use_ptile and self.ptiles is not None
        return PlanContext(
            segment_index=k,
            manifest=self.manifest[k],
            predicted_viewport=Viewport(
                request.yaw, request.pitch, request.fov_h, request.fov_v
            ),
            buffer_s=request.buffer_s,
            bandwidth_mbps=request.bandwidth_mbps,
            grid=self.grid,
            fps=self.fps,
            segment_ptiles=self.ptiles[k] if use_ptiles else None,
            future_manifests=tuple(
                self.manifest[i] for i in range(k, end)
            ),
            future_ptiles=tuple(
                self.ptiles[i] if use_ptiles else None
                for i in range(k, end)
            ),
            predicted_speed_deg_s=request.speed_deg_s,
            segment_seconds=request.segment_seconds,
            video_manifest=self.manifest,
        )

    # ------------------------------------------------------------------
    # Serving paths
    # ------------------------------------------------------------------

    def plan_one(self, request: PlanRequest) -> DownloadPlan:
        """Sequential single-request path: the in-process planner."""
        return self.scheme.plan(self.context(request))

    def plan_batch(
        self, requests: list[PlanRequest]
    ) -> "list[DownloadPlan | PlanRequestError]":
        """Serve co-arriving requests with one DP pass per group.

        Returns one entry per request, in order; invalid requests yield
        their :class:`PlanRequestError` instead of failing the batch.
        """
        results: list = [None] * len(requests)
        # (window length, segment duration) -> [(index, ctx, ptile)]
        groups: dict[tuple[int, float], list] = {}
        for i, request in enumerate(requests):
            try:
                ctx = self.context(request)
            except PlanRequestError as err:
                results[i] = err
                continue
            ptile = (
                ctx.segment_ptiles.match(ctx.predicted_viewport)
                if ctx.segment_ptiles is not None
                else None
            )
            if ptile is None:
                results[i] = self.scheme._fallback_plan(ctx)
                continue
            key = (len(ctx.future_manifests), ctx.segment_seconds)
            groups.setdefault(key, []).append((i, ctx, ptile))
        for (window, seg_s), items in groups.items():
            self._plan_mpc_group(items, window, seg_s, results)
        return results

    def _plan_mpc_group(
        self, items: list, window: int, seg_s: float, results: list
    ) -> None:
        """One vectorized choose pass for same-shape MPC requests."""
        tables = self.tables
        rates = tables.rates
        v_count = tables.qo.shape[1]
        f_count = len(rates)
        batch = len(items)
        # Per-slot table coordinates; the actual (V, F) blocks are
        # gathered in bulk below instead of copied one slot at a time.
        rows = np.empty((batch, window), dtype=np.intp)
        geom = np.empty((batch, window), dtype=np.intp)
        fact = np.empty((batch, window, f_count))
        tensors: list[np.ndarray] = []  # distinct sizes_for() tensors
        tensor_slot: dict[int, int] = {}
        bandwidths = np.empty(batch)
        buffers = np.empty(batch)
        memo = self._factor_memo
        for b, (_, ctx, ptile) in enumerate(items):
            speed = max(ctx.predicted_speed_deg_s, 0.0)
            viewport = ctx.predicted_viewport
            for offset, manifest in enumerate(ctx.future_manifests):
                chosen = ptile
                if offset > 0:
                    # Offset 0 re-matching the current segment always
                    # reproduces ``ptile``; skip the duplicate match.
                    matched = ctx.future_ptiles[offset].match(viewport)
                    if matched is not None:
                        chosen = matched
                # sizes_for memoizes per geometry, so tensor identity
                # is a stable geometry id within this call.
                tensor = tables.sizes_for(chosen)
                slot = tensor_slot.get(id(tensor))
                if slot is None:
                    slot = len(tensors)
                    tensor_slot[id(tensor)] = slot
                    tensors.append(tensor)
                geom[b, offset] = slot
                rows[b, offset] = tables.row(manifest.segment_index)
                alpha = alpha_from_behavior(speed, manifest.ti)
                factors = memo.get(alpha)
                if factors is None:
                    if len(memo) >= _FACTOR_MEMO_LIMIT:
                        memo.clear()
                    factors = np.array([
                        frame_rate_factor(rate, self.fps, alpha)
                        for rate in rates
                    ])
                    memo[alpha] = factors
                fact[b, offset] = factors
            bandwidths[b] = ctx.bandwidth_mbps
            buffers[b] = ctx.buffer_s
        if len(tensors) == 1:
            sizes = tensors[0][rows]  # (B, W, V, F)
        else:
            sizes = np.empty((batch, window, v_count, f_count))
            for slot, tensor in enumerate(tensors):
                mask = geom == slot
                sizes[mask] = tensor[rows[mask]]
        # Same float pairs as the scalar path's per-row
        # ``qo[row, :, None] * factors[None, :]`` — broadcasting does
        # not reassociate, so the products are bit-identical.
        qoe = tables.qo[rows][:, :, :, None] * fact[:, :, None, :]
        mpc = self.scheme._mpc(seg_s)
        decisions = mpc.choose_batch(sizes, qoe, rates, bandwidths, buffers)
        for b, (i, ctx, ptile) in enumerate(items):
            decision = decisions[b]
            size = float(
                sizes[b, 0, decision.quality - 1,
                      decision.frame_rate_index - 1]
            )
            results[i] = DownloadPlan(
                scheme_name=self.scheme.name,
                quality=decision.quality,
                frame_rate=decision.frame_rate,
                total_size_mbit=size,
                decode_scheme=TilingScheme.PTILE,
                hq_rects=split_wrapped_rect(ptile.rect),
                used_ptile=True,
            )
