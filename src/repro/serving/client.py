"""Clients for the decision service.

:class:`ServiceClient` implements the session download seam
(:class:`~repro.streaming.schemes.StreamingScheme`): hand it to
``run_session`` — or to the population engine via
``decision_client=`` — and every plan decision is sourced from the
service instead of the in-process controller, bit-identical to local
planning.  It works over any transport exposing
``plan(PlanRequest) -> DownloadPlan`` (and optionally ``plan_many``):
a :class:`~repro.serving.service.ServiceRunner` for in-process use,
or a :class:`RemoteClient` for the TCP protocol.

Invalid requests surface as :class:`PlanRequestError`, a
:class:`ValueError` subclass, on the calling thread — the service
worker itself never dies on bad input.
"""

from __future__ import annotations

import socket
import threading
from itertools import count

from ..streaming.schemes import DownloadPlan, PlanContext
from .protocol import decode_response_line, encode_request_line
from .requests import PlanRequest, request_from_context

__all__ = ["ServiceClient", "RemoteClient"]


class ServiceClient:
    """The session/population seam: a scheme backed by the service."""

    def __init__(self, transport, name: str = "ours"):
        self.transport = transport
        self.name = name

    def plan(self, ctx: PlanContext) -> DownloadPlan:
        """StreamingScheme entry point used by ``run_session``."""
        return self.transport.plan(request_from_context(ctx))

    def plan_request(self, request: PlanRequest) -> DownloadPlan:
        return self.transport.plan(request)

    def plan_many(self, requests) -> list[DownloadPlan]:
        """Resolve raw requests concurrently (results in order).

        Falls back to sequential resolution on transports without a
        ``plan_many`` — correctness is identical either way, only the
        service-side batching opportunity differs.
        """
        many = getattr(self.transport, "plan_many", None)
        if many is not None:
            return many(requests)
        return [self.transport.plan(request) for request in requests]


class RemoteClient:
    """Synchronous TCP client speaking the line protocol.

    ``plan_many`` pipelines: all requests are written before any
    response is read, so the server's batching window can coalesce
    them even over a single connection.  Thread-safe; usable as a
    context manager.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7360,
                 timeout: float | None = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._ids = count(1)

    def plan(self, request: PlanRequest) -> DownloadPlan:
        return self.plan_many([request])[0]

    def plan_many(self, requests) -> list[DownloadPlan]:
        requests = list(requests)
        with self._lock:
            wanted = []
            for request in requests:
                request_id = next(self._ids)
                wanted.append(request_id)
                self._file.write(encode_request_line(request_id, request))
            self._file.flush()
            by_id: dict[object, object] = {}
            pending = set(wanted)
            while pending:
                line = self._file.readline()
                if not line:
                    raise ConnectionError("decision service closed the connection")
                try:
                    request_id, plan = decode_response_line(line)
                except ValueError as err:
                    request_id = getattr(err, "request_id", None)
                    if request_id not in pending:
                        raise
                    by_id[request_id] = err
                    pending.discard(request_id)
                    continue
                by_id[request_id] = plan
                pending.discard(request_id)
        results = []
        for request_id in wanted:
            outcome = by_id[request_id]
            if isinstance(outcome, Exception):
                raise outcome
            results.append(outcome)
        return results

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
