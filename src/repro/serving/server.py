"""TCP front-end for the decision service.

Each connection carries pipelined newline-delimited JSON requests (see
:mod:`repro.serving.protocol`).  Every incoming line is answered by
its own task, so a client that writes several requests before reading
any response lets the dispatcher's batching window coalesce them —
the wire front-end and the in-process API share the same queue.

Request failures never take the worker down: malformed lines, unknown
videos, and invalid parameters come back as structured error
responses; anything unexpected is answered with an ``internal`` error
and the connection stays up.
"""

from __future__ import annotations

import asyncio
import signal

from .requests import PlanRequestError
from .protocol import decode_request_line, encode_response_line
from .service import DecisionService

__all__ = ["serve_tcp", "run_server"]


async def serve_tcp(
    service: DecisionService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Start the TCP front-end (the service must be started already)."""

    async def answer(line: bytes, writer, write_lock) -> None:
        request_id = None
        try:
            request_id, request = decode_request_line(line)
            outcome = await service.plan(request)
        except PlanRequestError as err:
            request_id = getattr(err, "request_id", request_id)
            outcome = err
        except Exception as err:  # noqa: BLE001 — keep the worker alive
            outcome = PlanRequestError("internal", f"{type(err).__name__}: {err}")
        payload = encode_response_line(request_id, outcome)
        async with write_lock:
            writer.write(payload)
            await writer.drain()

    connections: set = set()

    async def handle(reader, writer) -> None:
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()
        connections.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = loop.create_task(answer(line, writer, write_lock))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    server = await asyncio.start_server(handle, host, port)
    # Closing these writers sends EOF to every open connection, letting
    # their handler tasks finish instead of being cancelled at shutdown.
    server.repro_connections = connections
    return server


def run_server(
    service: DecisionService,
    host: str = "127.0.0.1",
    port: int = 7360,
    *,
    on_ready=None,
) -> None:
    """Run the service plus TCP front-end until interrupted.

    ``on_ready(port)`` is called once the socket is listening (the CLI
    prints the address; tests pass port 0 and read the bound port).
    SIGINT/SIGTERM shut the service down gracefully: stop accepting,
    send EOF to open connections, drain the dispatcher, return.
    """

    async def main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled: list[int] = []
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop.set)
                handled.append(signum)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal handlers

        await service.start()
        server = await serve_tcp(service, host, port)
        if on_ready is not None:
            bound = server.sockets[0].getsockname()[1]
            on_ready(bound)
        try:
            async with server:
                if handled:
                    await stop.wait()
                else:
                    await server.serve_forever()
        finally:
            for writer in list(server.repro_connections):
                writer.close()
            await service.close()
            for signum in handled:
                loop.remove_signal_handler(signum)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
