"""The asyncio decision service: batching dispatcher plus runners.

:class:`DecisionService` owns one :class:`VideoPlanner` per served
video and answers ``plan`` requests through a single batching
dispatcher: requests land on an internal queue, and the dispatcher
collects up to ``max_batch`` of them — waiting at most
``batch_wait_us`` after the first arrival — before serving the whole
batch with one vectorized choose pass per (video, window-shape) group.
The batching window trades a bounded latency floor for amortized table
lookups and DP scans; ``batch_wait_us=0`` still coalesces whatever has
already queued (pure opportunistic batching, no added latency).

Decisions are bit-identical at any batch size (see
:mod:`repro.serving.planner`), so batching is purely a throughput
knob.  Per-request decision latency (enqueue to decision) is recorded
in :class:`ServiceStats`, which reports p50/p99 and counts violations
of the configured latency SLO.

:class:`ServiceRunner` hosts a service on a dedicated event-loop
thread and exposes thread-safe synchronous ``plan``/``plan_many`` —
the in-process client API used by sessions, the population engine,
and tests.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass, field

from ..core.controller import OursScheme
from ..power.models import PIXEL_3, DevicePowerModel
from ..streaming.schemes import DownloadPlan
from .planner import VideoPlanner
from .requests import PlanRequest, PlanRequestError

__all__ = [
    "ServiceConfig",
    "ServiceStats",
    "DecisionService",
    "ServiceRunner",
    "build_planners",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Batching-window and SLO parameters."""

    max_batch: int = 64
    batch_wait_us: float = 200.0
    slo_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.batch_wait_us < 0:
            raise ValueError("batch_wait_us must be non-negative")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive")


@dataclass
class ServiceStats:
    """Decision-latency and batching counters for one service."""

    requests: int = 0
    errors: int = 0
    batches: int = 0
    max_batch_seen: int = 0
    slo_violations: int = 0
    # Bounded reservoir of recent enqueue-to-decision latencies.
    latencies_s: deque = field(default_factory=lambda: deque(maxlen=8192))

    def record_batch(
        self, size: int, errors: int, latencies_s: list[float],
        slo_s: float | None,
    ) -> None:
        self.requests += size
        self.errors += errors
        self.batches += 1
        self.max_batch_seen = max(self.max_batch_seen, size)
        self.latencies_s.extend(latencies_s)
        if slo_s is not None:
            self.slo_violations += sum(1 for t in latencies_s if t > slo_s)

    def latency_percentile_ms(self, quantile: float) -> float:
        """Nearest-rank percentile of the recorded latencies, in ms."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = min(len(ordered) - 1, int(round(quantile * (len(ordered) - 1))))
        return ordered[rank] * 1e3

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "batches": self.batches,
            "max_batch_seen": self.max_batch_seen,
            "mean_batch_size": self.requests / self.batches
            if self.batches
            else 0.0,
            "p50_ms": self.latency_percentile_ms(0.50),
            "p99_ms": self.latency_percentile_ms(0.99),
            "slo_violations": self.slo_violations,
        }


class DecisionService:
    """Batching plan server over a set of per-video planners.

    Use from inside a running event loop::

        service = DecisionService(planners)
        await service.start()
        plan = await service.plan(request)
        await service.close()

    or synchronously through :class:`ServiceRunner`.
    """

    def __init__(
        self,
        planners,
        config: ServiceConfig = ServiceConfig(),
    ):
        if isinstance(planners, dict):
            self.planners = dict(planners)
        else:
            self.planners = {p.video_id: p for p in planners}
        if not self.planners:
            raise ValueError("need at least one video planner")
        self.config = config
        self.stats = ServiceStats()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None

    async def start(self) -> None:
        if self._dispatcher is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._dispatcher = self._loop.create_task(self._dispatch())

    async def close(self) -> None:
        """Stop the dispatcher after the queue drains."""
        if self._dispatcher is None:
            return
        await self._queue.put(None)
        await self._dispatcher
        self._dispatcher = None
        self._queue = None

    async def plan(self, request: PlanRequest) -> DownloadPlan:
        """Resolve one plan request (raises :class:`PlanRequestError`)."""
        if self._dispatcher is None:
            raise RuntimeError("service not started; call start() first")
        future = self._loop.create_future()
        await self._queue.put((request, future, self._loop.time()))
        return await future

    # ------------------------------------------------------------------

    async def _dispatch(self) -> None:
        queue = self._queue
        max_batch = self.config.max_batch
        wait_s = self.config.batch_wait_us * 1e-6
        while True:
            item = await queue.get()
            if item is None:
                return
            batch = [item]
            stop = False
            while len(batch) < max_batch:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    # Batching window: measured from the first request's
                    # enqueue time, so a batch never adds more than
                    # batch_wait_us to that request's latency.
                    remaining = wait_s - (self._loop.time() - batch[0][2])
                    if remaining <= 0:
                        break
                    try:
                        extra = await asyncio.wait_for(
                            queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if extra is None:
                    stop = True
                    break
                batch.append(extra)
            self._serve_batch(batch)
            if stop:
                return

    def _serve_batch(self, batch: list) -> None:
        by_video: dict[int, list] = {}
        errors = 0
        for entry in batch:
            request, future, _ = entry
            try:
                request.validate()
                planner = self.planners.get(request.video_id)
                if planner is None:
                    raise PlanRequestError(
                        "unknown_video",
                        f"video {request.video_id} is not served "
                        f"(available: {sorted(self.planners)})",
                    )
            except PlanRequestError as err:
                future.set_exception(err)
                errors += 1
                continue
            by_video.setdefault(request.video_id, []).append(entry)
        for video_id, entries in by_video.items():
            planner = self.planners[video_id]
            outcomes = planner.plan_batch([e[0] for e in entries])
            for (_, future, _), outcome in zip(entries, outcomes):
                if isinstance(outcome, PlanRequestError):
                    future.set_exception(outcome)
                    errors += 1
                else:
                    future.set_result(outcome)
        now = self._loop.time()
        self.stats.record_batch(
            len(batch),
            errors,
            [now - t0 for _, _, t0 in batch],
            None if self.config.slo_ms is None
            else self.config.slo_ms * 1e-3,
        )


class ServiceRunner:
    """Hosts a :class:`DecisionService` on a background event-loop
    thread and exposes thread-safe synchronous planning.

    ``plan_many`` submits every request before waiting on any result,
    which is what lets the dispatcher's batching window coalesce them.
    Usable as a context manager.
    """

    def __init__(self, service: DecisionService):
        self.service = service
        self._servers: list[asyncio.AbstractServer] = []
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-decision-service", daemon=True
        )
        self._thread.start()
        self._started.wait()
        asyncio.run_coroutine_threadsafe(
            service.start(), self._loop
        ).result()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        self._loop.run_forever()

    def plan(self, request: PlanRequest) -> DownloadPlan:
        """Resolve one request (raises PlanRequestError on bad input)."""
        return asyncio.run_coroutine_threadsafe(
            self.service.plan(request), self._loop
        ).result()

    def plan_many(self, requests) -> list[DownloadPlan]:
        """Resolve many requests concurrently, results in order."""
        requests = list(requests)
        if not requests:
            return []

        # One cross-thread submission for the whole set: the gather
        # enqueues every request inside the loop before any completes,
        # so the dispatcher's batching window sees them together.
        async def submit_all():
            return await asyncio.gather(
                *(self.service.plan(r) for r in requests),
                return_exceptions=True,
            )

        results = asyncio.run_coroutine_threadsafe(
            submit_all(), self._loop
        ).result()
        for outcome in results:
            if isinstance(outcome, BaseException):
                raise outcome
        return results

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Attach the TCP front-end on this runner's loop; returns the
        bound port (pass ``port=0`` for an ephemeral one)."""
        from .server import serve_tcp

        server = asyncio.run_coroutine_threadsafe(
            serve_tcp(self.service, host, port), self._loop
        ).result()
        self._servers.append(server)
        return server.sockets[0].getsockname()[1]

    def close(self) -> None:
        if self._loop.is_closed():
            return
        for server in self._servers:
            server.close()
            asyncio.run_coroutine_threadsafe(
                server.wait_closed(), self._loop
            ).result()
        self._servers.clear()
        asyncio.run_coroutine_threadsafe(
            self.service.close(), self._loop
        ).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()

    def __enter__(self) -> "ServiceRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_planners(
    setup,
    video_ids=None,
    *,
    device: DevicePowerModel = PIXEL_3,
    scheme: OursScheme | None = None,
    workers: int | None = 1,
) -> dict[int, VideoPlanner]:
    """Build the per-video planners from an experiment setup.

    Manifests and Ptiles come through the setup's artifact store when
    it has one — the same content-prep artifacts every experiment
    shares — so starting a service against a warm cache deserializes
    instead of rebuilding.  One shared scheme instance backs every
    planner, mirroring how a session sweep shares its controller.
    """
    if scheme is None:
        scheme = OursScheme(device=device)
    if video_ids is None:
        video_ids = tuple(v.meta.video_id for v in setup.videos)
    video_ids = tuple(video_ids)
    if not video_ids:
        raise ValueError("need at least one video id")
    setup.prepare(video_ids, workers=workers, ftiles=False)
    return {
        vid: VideoPlanner(scheme, setup.manifest(vid), setup.ptiles(vid))
        for vid in video_ids
    }
