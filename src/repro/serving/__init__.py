"""Online ABR decision service (docs/MODELING.md §13).

The deployment shape of the paper's MPC controller: a long-running
service that owns per-video plan tables (built once, shared immutably
across every session of a video) and answers per-segment ``plan``
requests — in-process through :class:`ServiceRunner`/:class:`ServiceClient`
or over a newline-delimited JSON TCP protocol.  Co-arriving requests
are coalesced by a configurable batching window into single vectorized
MPC passes; decisions are bit-identical to in-process
``OursScheme.plan`` at any batch size.
"""

from .client import RemoteClient, ServiceClient
from .planner import VideoPlanner
from .requests import PlanRequest, PlanRequestError, request_from_context
from .server import run_server, serve_tcp
from .service import (
    DecisionService,
    ServiceConfig,
    ServiceRunner,
    ServiceStats,
    build_planners,
)

__all__ = [
    "DecisionService",
    "PlanRequest",
    "PlanRequestError",
    "RemoteClient",
    "ServiceClient",
    "ServiceConfig",
    "ServiceRunner",
    "ServiceStats",
    "VideoPlanner",
    "build_planners",
    "request_from_context",
    "run_server",
    "serve_tcp",
]
