"""Encoding ladders: the CRF rungs behind the integer quality levels.

The paper encodes every video with one fixed ladder — CRF 38..18 in
steps of 5, i.e. ``quality q -> 43 - 5q`` — but the catalog spans a
wide SI/TI range, so the same CRF buys very different bitrate/quality
on different content.  :class:`EncodingLadder` turns that hard-coded
mapping into a per-video value type that the encoder model, plan
tables, sessions, and artifact keys all consume, so a per-content
optimizer (``repro.encoding.optimizer``) can swap the rungs without
touching any consumer.

Exactness contract: for the default ladder, :meth:`EncodingLadder.crf`
is bit-identical to the legacy ``43.0 - 5.0 * quality`` for every
quality the codebase ever evaluates — integer levels and the
quarter-step fractional levels used by the Nontile ladder sweep.  The
piecewise-linear form ``crfs[lo-1] + frac * (crfs[lo] - crfs[lo-1])``
computes ``38 + 0.5 * (-5) = 35.5`` etc. with exact float arithmetic
(the fractional part of a quarter-step quality in [1, 5] is exact, and
the products/sums stay on representable values), so default-ladder
runs are byte-identical to the pre-ladder code paths.

This module is deliberately stdlib-only: the encoder model imports it,
and everything else imports the encoder model.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass

__all__ = [
    "CRF_MAX",
    "CRF_MIN",
    "DEFAULT_ENCODING_LADDER",
    "MIN_CRF_SPACING",
    "EncodingLadder",
]

# x264/x265 expose CRF 0..51; the analytic rate law is calibrated well
# inside that range but stays monotone across all of it.
CRF_MIN = 0.0
CRF_MAX = 51.0

# Adjacent rungs closer than this are indistinguishable under the rate
# law's 4-CRF halving constant and would make the ladder pointless.
MIN_CRF_SPACING = 1.0


@dataclass(frozen=True)
class EncodingLadder:
    """Monotone CRF rungs, one per integer quality level.

    ``crfs[q - 1]`` is the CRF encoding quality level ``q``; rungs
    strictly decrease (higher quality = lower CRF) with at least
    :data:`MIN_CRF_SPACING` between neighbours, and every rung sits in
    ``[CRF_MIN, CRF_MAX]``.  Instances are immutable, hashable, and
    digestable for artifact-store cache keys.
    """

    crfs: tuple[float, ...] = (38.0, 33.0, 28.0, 23.0, 18.0)

    def __post_init__(self) -> None:
        crfs = tuple(float(c) for c in self.crfs)
        object.__setattr__(self, "crfs", crfs)
        if len(crfs) < 2:
            raise ValueError(
                f"an encoding ladder needs at least 2 rungs, got {len(crfs)}"
            )
        for crf in crfs:
            if not math.isfinite(crf) or not (CRF_MIN <= crf <= CRF_MAX):
                raise ValueError(
                    f"CRF rungs must be finite and within "
                    f"[{CRF_MIN:g}, {CRF_MAX:g}], got {crf!r}"
                )
        for lower, upper in zip(crfs[1:], crfs):
            if upper - lower < MIN_CRF_SPACING:
                raise ValueError(
                    "CRF rungs must strictly decrease by at least "
                    f"{MIN_CRF_SPACING:g} per level, got {crfs}"
                )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        return len(self.crfs)

    @property
    def levels(self) -> tuple[int, ...]:
        """The integer quality levels this ladder serves: ``1..n``."""
        return tuple(range(1, len(self.crfs) + 1))

    # ------------------------------------------------------------------
    # Quality -> CRF
    # ------------------------------------------------------------------

    def crf(self, quality: float) -> float:
        """CRF for ``quality``; fractional levels interpolate linearly.

        This is the one place quality levels are validated: integer
        levels index the rungs directly, fractional levels (used by the
        Nontile ladder-step sweep) interpolate between the bracketing
        rungs, and anything outside ``[1, num_levels]`` raises.
        """
        q = float(quality)
        n = len(self.crfs)
        if not (1.0 <= q <= float(n)):
            raise ValueError(f"quality must be within [1, {n}], got {quality}")
        lo = min(int(q), n - 1)
        frac = q - lo
        if frac == 0.0:
            return self.crfs[lo - 1]
        return self.crfs[lo - 1] + frac * (self.crfs[lo] - self.crfs[lo - 1])

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def fingerprint(self) -> tuple:
        """Structural fingerprint for artifact-store key hashing."""
        return ("encoding-ladder", self.crfs)

    def digest(self) -> str:
        """SHA-256 hex digest of the rungs (memoized); cache-key safe."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            h = hashlib.sha256(b"encoding-ladder-v1")
            h.update(struct.pack(f"<I{len(self.crfs)}d", len(self.crfs), *self.crfs))
            cached = h.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    def __getstate__(self):
        # Drop the digest memo so pickles stay content-addressed.
        return {"crfs": self.crfs}

    def __setstate__(self, state):
        object.__setattr__(self, "crfs", state["crfs"])


#: The paper's fixed ladder: CRF 38..18 step 5, i.e. ``43 - 5q``.
DEFAULT_ENCODING_LADDER = EncodingLadder()
