"""Per-content encoding-ladder subsystem.

``ladder`` holds the :class:`EncodingLadder` value type (stdlib-only;
the encoder model imports it).  ``optimizer`` holds the per-video
ladder search; it depends on the experiment layer, so its names are
loaded lazily to keep ``repro.video.encoder -> repro.encoding`` free
of import cycles.
"""

from .ladder import (
    CRF_MAX,
    CRF_MIN,
    DEFAULT_ENCODING_LADDER,
    MIN_CRF_SPACING,
    EncodingLadder,
)

__all__ = [
    "CRF_MAX",
    "CRF_MIN",
    "DEFAULT_ENCODING_LADDER",
    "MIN_CRF_SPACING",
    "EncodingLadder",
    "LadderSearchConfig",
    "VideoLadderResult",
    "default_quality_targets",
    "optimize_catalog",
    "optimize_video_ladder",
]

_OPTIMIZER_NAMES = frozenset(
    {
        "LadderSearchConfig",
        "VideoLadderResult",
        "default_quality_targets",
        "optimize_catalog",
        "optimize_video_ladder",
    }
)


def __getattr__(name: str):
    if name in _OPTIMIZER_NAMES:
        from . import optimizer

        return getattr(optimizer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
