"""Per-content encoding-ladder search.

The paper fixes one CRF ladder for all eight videos, but the catalog
spans a wide SI/TI range: at the same CRF, easy (low-SI/TI) content
lands far above any quality target while hard content lands below it.
This module searches, per video, the ladder that *hits per-level
quality targets at minimum FoV bits*:

* the candidate axis is a CRF grid (``crf_min..crf_max`` in
  ``crf_step`` increments);
* a rung's quality is the video's mean Eq. 3 ``Qo`` over all segments,
  evaluated on the :class:`~repro.video.encoder.EncoderModel` rate law
  at that CRF (``qoe_bitrate_at_crf``);
* for each level the search picks the **largest** CRF (fewest bits)
  whose mean Qo still meets the level's target, then repairs the
  monotone-spacing constraint and, with
  ``never_exceed_default_bits`` (the default), clamps every rung to
  spend at most what the video's base ladder spends — so hard content
  degenerates to the base ladder (no loss) while easy content sheds
  bits at equal target quality.

The search is a deterministic coordinate sweep (pure numpy over the
grid, fixed iteration order, no RNG): serial and pooled runs, and cold
and warm cache reads, produce identical ladders.  Per-video searches
are independent jobs fanned out on the experiment runner pool and
cached in the artifact store under content-hash keys
(:func:`~repro.experiments.artifacts.ladder_key`: video digest +
encoder + targets + search config + code version).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..qoe.quality import QualityModel
from .ladder import CRF_MAX, MIN_CRF_SPACING, EncodingLadder

__all__ = [
    "LadderSearchConfig",
    "VideoLadderResult",
    "default_quality_targets",
    "optimize_catalog",
    "optimize_video_ladder",
]

# Targets are "met" up to this Qo slack: the grid is quantized, so the
# chosen rung can sit a hair under the target the continuous optimum
# would hit exactly.
_TARGET_TOL = 1e-9


@dataclass(frozen=True)
class LadderSearchConfig:
    """Deterministic knobs of the per-video ladder search.

    ``crf_min``/``crf_max``/``crf_step`` bound the candidate grid (the
    default spans the paper's 18..38 sweep plus headroom above it);
    ``min_spacing`` keeps adjacent rungs apart so levels stay
    distinguishable; ``never_exceed_default_bits`` forbids any rung
    from spending more bits than the video's base-ladder rung (the
    search can then only save bits, never regress them);
    ``pin_top_level`` keeps the highest-quality rung at the base
    ladder's CRF, so the peak quality a session can reach never
    degrades; ``movable_levels`` restricts the search to the lowest
    ``k`` rungs (None = all non-pinned rungs).  The default ``1``
    moves only the background rung — the level every remainder block
    of every download is priced at, and the one whose bits never buy
    viewport quality — which measured as a strict session-level Pareto
    improvement (lower bits and energy, equal-or-better QoE) across
    the catalog; the full search (``movable_levels=None``) sheds 2-4x
    more ladder bits but lets the MPC trade some of them back into
    viewport quality, so a couple of videos gain QoE at slightly
    *higher* downloaded bits instead.  ``max_passes`` bounds the
    pick/repair fixed-point loop.
    """

    crf_min: float = 18.0
    crf_max: float = 42.0
    crf_step: float = 0.25
    min_spacing: float = 2.0
    never_exceed_default_bits: bool = True
    pin_top_level: bool = True
    movable_levels: int | None = 1
    max_passes: int = 8

    def __post_init__(self) -> None:
        if not (0.0 <= self.crf_min < self.crf_max <= CRF_MAX):
            raise ValueError(
                f"need 0 <= crf_min < crf_max <= {CRF_MAX:g}, got "
                f"[{self.crf_min!r}, {self.crf_max!r}]"
            )
        if self.crf_step <= 0:
            raise ValueError("crf_step must be positive")
        if self.min_spacing < MIN_CRF_SPACING:
            raise ValueError(
                f"min_spacing must be at least the ladder type's "
                f"{MIN_CRF_SPACING:g}, got {self.min_spacing!r}"
            )
        if self.max_passes < 1:
            raise ValueError("need at least one search pass")
        if self.movable_levels is not None and self.movable_levels < 1:
            raise ValueError("movable_levels must be at least 1 (or None)")

    def grid(self) -> np.ndarray:
        """The candidate CRFs, ascending (index math, no accumulation)."""
        n = int(math.floor((self.crf_max - self.crf_min) / self.crf_step))
        return self.crf_min + self.crf_step * np.arange(n + 1)


@dataclass(frozen=True)
class VideoLadderResult:
    """One video's search outcome, fixed vs. optimized ladder."""

    video_id: int
    ladder: EncodingLadder
    base_ladder: EncodingLadder
    targets: tuple[float, ...]
    #: Catalog-mean Eq. 3 Qo per level under each ladder.
    qo_base: tuple[float, ...]
    qo_opt: tuple[float, ...]
    #: Mean FoV bitrate (Mbps) per level under each ladder.
    fov_mbps_base: tuple[float, ...]
    fov_mbps_opt: tuple[float, ...]
    passes: int

    @property
    def bits_saved_frac(self) -> float:
        """Fraction of summed per-level FoV bits the new ladder sheds."""
        base = sum(self.fov_mbps_base)
        if base <= 0:
            return 0.0
        return 1.0 - sum(self.fov_mbps_opt) / base

    @property
    def targets_met(self) -> tuple[bool, ...]:
        return tuple(
            qo >= t - _TARGET_TOL for qo, t in zip(self.qo_opt, self.targets)
        )

    @property
    def changed(self) -> bool:
        return self.ladder != self.base_ladder

    def report(self) -> list[str]:
        lines = [
            f"Video {self.video_id}: "
            + ("optimized ladder" if self.changed else "base ladder kept")
            + f" ({self.bits_saved_frac * 100.0:+.1f}% FoV bits saved,"
            f" {self.passes} passes)"
        ]
        for i, (b_crf, o_crf) in enumerate(
            zip(self.base_ladder.crfs, self.ladder.crfs)
        ):
            lines.append(
                f"  q{i + 1}: crf {b_crf:5.2f} -> {o_crf:5.2f}  "
                f"Qo {self.qo_base[i]:6.2f} -> {self.qo_opt[i]:6.2f}"
                f" (target {self.targets[i]:6.2f})  "
                f"FoV {self.fov_mbps_base[i]:6.3f} -> "
                f"{self.fov_mbps_opt[i]:6.3f} Mbps"
            )
        return lines


# ----------------------------------------------------------------------
# Rate/quality evaluation (vectorized over the CRF grid)
# ----------------------------------------------------------------------


def _video_features(video) -> tuple[np.ndarray, np.ndarray]:
    si = np.array([s.si for s in video.segments], dtype=float)
    ti = np.array([s.ti for s in video.segments], dtype=float)
    return si, ti


def _grid_tables(
    video, encoder, quality_model: QualityModel, crfs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-grid-CRF (mean Qo, mean FoV Mbps) over the video's segments.

    Built from the encoder's public rate law: per-segment FoV bitrates
    come from ``fov_bitrate_at_crf``/``qoe_bitrate_at_crf`` evaluated
    on the grid, then Eq. 3 is applied vectorized.
    """
    from ..video.encoder import _QOE_BITRATE_SCALE

    si, ti = _video_features(video)
    fov = np.empty((len(si), len(crfs)))
    for g, crf in enumerate(crfs):
        for s in range(len(si)):
            fov[s, g] = encoder.fov_bitrate_at_crf(float(crf), si[s], ti[s])
    # Same perceptual linearization as qoe_bitrate_at_crf, vectorized
    # over the whole (segment, grid) table.
    qoe_b = _QOE_BITRATE_SCALE * np.log2(1.0 + fov)
    qo = quality_model.qo_array(si[:, None], ti[:, None], qoe_b)
    return qo.mean(axis=0), fov.mean(axis=0)


def _interp_descending(grid: np.ndarray, values: np.ndarray, crf: float) -> float:
    """``values`` sampled on ascending ``grid``, read at an off-grid CRF."""
    return float(np.interp(crf, grid, values))


def mean_qo_by_level(
    video, encoder, quality_model: QualityModel, ladder: EncodingLadder
) -> tuple[float, ...]:
    """Per-level catalog-mean Eq. 3 Qo for one video under a ladder."""
    si, ti = _video_features(video)
    out = []
    for level in ladder.levels:
        crf = ladder.crf(level)
        b = np.array([
            encoder.qoe_bitrate_at_crf(crf, si[s], ti[s])
            for s in range(len(si))
        ])
        out.append(float(quality_model.qo_array(si, ti, b).mean()))
    return tuple(out)


def default_quality_targets(
    videos,
    encoder,
    quality_model: QualityModel | None = None,
    quantile: float = 0.25,
) -> tuple[float, ...]:
    """Per-level targets: a catalog quantile of per-video mean Qo
    under the encoder's base ladder.

    Videos whose base-ladder Qo sits above a level's target shed bits
    on that level; the rest clamp to the base rung (the
    ``never_exceed_default_bits`` constraint), so the optimized
    catalog never spends more per level.  The default 25th percentile
    leaves most of the catalog room to save while anchoring the floor
    at the hard content's own quality.
    """
    if not videos:
        raise ValueError("need at least one video to derive targets")
    if not (0.0 <= quantile <= 1.0):
        raise ValueError(f"quantile must be within [0, 1], got {quantile!r}")
    quality_model = quality_model or QualityModel()
    per_video = np.array([
        mean_qo_by_level(video, encoder, quality_model, encoder.ladder)
        for video in videos
    ])  # (N, V)
    return tuple(float(t) for t in np.quantile(per_video, quantile, axis=0))


# ----------------------------------------------------------------------
# Per-video search
# ----------------------------------------------------------------------


def optimize_video_ladder(
    video,
    encoder,
    targets,
    config: LadderSearchConfig | None = None,
    quality_model: QualityModel | None = None,
) -> VideoLadderResult:
    """Search one video's ladder (deterministic; see module docstring)."""
    config = config or LadderSearchConfig()
    quality_model = quality_model or QualityModel()
    base = encoder.ladder
    targets = tuple(float(t) for t in targets)
    if len(targets) != base.num_levels:
        raise ValueError(
            f"got {len(targets)} quality targets for a "
            f"{base.num_levels}-level ladder"
        )
    grid = config.grid()
    mean_qo, mean_fov = _grid_tables(video, encoder, quality_model, grid)

    n = base.num_levels
    crfs = list(base.crfs)
    passes = 0
    for _ in range(config.max_passes):
        passes += 1
        changed = False
        for i in range(n):
            if config.pin_top_level and i == n - 1:
                continue
            if config.movable_levels is not None and i >= config.movable_levels:
                continue
            level_target = targets[i]
            # Largest grid CRF still meeting the target; mean_qo is
            # strictly decreasing in CRF, so scan from the top.
            ok = np.nonzero(mean_qo >= level_target - _TARGET_TOL)[0]
            picked = float(grid[ok[-1]]) if len(ok) else float(grid[0])
            if config.never_exceed_default_bits:
                # More bits than the base rung is never allowed:
                # CRF below the base rung's is out.
                picked = max(picked, base.crfs[i])
            picked = min(picked, CRF_MAX)
            # Monotone spacing: stay below the better neighbour above
            # and above the worse neighbour below.
            if i > 0:
                picked = min(picked, crfs[i - 1] - config.min_spacing)
            if i + 1 < n:
                picked = max(picked, crfs[i + 1] + config.min_spacing)
            if picked != crfs[i]:
                crfs[i] = picked
                changed = True
        if not changed:
            break
    # The pass budget may expire mid-repair; one final backward sweep
    # (anchored at the top-quality rung) guarantees a valid ladder.
    for i in range(n - 2, -1, -1):
        crfs[i] = min(max(crfs[i], crfs[i + 1] + config.min_spacing), CRF_MAX)
    ladder = EncodingLadder(tuple(crfs))

    qo_base = tuple(
        _interp_descending(grid, mean_qo, c) for c in base.crfs
    )
    fov_base = tuple(
        _interp_descending(grid, mean_fov, c) for c in base.crfs
    )
    qo_opt = tuple(_interp_descending(grid, mean_qo, c) for c in ladder.crfs)
    fov_opt = tuple(
        _interp_descending(grid, mean_fov, c) for c in ladder.crfs
    )
    return VideoLadderResult(
        video_id=video.meta.video_id,
        ladder=ladder,
        base_ladder=base,
        targets=targets,
        qo_base=qo_base,
        qo_opt=qo_opt,
        fov_mbps_base=fov_base,
        fov_mbps_opt=fov_opt,
        passes=passes,
    )


def _search_task(item: tuple) -> VideoLadderResult:
    """Module-level per-video search job (picklable for the pool)."""
    video, encoder, targets, config, quality_model = item
    return optimize_video_ladder(video, encoder, targets, config, quality_model)


def optimize_catalog(
    videos,
    encoder,
    targets=None,
    config: LadderSearchConfig | None = None,
    quality_model: QualityModel | None = None,
    store=None,
    workers: int | None = 1,
) -> dict[int, VideoLadderResult]:
    """Search every video's ladder; parallel per-video jobs, cached.

    ``store`` (an :class:`~repro.experiments.artifacts.ArtifactStore`)
    caches each video's result under
    :func:`~repro.experiments.artifacts.ladder_key`; warm runs
    deserialize instead of searching.  ``workers`` fans cold searches
    across the experiment runner pool (1 = serial); results are
    identical at any worker count and with the store on or off.
    """
    config = config or LadderSearchConfig()
    quality_model = quality_model or QualityModel()
    videos = list(videos)
    if targets is None:
        targets = default_quality_targets(videos, encoder, quality_model)
    targets = tuple(float(t) for t in targets)

    results: dict[int, VideoLadderResult] = {}
    keys: dict[int, str] = {}
    misses = []
    if store is not None:
        from ..experiments.artifacts import ladder_key

        for video in videos:
            vid = video.meta.video_id
            keys[vid] = ladder_key(video, encoder, targets, config, quality_model)
            cached = store.get("ladder", keys[vid])
            if cached is not None:
                results[vid] = cached
            else:
                misses.append(video)
    else:
        misses = videos

    if misses:
        items = [
            (video, encoder, targets, config, quality_model)
            for video in misses
        ]
        if len(items) > 1 and workers != 1:
            from ..experiments.runner import parallel_map

            searched = parallel_map(_search_task, items, workers=workers).results
        else:
            searched = [_search_task(item) for item in items]
        for video, result in zip(misses, searched):
            vid = video.meta.video_id
            results[vid] = result
            if store is not None:
                store.put("ladder", keys[vid], result)

    return {video.meta.video_id: results[video.meta.video_id] for video in videos}
