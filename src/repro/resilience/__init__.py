"""Resilience subsystem: deterministic fault injection and the
deadline-aware download policy (retry, backoff, graceful degradation).

See ``docs/MODELING.md`` §10 for the fault semantics and the policy's
timeout/ladder rules.
"""

from .faults import (
    FAULT_PROFILES,
    CollapseWindow,
    FaultPlan,
    LatencySpike,
    Outage,
    generate_fault_plan,
)
from .network import FaultyNetwork
from .policy import (
    DegradationLevel,
    DownloadOutcome,
    DownloadPolicy,
    build_degradation_ladder,
    execute_download,
)

__all__ = [
    "FAULT_PROFILES",
    "CollapseWindow",
    "FaultPlan",
    "LatencySpike",
    "Outage",
    "generate_fault_plan",
    "FaultyNetwork",
    "DegradationLevel",
    "DownloadOutcome",
    "DownloadPolicy",
    "build_degradation_ladder",
    "execute_download",
]
