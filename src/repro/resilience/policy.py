"""Deadline-aware retry, backoff, and graceful degradation.

The ideal-network session assumes every download eventually succeeds;
the only failure mode is a stall.  Production clients behave very
differently when a link misbehaves: they time out a fetch that will
blow the playback deadline, retry with exponential backoff, and degrade
what they ask for rather than stall indefinitely.  The paper's Ptile
design anticipates exactly this — the low-quality block layer exists as
a fallback covering the non-Ptile area (Sec. IV-A) — and deadline-driven
fetching (Flare) already motivates ``late_fetch_horizon_s``.

:func:`execute_download` runs one segment's fetch under a
:class:`DownloadPolicy` against a (possibly fault-overlaid) network:

* **Deadline budget.**  When segment ``k`` is requested with ``B``
  seconds buffered, the playback deadline is ``B`` seconds away.  The
  segment's time budget is ``B + timeout_slack_s``; an attempt is
  aborted once it would outlive ``max(min_timeout_s, budget - spent)``.
  The cold-start segment has no deadline (startup delay, not a stall),
  so its budget is unlimited.
* **Bounded retry with backoff.**  A corrupt/failed transfer is retried
  at the same ladder level after an exponential backoff
  (``min(backoff_cap_s, backoff_base_s * backoff_factor**i)``), charged
  as real wall time.  Total attempts never exceed
  ``retry_budget + 1``.
* **Degradation ladder.**  A timed-out attempt descends one level:
  retry the scheme's plan → the plan one quality step lower at a
  reduced frame rate (``REDUCED``) → only the lowest-quality block
  layer covering the whole frame (``LOW_LAYER``) → skip the segment
  entirely (``SKIPPED``, zero quality, full coverage penalty).

Aborted attempts charge their real elapsed time (latency + partial
transfer) to the wall clock and their radio-active time to transmission
energy; backoff waits cost wall time only.  Everything is a pure
function of the inputs, so faulty sessions stay deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import IntEnum

from ..streaming.schemes import LOWEST_QUALITY, DownloadPlan
from .faults import FaultPlan

__all__ = [
    "DegradationLevel",
    "DownloadPolicy",
    "DownloadOutcome",
    "build_degradation_ladder",
    "execute_download",
]

_UNBOUNDED_S = 1e9
"""Stand-in for an infinite attempt budget (cold-start segments)."""


class DegradationLevel(IntEnum):
    """Rungs of the graceful-degradation ladder, best first."""

    FULL = 0
    REDUCED = 1
    LOW_LAYER = 2
    SKIPPED = 3


@dataclass(frozen=True)
class DownloadPolicy:
    """Client-side retry/timeout/degradation parameters."""

    retry_budget: int = 2
    backoff_base_s: float = 0.2
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0
    timeout_slack_s: float = 0.75
    min_timeout_s: float = 0.5

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ValueError("retry budget must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.timeout_slack_s < 0:
            raise ValueError("timeout slack must be non-negative")
        if self.min_timeout_s <= 0:
            raise ValueError("minimum timeout must be positive")

    def backoff_s(self, retry_index: int) -> float:
        """Wait before retry ``retry_index`` (0-based) of one segment."""
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor**retry_index,
        )

    def deadline_budget_s(self, buffer_level_s: float) -> float:
        """Total tolerable fetch time before degrading, from the buffer
        level at request time (the playback deadline)."""
        return max(self.min_timeout_s, buffer_level_s + self.timeout_slack_s)


@dataclass(frozen=True)
class DownloadOutcome:
    """What one segment's resilient fetch actually delivered."""

    plan: DownloadPlan  # the delivered (possibly degraded) plan
    level: DegradationLevel
    elapsed_s: float  # wall time: latency + transfers + backoffs
    active_s: float  # radio-active time (transmission energy)
    retries: int  # attempts beyond the first
    timeouts: int  # attempts aborted by the deadline
    failed_attempts: int  # attempts completed corrupt
    edge_hit_mbit: float  # edge-served bytes of the delivered object

    @property
    def skipped(self) -> bool:
        return self.level == DegradationLevel.SKIPPED


def _reduced_plan(plan: DownloadPlan, seg, fps: float) -> DownloadPlan:
    """One quality step down at a reduced frame rate.

    The size is scaled by the rate law's ratio between the two quality
    levels (the encoder model is multiplicative in quality, so the
    full-frame ratio applies uniformly to any region mix).
    """
    reduced_q = max(float(LOWEST_QUALITY), math.ceil(plan.quality) - 1.0)
    if reduced_q >= plan.quality:
        ratio = 1.0
        reduced_q = plan.quality
    else:
        ratio = seg.full_frame_size_mbit(reduced_q) / seg.full_frame_size_mbit(
            plan.quality
        )
    return replace(
        plan,
        quality=reduced_q,
        total_size_mbit=plan.total_size_mbit * ratio,
        frame_rate=min(plan.frame_rate, 0.8 * fps),
    )


def _low_layer_plan(plan: DownloadPlan, seg, fps: float) -> DownloadPlan:
    """Only the lowest-quality layer covering the whole frame."""
    return DownloadPlan(
        scheme_name=plan.scheme_name,
        quality=LOWEST_QUALITY,
        frame_rate=min(plan.frame_rate, 0.7 * fps),
        total_size_mbit=seg.full_frame_size_mbit(LOWEST_QUALITY),
        decode_scheme=plan.decode_scheme,
    )


def _skip_plan(plan: DownloadPlan, fps: float) -> DownloadPlan:
    """Nothing downloaded; the player freezes through the gap."""
    return DownloadPlan(
        scheme_name=plan.scheme_name,
        quality=LOWEST_QUALITY,
        frame_rate=min(plan.frame_rate, 0.7 * fps),
        total_size_mbit=0.0,
        decode_scheme=plan.decode_scheme,
    )


# Fetchable rungs before SKIP: FULL, REDUCED, LOW_LAYER.
_LADDER_DEPTH = 3


def build_degradation_ladder(
    plan: DownloadPlan, seg, fps: float
) -> tuple[tuple[DegradationLevel, DownloadPlan], ...]:
    """The fetchable rungs for one segment, best first (SKIP excluded)."""
    return (
        (DegradationLevel.FULL, plan),
        (DegradationLevel.REDUCED, _reduced_plan(plan, seg, fps)),
        (DegradationLevel.LOW_LAYER, _low_layer_plan(plan, seg, fps)),
    )


def execute_download(
    net,
    plan: DownloadPlan,
    seg,
    fps: float,
    *,
    policy: DownloadPolicy,
    fault_plan: FaultPlan | None,
    start_wall_t: float,
    buffer_level_s: float,
    segment_index: int,
    edge_model=None,
    unlimited_deadline: bool = False,
) -> DownloadOutcome:
    """Fetch one segment under the retry/degradation policy.

    ``net`` is a :class:`~repro.traces.network.NetworkTrace` or a
    :class:`~repro.resilience.network.FaultyNetwork` — anything with
    ``download_within``.  ``edge_model`` splits each attempt as in the
    ideal session (cached fraction at the edge rate), except that a
    fault plan's edge failure zeroes the hit ratio from its fault time.
    ``unlimited_deadline`` marks the cold-start segment, whose fetch
    time is startup delay rather than a stall.
    """
    budget = (
        _UNBOUNDED_S
        if unlimited_deadline
        else policy.deadline_budget_s(buffer_level_s)
    )
    attempts_left = policy.retry_budget + 1
    attempt_no = 0
    elapsed = 0.0
    active = 0.0
    timeouts = 0
    failures = 0
    rung = 0
    # Rung plans are built lazily: the clean path (no faults, first
    # attempt succeeds) never materialises the degraded plans, which
    # keeps the faults-off overhead of this engine near zero.
    rung_built = -1
    level, lplan = DegradationLevel.FULL, plan
    while rung < _LADDER_DEPTH and attempts_left > 0:
        if rung != rung_built:
            if rung == 1:
                level, lplan = DegradationLevel.REDUCED, _reduced_plan(
                    plan, seg, fps
                )
            elif rung == 2:
                level, lplan = DegradationLevel.LOW_LAYER, _low_layer_plan(
                    plan, seg, fps
                )
            rung_built = rung
        attempt_timeout = min(
            max(policy.min_timeout_s, budget - elapsed), _UNBOUNDED_S
        )
        t = start_wall_t + elapsed
        latency = fault_plan.extra_latency(t) if fault_plan is not None else 0.0
        attempt_no += 1
        attempts_left -= 1
        if latency >= attempt_timeout:
            elapsed += attempt_timeout
            timeouts += 1
            rung += 1
            continue
        avail = attempt_timeout - latency
        edge_alive = edge_model is not None and (
            fault_plan is None or fault_plan.edge_available(t)
        )
        hit = edge_model.hit_ratio(segment_index) if edge_alive else 0.0
        edge_mbit = lplan.total_size_mbit * hit
        edge_time = (
            edge_mbit / edge_model.edge_bandwidth_mbps if edge_mbit > 0 else 0.0
        )
        if edge_time >= avail and lplan.total_size_mbit > 0:
            elapsed += attempt_timeout
            active += avail
            timeouts += 1
            rung += 1
            continue
        miss_mbit = lplan.total_size_mbit - edge_mbit
        delivered, used, completed = net.download_within(
            miss_mbit, t + latency + edge_time, avail - edge_time
        )
        attempt_active = edge_time + used
        if not completed:
            elapsed += attempt_timeout
            active += attempt_active
            timeouts += 1
            rung += 1
            continue
        if fault_plan is not None and fault_plan.attempt_fails(
            segment_index, attempt_no - 1
        ):
            failures += 1
            elapsed += latency + attempt_active
            active += attempt_active
            # Back off before retrying the same rung; real wall time.
            elapsed += policy.backoff_s(failures - 1)
            continue
        elapsed += latency + attempt_active
        active += attempt_active
        return DownloadOutcome(
            plan=lplan,
            level=level,
            elapsed_s=elapsed,
            active_s=active,
            retries=attempt_no - 1,
            timeouts=timeouts,
            failed_attempts=failures,
            edge_hit_mbit=edge_mbit,
        )
    return DownloadOutcome(
        plan=_skip_plan(plan, fps),
        level=DegradationLevel.SKIPPED,
        elapsed_s=elapsed,
        active_s=active,
        retries=max(attempt_no - 1, 0),
        timeouts=timeouts,
        failed_attempts=failures,
        edge_hit_mbit=0.0,
    )
