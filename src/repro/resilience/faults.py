"""Deterministic fault plans overlaying a network trace.

The simulator's :class:`~repro.traces.network.NetworkTrace` models an
ideal link: every download succeeds and the only impairment is finite
bandwidth.  Production links misbehave in structured ways — radio
outages, RTT spikes, congestion collapse, corrupt or aborted object
fetches, and edge-cache node failures — and robust tile streaming under
that uncertainty is its own literature (Ghosh et al.'s robust tile
scheduling; Flare's deadline-driven fetching, which already motivates
``late_fetch_horizon_s``).

A :class:`FaultPlan` is a *seeded, precomputed* overlay: every outage
window, collapse window, latency spike, per-attempt failure decision,
and edge-failure time is fixed up front by ``(profile, seed)``, so a
faulty session is exactly as deterministic as a fault-free one — the
same plan replayed serially, across a process pool, or from the results
cache produces byte-identical :class:`~repro.streaming.metrics.SessionResult`\\ s.

Fault semantics (see ``docs/MODELING.md`` §10):

* **Outage** — no bytes flow inside the window; wall time still passes.
* **Collapse** — throughput is multiplied by ``factor`` < 1 inside the
  window (overlapping windows multiply).
* **Latency spike** — a download attempt *starting* inside the window
  pays ``extra_latency_s`` before its first byte (the max applies when
  spikes overlap).
* **Attempt failure** — a completed transfer is corrupt/aborted with
  probability ``failure_rate``, decided by a stable hash of
  ``(seed, segment, attempt)`` so the decision does not depend on call
  order or process layout.
* **Edge failure** — the edge-cache node dies at ``edge_fail_at_s``;
  later requests see a hit ratio of zero (the backhaul still works).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Outage",
    "CollapseWindow",
    "LatencySpike",
    "FaultPlan",
    "FAULT_PROFILES",
    "generate_fault_plan",
]


def _check_window(start_s: float, end_s: float) -> None:
    if start_s < 0:
        raise ValueError("window start must be non-negative")
    if end_s <= start_s:
        raise ValueError("window end must come after its start")


@dataclass(frozen=True)
class Outage:
    """A window during which the link carries no bytes at all."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class CollapseWindow:
    """A window during which throughput collapses to a fraction."""

    start_s: float
    end_s: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if not 0.0 < self.factor < 1.0:
            raise ValueError("collapse factor must be in (0, 1)")


@dataclass(frozen=True)
class LatencySpike:
    """A window during which each new request pays extra first-byte
    latency."""

    start_s: float
    end_s: float
    extra_latency_s: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.extra_latency_s <= 0:
            raise ValueError("extra latency must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic overlay of link/edge faults on a session.

    All fields are primitives or tuples of frozen dataclasses, so the
    plan fingerprints structurally into results-cache keys: two sweeps
    with the same ``(profile, seed)`` share cached sessions, any other
    pair cannot collide.
    """

    name: str = "none"
    seed: int = 0
    outages: tuple[Outage, ...] = ()
    collapses: tuple[CollapseWindow, ...] = ()
    latency_spikes: tuple[LatencySpike, ...] = ()
    failure_rate: float = 0.0
    edge_fail_at_s: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(self, "collapses", tuple(self.collapses))
        object.__setattr__(self, "latency_spikes", tuple(self.latency_spikes))
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure rate must be in [0, 1]")
        if self.edge_fail_at_s is not None and self.edge_fail_at_s < 0:
            raise ValueError("edge failure time must be non-negative")
        # Piecewise boundaries where the bandwidth factor can change,
        # precomputed for the download integrator.  Attached outside the
        # declared fields so fingerprints/digests ignore the memo.
        edges = sorted(
            {w.start_s for w in self.outages}
            | {w.end_s for w in self.outages}
            | {w.start_s for w in self.collapses}
            | {w.end_s for w in self.collapses}
        )
        object.__setattr__(self, "_boundaries", tuple(edges))

    # ------------------------------------------------------------------
    # Queries used by the download engine.
    # ------------------------------------------------------------------

    @property
    def is_idle(self) -> bool:
        """True when the plan can never perturb a session."""
        return (
            not self.outages
            and not self.collapses
            and not self.latency_spikes
            and self.failure_rate == 0.0
            and self.edge_fail_at_s is None
        )

    def bandwidth_factor(self, t: float) -> float:
        """Multiplier on the trace bandwidth at absolute time ``t``."""
        for w in self.outages:
            if w.start_s <= t < w.end_s:
                return 0.0
        factor = 1.0
        for w in self.collapses:
            if w.start_s <= t < w.end_s:
                factor *= w.factor
        return factor

    def next_boundary_after(self, t: float) -> float:
        """Earliest fault boundary strictly after ``t`` (inf if none)."""
        for edge in self._boundaries:  # type: ignore[attr-defined]
            if edge > t:
                return edge
        return float("inf")

    def extra_latency(self, t: float) -> float:
        """First-byte latency added to a request issued at ``t``."""
        latency = 0.0
        for w in self.latency_spikes:
            if w.start_s <= t < w.end_s:
                latency = max(latency, w.extra_latency_s)
        return latency

    def attempt_fails(self, segment_index: int, attempt: int) -> bool:
        """Whether attempt ``attempt`` for a segment completes corrupt.

        Decided by a SHA-256 hash of ``(seed, segment, attempt)`` mapped
        to [0, 1), so the outcome is a pure function of the plan and the
        attempt's identity — independent of processes, call order, or
        Python's randomized ``hash()``.
        """
        if self.failure_rate <= 0.0:
            return False
        raw = hashlib.sha256(
            struct.pack("<qqq", self.seed, segment_index, attempt)
        ).digest()
        draw = struct.unpack("<Q", raw[:8])[0] / float(2**64)
        return draw < self.failure_rate

    def edge_available(self, t: float) -> bool:
        """Whether the edge-cache node is still alive at time ``t``."""
        return self.edge_fail_at_s is None or t < self.edge_fail_at_s


# ----------------------------------------------------------------------
# Named profiles.  Each builder draws its windows from a seeded
# Generator; generate_fault_plan derives the Generator from
# (profile name, seed) so two profiles with the same seed do not share a
# random stream.
# ----------------------------------------------------------------------


def _draw_windows(rng, duration_s, mean_gap_s, min_len_s, max_len_s):
    """Poisson-arrival windows clipped to the session duration.

    Always yields at least one window: on short sessions the long mean
    gaps would otherwise often draw zero arrivals, turning the profile
    into a silent no-op.  The fallback window is drawn from the same
    seeded stream, so determinism is unchanged.
    """
    windows = []
    cursor = float(rng.exponential(mean_gap_s))
    while cursor < duration_s:
        length = float(rng.uniform(min_len_s, max_len_s))
        windows.append((cursor, min(cursor + length, duration_s)))
        cursor += length + float(rng.exponential(mean_gap_s))
    if not windows:
        length = min(float(rng.uniform(min_len_s, max_len_s)),
                     0.5 * duration_s)
        start = float(rng.uniform(0.1, 0.8)) * (duration_s - length)
        windows.append((start, start + length))
    return windows


def _none_profile(duration_s: float, rng) -> dict:
    return {}


def _outages_profile(duration_s: float, rng) -> dict:
    return {
        "outages": tuple(
            Outage(start, end)
            for start, end in _draw_windows(rng, duration_s, 45.0, 0.5, 2.5)
        )
    }


def _spikes_profile(duration_s: float, rng) -> dict:
    return {
        "latency_spikes": tuple(
            LatencySpike(start, end, float(rng.uniform(0.3, 1.2)))
            for start, end in _draw_windows(rng, duration_s, 25.0, 1.0, 4.0)
        )
    }


def _collapse_profile(duration_s: float, rng) -> dict:
    return {
        "collapses": tuple(
            CollapseWindow(start, end, float(rng.uniform(0.1, 0.35)))
            for start, end in _draw_windows(rng, duration_s, 60.0, 4.0, 10.0)
        )
    }


def _lossy_profile(duration_s: float, rng) -> dict:
    spikes = _spikes_profile(duration_s, rng)
    return {"failure_rate": 0.15, **spikes}


def _edge_flaky_profile(duration_s: float, rng) -> dict:
    return {
        "edge_fail_at_s": float(rng.uniform(0.25, 0.75) * duration_s),
    }


def _stress_profile(duration_s: float, rng) -> dict:
    plan: dict = {}
    plan.update(_outages_profile(duration_s, rng))
    plan.update(_collapse_profile(duration_s, rng))
    plan.update(_spikes_profile(duration_s, rng))
    plan.update(_edge_flaky_profile(duration_s, rng))
    plan["failure_rate"] = 0.1
    return plan


FAULT_PROFILES = {
    "none": _none_profile,
    "outages": _outages_profile,
    "spikes": _spikes_profile,
    "collapse": _collapse_profile,
    "lossy": _lossy_profile,
    "edge-flaky": _edge_flaky_profile,
    "stress": _stress_profile,
}
"""Named fault-profile builders: ``name -> f(duration_s, rng) -> fields``."""


def generate_fault_plan(
    profile: str, duration_s: float, seed: int = 7
) -> FaultPlan:
    """Build the deterministic :class:`FaultPlan` of ``(profile, seed)``.

    ``duration_s`` bounds the window placement (normally the network
    trace duration, which also bounds the session wall clock for
    real-time playback).  The same arguments always produce the same
    plan, byte for byte.
    """
    try:
        builder = FAULT_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {profile!r}; available profiles: "
            f"{', '.join(sorted(FAULT_PROFILES))}"
        ) from None
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    name_salt = int.from_bytes(
        hashlib.sha256(profile.encode("utf-8")).digest()[:8], "little"
    )
    rng = np.random.default_rng([seed, name_salt])
    fields = builder(float(duration_s), rng)
    return FaultPlan(name=profile, seed=seed, **fields)
