"""A network trace with a fault plan applied.

:class:`FaultyNetwork` wraps a :class:`~repro.traces.network.NetworkTrace`
plus a :class:`~repro.resilience.faults.FaultPlan` and exposes the same
download interface the session loop uses, with the plan's outages and
collapse windows folded into the bandwidth integration.  Determinism is
inherited: both inputs are pure data, so every query is a pure function
of ``(trace, plan, arguments)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..traces.network import NetworkTrace
from .faults import FaultPlan

__all__ = ["FaultyNetwork"]


@dataclass(frozen=True)
class FaultyNetwork:
    """A :class:`NetworkTrace` seen through a :class:`FaultPlan`.

    Unlike the base trace, the *effective* bandwidth may be zero (inside
    an outage window), so callers feeding throughput estimators must
    guard against non-positive samples.
    """

    base: NetworkTrace
    plan: FaultPlan

    @property
    def name(self) -> str:
        return f"{self.base.name}+{self.plan.name}"

    def bandwidth_at(self, t: float) -> float:
        """Effective bandwidth (Mbps) at ``t``; 0 inside an outage."""
        return self.base.bandwidth_at(t) * self.plan.bandwidth_factor(t)

    def extra_latency(self, t: float) -> float:
        """First-byte latency of a request issued at ``t``."""
        return self.plan.extra_latency(t)

    def download_within(
        self, size_mbit: float, start_t: float, budget_s: float
    ) -> tuple[float, float, bool]:
        """Bounded download against the faulted link.

        Same contract as :meth:`NetworkTrace.download_within`, with the
        integration additionally split at fault-window boundaries: an
        outage contributes zero capacity while its wall time still
        elapses, and collapse windows scale the trace bandwidth.
        """
        if size_mbit < 0:
            raise ValueError("size must be non-negative")
        if start_t < 0:
            raise ValueError("start time must be non-negative")
        if budget_s < 0:
            raise ValueError("budget must be non-negative")
        if size_mbit == 0:
            return 0.0, 0.0, True
        if budget_s == 0:
            return 0.0, 0.0, False
        remaining = size_mbit
        t = start_t
        deadline = start_t + budget_s
        bin_s = self.base.bin_seconds
        guard = 0
        # Base traces may contain zero-bandwidth bins; size the bound on
        # the positive minimum (the deadline term alone already bounds
        # the loop, since t advances every iteration).
        base_bw = self.base.bandwidth_mbps
        positive_min = float(base_bw[base_bw > 0].min()) if (base_bw > 0).any() else 0.0
        max_iterations = (
            10 * base_bw.size
            + (int(size_mbit / positive_min) if positive_min > 0 else 0)
            + int(budget_s / bin_s)
            + 4 * (len(self.plan.outages) + len(self.plan.collapses))
            + 16
        )
        while remaining > 1e-12 and t < deadline:
            factor = self.plan.bandwidth_factor(t)
            bw = self.base.bandwidth_at(t) * factor
            bin_end = (int(t / bin_s) + 1) * bin_s
            piece_end = min(bin_end, deadline, self.plan.next_boundary_after(t))
            window = piece_end - t
            capacity = bw * window
            if bw > 0 and capacity >= remaining:
                dt = remaining / bw
                return size_mbit, (t - start_t) + dt, True
            remaining -= capacity
            t = piece_end
            guard += 1
            if guard > max_iterations:  # pragma: no cover - safety net
                raise RuntimeError("faulty download did not converge")
        return size_mbit - remaining, budget_s, False
