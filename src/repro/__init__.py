"""repro: Energy-efficient and QoE-aware 360-degree video streaming.

A full reproduction of Chen & Cao, "Energy-Efficient and QoE-Aware
360-Degree Video Streaming on Mobile Devices" (ICDCS 2022): Ptile
construction from viewing popularity, measured power models, the
SI/TI/bitrate QoE model with frame-rate adaptation, and the MPC-based
energy-minimizing controller, plus the Ctile/Ftile/Nontile baselines and
a trace-driven evaluation harness.

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.
"""

from .core import EnergyQoEMpc, MpcConfig, OursScheme, StreamingConfig
from .power import (
    DEVICES,
    DevicePowerModel,
    EnergyModel,
    GALAXY_S20,
    NEXUS_5X,
    PIXEL_3,
    TilingScheme,
    get_device,
)
from .ptile import (
    Cluster,
    Ptile,
    PtileConfig,
    SegmentPtiles,
    ViewingCenter,
    build_video_ptiles,
    cluster_viewing_centers,
)
from .qoe import QoEModel, QoEWeights, QualityModel, TABLE_II
from .streaming import (
    CtileScheme,
    FtileScheme,
    NontileScheme,
    PtileScheme,
    SessionConfig,
    SessionResult,
    run_session,
)
from .traces import (
    EvaluationDataset,
    HeadTrace,
    NetworkTrace,
    build_dataset,
    paper_traces,
)
from .video import EncoderModel, FrameRateLadder, VideoManifest, build_catalog

__version__ = "1.0.0"

__all__ = [
    "EnergyQoEMpc",
    "MpcConfig",
    "OursScheme",
    "StreamingConfig",
    "DEVICES",
    "DevicePowerModel",
    "EnergyModel",
    "GALAXY_S20",
    "NEXUS_5X",
    "PIXEL_3",
    "TilingScheme",
    "get_device",
    "Cluster",
    "Ptile",
    "PtileConfig",
    "SegmentPtiles",
    "ViewingCenter",
    "build_video_ptiles",
    "cluster_viewing_centers",
    "QoEModel",
    "QoEWeights",
    "QualityModel",
    "TABLE_II",
    "CtileScheme",
    "FtileScheme",
    "NontileScheme",
    "PtileScheme",
    "SessionConfig",
    "SessionResult",
    "run_session",
    "EvaluationDataset",
    "HeadTrace",
    "NetworkTrace",
    "build_dataset",
    "paper_traces",
    "EncoderModel",
    "FrameRateLadder",
    "VideoManifest",
    "build_catalog",
    "__version__",
]
