"""Fig. 4 — content features and the fitted Q_o model.

(a) The SI/TI scatter of the test-video segments (content spread).
(b) The "original" quality Q_o (Eq. 3, Table II) as a function of SI,
    TI, and bitrate — evaluated on a grid for the surface plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..qoe.quality import QualityModel
from ..video.content import Video, build_catalog
from ..video.encoder import EncoderModel

__all__ = ["Fig4Result", "run_fig4"]


@dataclass(frozen=True)
class Fig4Result:
    """Scatter points and Q_o surface."""

    video_ids: tuple[int, ...]
    si: np.ndarray  # per sampled segment
    ti: np.ndarray
    surface_bitrates: np.ndarray
    surface_qo: np.ndarray  # shape (len(ti_grid), len(bitrate_grid))
    ti_grid: np.ndarray
    si_fixed: float

    def report(self) -> list[str]:
        lines = [
            "Fig. 4(a): SI/TI ranges per video:",
        ]
        for vid in self.video_ids:
            mask = self.video_of == vid
            lines.append(
                f"  video {vid}: SI {self.si[mask].mean():.1f}"
                f" +/- {self.si[mask].std():.1f},"
                f" TI {self.ti[mask].mean():.1f} +/- {self.ti[mask].std():.1f}"
            )
        lines.append(
            f"Fig. 4(b): Q_o surface at SI={self.si_fixed:.0f}: rises with"
            " bitrate, falls with TI"
        )
        lines.append(
            "  Qo(min b, max TI) = "
            f"{self.surface_qo[-1, 0]:.1f}; Qo(max b, min TI) = "
            f"{self.surface_qo[0, -1]:.1f}"
        )
        return lines

    @property
    def video_of(self) -> np.ndarray:
        # One block of samples per video, in catalog order.
        per_video = len(self.si) // len(self.video_ids)
        return np.repeat(self.video_ids, per_video)


def run_fig4(
    videos: tuple[Video, ...] | None = None,
    quality_model: QualityModel | None = None,
    encoder: EncoderModel | None = None,
    segments_per_video: int = 30,
    si_fixed: float = 33.0,
) -> Fig4Result:
    """Sample the SI/TI scatter and evaluate the Q_o surface."""
    videos = videos or build_catalog()
    quality_model = quality_model or QualityModel()
    encoder = encoder or EncoderModel()

    si_list: list[float] = []
    ti_list: list[float] = []
    for video in videos:
        n = video.num_segments
        picks = np.linspace(0, n - 1, segments_per_video).astype(int)
        for idx in picks:
            seg = video.segment(int(idx))
            si_list.append(seg.si)
            ti_list.append(seg.ti)

    ti_grid = np.linspace(4.0, 24.0, 11)
    bitrates = np.linspace(0.5, 8.0, 16)  # perceptual (Eq. 3) bitrate axis
    surface = np.empty((ti_grid.size, bitrates.size))
    for i, ti in enumerate(ti_grid):
        surface[i] = quality_model.qo_array(si_fixed, ti, bitrates)

    return Fig4Result(
        video_ids=tuple(v.meta.video_id for v in videos),
        si=np.array(si_list),
        ti=np.array(ti_list),
        surface_bitrates=bitrates,
        surface_qo=surface,
        ti_grid=ti_grid,
        si_fixed=si_fixed,
    )
