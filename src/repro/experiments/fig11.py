"""Fig. 11 — QoE comparison of the five schemes.

(a,b) Per-video session QoE under the two traces; (c) QoE normalized by
Ctile (paper: Ours +7.4 % on trace 1, +18.4 % on trace 2; Nontile
worst); (d) the three QoE components — average quality, quality
variation, rebuffering — for video 8 under trace 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power.models import DevicePowerModel, PIXEL_3
from ..streaming.metrics import SessionResult
from .setup import ExperimentSetup, SCHEME_ORDER, run_comparison

__all__ = ["QoEComparison", "run_fig11"]


@dataclass(frozen=True)
class QoEComparison:
    """QoE results across schemes, videos, and traces."""

    per_video: dict[tuple[str, str, int], float]
    components: dict[tuple[str, str, int], tuple[float, float, float]]
    video_ids: tuple[int, ...]
    traces: tuple[str, ...] = ("trace1", "trace2")
    schemes: tuple[str, ...] = SCHEME_ORDER

    def normalized(self, trace: str) -> dict[str, float]:
        """Fig. 11(c): mean QoE per scheme normalized by Ctile."""
        means = {
            scheme: float(
                np.mean(
                    [self.per_video[(trace, scheme, vid)] for vid in self.video_ids]
                )
            )
            for scheme in self.schemes
        }
        base = means["ctile"]
        return {scheme: value / base for scheme, value in means.items()}

    def improvement_vs_ctile(self, scheme: str, trace: str) -> float:
        return self.normalized(trace)[scheme] - 1.0

    def components_for(
        self, video_id: int, trace: str
    ) -> dict[str, tuple[float, float, float]]:
        """Fig. 11(d): (avg quality, variation, rebuffer) per scheme."""
        return {
            scheme: self.components[(trace, scheme, video_id)]
            for scheme in self.schemes
        }

    def report(self) -> list[str]:
        lines = ["QoE comparison"]
        for trace in self.traces:
            norm = self.normalized(trace)
            lines.append(f"  {trace} normalized by Ctile:")
            for scheme in self.schemes:
                lines.append(
                    f"    {scheme:<8} {norm[scheme]:.3f}"
                    f" ({norm[scheme] - 1:+.1%})"
                )
        vid = self.video_ids[-1]
        lines.append(
            f"  components, video {vid} / trace2 (quality, variation, rebuffer):"
        )
        for scheme, (qo, var, reb) in self.components_for(vid, "trace2").items():
            lines.append(f"    {scheme:<8} {qo:.1f} {var:.2f} {reb:.2f}")
        return lines


def summarize_qoe(
    results: dict[tuple[str, str, int], list[SessionResult]],
) -> QoEComparison:
    """Collapse a session matrix into the Fig. 11 QoE views."""
    per_video: dict[tuple[str, str, int], float] = {}
    components: dict[tuple[str, str, int], tuple[float, float, float]] = {}
    video_ids = sorted({key[2] for key in results})
    traces = tuple(sorted({key[0] for key in results}))
    schemes = tuple(s for s in SCHEME_ORDER if any(k[1] == s for k in results))
    for key, sessions in results.items():
        qoes = [s.session_qoe for s in sessions]
        per_video[key] = float(np.mean([q.mean_q for q in qoes]))
        components[key] = (
            float(np.mean([q.mean_qo for q in qoes])),
            float(np.mean([q.mean_variation for q in qoes])),
            float(np.mean([q.mean_rebuffer for q in qoes])),
        )
    return QoEComparison(
        per_video=per_video,
        components=components,
        video_ids=tuple(video_ids),
        traces=traces,
        schemes=schemes,
    )


def run_fig11(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    users_per_video: int | None = None,
    results: dict[tuple[str, str, int], list[SessionResult]] | None = None,
    workers: int | None = 1,
    results_store=None,
) -> QoEComparison:
    """Run (or reuse) the session matrix and summarize QoE.

    ``workers`` parallelizes the sweep (0 = auto-detect) without
    changing its results.
    """
    if results is None:
        results = run_comparison(setup, device, users_per_video,
                                 workers=workers,
                                 results_store=results_store)
    return summarize_qoe(results)
