"""Parallel execution of session sweeps.

The paper's headline results come from large session matrices — schemes
x videos x users x network traces x devices — and every session is
independent of every other.  This module fans those sessions out over a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the
results **deterministic**: results are returned in job-submission order
regardless of worker scheduling, and each session is a pure function of
its inputs, so a parallel sweep is byte-identical to a serial one.

Design:

* A :class:`SweepContext` holds the shared heavyweight inputs (schemes,
  manifests, Ptiles, traces) and is shipped **once per worker** through
  the pool initializer instead of once per job.
* A :class:`SessionJob` is a tiny picklable reference into the context
  (scheme name, video id, trace name, user index) plus an optional
  per-job :class:`SessionConfig` override.
* Jobs are grouped into contiguous **chunks** to amortize inter-process
  dispatch; ``chunk_size=None`` picks ``ceil(len(jobs) / (workers * 4))``
  so each worker gets ~4 waves of work for load balancing.
* ``workers=1`` (the default everywhere) runs serially in-process with
  no pool at all; ``workers=0``/``None`` auto-detects ``os.cpu_count()``.
  If the pool cannot be created (e.g. a sandbox without process
  spawning), the runner degrades to the serial path instead of failing.
* Every job is timed and failures are captured as structured
  :class:`JobFailure` records (message + traceback) instead of killing
  the whole sweep; ``strict=True`` raises after the sweep completes.

:func:`parallel_map` offers the same machinery for non-session work
(e.g. per-video catalog statistics in Fig. 2).
"""

from __future__ import annotations

import math
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from ..power.models import DevicePowerModel
from ..ptile.construction import SegmentPtiles
from .artifacts import (
    ArtifactStore,
    ShardedResultsStore,
    results_key,
    results_key_from_digest,
    results_shard_key,
    session_job_digest,
    sweep_context_digest,
)
from ..streaming.ftile import FtilePartition
from ..streaming.metrics import SessionResult
from ..streaming.schemes import StreamingScheme
from ..streaming.session import SessionConfig, run_session
from ..traces.head_movement import HeadTrace
from ..traces.network import NetworkTrace
from ..video.segments import VideoManifest

__all__ = [
    "SessionJob",
    "SweepContext",
    "JobTiming",
    "JobFailure",
    "SweepRun",
    "resolve_workers",
    "resolve_chunk_size",
    "run_session_jobs",
    "parallel_map",
]


@dataclass(frozen=True)
class SessionJob:
    """One streaming session, referencing shared inputs by key.

    ``key`` is an arbitrary caller-side label (e.g. ``(trace, scheme,
    video_id)``) carried through to the report; it does not need to be
    unique.
    """

    key: Hashable
    scheme: str
    video_id: int
    network: str
    user_index: int
    use_ptiles: bool = True
    use_ftiles: bool = True
    config: SessionConfig | None = None  # overrides the context default


@dataclass(frozen=True)
class SweepContext:
    """Shared sweep inputs, shipped once to each worker process."""

    schemes: dict[str, StreamingScheme]
    device: DevicePowerModel
    networks: dict[str, NetworkTrace]
    manifests: dict[int, VideoManifest]
    head_traces: dict[int, tuple[HeadTrace, ...]]
    ptiles: dict[int, list[SegmentPtiles]] = field(default_factory=dict)
    ftiles: dict[int, list[FtilePartition]] = field(default_factory=dict)
    config: SessionConfig = field(default_factory=SessionConfig)
    # Per-video SessionConfig overrides (e.g. a contention-aware
    # EdgeHitModel per tenant of a shared edge cache).  Resolution order
    # per job: job.config, then video_configs[video_id], then config.
    video_configs: dict[int, SessionConfig] = field(default_factory=dict)

    def slice(self, video_ids) -> "SweepContext":
        """A context restricted to the given videos.

        The per-video dicts (manifests, Ptiles, Ftiles, head traces)
        dominate the pickled payload shipped to each worker; slicing to
        the videos a job batch actually references keeps the per-worker
        transfer proportional to the sweep, not the catalog.  Returns
        ``self`` unchanged when nothing would be dropped.
        """
        wanted = set(video_ids)
        keys = (
            set(self.manifests) | set(self.head_traces)
            | set(self.ptiles) | set(self.ftiles) | set(self.video_configs)
        )
        if keys <= wanted:
            return self
        return SweepContext(
            schemes=self.schemes,
            device=self.device,
            networks=self.networks,
            manifests={k: v for k, v in self.manifests.items() if k in wanted},
            head_traces={
                k: v for k, v in self.head_traces.items() if k in wanted
            },
            ptiles={k: v for k, v in self.ptiles.items() if k in wanted},
            ftiles={k: v for k, v in self.ftiles.items() if k in wanted},
            config=self.config,
            video_configs={
                k: v for k, v in self.video_configs.items() if k in wanted
            },
        )

    def run_job(self, job: SessionJob) -> SessionResult:
        """Execute one job against this context (pure; any process)."""
        try:
            scheme = self.schemes[job.scheme]
        except KeyError:
            raise KeyError(f"unknown scheme {job.scheme!r}") from None
        try:
            network = self.networks[job.network]
        except KeyError:
            raise KeyError(f"unknown network {job.network!r}") from None
        try:
            manifest = self.manifests[job.video_id]
        except KeyError:
            raise KeyError(f"unknown video {job.video_id!r}") from None
        heads = self.head_traces[job.video_id]
        if not (0 <= job.user_index < len(heads)):
            raise IndexError(
                f"user index {job.user_index} outside 0..{len(heads) - 1}"
                f" for video {job.video_id}"
            )
        config = (
            job.config
            or self.video_configs.get(job.video_id)
            or self.config
        )
        return run_session(
            scheme,
            manifest,
            heads[job.user_index],
            network,
            self.device,
            ptiles=self.ptiles.get(job.video_id) if job.use_ptiles else None,
            ftiles=self.ftiles.get(job.video_id) if job.use_ftiles else None,
            config=config,
        )


@dataclass(frozen=True)
class JobTiming:
    """Wall-clock timing of one executed job."""

    key: Hashable
    worker: str  # "serial" or "pid:<n>"
    elapsed_s: float


@dataclass(frozen=True)
class JobFailure:
    """A job that raised, with enough context to reproduce it."""

    key: Hashable
    job_index: int
    error: str
    traceback: str


@dataclass
class SweepRun:
    """Outcome of a sweep: results in job order plus execution telemetry."""

    results: list[Any]  # job order; None where the job failed
    timings: list[JobTiming]
    failures: list[JobFailure]
    workers: int
    chunk_size: int
    wall_s: float
    cache_hits: int = 0  # jobs served from the results store

    @property
    def num_jobs(self) -> int:
        return len(self.results)

    @property
    def sessions_per_second(self) -> float:
        if self.wall_s <= 0:
            return float("inf")
        return self.num_jobs / self.wall_s

    def raise_on_failure(self) -> None:
        if not self.failures:
            return
        lines = [f"{len(self.failures)}/{self.num_jobs} sweep jobs failed:"]
        for failure in self.failures[:5]:
            lines.append(f"  job {failure.job_index} {failure.key!r}: "
                         f"{failure.error}")
        if len(self.failures) > 5:
            lines.append(f"  ... and {len(self.failures) - 5} more")
        lines.append(self.failures[0].traceback)
        raise RuntimeError("\n".join(lines))

    def report(self) -> list[str]:
        """Human-readable execution summary."""
        lines = [
            f"sweep: {self.num_jobs} jobs, {self.workers} worker(s),"
            f" chunks of {self.chunk_size}, {self.wall_s:.2f}s wall"
            f" ({self.sessions_per_second:.2f} jobs/s)",
        ]
        if self.cache_hits:
            lines.append(
                f"  {self.cache_hits}/{self.num_jobs} job(s) served from"
                " the results cache"
            )
        if self.timings:
            total = sum(t.elapsed_s for t in self.timings)
            slowest = max(self.timings, key=lambda t: t.elapsed_s)
            lines.append(
                f"  cpu-time {total:.2f}s; slowest job {slowest.key!r}"
                f" at {slowest.elapsed_s:.2f}s"
            )
        for failure in self.failures:
            lines.append(f"  FAILED job {failure.job_index} {failure.key!r}:"
                         f" {failure.error}")
        return lines


def resolve_workers(workers: int | None) -> int:
    """``None``/``0`` -> auto-detect CPU count; otherwise validate."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(
            f"invalid worker count {workers}: pass a positive number of "
            "worker processes, or 0/None to auto-detect the CPU count"
        )
    return workers


def resolve_chunk_size(
    chunk_size: int | None, num_jobs: int, workers: int
) -> int:
    """Default: ~4 waves of chunks per worker, at least one job each."""
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError("chunk size must be >= 1")
        return chunk_size
    if num_jobs <= 0 or workers <= 1:
        return max(num_jobs, 1)
    return max(1, math.ceil(num_jobs / (workers * 4)))


def _chunked(indices: range, chunk_size: int) -> list[list[int]]:
    return [
        list(indices[i : i + chunk_size])
        for i in range(0, len(indices), chunk_size)
    ]


# ----------------------------------------------------------------------
# Worker-process plumbing.  The payload — (executable, items) where the
# executable is a SweepContext or a mapped function — is shipped once
# per worker via the pool initializer and stashed in a module global;
# chunk tasks then reference jobs by index only, so per-task pickling
# stays tiny no matter how heavy the shared inputs are.
# ----------------------------------------------------------------------

_WORKER_PAYLOAD: tuple[Any, tuple[Any, ...]] | None = None


def _init_worker(payload: tuple[Any, tuple[Any, ...]]) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _payload_execute(payload: tuple[Any, tuple[Any, ...]]) -> Callable:
    executable, _ = payload
    if isinstance(executable, SweepContext):
        return executable.run_job
    return executable


def _run_indexed(
    execute: Callable[[Any], Any],
    items: Sequence[Any],
    indices: list[int],
) -> list[tuple[int, Any, tuple[str, str] | None, float]]:
    """Run a chunk; never raises — failures become structured entries."""
    out = []
    for i in indices:
        start = time.perf_counter()
        try:
            result = execute(items[i])
            error = None
        except Exception as exc:  # noqa: BLE001 - reported to the caller
            result = None
            error = (f"{type(exc).__name__}: {exc}", traceback.format_exc())
        out.append((i, result, error, time.perf_counter() - start))
    return out


def _worker_chunk(indices: list[int]):
    payload = _WORKER_PAYLOAD
    assert payload is not None, "worker used before initialization"
    _, items = payload
    return _run_indexed(_payload_execute(payload), items, indices)


def _execute_sweep(
    executable: Any,
    execute: Callable[[Any], Any],
    items: Sequence[Any],
    keys: Sequence[Hashable],
    workers: int | None,
    chunk_size: int | None,
) -> SweepRun:
    """Shared serial/parallel driver behind the public entry points."""
    items = tuple(items)
    n = len(items)
    resolved = resolve_workers(workers)
    resolved = min(resolved, max(n, 1))
    chunk = resolve_chunk_size(chunk_size, n, resolved)
    start = time.perf_counter()

    raw: list[tuple[int, Any, tuple[str, str] | None, float] | None]
    raw = [None] * n
    used_workers = resolved
    if resolved > 1 and n > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=resolved,
                initializer=_init_worker,
                initargs=((executable, items),),
            ) as pool:
                futures = [
                    pool.submit(_worker_chunk, indices)
                    for indices in _chunked(range(n), chunk)
                ]
                for future in futures:
                    for entry in future.result():
                        raw[entry[0]] = entry
        except (OSError, PermissionError):
            # Pool creation can fail in restricted environments (no
            # /dev/shm, no process spawning); degrade to serial.
            used_workers = 1
            raw = [None] * n
    else:
        used_workers = 1

    if used_workers == 1:
        for indices in _chunked(range(n), chunk):
            for entry in _run_indexed(execute, items, indices):
                raw[entry[0]] = entry

    worker_label = "serial" if used_workers == 1 else "pool"
    results: list[Any] = [None] * n
    timings: list[JobTiming] = []
    failures: list[JobFailure] = []
    for i, entry in enumerate(raw):
        assert entry is not None, f"job {i} produced no outcome"
        _, result, error, elapsed = entry
        results[i] = result
        timings.append(JobTiming(keys[i], worker_label, elapsed))
        if error is not None:
            failures.append(JobFailure(keys[i], i, error[0], error[1]))
    return SweepRun(
        results=results,
        timings=timings,
        failures=failures,
        workers=used_workers,
        chunk_size=chunk,
        wall_s=time.perf_counter() - start,
    )


def run_session_jobs(
    context: SweepContext,
    jobs: Sequence[SessionJob],
    *,
    workers: int | None = 1,
    chunk_size: int | None = None,
    strict: bool = True,
    results: ArtifactStore | None = None,
) -> SweepRun:
    """Run session jobs, serially or across processes.

    ``SweepRun.results`` holds one :class:`SessionResult` per job, in
    job order, independent of scheduling — a parallel sweep returns
    byte-identical results to a serial one.  With ``strict`` (default)
    any failure raises after the sweep; otherwise failed slots are
    ``None`` and described in ``SweepRun.failures``.

    With a ``results`` store, each job is first looked up under its
    (sweep-context digest, job digest, schema/code version) key; hits
    skip execution entirely and fresh results are written back, so a
    warm re-run of an identical sweep is pure deserialization while
    staying byte-identical to an uncached one.  Only the cache misses
    hit the pool, and cached/computed results merge back in job order.

    A :class:`~repro.experiments.artifacts.ShardedResultsStore` batches
    that lookup per (context, video) group: jobs are grouped by shard
    key, each group is served by a single columnar shard read, and
    fresh results (plus any rows migrated from legacy per-session
    pickles) append-merge back into the shard — one file per group
    instead of one per session.  A plain :class:`ArtifactStore` keeps
    the legacy per-session pickle layout.
    """
    jobs = tuple(jobs)
    # Ship only the videos these jobs reference; each worker's payload
    # is then the jobs' slice of the context, not the whole catalog.
    context = context.slice({job.video_id for job in jobs})
    if results is None or not jobs:
        run = _execute_sweep(
            context,
            context.run_job,
            jobs,
            [job.key for job in jobs],
            workers,
            chunk_size,
        )
        if strict:
            run.raise_on_failure()
        return run

    start = time.perf_counter()
    context_digest = sweep_context_digest(context)
    sharded = isinstance(results, ShardedResultsStore)
    merged: list[Any]
    if sharded:
        job_digests = [session_job_digest(job) for job in jobs]
        keys = [
            results_key_from_digest(context_digest, digest)
            for digest in job_digests
        ]
        groups: dict[int, list[int]] = {}
        for i, job in enumerate(jobs):
            groups.setdefault(job.video_id, []).append(i)
        shard_keys = {
            video_id: results_shard_key(context_digest, video_id)
            for video_id in groups
        }
        merged = [None] * len(jobs)
        # Rows served from legacy per-session pickles, queued up to be
        # folded into their shard alongside this run's fresh results.
        to_merge: dict[int, dict[str, Any]] = {}
        for video_id, indices in groups.items():
            batch, migrated = results.get_results_batch(
                shard_keys[video_id],
                [(job_digests[i], keys[i]) for i in indices],
            )
            for i, result in zip(indices, batch):
                merged[i] = result
            if migrated:
                to_merge[video_id] = migrated
    else:
        keys = [results_key(context_digest, job) for job in jobs]
        merged = [results.get("results", key) for key in keys]
    pending = [i for i, hit in enumerate(merged) if hit is None]

    timings: list[JobTiming] = []
    failures: list[JobFailure] = []
    if pending:
        sub = _execute_sweep(
            context,
            context.run_job,
            [jobs[i] for i in pending],
            [jobs[i].key for i in pending],
            workers,
            chunk_size,
        )
        failed_positions = {failure.job_index for failure in sub.failures}
        for position, i in enumerate(pending):
            merged[i] = sub.results[position]
            if position not in failed_positions and sub.results[position] is not None:
                if sharded:
                    to_merge.setdefault(jobs[i].video_id, {})[
                        job_digests[i]
                    ] = sub.results[position]
                else:
                    results.put("results", keys[i], sub.results[position])
        timings = sub.timings
        # Failure indices refer to the original job list, not the
        # pending subset the pool actually ran.
        failures = [
            JobFailure(
                failure.key,
                pending[failure.job_index],
                failure.error,
                failure.traceback,
            )
            for failure in sub.failures
        ]
        used_workers, chunk = sub.workers, sub.chunk_size
    else:
        used_workers = 1
        chunk = resolve_chunk_size(chunk_size, 0, 1)
    if sharded:
        for video_id, entries in to_merge.items():
            results.merge_shard(shard_keys[video_id], entries)

    run = SweepRun(
        results=merged,
        timings=timings,
        failures=failures,
        workers=used_workers,
        chunk_size=chunk,
        wall_s=time.perf_counter() - start,
        cache_hits=len(jobs) - len(pending),
    )
    if strict:
        run.raise_on_failure()
    return run


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: int | None = 1,
    chunk_size: int | None = None,
    strict: bool = True,
) -> SweepRun:
    """Order-preserving parallel map with the sweep machinery.

    ``fn`` must be picklable (a module-level function) for ``workers >
    1``; with ``workers=1`` any callable works.
    """
    items = tuple(items)
    run = _execute_sweep(
        fn,
        fn,
        items,
        list(range(len(items))),
        workers,
        chunk_size,
    )
    if strict:
        run.raise_on_failure()
    return run
