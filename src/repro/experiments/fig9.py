"""Fig. 9 / Fig. 10 — energy comparison of the five schemes.

Fig. 9(a,b): per-video total energy under trace 1 and trace 2 (Pixel 3).
Fig. 9(c): energy normalized by Ctile, averaged over videos and traces —
the paper's headline: Ptile saves 30.3 % and Ours 49.7 % versus Ctile.
Fig. 9(d): the three energy components for video 8 under trace 2.
Fig. 10 is the same computation on the Nexus 5X and Galaxy S20.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power.models import DevicePowerModel, PIXEL_3
from ..streaming.metrics import SessionResult
from .setup import ExperimentSetup, SCHEME_ORDER, run_comparison

__all__ = ["EnergyComparison", "run_fig9"]


@dataclass(frozen=True)
class EnergyComparison:
    """Energy results across schemes, videos, and traces for a device."""

    device_name: str
    # (trace, scheme, video) -> mean per-segment energy (J)
    per_video: dict[tuple[str, str, int], float]
    # (trace, scheme, video) -> (transmission, decoding, rendering) J/segment
    breakdown: dict[tuple[str, str, int], tuple[float, float, float]]
    video_ids: tuple[int, ...]
    traces: tuple[str, ...] = ("trace1", "trace2")
    schemes: tuple[str, ...] = SCHEME_ORDER

    def normalized(self, trace: str | None = None) -> dict[str, float]:
        """Fig. 9(c): mean energy per scheme normalized by Ctile."""
        traces = (trace,) if trace else self.traces
        means = {
            scheme: float(
                np.mean(
                    [
                        self.per_video[(t, scheme, vid)]
                        for t in traces
                        for vid in self.video_ids
                    ]
                )
            )
            for scheme in self.schemes
        }
        base = means["ctile"]
        return {scheme: value / base for scheme, value in means.items()}

    def saving_vs_ctile(self, scheme: str, trace: str | None = None) -> float:
        return 1.0 - self.normalized(trace)[scheme]

    def breakdown_for(
        self, video_id: int, trace: str
    ) -> dict[str, tuple[float, float, float]]:
        """Fig. 9(d): per-component energy for one video and trace."""
        return {
            scheme: self.breakdown[(trace, scheme, video_id)]
            for scheme in self.schemes
        }

    def report(self) -> list[str]:
        lines = [f"Energy comparison ({self.device_name})"]
        for trace in self.traces:
            lines.append(f"  {trace}: per-video energy per segment (J)")
            for scheme in self.schemes:
                row = " ".join(
                    f"{self.per_video[(trace, scheme, vid)]:.2f}"
                    for vid in self.video_ids
                )
                lines.append(f"    {scheme:<8} {row}")
        norm = self.normalized()
        lines.append("  normalized by Ctile (paper: Ptile 0.697, Ours 0.503):")
        for scheme in self.schemes:
            lines.append(
                f"    {scheme:<8} {norm[scheme]:.3f}"
                f" (saving {1 - norm[scheme]:+.1%})"
            )
        vid = self.video_ids[-1]
        lines.append(f"  breakdown, video {vid} / trace2 (t, d, r J/segment):")
        for scheme, (t, d, r) in self.breakdown_for(vid, "trace2").items():
            lines.append(f"    {scheme:<8} {t:.2f} {d:.2f} {r:.2f}")
        return lines


def summarize_energy(
    results: dict[tuple[str, str, int], list[SessionResult]],
    device_name: str,
) -> EnergyComparison:
    """Collapse a session matrix into the Fig. 9 energy views."""
    per_video: dict[tuple[str, str, int], float] = {}
    breakdown: dict[tuple[str, str, int], tuple[float, float, float]] = {}
    video_ids = sorted({key[2] for key in results})
    traces = tuple(sorted({key[0] for key in results}))
    schemes = tuple(s for s in SCHEME_ORDER if any(k[1] == s for k in results))
    for key, sessions in results.items():
        per_video[key] = float(
            np.mean([s.energy_per_segment_j for s in sessions])
        )
        breakdown[key] = (
            float(np.mean([s.energy.transmission_j / s.num_segments for s in sessions])),
            float(np.mean([s.energy.decoding_j / s.num_segments for s in sessions])),
            float(np.mean([s.energy.rendering_j / s.num_segments for s in sessions])),
        )
    return EnergyComparison(
        device_name=device_name,
        per_video=per_video,
        breakdown=breakdown,
        video_ids=tuple(video_ids),
        traces=traces,
        schemes=schemes,
    )


def run_fig9(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    users_per_video: int | None = None,
    results: dict[tuple[str, str, int], list[SessionResult]] | None = None,
    workers: int | None = 1,
    results_store=None,
) -> EnergyComparison:
    """Run (or reuse) the session matrix and summarize energy.

    Pass ``device=NEXUS_5X`` or ``GALAXY_S20`` for Fig. 10.  Passing a
    precomputed ``results`` matrix avoids re-simulating when Fig. 11
    shares the same sessions.  ``workers`` parallelizes the sweep
    (0 = auto-detect) without changing its results.
    """
    if results is None:
        results = run_comparison(setup, device, users_per_video,
                                 workers=workers,
                                 results_store=results_store)
    return summarize_energy(results, device.name)
