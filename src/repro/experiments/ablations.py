"""Ablation studies over the design choices of Section IV.

The paper fixes several design parameters (MPC horizon H = 5, QoE
tolerance eps = 5 %, harmonic-mean bandwidth estimation, the
{10, 20, 30} % frame-rate ladder, sigma = tile width with delta =
sigma / 4).  These sweeps quantify what each choice buys:

* :func:`sweep_mpc_horizon` — H = 1 disables lookahead; larger H
  smooths bandwidth-prediction error (Section IV-C's motivation).
* :func:`sweep_qoe_tolerance` — eps trades QoE for energy directly.
* :func:`sweep_frame_rate_ladder` — no ladder reduces Ours to Ptile;
  deeper ladders save more energy while Eq. 4 bounds the QoE cost.
* :func:`sweep_bandwidth_estimator` — harmonic mean versus EWMA versus
  last-sample, under the bursty LTE trace.
* :func:`sweep_clustering_sigma` — the Fig. 6 trade-off: larger sigma
  merges interests into oversized Ptiles, smaller sigma fragments them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.controller import OursScheme
from ..core.optimizer import MpcConfig
from ..core.robust import RobustScheme
from ..power.models import DevicePowerModel, PIXEL_3
from ..prediction.bandwidth import (
    EwmaEstimator,
    HarmonicMeanEstimator,
    LastSampleEstimator,
)
from ..prediction.uncertainty import PanoWeight
from ..prediction.viewport import AngularErrorModel
from ..ptile.construction import PtileConfig, build_video_ptiles
from ..ptile.coverage import coverage_stats
from ..resilience.faults import generate_fault_plan
from ..resilience.policy import DownloadPolicy
from ..streaming.cache import (
    CacheTenant,
    build_edge_hit_model,
    build_shared_edge_hit_models,
)
from ..streaming.metrics import SessionResult
from ..streaming.schemes import CtileScheme, FtileScheme, PtileScheme
from ..streaming.session import SessionConfig
from ..video.framerate import FrameRateLadder
from .artifacts import ArtifactStore, ptiles_key
from .runner import SessionJob, SweepContext, parallel_map, run_session_jobs
from .setup import ExperimentSetup

__all__ = [
    "AblationPoint",
    "sweep_mpc_horizon",
    "sweep_qoe_tolerance",
    "sweep_frame_rate_ladder",
    "sweep_bandwidth_estimator",
    "sweep_clustering_sigma",
    "sweep_edge_cache",
    "sweep_ladder",
    "sweep_shared_cache",
    "sweep_viewport_predictor",
    "sweep_resilience",
    "sweep_robust",
]


@dataclass(frozen=True)
class AblationPoint:
    """One configuration's outcome in a sweep."""

    label: str
    energy_per_segment_j: float
    qoe: float
    rebuffer_count: float
    extra: dict | None = None

    def report(self) -> str:
        line = (
            f"  {self.label:<22} E/seg {self.energy_per_segment_j:6.3f} J"
            f"  QoE {self.qoe:6.2f}  rebuffers {self.rebuffer_count:4.1f}"
        )
        if self.extra:
            line += "  " + " ".join(f"{k}={v:.3g}" for k, v in self.extra.items())
        return line


def _run_sessions(
    setup: ExperimentSetup,
    device: DevicePowerModel,
    scheme: OursScheme,
    video_id: int,
    users: int,
    session_config: SessionConfig | None = None,
    workers: int | None = 1,
) -> list[SessionResult]:
    """All per-user sessions of one ablation point, via the sweep runner."""
    context = SweepContext(
        schemes={scheme.name: scheme},
        device=device,
        networks={"trace2": setup.trace2},
        manifests={video_id: setup.manifest(video_id)},
        head_traces={
            video_id: tuple(setup.dataset.test_traces(video_id)[:users])
        },
        ptiles={video_id: setup.ptiles(video_id)},
        config=session_config or setup.session_config,
    )
    jobs = [
        SessionJob(
            key=(scheme.name, video_id, user),
            scheme=scheme.name,
            video_id=video_id,
            network="trace2",
            user_index=user,
        )
        for user in range(len(context.head_traces[video_id]))
    ]
    return run_session_jobs(context, jobs, workers=workers).results


def _run_ours(
    setup: ExperimentSetup,
    device: DevicePowerModel,
    scheme: OursScheme,
    video_id: int,
    users: int,
    session_config: SessionConfig | None = None,
    workers: int | None = 1,
) -> tuple[float, float, float, float]:
    sessions = _run_sessions(
        setup, device, scheme, video_id, users, session_config, workers
    )
    return (
        float(np.mean([s.energy_per_segment_j for s in sessions])),
        float(np.mean([s.mean_qoe for s in sessions])),
        float(np.mean([s.rebuffer_count for s in sessions])),
        float(np.mean([s.mean_frame_rate for s in sessions])),
    )


def sweep_mpc_horizon(
    setup: ExperimentSetup,
    horizons: tuple[int, ...] = (1, 2, 3, 5, 8),
    device: DevicePowerModel = PIXEL_3,
    video_id: int = 8,
    users: int = 2,
    workers: int | None = 1,
) -> list[AblationPoint]:
    """Energy/QoE versus the MPC lookahead H."""
    points = []
    for horizon in horizons:
        scheme = OursScheme(device=device, mpc_config=MpcConfig(horizon=horizon))
        config = replace(setup.session_config, horizon=horizon)
        energy, qoe, rebuffers, fps = _run_ours(
            setup, device, scheme, video_id, users, config, workers
        )
        points.append(
            AblationPoint(f"H={horizon}", energy, qoe, rebuffers,
                          extra={"fps": fps})
        )
    return points


def sweep_qoe_tolerance(
    setup: ExperimentSetup,
    tolerances: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10, 0.20),
    device: DevicePowerModel = PIXEL_3,
    video_id: int = 8,
    users: int = 2,
    workers: int | None = 1,
) -> list[AblationPoint]:
    """Energy/QoE versus the constraint (8c) tolerance epsilon."""
    points = []
    for eps in tolerances:
        scheme = OursScheme(
            device=device, mpc_config=MpcConfig(qoe_tolerance=eps)
        )
        energy, qoe, rebuffers, fps = _run_ours(
            setup, device, scheme, video_id, users, workers=workers
        )
        points.append(
            AblationPoint(f"eps={eps:.0%}", energy, qoe, rebuffers,
                          extra={"fps": fps})
        )
    return points


def sweep_frame_rate_ladder(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    video_id: int = 5,
    users: int = 2,
    workers: int | None = 1,
) -> list[AblationPoint]:
    """Ours with no / the paper's / a deeper frame-rate ladder."""
    ladders = {
        "no reduction": FrameRateLadder(reductions=()),
        "paper {10,20,30}%": FrameRateLadder(),
        "deep {20,40,60}%": FrameRateLadder(reductions=(0.6, 0.4, 0.2)),
    }
    points = []
    for label, ladder in ladders.items():
        scheme = OursScheme(device=device, ladder=ladder)
        energy, qoe, rebuffers, fps = _run_ours(
            setup, device, scheme, video_id, users, workers=workers
        )
        points.append(
            AblationPoint(label, energy, qoe, rebuffers, extra={"fps": fps})
        )
    return points


def sweep_bandwidth_estimator(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    video_id: int = 8,
    users: int = 2,
    workers: int | None = 1,
) -> list[AblationPoint]:
    """Harmonic mean (paper) versus EWMA versus last sample.

    Estimators are compared on one-step-ahead prediction error over the
    bursty trace 2, plus the resulting session metrics under Ours (which
    always uses the harmonic mean internally; the error statistics are
    the ablation's point).
    """
    bandwidths = setup.trace2.bandwidth_mbps
    estimators = {
        "harmonic (paper)": HarmonicMeanEstimator(window=5),
        "ewma": EwmaEstimator(alpha=0.3),
        "last sample": LastSampleEstimator(),
    }
    energy, qoe, rebuffers, _ = _run_ours(
        setup, device, OursScheme(device=device), video_id, users,
        workers=workers,
    )
    points = []
    for label, estimator in estimators.items():
        errors = []
        over = []
        for i in range(len(bandwidths) - 1):
            estimator.add(float(bandwidths[i]))
            predicted = estimator.estimate()
            actual = float(bandwidths[i + 1])
            errors.append(abs(predicted - actual) / actual)
            over.append(predicted > actual)
        points.append(
            AblationPoint(
                label,
                energy,
                qoe,
                rebuffers,
                extra={
                    "mape": float(np.mean(errors)),
                    "overestimates": float(np.mean(over)),
                },
            )
        )
    return points


def _sigma_point_task(item: tuple):
    """Build one sigma point's Ptiles (any process), via the store."""
    video, train, grid, sigma, store_root = item
    config = PtileConfig(sigma=sigma, delta=sigma / 4.0)
    store = ArtifactStore(store_root) if store_root is not None else None
    key = None
    if store is not None:
        key = ptiles_key(video, train, grid, config)
        got = store.get("ptiles", key)
        if got is not None:
            return got
    ptiles = build_video_ptiles(video, train, grid, config)
    if store is not None:
        store.put("ptiles", key, ptiles)
    return ptiles


def sweep_clustering_sigma(
    setup: ExperimentSetup,
    sigma_factors: tuple[float, ...] = (0.5, 1.0, 2.0),
    video_id: int = 8,
    workers: int | None = 1,
) -> list[AblationPoint]:
    """Ptile construction versus the cluster size bound sigma.

    Reports the Fig. 7-style statistics: mean Ptiles per segment, user
    coverage, and the mean Ptile area (the energy proxy the bound
    controls).  The per-sigma Algorithm 1 builds are independent, so
    they fan out across the runner pool (``workers``: 1 = serial, 0 =
    auto-detect), and each sigma point shares ``setup.artifacts`` —
    every (sigma, delta) resolves to its own content key, so a repeated
    sweep deserializes instead of re-clustering.
    """
    video = setup.dataset.video(video_id)
    train = setup.dataset.train_traces(video_id)
    traces = setup.dataset.traces[video_id]
    store_root = setup.artifacts.root if setup.artifacts is not None else None
    sigmas = [setup.grid.tile_width * factor for factor in sigma_factors]
    items = [
        (video, train, setup.grid, sigma, store_root) for sigma in sigmas
    ]
    if len(items) > 1 and workers != 1:
        built = parallel_map(_sigma_point_task, items, workers=workers).results
    else:
        built = [_sigma_point_task(item) for item in items]

    points = []
    for sigma, ptiles in zip(sigmas, built):
        stats = coverage_stats(video_id, ptiles, traces)
        areas = [
            p.area_fraction for sp in ptiles for p in sp.ptiles
        ]
        points.append(
            AblationPoint(
                f"sigma={sigma:.0f}deg",
                energy_per_segment_j=float("nan"),
                qoe=float("nan"),
                rebuffer_count=0.0,
                extra={
                    "mean_ptiles": stats.mean_ptiles,
                    "coverage": stats.covered_fraction,
                    "mean_area": float(np.mean(areas)) if areas else 0.0,
                },
            )
        )
    return points


def sweep_edge_cache(
    setup: ExperimentSetup,
    capacities_mbit: tuple[float, ...] = (0.0, 500.0, 2000.0, 8000.0),
    device: DevicePowerModel = PIXEL_3,
    video_id: int = 8,
    users: int = 2,
    edge_bandwidth_mbps: float = 200.0,
    workers: int | None = 1,
) -> list[AblationPoint]:
    """Session metrics versus edge-cache capacity.

    For each capacity, an :class:`~repro.streaming.cache.EdgeHitModel`
    is trained by replaying the training population's Ptile requests
    through the LRU edge cache; sessions then serve the cached fraction
    of every segment at the edge link rate (see ``run_session``), so
    larger caches shorten downloads and rebuffering.  Capacity 0 is the
    no-edge-cache baseline.
    """
    points = []
    for capacity in capacities_mbit:
        if capacity > 0:
            model = build_edge_hit_model(
                setup.manifest(video_id),
                setup.dataset.train_traces(video_id),
                setup.ptiles(video_id),
                capacity_mbit=capacity,
                edge_bandwidth_mbps=edge_bandwidth_mbps,
            )
            label = f"edge={capacity:.0f}Mb"
        else:
            model = None
            label = "no edge cache"
        config = replace(setup.session_config, edge_model=model)
        scheme = OursScheme(device=device)
        sessions = _run_sessions(
            setup, device, scheme, video_id, users, config, workers
        )
        points.append(
            AblationPoint(
                label,
                float(np.mean([s.energy_per_segment_j for s in sessions])),
                float(np.mean([s.mean_qoe for s in sessions])),
                float(np.mean([s.rebuffer_count for s in sessions])),
                extra={
                    "hit_ratio": model.mean_hit_ratio if model else 0.0,
                    "stall": float(
                        np.mean([s.total_stall_s for s in sessions])
                    ),
                },
            )
        )
    return points


def sweep_shared_cache(
    setup: ExperimentSetup,
    capacities_mbit: tuple[float, ...] = (0.0, 500.0, 2000.0, 8000.0),
    device: DevicePowerModel = PIXEL_3,
    video_ids: tuple[int, ...] | None = None,
    tenant_viewers: int = 8,
    users: int = 2,
    policy: str = "lru",
    edge_bandwidth_mbps: float = 200.0,
    workers: int | None = 1,
    results: ArtifactStore | None = None,
) -> list[AblationPoint]:
    """Session metrics versus the capacity of a *shared* edge cache.

    A multi-tenant population — ``tenant_viewers`` training viewers per
    video in ``video_ids`` (default: every video in ``setup``) — replays
    its interleaved Ptile request stream through one capacity-bounded
    edge cache, producing contention-aware per-video
    :class:`~repro.streaming.cache.EdgeHitModel`\\ s (see
    :func:`~repro.streaming.cache.build_shared_edge_hit_models`).  Test
    sessions of every tenant video then stream with their video's model
    attached via ``SweepContext.video_configs``, so the reported
    energy/QoE reflect the capacity each video actually won against the
    other tenants.  The same population's Ctile stream replays through
    an identical cache for the byte-hit-ratio comparison the extension
    argues from: Ptile's fewer, larger objects should win at the edge.

    Capacity 0 is the no-edge-cache baseline.  Deterministic and
    cache-stable: aggregates are identical at any ``workers`` count and
    with the ``results`` store warm or cold (the per-video models are
    part of the sweep-context digest); a
    :class:`~repro.experiments.artifacts.ShardedResultsStore` serves
    each capacity point's sessions from one columnar shard per video.
    """
    if video_ids is None:
        video_ids = tuple(v.meta.video_id for v in setup.videos)
    if not video_ids:
        raise ValueError("need at least one tenant video")
    tenants = tuple(
        CacheTenant(
            video_id=vid,
            manifest=setup.manifest(vid),
            traces=tuple(setup.dataset.train_traces(vid)[:tenant_viewers]),
            ptiles=setup.ptiles(vid),
        )
        for vid in video_ids
    )

    scheme = OursScheme(device=device)
    manifests = {vid: setup.manifest(vid) for vid in video_ids}
    ptiles = {vid: setup.ptiles(vid) for vid in video_ids}
    heads = {
        vid: tuple(setup.dataset.test_traces(vid)[:users])
        for vid in video_ids
    }

    points = []
    for capacity in capacities_mbit:
        if capacity > 0:
            shared = build_shared_edge_hit_models(
                tenants,
                capacity_mbit=capacity,
                policy=policy,
                edge_bandwidth_mbps=edge_bandwidth_mbps,
            )
            ctile_shared = build_shared_edge_hit_models(
                tenants,
                capacity_mbit=capacity,
                policy=policy,
                edge_bandwidth_mbps=edge_bandwidth_mbps,
                scheme="ctile",
            )
            video_configs = {
                vid: replace(
                    setup.session_config, edge_model=shared.models[vid]
                )
                for vid in video_ids
            }
            label = f"shared={capacity:.0f}Mb"
            extra = {
                "hit": shared.mean_hit_ratio,
                "ptile_byte_hit": shared.overall.byte_hit_ratio,
                "ctile_byte_hit": ctile_shared.overall.byte_hit_ratio,
            }
        else:
            video_configs = {}
            label = "no edge cache"
            extra = {"hit": 0.0, "ptile_byte_hit": 0.0, "ctile_byte_hit": 0.0}

        context = SweepContext(
            schemes={scheme.name: scheme},
            device=device,
            networks={"trace2": setup.trace2},
            manifests=manifests,
            head_traces=heads,
            ptiles=ptiles,
            config=setup.session_config,
            video_configs=video_configs,
        )
        jobs = [
            SessionJob(
                key=(scheme.name, vid, user),
                scheme=scheme.name,
                video_id=vid,
                network="trace2",
                user_index=user,
            )
            for vid in video_ids
            for user in range(len(heads[vid]))
        ]
        sessions = run_session_jobs(
            context, jobs, workers=workers, results=results
        ).results
        extra["edge_frac"] = float(
            np.mean([s.edge_hit_fraction for s in sessions])
        )
        points.append(
            AblationPoint(
                label,
                float(np.mean([s.energy_per_segment_j for s in sessions])),
                float(np.mean([s.mean_qoe for s in sessions])),
                float(np.mean([s.rebuffer_count for s in sessions])),
                extra=extra,
            )
        )
    return points


def sweep_resilience(
    setup: ExperimentSetup,
    profiles: tuple[str, ...] = (
        "none", "outages", "collapse", "lossy", "stress",
    ),
    device: DevicePowerModel = PIXEL_3,
    video_id: int = 8,
    users: int = 2,
    scheme_names: tuple[str, ...] = ("ctile", "ftile", "ptile"),
    fault_seed: int = 7,
    retry_budget: int = 2,
    timeout_slack_s: float = 0.75,
    workers: int | None = 1,
    results: ArtifactStore | None = None,
) -> list[AblationPoint]:
    """Energy/QoE/rebuffering of the tiling schemes under link faults.

    For each fault profile, a deterministic
    :class:`~repro.resilience.faults.FaultPlan` seeded by
    ``(profile, fault_seed)`` is overlaid on trace 2 and every scheme's
    test sessions run through the resilient download engine
    (deadline-aware timeouts, ``retry_budget`` retries with exponential
    backoff, the degradation ladder).  Fault windows are drawn over the
    session's video duration, so every window can actually perturb
    playback.  The ``"none"`` profile runs the unmodified ideal code
    path — its points must match a fault-free sweep exactly.

    One :class:`AblationPoint` per ``(profile, scheme)`` pair, labelled
    ``"profile:scheme"``, with retry/timeout/degradation/stall counters
    in ``extra``.  Deterministic and cache-stable: aggregates are
    identical at any ``workers`` count and with the ``results`` store
    warm or cold (the fault plan and policy are part of the context
    digest); a
    :class:`~repro.experiments.artifacts.ShardedResultsStore` serves
    each profile's sessions from one columnar shard per video.
    """
    if not profiles:
        raise ValueError("need at least one fault profile")
    if not scheme_names:
        raise ValueError("need at least one scheme")
    factories = {
        "ctile": CtileScheme,
        "ftile": FtileScheme,
        "ptile": PtileScheme,
    }
    unknown = [s for s in scheme_names if s not in factories]
    if unknown:
        raise ValueError(
            f"unknown schemes {unknown}; available: "
            f"{', '.join(sorted(factories))}"
        )
    schemes = {name: factories[name]() for name in scheme_names}
    manifest = setup.manifest(video_id)
    n_segments = manifest.num_segments
    if setup.session_config.max_segments is not None:
        n_segments = min(n_segments, setup.session_config.max_segments)
    plan_duration_s = n_segments * setup.session_config.segment_seconds
    policy = DownloadPolicy(
        retry_budget=retry_budget, timeout_slack_s=timeout_slack_s
    )
    heads = tuple(setup.dataset.test_traces(video_id)[:users])

    points = []
    for profile in profiles:
        if profile == "none":
            # The unmodified ideal path: both resilience knobs off, so
            # these sessions are byte-identical to a fault-free sweep
            # (and share its results-cache slots).
            config = setup.session_config
        else:
            plan = generate_fault_plan(
                profile, plan_duration_s, seed=fault_seed
            )
            config = replace(
                setup.session_config,
                fault_plan=plan,
                download_policy=policy,
            )
        context = SweepContext(
            schemes=schemes,
            device=device,
            networks={"trace2": setup.trace2},
            manifests={video_id: manifest},
            head_traces={video_id: heads},
            ptiles={video_id: setup.ptiles(video_id)},
            ftiles={video_id: setup.ftiles(video_id)},
            config=config,
        )
        jobs = [
            SessionJob(
                key=(name, profile, user),
                scheme=name,
                video_id=video_id,
                network="trace2",
                user_index=user,
            )
            for name in scheme_names
            for user in range(len(heads))
        ]
        sessions = run_session_jobs(
            context, jobs, workers=workers, results=results
        ).results
        per_scheme = {
            name: sessions[i * len(heads) : (i + 1) * len(heads)]
            for i, name in enumerate(scheme_names)
        }
        for name in scheme_names:
            batch = per_scheme[name]
            points.append(
                AblationPoint(
                    f"{profile}:{name}",
                    float(np.mean([s.energy_per_segment_j for s in batch])),
                    float(np.mean([s.mean_qoe for s in batch])),
                    float(np.mean([s.rebuffer_count for s in batch])),
                    extra={
                        "stall": float(
                            np.mean([s.total_stall_s for s in batch])
                        ),
                        "retries": float(
                            np.mean([s.total_retries for s in batch])
                        ),
                        "timeouts": float(
                            np.mean([s.total_timeouts for s in batch])
                        ),
                        "degraded": float(
                            np.mean(
                                [s.degraded_segment_count for s in batch]
                            )
                        ),
                        "skipped": float(
                            np.mean(
                                [s.skipped_segment_count for s in batch]
                            )
                        ),
                    },
                )
            )
    return points


def sweep_robust(
    setup: ExperimentSetup,
    profiles: tuple[str, ...] = ("none", "outages", "lossy"),
    device: DevicePowerModel = PIXEL_3,
    video_id: int = 8,
    users: int = 2,
    uncertainty_deg: float = 8.0,
    uncertainty_growth_deg_s: float = 6.0,
    perceptual: bool = False,
    min_expected_coverage: float = 0.3,
    fault_seed: int = 7,
    retry_budget: int = 2,
    timeout_slack_s: float = 0.75,
    workers: int | None = 1,
    results: ArtifactStore | None = None,
) -> list[AblationPoint]:
    """Robust (uncertainty-aware) vs point-prediction MPC under faults.

    Crosses the :class:`~repro.core.robust.RobustScheme` with the
    point-prediction ``ours`` baseline over the resilience fault
    profiles — the scenarios where trusting the FoV prediction actually
    hurts.  The robust scheme runs a parametric Gaussian error model
    (``uncertainty_deg + uncertainty_growth_deg_s * horizon``, the
    fallback parameterization of
    :class:`~repro.prediction.viewport.AngularErrorModel`); set
    ``perceptual`` to weight hypotheses with the Pano polar discount.

    One :class:`AblationPoint` per ``(profile, scheme)`` pair labelled
    ``"profile:scheme"``; ``extra`` carries the viewport-quality term
    ``qo`` (the headline the robust objective optimizes), delivered
    coverage, the planner's mean expected coverage and error scale
    (schema v4 per-segment uncertainty accounting), Ptile hit rate,
    stall, and skip counters.  Deterministic and cache-stable exactly
    like :func:`sweep_resilience`: byte-identical aggregates at any
    ``workers`` count, cold or warm ``results`` store.
    """
    if not profiles:
        raise ValueError("need at least one fault profile")
    if uncertainty_deg < 0.0 or uncertainty_growth_deg_s < 0.0:
        raise ValueError("uncertainty parameters must be non-negative")
    schemes = {
        "ours": OursScheme(device=device),
        "robust": RobustScheme(
            device=device,
            error_model=AngularErrorModel(
                base_sigma_deg=uncertainty_deg,
                growth_deg_per_s=uncertainty_growth_deg_s,
            ),
            perceptual=PanoWeight() if perceptual else None,
            min_expected_coverage=min_expected_coverage,
        ),
    }
    scheme_names = tuple(schemes)
    manifest = setup.manifest(video_id)
    n_segments = manifest.num_segments
    if setup.session_config.max_segments is not None:
        n_segments = min(n_segments, setup.session_config.max_segments)
    plan_duration_s = n_segments * setup.session_config.segment_seconds
    policy = DownloadPolicy(
        retry_budget=retry_budget, timeout_slack_s=timeout_slack_s
    )
    heads = tuple(setup.dataset.test_traces(video_id)[:users])

    points = []
    for profile in profiles:
        if profile == "none":
            # Benign path: both resilience knobs off, byte-identical to
            # a fault-free sweep (and sharing its results-cache slots).
            config = setup.session_config
        else:
            plan = generate_fault_plan(
                profile, plan_duration_s, seed=fault_seed
            )
            config = replace(
                setup.session_config,
                fault_plan=plan,
                download_policy=policy,
            )
        context = SweepContext(
            schemes=schemes,
            device=device,
            networks={"trace2": setup.trace2},
            manifests={video_id: manifest},
            head_traces={video_id: heads},
            ptiles={video_id: setup.ptiles(video_id)},
            config=config,
        )
        jobs = [
            SessionJob(
                key=(name, profile, user),
                scheme=name,
                video_id=video_id,
                network="trace2",
                user_index=user,
            )
            for name in scheme_names
            for user in range(len(heads))
        ]
        sessions = run_session_jobs(
            context, jobs, workers=workers, results=results
        ).results
        per_scheme = {
            name: sessions[i * len(heads) : (i + 1) * len(heads)]
            for i, name in enumerate(scheme_names)
        }
        for name in scheme_names:
            batch = per_scheme[name]
            points.append(
                AblationPoint(
                    f"{profile}:{name}",
                    float(np.mean([s.energy_per_segment_j for s in batch])),
                    float(np.mean([s.mean_qoe for s in batch])),
                    float(np.mean([s.rebuffer_count for s in batch])),
                    extra={
                        "qo": float(
                            np.mean([s.session_qoe.mean_qo for s in batch])
                        ),
                        "coverage": float(
                            np.mean([s.mean_coverage for s in batch])
                        ),
                        "expcov": float(
                            np.mean(
                                [s.mean_expected_coverage for s in batch]
                            )
                        ),
                        "sigma": float(
                            np.mean([s.mean_uncertainty_deg for s in batch])
                        ),
                        "hit": float(
                            np.mean([s.ptile_hit_rate for s in batch])
                        ),
                        "stall": float(
                            np.mean([s.total_stall_s for s in batch])
                        ),
                        "skipped": float(
                            np.mean(
                                [s.skipped_segment_count for s in batch]
                            )
                        ),
                    },
                )
            )
    return points


def sweep_ladder(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    video_ids: tuple[int, ...] | None = None,
    users: int = 2,
    quality_targets: tuple[float, ...] | None = None,
    search_config=None,
    ladder_store: ArtifactStore | None = None,
    workers: int | None = 1,
    results: ArtifactStore | None = None,
) -> list[AblationPoint]:
    """Fixed vs per-content optimized encoding ladders, across videos.

    Runs the per-video ladder search
    (:func:`~repro.encoding.optimizer.optimize_catalog`; cached in
    ``ladder_store`` under content-hash keys, fanned over ``workers``),
    then streams the ``ours`` MPC scheme over trace 2 under both the
    fixed paper ladder and the optimized ladders, one
    :class:`AblationPoint` per ``(video, ladder)`` pair labelled
    ``"v<id>:fixed"`` / ``"v<id>:opt"``.  ``extra`` carries the mean
    downloaded Mbit per segment and (for ``opt`` points) the search's
    per-level FoV-bit saving.  A final ``"frontier"`` point summarizes
    the shift: how many videos improved energy or QoE at equal-or-lower
    downloaded bits.

    ``quality_targets`` defaults to the catalog's 25th-percentile
    per-level Qo (:func:`~repro.encoding.optimizer.default_quality_targets`),
    under which most of the catalog sheds background bits while the
    hardest quarter keeps the paper ladder untouched.  Deterministic
    and cache-stable
    like every sweep here: byte-identical at any ``workers`` count,
    cold or warm ``ladder_store``/``results``.
    """
    from ..encoding.optimizer import LadderSearchConfig, optimize_catalog
    from ..qoe.quality import QualityModel

    if video_ids is None:
        video_ids = tuple(v.meta.video_id for v in setup.videos)
    if not video_ids:
        raise ValueError("need at least one video to sweep")
    videos = [setup.dataset.video(vid) for vid in video_ids]
    if users < 1:
        raise ValueError("need at least one user per video")
    search_config = search_config or LadderSearchConfig()
    quality_model = QualityModel()

    search = optimize_catalog(
        videos,
        setup.encoder,
        targets=quality_targets,
        config=search_config,
        quality_model=quality_model,
        store=ladder_store,
        workers=workers,
    )
    opt_setup = setup.with_ladders(
        {vid: search[vid].ladder for vid in video_ids}
    )

    scheme = OursScheme(device=device)
    heads = {
        vid: tuple(setup.dataset.test_traces(vid)[:users])
        for vid in video_ids
    }
    variants = {"fixed": setup, "opt": opt_setup}
    sessions: dict[tuple[str, int], list[SessionResult]] = {}
    for variant, var_setup in variants.items():
        context = SweepContext(
            schemes={scheme.name: scheme},
            device=device,
            networks={"trace2": var_setup.trace2},
            manifests={vid: var_setup.manifest(vid) for vid in video_ids},
            head_traces=heads,
            ptiles={vid: var_setup.ptiles(vid) for vid in video_ids},
            config=var_setup.session_config,
        )
        jobs = [
            SessionJob(
                key=(variant, vid, user),
                scheme=scheme.name,
                video_id=vid,
                network="trace2",
                user_index=user,
            )
            for vid in video_ids
            for user in range(len(heads[vid]))
        ]
        run = run_session_jobs(
            context, jobs, workers=workers, results=results
        )
        for job, session in zip(jobs, run.results):
            sessions.setdefault((variant, job.video_id), []).append(session)

    def _mbit_per_segment(batch: list[SessionResult]) -> float:
        return float(np.mean([
            sum(r.size_mbit for r in s.records) / max(len(s.records), 1)
            for s in batch
        ]))

    points = []
    improved = 0
    for vid in video_ids:
        stats = {}
        for variant in variants:
            batch = sessions[(variant, vid)]
            energy = float(np.mean([s.energy_per_segment_j for s in batch]))
            qoe = float(np.mean([s.mean_qoe for s in batch]))
            rebuf = float(np.mean([s.rebuffer_count for s in batch]))
            mbit = _mbit_per_segment(batch)
            stats[variant] = (energy, qoe, mbit)
            extra = {"mbit": mbit}
            if variant == "opt":
                extra["saved"] = search[vid].bits_saved_frac
            points.append(
                AblationPoint(f"v{vid}:{variant}", energy, qoe, rebuf,
                              extra=extra)
            )
        (e_fix, q_fix, b_fix), (e_opt, q_opt, b_opt) = (
            stats["fixed"], stats["opt"],
        )
        if b_opt <= b_fix * (1.0 + 1e-9) and (
            e_opt < e_fix - 1e-9 or q_opt > q_fix + 1e-9
        ):
            improved += 1
    fixed_all = [s for vid in video_ids for s in sessions[("fixed", vid)]]
    opt_all = [s for vid in video_ids for s in sessions[("opt", vid)]]
    points.append(
        AblationPoint(
            "frontier",
            float(np.mean([s.energy_per_segment_j for s in opt_all]))
            - float(np.mean([s.energy_per_segment_j for s in fixed_all])),
            float(np.mean([s.mean_qoe for s in opt_all]))
            - float(np.mean([s.mean_qoe for s in fixed_all])),
            float(np.mean([s.rebuffer_count for s in opt_all]))
            - float(np.mean([s.rebuffer_count for s in fixed_all])),
            extra={
                "improved": float(improved),
                "videos": float(len(video_ids)),
                "mbit": _mbit_per_segment(opt_all)
                - _mbit_per_segment(fixed_all),
            },
        )
    )
    return points


def sweep_viewport_predictor(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    video_id: int = 8,
    users: int = 2,
    workers: int | None = 1,
) -> list[AblationPoint]:
    """Static persistence vs ridge regression (paper) vs a clairvoyant
    oracle, measured by coverage of the actually-watched viewport.

    The oracle bounds what better prediction could add; the static
    baseline is what ridge must beat to justify itself.
    """
    from ..prediction.strategies import (
        oracle_predictor_factory,
        static_predictor_factory,
    )

    factories = {
        "static (persist)": static_predictor_factory,
        "ridge (paper)": None,
        "oracle (bound)": oracle_predictor_factory,
    }
    points = []
    for label, factory in factories.items():
        config = replace(setup.session_config, predictor_factory=factory)
        scheme = OursScheme(device=device)
        sessions = _run_sessions(
            setup, device, scheme, video_id, users, config, workers
        )
        points.append(
            AblationPoint(
                label,
                float(np.mean([s.energy_per_segment_j for s in sessions])),
                float(np.mean([s.mean_qoe for s in sessions])),
                float(np.mean([s.rebuffer_count for s in sessions])),
                extra={
                    "coverage": float(
                        np.mean([s.mean_coverage for s in sessions])
                    ),
                    "hit": float(
                        np.mean([s.ptile_hit_rate for s in sessions])
                    ),
                },
            )
        )
    return points
