"""Fig. 5 — distribution of view switching speed.

Pooled per-sample switching speeds (Eq. 5) over every user and video in
the dataset.  The paper's headline: users exceed 10 degrees/second for
more than 30 % of the time, leaving plenty of room for frame-rate
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..qoe.framerate import SPEED_TOLERANCE_THRESHOLD_DEG_S
from ..traces.dataset import EvaluationDataset

__all__ = ["Fig5Result", "run_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    """Switching-speed distribution summary."""

    speeds: np.ndarray
    fraction_above_10: float
    percentiles: dict[int, float]

    def cdf(self, grid: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) pairs for plotting the CDF."""
        if grid is None:
            grid = np.linspace(0.0, 60.0, 121)
        sorted_speeds = np.sort(self.speeds)
        cdf = np.searchsorted(sorted_speeds, grid, side="right") / sorted_speeds.size
        return grid, cdf

    def report(self) -> list[str]:
        lines = [
            "Fig. 5: view switching speed distribution",
            f"  samples: {self.speeds.size}",
            f"  fraction above {SPEED_TOLERANCE_THRESHOLD_DEG_S:.0f} deg/s: "
            f"{self.fraction_above_10:.1%} (paper: >30%)",
        ]
        for p, v in sorted(self.percentiles.items()):
            lines.append(f"  p{p}: {v:.1f} deg/s")
        return lines


def run_fig5(dataset: EvaluationDataset) -> Fig5Result:
    """Pool switching speeds across the dataset."""
    speeds = dataset.all_switching_speeds()
    return Fig5Result(
        speeds=speeds,
        fraction_above_10=float(
            np.mean(speeds > SPEED_TOLERANCE_THRESHOLD_DEG_S)
        ),
        percentiles={
            p: float(np.percentile(speeds, p)) for p in (10, 25, 50, 75, 90, 99)
        },
    )
