"""One-shot reproduction report.

Runs every experiment at a configurable scale and renders a single
markdown document (tables, ASCII figures, paper-versus-measured notes) —
the programmatic counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

from ..power.models import PIXEL_3, get_device
from ..viz.ascii import bar_chart, cdf_plot
from .artifacts import ArtifactStore
from .fig2 import run_fig2
from .fig5 import run_fig5
from .fig7 import run_fig7
from .fig8 import PAPER_MEDIANS, run_fig8
from .fig9 import summarize_energy
from .fig11 import summarize_qoe
from .setup import make_setup, run_comparison
from .tables import run_table2, table1_rows, table3_rows

__all__ = ["ReportConfig", "generate_report"]


@dataclass(frozen=True)
class ReportConfig:
    """Scale knobs for the full report."""

    max_duration_s: int | None = 90
    users_per_video: int | None = 2
    device: str = "pixel3"
    seed: int = 2017
    video_ids: tuple[int, ...] | None = None  # None = the full catalog
    workers: int | None = 1  # session-sweep processes; 0 = auto-detect
    artifacts: ArtifactStore | None = None  # content-prep disk cache
    results: ArtifactStore | None = None  # session-results disk cache
    # (a ShardedResultsStore batches results into per-(context, video)
    # columnar shards; the CLI passes one by default)


def generate_report(
    config: ReportConfig = ReportConfig(), path: str | Path | None = None
) -> str:
    """Run all experiments and render the markdown report.

    Returns the document; optionally writes it to ``path``.
    """
    out = io.StringIO()

    def emit(*lines: str) -> None:
        for line in lines:
            out.write(line + "\n")

    def code(lines) -> None:
        emit("```")
        for line in lines:
            emit(line)
        emit("```", "")

    device = get_device(config.device)
    emit("# Reproduction report", "")
    emit(
        f"Scale: videos clipped to {config.max_duration_s or 'full length'} s,"
        f" {config.users_per_video or 'all'} test users per video,"
        f" device {device.name}, seed {config.seed}.",
        "",
    )

    emit("## Table I — power models", "")
    code(table1_rows())

    emit("## Table II — Q_o fit", "")
    code(run_table2().report())

    emit("## Table III — test videos", "")
    code(table3_rows())

    emit("## Fig. 2 — motivation", "")
    code(run_fig2(workers=config.workers).report())

    setup = make_setup(
        max_duration_s=config.max_duration_s,
        seed=config.seed,
        video_ids=config.video_ids,
        artifacts=config.artifacts,
    )

    emit("## Fig. 5 — switching speed", "")
    fig5 = run_fig5(setup.dataset)
    code(fig5.report())
    code(cdf_plot({"speed (deg/s)": fig5.speeds[fig5.speeds < 60]},
                  title="Switching-speed CDF"))

    emit("## Fig. 7 — Ptile construction", "")
    code(run_fig7(setup).report())

    emit("## Fig. 8 — normalized Ptile size", "")
    fig8 = run_fig8(segments_per_video=60)
    code(fig8.report())
    code(
        bar_chart(
            {f"q{q}": fig8.median(q) for q in sorted(PAPER_MEDIANS, reverse=True)},
            title="Median Ptile/Ctile size ratio per quality",
        )
    )

    emit("## Figs. 9-11 — scheme comparison", "")
    results = run_comparison(
        setup, device, users_per_video=config.users_per_video,
        workers=config.workers, results_store=config.results,
    )
    energy = summarize_energy(results, device.name)
    qoe = summarize_qoe(results)
    code(energy.report())
    code(
        bar_chart(
            energy.normalized(),
            title="Energy normalized by Ctile (paper: ptile 0.697, ours 0.503)",
        )
    )
    code(qoe.report())
    for trace in ("trace1", "trace2"):
        code(
            bar_chart(
                qoe.normalized(trace),
                title=f"QoE normalized by Ctile, {trace}",
            )
        )

    text = out.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
