"""Disk-backed content-preparation artifact store.

The paper's content-preparation pipeline (Sec. IV-A, Alg. 1) is pure
preprocessing over historical head traces: for a given video, tile grid,
clustering parameters, and training-trace set, the resulting
:class:`~repro.video.segments.VideoManifest`,
:class:`~repro.ptile.construction.SegmentPtiles`, and
:class:`~repro.streaming.ftile.FtilePartition` objects are a
deterministic function of their inputs.  Rebuilding them on every
``repro-360`` invocation wastes minutes of Algorithm 1 clustering that
could be a single deserialization.

:class:`ArtifactStore` caches those objects on disk, keyed by a SHA-256
**content digest** of everything that can change the result:

* the video's metadata and per-segment SI/TI features,
* the encoder model (grid geometry, rate law parameters, noise seed),
* the tile-grid geometry,
* the resolved Ptile clustering parameters (δ, σ, ``min_users``, FoV),
* a digest of the training head traces (user ids + raw samples),
* the artifact schema version and package version (code version).

Keys are *content* hashes, not config names, so any change to the
inputs — a different δ/σ, a truncated video, a different train/test
split seed — lands in a different cache slot and a stale hit is
impossible.  Values are pickled with an atomic write (temp file +
``os.replace``), so concurrent writers at worst duplicate work, and a
corrupt or truncated file is treated as a miss and rebuilt.

The store is wired into :class:`~repro.experiments.setup.ExperimentSetup`
(see ``ExperimentSetup.prepare``); the CLI enables it by default under
``~/.cache/repro-360`` (``--artifact-cache DIR`` / ``--no-artifact-cache``
to relocate or disable, ``REPRO_ARTIFACT_CACHE`` as the env override).

Session **results** are cached the same way: a
:class:`~repro.streaming.metrics.SessionResult` is a deterministic
function of the sweep context (schemes, device, manifests, Ptiles,
traces, session config) and the job (scheme, video, network, user,
per-job overrides), so :func:`results_key` digests both — via
:func:`structural_fingerprint`, which reduces the live experiment
objects to primitives — plus :data:`RESULTS_SCHEMA_VERSION` and the
package version.  Any change to the simulation inputs or the code
version lands in a different slot; ``repro-360 --no-results-cache``
opts out (see ``run_session_jobs``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..geometry.tiling import TileGrid
from ..ptile.construction import Ptile, PtileConfig
from ..streaming.cache import EdgeHitModel
from ..traces.head_movement import HeadTrace
from ..video.content import Video
from ..video.encoder import EncoderModel
from ..video.segments import VideoManifest

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "RESULTS_SCHEMA_VERSION",
    "ArtifactStats",
    "ArtifactStore",
    "content_digest",
    "default_cache_dir",
    "encoder_fingerprint",
    "grid_fingerprint",
    "manifest_key",
    "ptiles_key",
    "ftiles_key",
    "results_key",
    "session_job_digest",
    "structural_fingerprint",
    "sweep_context_digest",
    "traces_fingerprint",
    "video_fingerprint",
]

ARTIFACT_SCHEMA_VERSION = 1
"""Bumped whenever the on-disk layout or the key composition changes."""

RESULTS_SCHEMA_VERSION = 3
"""Bumped whenever the session-result schema or the fingerprint
composition changes; baked into every results key.

v2: SegmentRecord gained ``edge_hit_mbit``; SweepContext gained
``video_configs`` (per-video edge-cache models of the multi-tenant
shared edge), both of which change what a cached result contains and
what the context digest must cover.

v3: the resilience subsystem — SegmentRecord gained ``retries``,
``timeouts``, and ``degraded_level``; SessionConfig gained
``fault_plan`` / ``download_policy`` (both fingerprint structurally as
frozen dataclasses of primitives, so two sweeps sharing a
``(profile, seed)`` share cached sessions and any other pair cannot
collide)."""

ARTIFACT_KINDS = ("manifest", "ptiles", "ftiles", "results")


def default_cache_dir() -> Path:
    """``$REPRO_ARTIFACT_CACHE``, else ``$XDG_CACHE_HOME/repro-360``,
    else ``~/.cache/repro-360``."""
    env = os.environ.get("REPRO_ARTIFACT_CACHE")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-360"


# ----------------------------------------------------------------------
# Content digests.  Every value is encoded with a type tag plus a length
# where ambiguous, so distinct structures can never collide byte-wise
# ("ab","c" vs "a","bc"), and no process-local hash() is involved — the
# digest is stable across processes, platforms, and Python versions.
# ----------------------------------------------------------------------


def _update(h: "hashlib._Hash", obj: Any) -> None:
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"b1" if obj else b"b0")
    elif isinstance(obj, (int, np.integer)):
        raw = str(int(obj)).encode("ascii")
        h.update(b"i" + struct.pack("<I", len(raw)) + raw)
    elif isinstance(obj, (float, np.floating)):
        h.update(b"f" + struct.pack("<d", float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        h.update(b"s" + struct.pack("<I", len(raw)) + raw)
    elif isinstance(obj, bytes):
        h.update(b"y" + struct.pack("<I", len(obj)) + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        meta = f"{arr.dtype.str}{arr.shape}".encode("ascii")
        h.update(b"a" + struct.pack("<I", len(meta)) + meta + arr.tobytes())
    elif isinstance(obj, (tuple, list)):
        h.update(b"t" + struct.pack("<I", len(obj)))
        for part in obj:
            _update(h, part)
    elif isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        h.update(b"d" + struct.pack("<I", len(items)))
        for key, value in items:
            _update(h, key)
            _update(h, value)
    else:
        raise TypeError(
            f"cannot digest {type(obj).__name__}; pass a fingerprint of "
            "primitives/arrays instead"
        )


def content_digest(*parts: Any) -> str:
    """SHA-256 hex digest of a nested structure of primitives/arrays."""
    h = hashlib.sha256()
    _update(h, parts)
    return h.hexdigest()


def video_fingerprint(video: Video) -> tuple:
    """Everything about a video that content preparation depends on."""
    meta = video.meta
    return (
        "video",
        meta.video_id,
        meta.title,
        meta.duration_s,
        meta.fps,
        meta.width_px,
        meta.height_px,
        meta.behavior,
        np.array([s.si for s in video.segments]),
        np.array([s.ti for s in video.segments]),
    )


def encoder_fingerprint(encoder: EncoderModel) -> tuple:
    return (
        "encoder",
        grid_fingerprint(encoder.grid),
        encoder.segment_seconds,
        encoder.ref_bitrate_mbps,
        encoder.noise_sigma,
        encoder.seed,
    )


def grid_fingerprint(grid: TileGrid) -> tuple:
    return ("grid", grid.rows, grid.cols)


def traces_fingerprint(traces: Sequence[HeadTrace]) -> tuple:
    """Digest material for a training-trace set (order-sensitive)."""
    return tuple(
        (
            trace.user_id,
            trace.video_id,
            trace.timestamps,
            trace.yaw_unwrapped,
            trace.pitch,
        )
        for trace in traces
    )


def _versioned(kind: str, *parts: Any) -> str:
    from .. import __version__

    return content_digest(ARTIFACT_SCHEMA_VERSION, __version__, kind, *parts)


def manifest_key(video: Video, encoder: EncoderModel) -> str:
    return _versioned(
        "manifest", video_fingerprint(video), encoder_fingerprint(encoder)
    )


def ptiles_key(
    video: Video,
    train_traces: Sequence[HeadTrace],
    grid: TileGrid,
    config: PtileConfig,
) -> str:
    return _versioned(
        "ptiles",
        video_fingerprint(video),
        grid_fingerprint(grid),
        config.fingerprint(grid),
        traces_fingerprint(train_traces),
    )


def ftiles_key(
    video: Video,
    train_traces: Sequence[HeadTrace],
    segment_seconds: float = 1.0,
    n_tiles: int = 10,
) -> str:
    return _versioned(
        "ftiles",
        video_fingerprint(video),
        segment_seconds,
        n_tiles,
        traces_fingerprint(train_traces),
    )


# ----------------------------------------------------------------------
# Session-results keys.  A SessionResult is a pure function of the sweep
# context and the job, so both are reduced to digestible primitives by a
# structural walk over the live objects.  Compact special cases keep the
# walk fast where the generic one would be wasteful or wrong:
#
# * VideoManifest -> its (video, encoder) inputs (it is a pure function
#   of them, and its segment tuple would re-digest the same arrays);
# * Ptile -> (index, tiles, rect, grid) — everything downstream
#   planning reads; the clustering internals that produced it are
#   already pinned by those fields;
# * HeadTrace -> the same (ids + raw samples) material as
#   traces_fingerprint;
# * callables (e.g. SessionConfig.predictor_factory) -> their import
#   path, so swapping the prediction strategy invalidates the slot.
#
# Dataclasses are walked field-by-field via dataclasses.fields(), which
# deliberately skips memo caches attached with object.__setattr__.
# ----------------------------------------------------------------------


def structural_fingerprint(obj: Any) -> Any:
    """Reduce a live experiment object to :func:`content_digest` input."""
    if obj is None or isinstance(
        obj, (bool, str, bytes, int, float, np.integer, np.floating,
              np.ndarray)
    ):
        return obj
    if isinstance(obj, VideoManifest):
        return (
            "video-manifest",
            video_fingerprint(obj.video),
            encoder_fingerprint(obj.encoder),
        )
    if isinstance(obj, Ptile):
        return (
            "ptile",
            obj.index,
            tuple(sorted((t.row, t.col) for t in obj.tiles)),
            (obj.rect.x0, obj.rect.y0, obj.rect.x1, obj.rect.y1),
            grid_fingerprint(obj.grid),
        )
    if isinstance(obj, TileGrid):
        return grid_fingerprint(obj)
    if isinstance(obj, EdgeHitModel):
        # The trained per-segment hit ratios ARE the model: two models
        # with equal ratios and edge rate produce identical sessions no
        # matter which cache/population trained them.
        return (
            "edge-hit-model",
            tuple(obj.hit_ratios),
            obj.edge_bandwidth_mbps,
        )
    if isinstance(obj, HeadTrace):
        return (
            "head-trace",
            obj.user_id,
            obj.video_id,
            obj.timestamps,
            obj.yaw_unwrapped,
            obj.pitch,
        )
    if isinstance(obj, (tuple, list)):
        return tuple(structural_fingerprint(part) for part in obj)
    if isinstance(obj, (set, frozenset)):
        parts = [structural_fingerprint(part) for part in obj]
        return ("set", tuple(sorted(parts, key=repr)))
    if isinstance(obj, dict):
        items = [
            (structural_fingerprint(k), structural_fingerprint(v))
            for k, v in obj.items()
        ]
        return ("dict", tuple(sorted(items, key=repr)))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            "obj",
            type(obj).__qualname__,
            tuple(
                (f.name, structural_fingerprint(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if callable(obj):
        return (
            "callable",
            getattr(obj, "__module__", "?"),
            getattr(obj, "__qualname__", repr(obj)),
        )
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__}; add a structural case"
    )


def sweep_context_digest(context: Any) -> str:
    """Digest of everything a sweep's sessions share (a SweepContext)."""
    return content_digest(
        "sweep-context", RESULTS_SCHEMA_VERSION, structural_fingerprint(context)
    )


def session_job_digest(job: Any) -> str:
    """Digest of one job's inputs (a SessionJob).

    ``key`` is excluded: it is a caller-side display label carried
    through to reports, not a simulation input.
    """
    parts = tuple(
        (f.name, structural_fingerprint(getattr(job, f.name)))
        for f in dataclasses.fields(job)
        if f.name != "key"
    )
    return content_digest("session-job", parts)


def results_key(context_digest: str, job: Any) -> str:
    """Cache key of one session's result under one sweep context."""
    return _versioned(
        "results", RESULTS_SCHEMA_VERSION, context_digest,
        session_job_digest(job)
    )


# ----------------------------------------------------------------------
# The store itself.
# ----------------------------------------------------------------------


@dataclass
class ArtifactStats:
    """Per-kind hit/miss/write counters for one store instance."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    writes: dict[str, int] = field(default_factory=dict)

    def record(self, counter: dict[str, int], kind: str) -> None:
        counter[kind] = counter.get(kind, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def report(self) -> str:
        parts = []
        for kind in ARTIFACT_KINDS:
            parts.append(
                f"{kind}: {self.hits.get(kind, 0)} hit(s),"
                f" {self.misses.get(kind, 0)} miss(es),"
                f" {self.writes.get(kind, 0)} write(s)"
            )
        return "; ".join(parts)


class ArtifactStore:
    """Disk-backed, content-hash-keyed cache of content-prep artifacts.

    ``root=None`` resolves to :func:`default_cache_dir`.  The directory
    is created lazily on the first write, so constructing a store never
    touches the filesystem.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = ArtifactStats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArtifactStore(root={str(self.root)!r})"

    def path_for(self, kind: str, digest: str) -> Path:
        if kind not in ARTIFACT_KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return self.root / kind / f"{digest}.pkl"

    def get(self, kind: str, digest: str) -> Any | None:
        """The stored object, or ``None`` on miss/corruption."""
        path = self.path_for(kind, digest)
        try:
            with open(path, "rb") as fh:
                obj = pickle.load(fh)
        except FileNotFoundError:
            self.stats.record(self.stats.misses, kind)
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, MemoryError):
            # Truncated/corrupt/stale-class pickle: drop it and rebuild.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.record(self.stats.misses, kind)
            return None
        self.stats.record(self.stats.hits, kind)
        return obj

    def put(self, kind: str, digest: str, obj: Any) -> Path:
        """Atomically persist an object (last writer wins)."""
        path = self.path_for(kind, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{digest}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        self.stats.record(self.stats.writes, kind)
        return path

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed."""
        removed = 0
        for kind in ARTIFACT_KINDS:
            directory = self.root / kind
            if not directory.is_dir():
                continue
            for path in directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing deleters
                    pass
        return removed

    def size_bytes(self) -> int:
        """Total bytes currently stored (best effort)."""
        total = 0
        for kind in ARTIFACT_KINDS:
            directory = self.root / kind
            if not directory.is_dir():
                continue
            for path in directory.glob("*.pkl"):
                try:
                    total += path.stat().st_size
                except OSError:  # pragma: no cover - racing deleters
                    pass
        return total
