"""Disk-backed content-preparation artifact store.

The paper's content-preparation pipeline (Sec. IV-A, Alg. 1) is pure
preprocessing over historical head traces: for a given video, tile grid,
clustering parameters, and training-trace set, the resulting
:class:`~repro.video.segments.VideoManifest`,
:class:`~repro.ptile.construction.SegmentPtiles`, and
:class:`~repro.streaming.ftile.FtilePartition` objects are a
deterministic function of their inputs.  Rebuilding them on every
``repro-360`` invocation wastes minutes of Algorithm 1 clustering that
could be a single deserialization.

:class:`ArtifactStore` caches those objects on disk, keyed by a SHA-256
**content digest** of everything that can change the result:

* the video's metadata and per-segment SI/TI features,
* the encoder model (grid geometry, rate law parameters, noise seed),
* the tile-grid geometry,
* the resolved Ptile clustering parameters (δ, σ, ``min_users``, FoV),
* a digest of the training head traces (user ids + raw samples),
* the artifact schema version and package version (code version).

Keys are *content* hashes, not config names, so any change to the
inputs — a different δ/σ, a truncated video, a different train/test
split seed — lands in a different cache slot and a stale hit is
impossible.  Values are pickled with an atomic write (temp file +
``os.replace``), so concurrent writers at worst duplicate work, and a
corrupt or truncated file is treated as a miss and rebuilt.

The store is wired into :class:`~repro.experiments.setup.ExperimentSetup`
(see ``ExperimentSetup.prepare``); the CLI enables it by default under
``~/.cache/repro-360`` (``--artifact-cache DIR`` / ``--no-artifact-cache``
to relocate or disable, ``REPRO_ARTIFACT_CACHE`` as the env override).

Session **results** are cached the same way: a
:class:`~repro.streaming.metrics.SessionResult` is a deterministic
function of the sweep context (schemes, device, manifests, Ptiles,
traces, session config) and the job (scheme, video, network, user,
per-job overrides), so :func:`results_key` digests both — via
:func:`structural_fingerprint`, which reduces the live experiment
objects to primitives — plus :data:`RESULTS_SCHEMA_VERSION` and the
package version.  Any change to the simulation inputs or the code
version lands in a different slot; ``repro-360 --no-results-cache``
opts out (see ``run_session_jobs``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import os
import pickle
import re
import struct
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

try:  # POSIX only; the shard merge degrades gracefully without it.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..geometry.tiling import TileGrid
from ..ptile.construction import Ptile, PtileConfig
from ..streaming.cache import EdgeHitModel
from ..traces.head_movement import HeadTrace
from ..video.content import Video
from ..video.encoder import EncoderModel
from ..video.segments import VideoManifest

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "RESULTS_SCHEMA_VERSION",
    "ArtifactStats",
    "ArtifactStore",
    "ShardedResultsStore",
    "content_digest",
    "default_cache_dir",
    "encoder_fingerprint",
    "grid_fingerprint",
    "ladder_key",
    "manifest_key",
    "ptiles_key",
    "ftiles_key",
    "results_key",
    "results_key_from_digest",
    "results_shard_key",
    "session_job_digest",
    "structural_fingerprint",
    "sweep_context_digest",
    "traces_fingerprint",
    "video_fingerprint",
]

ARTIFACT_SCHEMA_VERSION = 2
"""Bumped whenever the on-disk layout or the key composition changes.

v2: per-content encoding ladders — :func:`encoder_fingerprint` gained
the encoder's :class:`~repro.encoding.ladder.EncodingLadder`
fingerprint (manifests encoded under different ladders can never share
a slot) and the new ``ladder`` artifact kind caches optimizer search
results."""

RESULTS_SCHEMA_VERSION = 4
"""Bumped whenever the session-result schema or the fingerprint
composition changes; baked into every results key.

v2: SegmentRecord gained ``edge_hit_mbit``; SweepContext gained
``video_configs`` (per-video edge-cache models of the multi-tenant
shared edge), both of which change what a cached result contains and
what the context digest must cover.

v3: the resilience subsystem — SegmentRecord gained ``retries``,
``timeouts``, and ``degraded_level``; SessionConfig gained
``fault_plan`` / ``download_policy`` (both fingerprint structurally as
frozen dataclasses of primitives, so two sweeps sharing a
``(profile, seed)`` share cached sessions and any other pair cannot
collide).

v4: uncertainty-aware robust planning — SegmentRecord gained
``expected_coverage`` / ``uncertainty_deg``; PlanContext gained
``prediction_horizon_s``; the robust scheme's ``AngularErrorModel`` /
``PanoWeight`` / ``min_expected_coverage`` fingerprint structurally
through the generic dataclass walk, so robust and point-prediction
sweeps can never share a cached session.

v5: per-content encoding ladders — the encoder fingerprint (and with
it every VideoManifest and sweep-context digest) now covers the
encoding ladder, so sessions run under the fixed and an optimized
ladder can never share a cached result."""

ARTIFACT_KINDS = ("manifest", "ptiles", "ftiles", "results", "ladder")


def default_cache_dir() -> Path:
    """``$REPRO_ARTIFACT_CACHE``, else ``$XDG_CACHE_HOME/repro-360``,
    else ``~/.cache/repro-360``."""
    env = os.environ.get("REPRO_ARTIFACT_CACHE")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-360"


# ----------------------------------------------------------------------
# Content digests.  Every value is encoded with a type tag plus a length
# where ambiguous, so distinct structures can never collide byte-wise
# ("ab","c" vs "a","bc"), and no process-local hash() is involved — the
# digest is stable across processes, platforms, and Python versions.
# ----------------------------------------------------------------------


def _update(h: "hashlib._Hash", obj: Any) -> None:
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"b1" if obj else b"b0")
    elif isinstance(obj, (int, np.integer)):
        raw = str(int(obj)).encode("ascii")
        h.update(b"i" + struct.pack("<I", len(raw)) + raw)
    elif isinstance(obj, (float, np.floating)):
        h.update(b"f" + struct.pack("<d", float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        h.update(b"s" + struct.pack("<I", len(raw)) + raw)
    elif isinstance(obj, bytes):
        h.update(b"y" + struct.pack("<I", len(obj)) + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        meta = f"{arr.dtype.str}{arr.shape}".encode("ascii")
        h.update(b"a" + struct.pack("<I", len(meta)) + meta + arr.tobytes())
    elif isinstance(obj, (tuple, list)):
        h.update(b"t" + struct.pack("<I", len(obj)))
        for part in obj:
            _update(h, part)
    elif isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        h.update(b"d" + struct.pack("<I", len(items)))
        for key, value in items:
            _update(h, key)
            _update(h, value)
    else:
        raise TypeError(
            f"cannot digest {type(obj).__name__}; pass a fingerprint of "
            "primitives/arrays instead"
        )


def content_digest(*parts: Any) -> str:
    """SHA-256 hex digest of a nested structure of primitives/arrays."""
    h = hashlib.sha256()
    _update(h, parts)
    return h.hexdigest()


def video_fingerprint(video: Video) -> tuple:
    """Everything about a video that content preparation depends on."""
    meta = video.meta
    return (
        "video",
        meta.video_id,
        meta.title,
        meta.duration_s,
        meta.fps,
        meta.width_px,
        meta.height_px,
        meta.behavior,
        np.array([s.si for s in video.segments]),
        np.array([s.ti for s in video.segments]),
    )


def encoder_fingerprint(encoder: EncoderModel) -> tuple:
    return (
        "encoder",
        grid_fingerprint(encoder.grid),
        encoder.segment_seconds,
        encoder.ref_bitrate_mbps,
        encoder.noise_sigma,
        encoder.seed,
        encoder.ladder.fingerprint(),
    )


def grid_fingerprint(grid: TileGrid) -> tuple:
    return ("grid", grid.rows, grid.cols)


def traces_fingerprint(traces: Sequence[HeadTrace]) -> tuple:
    """Digest material for a training-trace set (order-sensitive)."""
    return tuple(
        (
            trace.user_id,
            trace.video_id,
            trace.timestamps,
            trace.yaw_unwrapped,
            trace.pitch,
        )
        for trace in traces
    )


def _versioned(kind: str, *parts: Any) -> str:
    from .. import __version__

    return content_digest(ARTIFACT_SCHEMA_VERSION, __version__, kind, *parts)


def manifest_key(video: Video, encoder: EncoderModel) -> str:
    return _versioned(
        "manifest", video_fingerprint(video), encoder_fingerprint(encoder)
    )


def ptiles_key(
    video: Video,
    train_traces: Sequence[HeadTrace],
    grid: TileGrid,
    config: PtileConfig,
) -> str:
    return _versioned(
        "ptiles",
        video_fingerprint(video),
        grid_fingerprint(grid),
        config.fingerprint(grid),
        traces_fingerprint(train_traces),
    )


def ladder_key(
    video: Video,
    encoder: EncoderModel,
    targets: Sequence[float],
    search_config: Any,
    quality_model: Any,
) -> str:
    """Cache key for one video's optimized-ladder search result.

    Covers everything the search reads: the video's SI/TI content, the
    encoder rate law (including the base ladder the search never
    crosses), the per-level quality targets, the search configuration,
    and the Eq. 3 coefficients scoring candidate rungs — plus the code
    version via :func:`_versioned`.
    """
    return _versioned(
        "ladder",
        video_fingerprint(video),
        encoder_fingerprint(encoder),
        tuple(float(t) for t in targets),
        structural_fingerprint(search_config),
        structural_fingerprint(quality_model),
    )


def ftiles_key(
    video: Video,
    train_traces: Sequence[HeadTrace],
    segment_seconds: float = 1.0,
    n_tiles: int = 10,
) -> str:
    return _versioned(
        "ftiles",
        video_fingerprint(video),
        segment_seconds,
        n_tiles,
        traces_fingerprint(train_traces),
    )


# ----------------------------------------------------------------------
# Session-results keys.  A SessionResult is a pure function of the sweep
# context and the job, so both are reduced to digestible primitives by a
# structural walk over the live objects.  Compact special cases keep the
# walk fast where the generic one would be wasteful or wrong:
#
# * VideoManifest -> its (video, encoder) inputs (it is a pure function
#   of them, and its segment tuple would re-digest the same arrays);
# * Ptile -> (index, tiles, rect, grid) — everything downstream
#   planning reads; the clustering internals that produced it are
#   already pinned by those fields;
# * HeadTrace -> the same (ids + raw samples) material as
#   traces_fingerprint;
# * callables (e.g. SessionConfig.predictor_factory) -> their import
#   path, so swapping the prediction strategy invalidates the slot.
#
# Dataclasses are walked field-by-field via dataclasses.fields(), which
# deliberately skips memo caches attached with object.__setattr__.
# ----------------------------------------------------------------------


def structural_fingerprint(obj: Any) -> Any:
    """Reduce a live experiment object to :func:`content_digest` input."""
    if obj is None or isinstance(
        obj, (bool, str, bytes, int, float, np.integer, np.floating,
              np.ndarray)
    ):
        return obj
    if isinstance(obj, VideoManifest):
        return (
            "video-manifest",
            video_fingerprint(obj.video),
            encoder_fingerprint(obj.encoder),
        )
    if isinstance(obj, Ptile):
        return (
            "ptile",
            obj.index,
            tuple(sorted((t.row, t.col) for t in obj.tiles)),
            (obj.rect.x0, obj.rect.y0, obj.rect.x1, obj.rect.y1),
            grid_fingerprint(obj.grid),
        )
    if isinstance(obj, TileGrid):
        return grid_fingerprint(obj)
    if isinstance(obj, EdgeHitModel):
        # The trained per-segment hit ratios ARE the model: two models
        # with equal ratios and edge rate produce identical sessions no
        # matter which cache/population trained them.
        return (
            "edge-hit-model",
            tuple(obj.hit_ratios),
            obj.edge_bandwidth_mbps,
        )
    if isinstance(obj, HeadTrace):
        return (
            "head-trace",
            obj.user_id,
            obj.video_id,
            obj.timestamps,
            obj.yaw_unwrapped,
            obj.pitch,
        )
    if isinstance(obj, (tuple, list)):
        return tuple(structural_fingerprint(part) for part in obj)
    if isinstance(obj, (set, frozenset)):
        parts = [structural_fingerprint(part) for part in obj]
        return ("set", tuple(sorted(parts, key=repr)))
    if isinstance(obj, dict):
        items = [
            (structural_fingerprint(k), structural_fingerprint(v))
            for k, v in obj.items()
        ]
        return ("dict", tuple(sorted(items, key=repr)))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            "obj",
            type(obj).__qualname__,
            tuple(
                (f.name, structural_fingerprint(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if callable(obj):
        return (
            "callable",
            getattr(obj, "__module__", "?"),
            getattr(obj, "__qualname__", repr(obj)),
        )
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__}; add a structural case"
    )


def sweep_context_digest(context: Any) -> str:
    """Digest of everything a sweep's sessions share (a SweepContext)."""
    return content_digest(
        "sweep-context", RESULTS_SCHEMA_VERSION, structural_fingerprint(context)
    )


def session_job_digest(job: Any) -> str:
    """Digest of one job's inputs (a SessionJob).

    ``key`` is excluded: it is a caller-side display label carried
    through to reports, not a simulation input.
    """
    parts = tuple(
        (f.name, structural_fingerprint(getattr(job, f.name)))
        for f in dataclasses.fields(job)
        if f.name != "key"
    )
    return content_digest("session-job", parts)


def results_key_from_digest(context_digest: str, job_digest: str) -> str:
    """Cache key of one session's result from its precomputed job digest.

    Split out of :func:`results_key` so the sharded runner path, which
    already needs :func:`session_job_digest` as the shard column key,
    does not hash every job twice.
    """
    return _versioned(
        "results", RESULTS_SCHEMA_VERSION, context_digest, job_digest
    )


def results_key(context_digest: str, job: Any) -> str:
    """Cache key of one session's result under one sweep context."""
    return results_key_from_digest(context_digest, session_job_digest(job))


def results_shard_key(context_digest: str, video_id: int) -> str:
    """Key of the columnar shard holding every session result of one
    ``(sweep context, video)`` group.

    Within a shard, columns are keyed by :func:`session_job_digest`
    alone: the schema version, code version, and context digest are
    already pinned by the shard key, so the pair ``(shard key, job
    digest)`` spans exactly the same space as the flat
    :func:`results_key`.
    """
    return _versioned(
        "results-shard", RESULTS_SCHEMA_VERSION, context_digest, video_id
    )


# ----------------------------------------------------------------------
# The store itself.
# ----------------------------------------------------------------------


@dataclass
class ArtifactStats:
    """Per-kind hit/miss/write counters for one store instance."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    writes: dict[str, int] = field(default_factory=dict)

    def record(self, counter: dict[str, int], kind: str, n: int = 1) -> None:
        if n:
            counter[kind] = counter.get(kind, 0) + n

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def report(self) -> str:
        parts = []
        for kind in ARTIFACT_KINDS:
            parts.append(
                f"{kind}: {self.hits.get(kind, 0)} hit(s),"
                f" {self.misses.get(kind, 0)} miss(es),"
                f" {self.writes.get(kind, 0)} write(s)"
            )
        return "; ".join(parts)


_DIGEST_RE = re.compile(r"[0-9a-f]{64}\Z")

SHARD_DIR = "results-shards"
"""Subdirectory of columnar session-result shards (see
:class:`ShardedResultsStore`)."""


def _validate_digest(digest: str) -> str:
    """Reject anything that is not a lowercase SHA-256 hex digest.

    Digests are interpolated into filenames, so a malformed value
    (``..``, a path separator, an empty string) would silently address a
    file outside the kind directory instead of failing loudly.
    """
    if not isinstance(digest, str) or _DIGEST_RE.match(digest) is None:
        raise ValueError(
            f"malformed artifact digest {digest!r}: expected 64 lowercase "
            "hex characters (a SHA-256 content digest)"
        )
    return digest


class ArtifactStore:
    """Disk-backed, content-hash-keyed cache of content-prep artifacts.

    ``root=None`` resolves to :func:`default_cache_dir`.  The directory
    is created lazily on the first write, so constructing a store never
    touches the filesystem.

    ``stale_tmp_age_s`` bounds how long an in-flight writer temp file
    (``.{digest}.{pid}.tmp``) is presumed live: a crashed or killed
    writer leaves its temp file behind forever, so :meth:`clear` and
    :meth:`size_bytes` sweep temp files older than this while leaving
    younger ones to the writers that own them.
    """

    def __init__(self, root: str | Path | None = None, *,
                 stale_tmp_age_s: float = 3600.0):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = ArtifactStats()
        self.stale_tmp_age_s = stale_tmp_age_s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(root={str(self.root)!r})"

    def path_for(self, kind: str, digest: str) -> Path:
        if kind not in ARTIFACT_KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return self.root / kind / f"{_validate_digest(digest)}.pkl"

    def get(self, kind: str, digest: str) -> Any | None:
        """The stored object, or ``None`` on miss/corruption."""
        path = self.path_for(kind, digest)
        try:
            with open(path, "rb") as fh:
                obj = pickle.load(fh)
        except FileNotFoundError:
            self.stats.record(self.stats.misses, kind)
            return None
        except MemoryError:
            # A transient OOM loading a large artifact says nothing
            # about the file: report a miss but keep the entry intact.
            self.stats.record(self.stats.misses, kind)
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError):
            # Truncated/corrupt/stale-class pickle: drop it and rebuild.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.record(self.stats.misses, kind)
            return None
        self.stats.record(self.stats.hits, kind)
        return obj

    def put(self, kind: str, digest: str, obj: Any) -> Path:
        """Atomically persist an object (last writer wins)."""
        path = self.path_for(kind, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{digest}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        self.stats.record(self.stats.writes, kind)
        return path

    def _directories(self) -> Iterator[Path]:
        for kind in ARTIFACT_KINDS:
            yield self.root / kind
        yield self.root / SHARD_DIR

    def _sweep_stale_tmps(self, directory: Path) -> int:
        """Unlink orphaned writer temp files past the age gate."""
        removed = 0
        cutoff = time.time() - self.stale_tmp_age_s
        for tmp in directory.glob(".*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:  # pragma: no cover - racing writers/deleters
                pass
        return removed

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed.

        Also sweeps orphaned writer temp files (age-gated, so a live
        writer's in-flight temp file is never yanked away) and shard
        lock files.
        """
        removed = 0
        for directory in self._directories():
            if not directory.is_dir():
                continue
            removed += self._sweep_stale_tmps(directory)
            for pattern in ("*.pkl", "*.shard", ".*.lock"):
                for path in directory.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:  # pragma: no cover - racing deleters
                        pass
        return removed

    def size_bytes(self) -> int:
        """Total bytes currently stored (best effort).

        Counts artifacts, shards, and any writer temp files still on
        disk — after sweeping temp files old enough to be orphans.
        """
        total = 0
        for directory in self._directories():
            if not directory.is_dir():
                continue
            self._sweep_stale_tmps(directory)
            for pattern in ("*.pkl", "*.shard", ".*.tmp"):
                for path in directory.glob(pattern):
                    try:
                        total += path.stat().st_size
                    except OSError:  # pragma: no cover - racing deleters
                        pass
        return total


# ----------------------------------------------------------------------
# Columnar session-result shards.  One shard file holds every cached
# session of one (sweep-context digest, video) group, so a warm
# million-session sweep opens one file per group instead of one per
# session.  Layout (all little-endian, written atomically):
#
#   magic        b"RSHARD1\n"
#   digests      .npy, S32, binary SHA-256 job digests, ascending
#   offsets      .npy, int64, payload offset of each column
#   ends         .npy, int64, payload end of each column
#   payload      concatenated per-column pickle blobs
#
# Columns are individually pickled with the same protocol as the legacy
# per-session files, so a result read from a shard is bit-for-bit the
# object the legacy path would have produced.  Keeping the index as raw
# numpy arrays (not a zip/npz container) lets a batch lookup run as a
# handful of vector ops: one read(), three read_array() calls, one
# searchsorted over the sorted digest column, then one pickle.loads per
# requested row.
# ----------------------------------------------------------------------

_SHARD_MAGIC = b"RSHARD1\n"


@contextmanager
def _merge_lock(lock_path: Path) -> Iterator[None]:
    """Serialize shard read-merge-replace cycles between writers.

    With ``fcntl`` (any POSIX platform) concurrent merges queue on an
    exclusive lock, so two writers merging disjoint job sets both land
    in the final shard.  Without it the merge degrades to documented
    last-writer-wins: the losing writer's rows are recomputed (never
    corrupted) on the next run.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    with open(lock_path, "ab") as fh:
        fcntl.flock(fh, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh, fcntl.LOCK_UN)


class ShardedResultsStore(ArtifactStore):
    """Artifact store whose session results live in columnar shards.

    Everything except the ``results`` kind behaves exactly like
    :class:`ArtifactStore` (manifests, Ptiles, and Ftiles keep their
    one-file-per-object layout — there are a handful per video).  For
    session results it adds a batch interface keyed by the shard of one
    ``(sweep-context digest, video)`` group:

    * :meth:`get_results_batch` — one shard read serves every requested
      job of the group; jobs absent from the shard fall back to the
      legacy per-session ``results/*.pkl`` files, and those legacy hits
      are returned for migration so the caller can fold them into the
      shard (after which the per-session files are dead weight,
      removable with ``clear()``).
    * :meth:`merge_shard` — append-merge: read the existing shard raw
      (columns are never deserialized), overlay the new columns, and
      atomically replace the file.  Merges are serialized by an
      exclusive file lock, so concurrent writers with disjoint job sets
      cannot lose each other's rows.

    The per-session :meth:`get`/:meth:`put` API is inherited unchanged,
    so code written against :class:`ArtifactStore` (including the CLI
    flags and the worker fan-out) keeps working; only the batch entry
    points read or write shards.
    """

    def shard_path(self, shard_digest: str) -> Path:
        return self.root / SHARD_DIR / f"{_validate_digest(shard_digest)}.shard"

    # -- raw shard I/O --------------------------------------------------

    def _read_shard_raw(
        self, shard_digest: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, bytes, int] | None:
        """``(digests, offsets, ends, file_bytes, payload_base)`` or
        ``None`` when the shard is absent (corrupt shards are dropped
        and reported absent; a transient ``MemoryError`` leaves the file
        in place)."""
        path = self.shard_path(shard_digest)
        try:
            with open(path, "rb") as fh:
                buf = fh.read()
        except FileNotFoundError:
            return None
        except MemoryError:
            return None
        except OSError:
            return None
        try:
            if buf[: len(_SHARD_MAGIC)] != _SHARD_MAGIC:
                raise ValueError("bad shard magic")
            bio = io.BytesIO(buf)
            bio.seek(len(_SHARD_MAGIC))
            digests = np.lib.format.read_array(bio, allow_pickle=False)
            offsets = np.lib.format.read_array(bio, allow_pickle=False)
            ends = np.lib.format.read_array(bio, allow_pickle=False)
            base = bio.tell()
            if not (
                digests.dtype == np.dtype("S32")
                and len(digests) == len(offsets) == len(ends)
                and (len(ends) == 0 or int(ends[-1]) + base <= len(buf))
            ):
                raise ValueError("inconsistent shard index")
        except MemoryError:
            return None
        except Exception:
            # Truncated or corrupt shard: drop it and let the sweep
            # rebuild (or re-migrate) its rows.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return digests, offsets, ends, buf, base

    def _write_shard_raw(
        self, shard_digest: str, blobs: dict[bytes, bytes]
    ) -> Path:
        """Atomically write a shard from ``{binary digest: pickle}``."""
        path = self.shard_path(shard_digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        ordered = sorted(blobs)
        lengths = np.array([len(blobs[d]) for d in ordered], dtype=np.int64)
        ends = np.cumsum(lengths, dtype=np.int64)
        offsets = ends - lengths
        digests = np.array(ordered, dtype="S32")
        tmp = path.parent / f".{shard_digest}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(_SHARD_MAGIC)
                np.lib.format.write_array(fh, digests, allow_pickle=False)
                np.lib.format.write_array(fh, offsets, allow_pickle=False)
                np.lib.format.write_array(fh, ends, allow_pickle=False)
                for digest in ordered:
                    fh.write(blobs[digest])
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        return path

    # -- batch interface ------------------------------------------------

    def get_results_batch(
        self,
        shard_digest: str,
        entries: Sequence[tuple[str, str]],
        *,
        _retry: bool = True,
    ) -> tuple[list[Any], dict[str, Any]]:
        """Look up many session results of one shard group at once.

        ``entries`` is a sequence of ``(job digest, legacy results
        key)`` pairs.  Returns ``(results, migrated)``: ``results`` has
        one entry per input (``None`` on miss), and ``migrated`` maps
        job digests to results that were served from legacy per-session
        pickles and should be folded into the shard by the caller's
        next :meth:`merge_shard` so future runs need only the shard.

        Every row is counted in the ``results`` hit/miss stats exactly
        once, shard-served or legacy-served.
        """
        raw = self._read_shard_raw(shard_digest)
        results: list[Any] = [None] * len(entries)
        hits: list[bool] = [False] * len(entries)
        shard_hits = 0
        if raw is not None and len(raw[0]):
            digests, offsets, ends, buf, base = raw
            want = np.frombuffer(
                bytes.fromhex("".join([digest for digest, _ in entries])),
                dtype="S32",
            )
            # Search on a big-endian u64 view of each digest's first 8
            # bytes: same sort order as the S32 column but ~2x faster
            # to compare.  Exact whenever no two shard digests share a
            # prefix (anything else is a SHA-256 near-collision); the
            # astronomically-rare duplicate falls back to the full
            # lexicographic search.
            prefix = digests.view(">u8")[::4]
            if len(prefix) > 1 and (prefix[1:] == prefix[:-1]).any():
                pos = np.searchsorted(digests, want)
            else:
                pos = np.searchsorted(
                    prefix, np.ascontiguousarray(want.view(">u8")[::4])
                )
            clipped = np.minimum(pos, len(digests) - 1)
            hits = (digests[clipped] == want).tolist()
            starts = (offsets[clipped] + base).tolist()
            stops = (ends[clipped] + base).tolist()
            loads = pickle.loads
            view = memoryview(buf)  # slice without copying each row
            try:
                for i, hit in enumerate(hits):
                    if hit:
                        results[i] = loads(view[starts[i] : stops[i]])
                        shard_hits += 1
            except MemoryError:
                raise
            except Exception:
                # A valid index over a corrupt payload: drop the shard
                # and serve the whole batch from scratch.
                try:
                    self.shard_path(shard_digest).unlink()
                except OSError:
                    pass
                if _retry:
                    return self.get_results_batch(
                        shard_digest, entries, _retry=False
                    )
                raise
        self.stats.record(self.stats.hits, "results", shard_hits)
        if shard_hits == len(entries):  # fully warm: no legacy fallback
            return results, {}

        migrated: dict[str, Any] = {}
        for i, (job_digest, legacy_key) in enumerate(entries):
            if hits[i]:
                continue
            obj = self.get("results", legacy_key)  # counts hit or miss
            if obj is not None:
                results[i] = obj
                migrated[job_digest] = obj
        return results, migrated

    def merge_shard(self, shard_digest: str, entries: dict[str, Any]) -> Path:
        """Append-merge ``{job digest: result}`` into a shard.

        Existing columns are carried over as raw bytes (never
        deserialized); a digest present on both sides takes the new
        value.  The read-merge-replace cycle holds an exclusive lock so
        concurrent writers cannot overwrite each other's merges, and
        the final write is the usual temp-file + ``os.replace``.
        """
        path = self.shard_path(shard_digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = path.parent / f".{shard_digest}.lock"
        with _merge_lock(lock_path):
            blobs: dict[bytes, bytes] = {}
            raw = self._read_shard_raw(shard_digest)
            if raw is not None:
                digests, offsets, ends, buf, base = raw
                starts = (offsets + base).tolist()
                stops = (ends + base).tolist()
                for digest, start, stop in zip(
                    digests.tolist(), starts, stops
                ):
                    blobs[digest] = buf[start:stop]
            for job_digest, obj in entries.items():
                blobs[bytes.fromhex(_validate_digest(job_digest))] = (
                    pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
                )
            self._write_shard_raw(shard_digest, blobs)
        self.stats.record(self.stats.writes, "results", len(entries))
        return path
