"""Tables I-III of the paper.

Table I — the measured power models (embedded constants, printed in the
paper's layout).  Table II — the Q_o coefficients, re-fitted through the
full pipeline (synthetic VMAF oracle + nonlinear least squares).
Table III — the test-video catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power.models import DEVICES, TilingScheme
from ..qoe.fitting import FitResult, VMAFOracle, build_training_set, fit_qo_model
from ..qoe.quality import TABLE_II
from ..video.content import VIDEO_CATALOG
from ..video.encoder import EncoderModel

__all__ = ["table1_rows", "run_table2", "table3_rows", "Table2Result"]


def table1_rows() -> list[str]:
    """Table I in the paper's layout (power in mW, f in fps)."""
    lines = ["Table I: power models (mW)"]
    names = list(DEVICES)
    header = f"{'state':<28}" + "".join(f"{DEVICES[n].name:>22}" for n in names)
    lines.append(header)
    row = f"{'data transmission P_t':<28}"
    for n in names:
        row += f"{DEVICES[n].transmission_mw:>22.2f}"
    lines.append(row)
    for scheme in TilingScheme:
        row = f"{'decode P_d ' + scheme.value:<28}"
        for n in names:
            model = DEVICES[n].decoding[scheme]
            row += f"{model.base_mw:>13.2f}+{model.slope_mw_per_fps:.2f}f"
        lines.append(row)
    row = f"{'render P_r':<28}"
    for n in names:
        model = DEVICES[n].rendering
        row += f"{model.base_mw:>13.2f}+{model.slope_mw_per_fps:.2f}f"
    lines.append(row)
    return lines


@dataclass(frozen=True)
class Table2Result:
    """Outcome of re-fitting the Q_o model."""

    fit: FitResult
    coefficient_errors: dict[str, float]

    def report(self) -> list[str]:
        c = self.fit.coefficients
        lines = [
            "Table II: fitted Q_o coefficients (paper values in parens)",
            f"  c1 = {c.c1:+.4f} ({TABLE_II.c1:+.4f})",
            f"  c2 = {c.c2:+.4f} ({TABLE_II.c2:+.4f})",
            f"  c3 = {c.c3:+.4f} ({TABLE_II.c3:+.4f})",
            f"  c4 = {c.c4:+.4f} ({TABLE_II.c4:+.4f})",
            f"  Pearson r = {self.fit.pearson_r:.4f} (paper: 0.9791)",
            f"  samples: {self.fit.n_samples}",
        ]
        return lines


def run_table2(
    encoder: EncoderModel | None = None,
    oracle: VMAFOracle | None = None,
    segments_per_video: int = 10,
) -> Table2Result:
    """Re-fit the Table II coefficients through the full pipeline."""
    from ..video.content import build_catalog

    encoder = encoder or EncoderModel()
    oracle = oracle or VMAFOracle()
    videos = build_catalog()
    si, ti, b = build_training_set(videos, encoder, segments_per_video)
    vmaf = oracle.measure(si, ti, b)
    fit = fit_qo_model(si, ti, b, vmaf)
    truth = TABLE_II.as_array()
    fitted = fit.coefficients.as_array()
    errors = dict(zip(("c1", "c2", "c3", "c4"), np.abs(fitted - truth)))
    return Table2Result(fit=fit, coefficient_errors=errors)


def table3_rows() -> list[str]:
    """Table III: the eight test videos."""
    lines = ["Table III: test videos"]
    for meta in VIDEO_CATALOG:
        minutes, seconds = divmod(meta.duration_s, 60)
        lines.append(
            f"  {meta.video_id}: {meta.title:<18} {minutes}:{seconds:02d}"
            f"  ({meta.behavior})"
        )
    return lines
