"""Paper-style report formatting.

Small helpers that print experiment outputs as the rows/series the paper
reports, so benchmark logs read like the original tables and figures.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["format_row", "format_table", "format_normalized", "print_lines"]


def format_row(label: str, values: Iterable[float], fmt: str = "{:>8.3f}") -> str:
    """One labelled row of numbers."""
    cells = "".join(fmt.format(v) for v in values)
    return f"{label:<22}{cells}"


def format_table(
    headers: Iterable[str],
    rows: Mapping[str, Iterable[float]],
    fmt: str = "{:>8.3f}",
) -> list[str]:
    """A labelled table: header line plus one row per entry."""
    head = f"{'':<22}" + "".join(f"{h:>8}" for h in headers)
    lines = [head]
    for label, values in rows.items():
        lines.append(format_row(label, values, fmt))
    return lines


def format_normalized(
    values: Mapping[str, float], baseline: str, title: str
) -> list[str]:
    """Values normalized by a baseline entry, printed as percentages."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} missing")
    base = values[baseline]
    lines = [title]
    for name, value in values.items():
        ratio = value / base
        delta = (1.0 - ratio) * 100.0
        lines.append(f"  {name:<10} {ratio:6.3f}x  ({delta:+.1f}% vs {baseline})")
    return lines


def print_lines(lines: Iterable[str]) -> None:
    for line in lines:
        print(line)
