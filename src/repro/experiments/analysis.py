"""Statistical analysis of session-experiment results.

The paper reports point averages; a credible reproduction should also
say how stable its comparisons are across users and videos.  This
module provides seeded bootstrap confidence intervals and paired
scheme comparisons over matched sessions (same user, video, and trace
under both schemes), plus a Wilcoxon signed-rank test from scipy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from ..streaming.metrics import SessionResult

__all__ = ["BootstrapCI", "PairedComparison", "bootstrap_ci",
           "paired_comparison", "compare_schemes"]


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap confidence interval for a sample mean."""

    mean: float
    low: float
    high: float
    confidence: float
    n_samples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def report(self) -> str:
        return (
            f"{self.mean:.3f} [{self.low:.3f}, {self.high:.3f}]"
            f" ({self.confidence:.0%} CI, n={self.n_samples})"
        )


def bootstrap_ci(
    values,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile-bootstrap CI of the mean (seeded, deterministic)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no samples")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    means = rng.choice(arr, size=(n_resamples, arr.size), replace=True).mean(
        axis=1
    )
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        mean=float(arr.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
        n_samples=int(arr.size),
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired A-versus-B comparison of one metric over matched sessions."""

    metric: str
    mean_a: float
    mean_b: float
    mean_diff: float  # a - b
    diff_ci: BootstrapCI
    wilcoxon_p: float
    n_pairs: int

    @property
    def significant(self) -> bool:
        """Zero outside the CI and Wilcoxon p < 0.05."""
        return (not self.diff_ci.contains(0.0)) and self.wilcoxon_p < 0.05

    def report(self) -> str:
        verdict = "significant" if self.significant else "not significant"
        return (
            f"{self.metric}: A {self.mean_a:.3f} vs B {self.mean_b:.3f},"
            f" diff {self.mean_diff:+.3f} CI"
            f" [{self.diff_ci.low:+.3f}, {self.diff_ci.high:+.3f}],"
            f" Wilcoxon p={self.wilcoxon_p:.2g} ({verdict}, n={self.n_pairs})"
        )


def _metric_of(result: SessionResult, metric: str) -> float:
    getters = {
        "energy_per_segment_j": lambda r: r.energy_per_segment_j,
        "energy_j": lambda r: r.total_energy_j,
        "qoe": lambda r: r.mean_qoe,
        "quality": lambda r: r.mean_quality_level,
        "coverage": lambda r: r.mean_coverage,
        "frame_rate": lambda r: r.mean_frame_rate,
    }
    if metric not in getters:
        raise KeyError(f"unknown metric {metric!r}; known: {sorted(getters)}")
    return float(getters[metric](result))


def paired_comparison(
    sessions_a: list[SessionResult],
    sessions_b: list[SessionResult],
    metric: str = "energy_per_segment_j",
    confidence: float = 0.95,
    seed: int = 0,
) -> PairedComparison:
    """Compare two schemes over matched sessions.

    Sessions are matched by (video, user, network); both lists must
    cover the same set of keys.
    """
    def keyed(sessions):
        return {
            (s.video_id, s.user_id, s.network_name): s for s in sessions
        }

    a_by_key = keyed(sessions_a)
    b_by_key = keyed(sessions_b)
    if set(a_by_key) != set(b_by_key):
        raise ValueError("session sets are not matched")
    if not a_by_key:
        raise ValueError("no sessions to compare")

    keys = sorted(a_by_key)
    a_values = np.array([_metric_of(a_by_key[k], metric) for k in keys])
    b_values = np.array([_metric_of(b_by_key[k], metric) for k in keys])
    diffs = a_values - b_values

    ci = bootstrap_ci(diffs, confidence=confidence, seed=seed)
    if np.allclose(diffs, 0.0):
        p_value = 1.0
    else:
        p_value = float(scipy_stats.wilcoxon(diffs).pvalue)
    return PairedComparison(
        metric=metric,
        mean_a=float(a_values.mean()),
        mean_b=float(b_values.mean()),
        mean_diff=float(diffs.mean()),
        diff_ci=ci,
        wilcoxon_p=p_value,
        n_pairs=len(keys),
    )


def compare_schemes(
    results: dict[tuple[str, str, int], list[SessionResult]],
    scheme_a: str,
    scheme_b: str,
    metric: str = "energy_per_segment_j",
) -> PairedComparison:
    """Paired comparison over a ``run_comparison`` session matrix."""
    a = [s for (t, name, v), ss in results.items() if name == scheme_a
         for s in ss]
    b = [s for (t, name, v), ss in results.items() if name == scheme_b
         for s in ss]
    if not a or not b:
        raise KeyError(
            f"schemes {scheme_a!r}/{scheme_b!r} missing from the matrix"
        )
    return paired_comparison(a, b, metric=metric)
