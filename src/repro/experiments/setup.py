"""Standard experiment setup (paper Section V-A).

Builds the evaluation inputs every figure shares — the video catalog
with manifests, head-movement dataset with its train/test split, the two
network traces, per-video Ptiles and Ftile partitions — and provides the
session matrix runner that Figs. 9-11 slice.

Scale control: the paper's full evaluation streams every test user over
every full-length video; for quick runs ``max_duration_s`` truncates
videos and ``users_per_video`` limits the test users.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..encoding.ladder import EncodingLadder

from ..core.controller import OursScheme
from ..geometry.tiling import DEFAULT_GRID, TileGrid
from ..power.models import DevicePowerModel, PIXEL_3
from ..ptile.construction import PtileConfig, SegmentPtiles, build_video_ptiles
from ..streaming.ftile import FtilePartition, build_video_ftiles
from ..streaming.metrics import SessionResult
from ..streaming.schemes import (
    CtileScheme,
    FtileScheme,
    NontileScheme,
    PtileScheme,
    StreamingScheme,
)
from ..streaming.session import SessionConfig
from ..traces.dataset import EvaluationDataset, build_dataset
from ..traces.network import NetworkTrace, paper_traces
from ..video.content import Video
from ..video.encoder import EncoderModel
from ..video.segments import VideoManifest
from .artifacts import ArtifactStore, ftiles_key, manifest_key, ptiles_key
from .runner import SessionJob, SweepContext, parallel_map, run_session_jobs

__all__ = ["ExperimentSetup", "make_setup", "SCHEME_ORDER", "make_schemes",
           "build_sweep", "run_comparison"]

SCHEME_ORDER = ("ctile", "ftile", "nontile", "ptile", "ours")
"""The schemes of Section V-A, in the paper's presentation order."""


@dataclass
class ExperimentSetup:
    """Shared inputs for all evaluation experiments.

    When ``artifacts`` is set, manifests, Ptiles, and Ftile partitions
    are loaded from / persisted to the disk-backed
    :class:`~repro.experiments.artifacts.ArtifactStore` instead of being
    rebuilt; :meth:`prepare` additionally fans cold Ptile/Ftile
    construction out across a process pool.  Results are byte-identical
    with the store on or off — the store only skips recomputation.
    """

    dataset: EvaluationDataset
    encoder: EncoderModel
    trace1: NetworkTrace
    trace2: NetworkTrace
    grid: TileGrid = DEFAULT_GRID
    ptile_config: PtileConfig = field(default_factory=PtileConfig)
    session_config: SessionConfig = field(default_factory=SessionConfig)
    artifacts: ArtifactStore | None = None
    ladders: dict[int, EncodingLadder] = field(default_factory=dict)
    _manifests: dict[int, VideoManifest] = field(default_factory=dict, repr=False)
    _ptiles: dict[int, list[SegmentPtiles]] = field(default_factory=dict, repr=False)
    _ftiles: dict[int, list[FtilePartition]] = field(default_factory=dict, repr=False)

    @property
    def videos(self) -> tuple[Video, ...]:
        return self.dataset.videos

    def encoder_for(self, video_id: int) -> EncoderModel:
        """The encoder pricing one video: the shared model, with the
        video's own ladder swapped in when ``ladders`` overrides it."""
        ladder = self.ladders.get(video_id)
        if ladder is None or ladder == self.encoder.ladder:
            return self.encoder
        return dataclasses.replace(self.encoder, ladder=ladder)

    def with_ladders(
        self, ladders: dict[int, EncodingLadder]
    ) -> "ExperimentSetup":
        """A sibling setup whose videos encode under per-video ladders.

        Manifests are rebuilt lazily under the new ladders (their
        artifact keys differ via the encoder fingerprint); Ptile and
        Ftile construction depends only on head traces and geometry, so
        the prepared caches are shared with the parent.
        """
        return dataclasses.replace(
            self, ladders=dict(ladders), _manifests={}
        )

    def manifest(self, video_id: int) -> VideoManifest:
        if video_id not in self._manifests:
            video = self.dataset.video(video_id)
            encoder = self.encoder_for(video_id)
            built = None
            key = None
            if self.artifacts is not None:
                key = manifest_key(video, encoder)
                built = self.artifacts.get("manifest", key)
            if built is None:
                built = VideoManifest(video, encoder)
                if self.artifacts is not None:
                    self.artifacts.put("manifest", key, built)
            self._manifests[video_id] = built
        return self._manifests[video_id]

    def ptiles(self, video_id: int) -> list[SegmentPtiles]:
        if video_id not in self._ptiles:
            self.prepare((video_id,), manifests=False, ftiles=False)
        return self._ptiles[video_id]

    def ftiles(self, video_id: int) -> list[FtilePartition]:
        if video_id not in self._ftiles:
            self.prepare((video_id,), manifests=False, ptiles=False)
        return self._ftiles[video_id]

    def prepare(
        self,
        video_ids: tuple[int, ...] | None = None,
        *,
        workers: int | None = 1,
        manifests: bool = True,
        ptiles: bool = True,
        ftiles: bool = True,
    ) -> None:
        """Build (or load from the artifact store) the content-prep
        artifacts for a set of videos.

        Warm artifacts deserialize from disk and skip construction
        entirely; cold Ptile/Ftile construction (Algorithm 1 clustering
        + cluster split + coverage, the expensive phase) fans out across
        videos on a process pool when ``workers`` allows.  Construction
        is a pure per-video function, so results are identical at any
        worker count.
        """
        if video_ids is None:
            video_ids = tuple(v.meta.video_id for v in self.videos)
        if manifests:
            for vid in video_ids:
                self.manifest(vid)

        todo: list[tuple[int, bool, bool]] = []
        for vid in video_ids:
            need_pt = ptiles and vid not in self._ptiles
            need_ft = ftiles and vid not in self._ftiles
            if self.artifacts is not None:
                video = self.dataset.video(vid)
                train = self.dataset.train_traces(vid)
                if need_pt:
                    got = self.artifacts.get(
                        "ptiles",
                        ptiles_key(video, train, self.grid, self.ptile_config),
                    )
                    if got is not None:
                        self._ptiles[vid] = got
                        need_pt = False
                if need_ft:
                    got = self.artifacts.get(
                        "ftiles", ftiles_key(video, train)
                    )
                    if got is not None:
                        self._ftiles[vid] = got
                        need_ft = False
            if need_pt or need_ft:
                todo.append((vid, need_pt, need_ft))
        if not todo:
            return

        items = [
            (
                self.dataset.video(vid),
                self.dataset.train_traces(vid),
                self.grid,
                self.ptile_config,
                need_pt,
                need_ft,
            )
            for vid, need_pt, need_ft in todo
        ]
        if len(items) > 1 and workers != 1:
            results = parallel_map(
                _prepare_video_task, items, workers=workers
            ).results
        else:
            results = [_prepare_video_task(item) for item in items]
        for (vid, need_pt, need_ft), (built_pt, built_ft) in zip(todo, results):
            if need_pt:
                self._ptiles[vid] = built_pt
                if self.artifacts is not None:
                    video = self.dataset.video(vid)
                    train = self.dataset.train_traces(vid)
                    self.artifacts.put(
                        "ptiles",
                        ptiles_key(video, train, self.grid, self.ptile_config),
                        built_pt,
                    )
            if need_ft:
                self._ftiles[vid] = built_ft
                if self.artifacts is not None:
                    video = self.dataset.video(vid)
                    train = self.dataset.train_traces(vid)
                    self.artifacts.put(
                        "ftiles", ftiles_key(video, train), built_ft
                    )

    def traces(self) -> dict[str, NetworkTrace]:
        return {"trace1": self.trace1, "trace2": self.trace2}


def _prepare_video_task(
    item: tuple,
) -> tuple[list[SegmentPtiles] | None, list[FtilePartition] | None]:
    """Build one video's missing content-prep artifacts (any process)."""
    video, train_traces, grid, config, need_ptiles, need_ftiles = item
    built_ptiles = (
        build_video_ptiles(video, train_traces, grid, config)
        if need_ptiles
        else None
    )
    built_ftiles = (
        build_video_ftiles(video, train_traces) if need_ftiles else None
    )
    return built_ptiles, built_ftiles


def make_setup(
    max_duration_s: int | None = None,
    n_users: int = 48,
    n_train: int = 40,
    seed: int = 2017,
    video_ids: tuple[int, ...] | None = None,
    artifacts: ArtifactStore | None = None,
) -> ExperimentSetup:
    """Build the standard experiment setup.

    ``artifacts`` enables the disk-backed content-prep cache (see
    :mod:`repro.experiments.artifacts`); the default keeps it off so
    library callers opt in explicitly (the CLI opts in for them).
    """
    dataset = build_dataset(
        n_users=n_users,
        n_train=n_train,
        seed=seed,
        video_ids=video_ids,
        max_duration_s=max_duration_s,
    )
    trace1, trace2 = paper_traces()
    return ExperimentSetup(
        dataset=dataset,
        encoder=EncoderModel(),
        trace1=trace1,
        trace2=trace2,
        artifacts=artifacts,
    )


def make_schemes(device: DevicePowerModel = PIXEL_3) -> dict[str, StreamingScheme]:
    """The five compared schemes, keyed by name."""
    return {
        "ctile": CtileScheme(),
        "ftile": FtileScheme(),
        "nontile": NontileScheme(),
        "ptile": PtileScheme(),
        "ours": OursScheme(device=device),
    }


def build_sweep(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    users_per_video: int | None = None,
    video_ids: tuple[int, ...] | None = None,
    scheme_names: tuple[str, ...] = SCHEME_ORDER,
    workers: int | None = 1,
) -> tuple[SweepContext, list[SessionJob]]:
    """Build the Section V-C session matrix as (context, jobs).

    Jobs are ordered video -> trace -> scheme -> user, matching the
    historical serial loop so that results keep the same dict ordering.
    ``video_ids=None`` sweeps the whole catalog; an explicit (possibly
    empty) tuple sweeps exactly those videos.  ``workers`` fans cold
    content preparation across videos (warm artifact-store runs skip
    construction regardless).
    """
    schemes = make_schemes(device)
    unknown = set(scheme_names) - set(schemes)
    if unknown:
        raise KeyError(f"unknown schemes {sorted(unknown)}")
    known_videos = {v.meta.video_id for v in setup.videos}
    if video_ids is None:
        wanted = tuple(v.meta.video_id for v in setup.videos)
    else:
        wanted = tuple(video_ids)
        unknown_videos = [v for v in wanted if v not in known_videos]
        if unknown_videos:
            raise KeyError(f"unknown video ids {sorted(set(unknown_videos))}")
    setup.prepare(wanted, workers=workers)

    manifests: dict[int, VideoManifest] = {}
    ptiles: dict[int, list[SegmentPtiles]] = {}
    ftiles: dict[int, list[FtilePartition]] = {}
    heads: dict[int, tuple] = {}
    for vid in wanted:
        manifests[vid] = setup.manifest(vid)
        ptiles[vid] = setup.ptiles(vid)
        ftiles[vid] = setup.ftiles(vid)
        test_traces = setup.dataset.test_traces(vid)
        if users_per_video is not None:
            test_traces = test_traces[:users_per_video]
        heads[vid] = tuple(test_traces)

    context = SweepContext(
        schemes=schemes,
        device=device,
        networks=setup.traces(),
        manifests=manifests,
        head_traces=heads,
        ptiles=ptiles,
        ftiles=ftiles,
        config=setup.session_config,
    )
    jobs = [
        SessionJob(
            key=(trace_name, name, vid),
            scheme=name,
            video_id=vid,
            network=trace_name,
            user_index=user,
        )
        for vid in wanted
        for trace_name in context.networks
        for name in scheme_names
        for user in range(len(heads[vid]))
    ]
    return context, jobs


def run_comparison(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    users_per_video: int | None = None,
    video_ids: tuple[int, ...] | None = None,
    scheme_names: tuple[str, ...] = SCHEME_ORDER,
    workers: int | None = 1,
    chunk_size: int | None = None,
    results_store: ArtifactStore | None = None,
) -> dict[tuple[str, str, int], list[SessionResult]]:
    """Run the full session matrix of Section V-C.

    Returns ``{(trace_name, scheme_name, video_id): [SessionResult]}``
    with one result per test user.  This single matrix backs Fig. 9
    (energy, Pixel 3), Fig. 10 (other devices) and Fig. 11 (QoE).

    ``workers`` fans the sessions over a process pool (0 = auto-detect,
    1 = serial), and likewise fans out cold content preparation across
    videos; results are identical for any worker count, and identical
    with the artifact store on or off.  ``results_store`` additionally
    serves previously computed sessions from the results cache (see
    :func:`~repro.experiments.runner.run_session_jobs`); pass a
    :class:`~repro.experiments.artifacts.ShardedResultsStore` to read
    and write columnar per-(context, video) shards — one file open per
    video group instead of one per session — with identical results.
    """
    context, jobs = build_sweep(
        setup, device, users_per_video, video_ids, scheme_names,
        workers=workers,
    )
    run = run_session_jobs(
        context, jobs, workers=workers, chunk_size=chunk_size,
        results=results_store,
    )
    results: dict[tuple[str, str, int], list[SessionResult]] = {}
    for job, result in zip(jobs, run.results):
        results.setdefault(job.key, []).append(result)
    return results
