"""Standard experiment setup (paper Section V-A).

Builds the evaluation inputs every figure shares — the video catalog
with manifests, head-movement dataset with its train/test split, the two
network traces, per-video Ptiles and Ftile partitions — and provides the
session matrix runner that Figs. 9-11 slice.

Scale control: the paper's full evaluation streams every test user over
every full-length video; for quick runs ``max_duration_s`` truncates
videos and ``users_per_video`` limits the test users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.controller import OursScheme
from ..geometry.tiling import DEFAULT_GRID, TileGrid
from ..power.models import DevicePowerModel, PIXEL_3
from ..ptile.construction import PtileConfig, SegmentPtiles, build_video_ptiles
from ..streaming.ftile import FtilePartition, build_video_ftiles
from ..streaming.metrics import SessionResult
from ..streaming.schemes import (
    CtileScheme,
    FtileScheme,
    NontileScheme,
    PtileScheme,
    StreamingScheme,
)
from ..streaming.session import SessionConfig
from ..traces.dataset import EvaluationDataset, build_dataset
from ..traces.network import NetworkTrace, paper_traces
from ..video.content import Video
from ..video.encoder import EncoderModel
from ..video.segments import VideoManifest
from .runner import SessionJob, SweepContext, run_session_jobs

__all__ = ["ExperimentSetup", "make_setup", "SCHEME_ORDER", "make_schemes",
           "build_sweep", "run_comparison"]

SCHEME_ORDER = ("ctile", "ftile", "nontile", "ptile", "ours")
"""The schemes of Section V-A, in the paper's presentation order."""


@dataclass
class ExperimentSetup:
    """Shared inputs for all evaluation experiments."""

    dataset: EvaluationDataset
    encoder: EncoderModel
    trace1: NetworkTrace
    trace2: NetworkTrace
    grid: TileGrid = DEFAULT_GRID
    ptile_config: PtileConfig = field(default_factory=PtileConfig)
    session_config: SessionConfig = field(default_factory=SessionConfig)
    _manifests: dict[int, VideoManifest] = field(default_factory=dict, repr=False)
    _ptiles: dict[int, list[SegmentPtiles]] = field(default_factory=dict, repr=False)
    _ftiles: dict[int, list[FtilePartition]] = field(default_factory=dict, repr=False)

    @property
    def videos(self) -> tuple[Video, ...]:
        return self.dataset.videos

    def manifest(self, video_id: int) -> VideoManifest:
        if video_id not in self._manifests:
            self._manifests[video_id] = VideoManifest(
                self.dataset.video(video_id), self.encoder
            )
        return self._manifests[video_id]

    def ptiles(self, video_id: int) -> list[SegmentPtiles]:
        if video_id not in self._ptiles:
            self._ptiles[video_id] = build_video_ptiles(
                self.dataset.video(video_id),
                self.dataset.train_traces(video_id),
                self.grid,
                self.ptile_config,
            )
        return self._ptiles[video_id]

    def ftiles(self, video_id: int) -> list[FtilePartition]:
        if video_id not in self._ftiles:
            self._ftiles[video_id] = build_video_ftiles(
                self.dataset.video(video_id),
                self.dataset.train_traces(video_id),
            )
        return self._ftiles[video_id]

    def traces(self) -> dict[str, NetworkTrace]:
        return {"trace1": self.trace1, "trace2": self.trace2}


def make_setup(
    max_duration_s: int | None = None,
    n_users: int = 48,
    n_train: int = 40,
    seed: int = 2017,
    video_ids: tuple[int, ...] | None = None,
) -> ExperimentSetup:
    """Build the standard experiment setup."""
    dataset = build_dataset(
        n_users=n_users,
        n_train=n_train,
        seed=seed,
        video_ids=video_ids,
        max_duration_s=max_duration_s,
    )
    trace1, trace2 = paper_traces()
    return ExperimentSetup(
        dataset=dataset,
        encoder=EncoderModel(),
        trace1=trace1,
        trace2=trace2,
    )


def make_schemes(device: DevicePowerModel = PIXEL_3) -> dict[str, StreamingScheme]:
    """The five compared schemes, keyed by name."""
    return {
        "ctile": CtileScheme(),
        "ftile": FtileScheme(),
        "nontile": NontileScheme(),
        "ptile": PtileScheme(),
        "ours": OursScheme(device=device),
    }


def build_sweep(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    users_per_video: int | None = None,
    video_ids: tuple[int, ...] | None = None,
    scheme_names: tuple[str, ...] = SCHEME_ORDER,
) -> tuple[SweepContext, list[SessionJob]]:
    """Build the Section V-C session matrix as (context, jobs).

    Jobs are ordered video -> trace -> scheme -> user, matching the
    historical serial loop so that results keep the same dict ordering.
    """
    schemes = make_schemes(device)
    unknown = set(scheme_names) - set(schemes)
    if unknown:
        raise KeyError(f"unknown schemes {sorted(unknown)}")
    wanted = video_ids or tuple(v.meta.video_id for v in setup.videos)

    manifests: dict[int, VideoManifest] = {}
    ptiles: dict[int, list[SegmentPtiles]] = {}
    ftiles: dict[int, list[FtilePartition]] = {}
    heads: dict[int, tuple] = {}
    for vid in wanted:
        manifests[vid] = setup.manifest(vid)
        ptiles[vid] = setup.ptiles(vid)
        ftiles[vid] = setup.ftiles(vid)
        test_traces = setup.dataset.test_traces(vid)
        if users_per_video is not None:
            test_traces = test_traces[:users_per_video]
        heads[vid] = tuple(test_traces)

    context = SweepContext(
        schemes=schemes,
        device=device,
        networks=setup.traces(),
        manifests=manifests,
        head_traces=heads,
        ptiles=ptiles,
        ftiles=ftiles,
        config=setup.session_config,
    )
    jobs = [
        SessionJob(
            key=(trace_name, name, vid),
            scheme=name,
            video_id=vid,
            network=trace_name,
            user_index=user,
        )
        for vid in wanted
        for trace_name in context.networks
        for name in scheme_names
        for user in range(len(heads[vid]))
    ]
    return context, jobs


def run_comparison(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    users_per_video: int | None = None,
    video_ids: tuple[int, ...] | None = None,
    scheme_names: tuple[str, ...] = SCHEME_ORDER,
    workers: int | None = 1,
    chunk_size: int | None = None,
) -> dict[tuple[str, str, int], list[SessionResult]]:
    """Run the full session matrix of Section V-C.

    Returns ``{(trace_name, scheme_name, video_id): [SessionResult]}``
    with one result per test user.  This single matrix backs Fig. 9
    (energy, Pixel 3), Fig. 10 (other devices) and Fig. 11 (QoE).

    ``workers`` fans the sessions over a process pool (0 = auto-detect,
    1 = serial); results are identical for any worker count.
    """
    context, jobs = build_sweep(
        setup, device, users_per_video, video_ids, scheme_names
    )
    run = run_session_jobs(
        context, jobs, workers=workers, chunk_size=chunk_size
    )
    results: dict[tuple[str, str, int], list[SessionResult]] = {}
    for job, result in zip(jobs, run.results):
        results.setdefault(job.key, []).append(result)
    return results
