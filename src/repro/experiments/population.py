"""Population-scale streaming experiment.

Drives the batched :class:`~repro.streaming.population.PopulationEngine`
with a seeded diurnal-Poisson arrival process over the synthetic user
pool: sessions arrive over a window, share the cell's capacity as a
fair-share link (the :mod:`~repro.streaming.multiclient` processor-
sharing approximation), optionally sit behind a shared edge cache, and
each replays one held-out head trace.  The result summarizes the same
per-session aggregates the paper's single-session tables report, now as
population means.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..power.models import PIXEL_3, DevicePowerModel
from ..streaming.cache import build_edge_hit_model
from ..streaming.population import PopulationEngine, PopulationResult
from ..traces.arrivals import DiurnalPoissonArrivals, assign_users
from .setup import ExperimentSetup, make_schemes

__all__ = ["PopulationSummary", "run_population"]


@dataclass(frozen=True)
class PopulationSummary:
    """Aggregate outcome of one population run."""

    scheme_name: str
    video_id: int
    num_sessions: int
    mean_concurrency: float
    means: dict
    result: PopulationResult

    def report(self) -> str:
        m = self.means
        return (
            f"  {self.scheme_name:<8} sessions {self.num_sessions:5d}"
            f"  conc {self.mean_concurrency:5.1f}"
            f"  E/seg {m['energy_per_segment_j']:6.3f} J"
            f"  QoE {m['qoe']:6.2f}"
            f"  rebuffers {m['rebuffer_count']:5.2f}"
            f"  stall {m['stall_s']:5.2f} s"
        )


def run_population(
    setup: ExperimentSetup,
    device: DevicePowerModel = PIXEL_3,
    *,
    video_id: int = 8,
    scheme_name: str = "ours",
    arrivals: DiurnalPoissonArrivals | None = None,
    window_s: float = 120.0,
    sessions: int | None = None,
    fair_share: bool = True,
    edge_capacity_mbit: float = 0.0,
    chunk_size: int = 2048,
) -> PopulationSummary:
    """Simulate an arriving population of viewers on one cell.

    Arrivals come from ``arrivals`` sampled over ``window_s`` (or, when
    ``sessions`` is set, exactly that many sessions round-robined over
    the user pool with arrival-process start times truncated/cycled to
    fit).  ``fair_share`` divides the backhaul trace by the mean
    concurrency (processor sharing, as in the multi-client sweep);
    ``edge_capacity_mbit > 0`` trains a shared edge cache on the
    training population and serves hits at the edge link rate.
    """
    scheme = make_schemes(device)[scheme_name]
    manifest = setup.manifest(video_id)
    ptiles = setup.ptiles(video_id) if scheme_name in ("ptile", "ours") else None
    traces = setup.dataset.test_traces(video_id)

    arrivals = arrivals or DiurnalPoissonArrivals(rate_per_s=0.5)
    times = arrivals.sample(window_s)
    if sessions is not None:
        if sessions < 1:
            raise ValueError("need at least one session")
        reps = int(np.ceil(sessions / max(times.size, 1)))
        times = np.tile(times, max(reps, 1))[:sessions] if times.size else np.zeros(sessions)
    if times.size == 0:
        raise ValueError("arrival process produced no sessions; widen the window")
    users, starts = assign_users(times, len(traces), seed=arrivals.seed)

    config = setup.session_config
    # Mean number of concurrently active sessions: total session-seconds
    # over the window (Little's law with deterministic service time).
    session_len_s = config.segment_seconds * (
        config.max_segments or manifest.num_segments
    )
    concurrency = max(times.size * session_len_s / max(window_s, session_len_s), 1.0)
    network = setup.trace2
    if fair_share:
        share = max(int(round(concurrency)), 1)
        network = network.scaled(1.0 / share, name=f"{network.name}/{share}")

    if edge_capacity_mbit > 0:
        edge = build_edge_hit_model(
            manifest,
            setup.dataset.train_traces(video_id),
            setup.ptiles(video_id),
            capacity_mbit=edge_capacity_mbit,
        )
        config = replace(config, edge_model=edge)

    engine = PopulationEngine(
        scheme,
        manifest,
        traces,
        network,
        device,
        ptiles=ptiles,
        config=config,
    )
    result = engine.run(users, starts, chunk_size=chunk_size)
    return PopulationSummary(
        scheme_name=scheme_name,
        video_id=video_id,
        num_sessions=result.num_sessions,
        mean_concurrency=float(concurrency),
        means=result.mean_sessions(),
        result=result,
    )
