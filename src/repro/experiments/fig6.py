"""Fig. 6 — splitting an oversized Ptile.

The paper's Fig. 6 shows a Freestyle-Skiing segment where density
clustering alone would chain nearby viewing centers into one cluster
spanning a huge area; bounding the cluster diameter by sigma and
splitting with 2-means yields two right-sized Ptiles.

This experiment reconstructs that scenario deterministically: a wide
chain of viewing centers is clustered (a) without the sigma bound
(sigma = infinity in effect) and (b) with the paper's sigma = tile
width, and the resulting cluster diameters and Ptile areas are
compared, together with tile-grid maps of both outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.tiling import DEFAULT_GRID, TileGrid
from ..ptile.clustering import ViewingCenter
from ..ptile.construction import PtileConfig, SegmentPtiles, build_segment_ptiles
from ..viz.ascii import tile_grid_map

__all__ = ["Fig6Result", "run_fig6", "make_wide_cluster"]


def make_wide_cluster(
    n_users: int = 24, span_deg: float = 80.0, seed: int = 6
) -> list[ViewingCenter]:
    """A chain of viewing centers spanning ``span_deg`` of yaw.

    Mimics the Freestyle-Skiing case: users strung out along the
    skier's path, each within delta of their neighbours, but the whole
    chain far wider than one viewing area.
    """
    rng = np.random.default_rng(seed)
    yaws = np.linspace(120.0, 120.0 + span_deg, n_users)
    pitches = rng.normal(-5.0, 4.0, n_users)
    return [
        ViewingCenter(i, float(yaws[i]), float(np.clip(pitches[i], -30, 30)))
        for i in range(n_users)
    ]


@dataclass(frozen=True)
class Fig6Result:
    """Unbounded versus sigma-bounded clustering of the same centers."""

    unbounded: SegmentPtiles
    bounded: SegmentPtiles
    unbounded_diameters: tuple[float, ...]
    bounded_diameters: tuple[float, ...]
    sigma: float

    def report(self) -> list[str]:
        lines = [
            "Fig. 6: oversized-cluster splitting",
            f"  sigma bound: {self.sigma:.0f} deg (one tile width)",
            f"  without bound: {self.unbounded.num_ptiles} Ptile(s),"
            f" cluster diameters "
            + ", ".join(f"{d:.0f}" for d in self.unbounded_diameters),
        ]
        lines.append("  tile map (unbounded):")
        lines += ["    " + row for row in tile_grid_map(self.unbounded)]
        lines.append(
            f"  with bound: {self.bounded.num_ptiles} Ptile(s),"
            f" cluster diameters "
            + ", ".join(f"{d:.0f}" for d in self.bounded_diameters)
        )
        lines.append("  tile map (bounded, split into A/B):")
        lines += ["    " + row for row in tile_grid_map(self.bounded)]
        return lines


def run_fig6(
    grid: TileGrid = DEFAULT_GRID,
    n_users: int = 24,
    span_deg: float = 80.0,
) -> Fig6Result:
    """Reproduce the Fig. 6 split on a synthetic wide cluster."""
    centers = make_wide_cluster(n_users=n_users, span_deg=span_deg)
    sigma = grid.tile_width
    delta = sigma / 4.0

    # (a) no effective size bound: sigma larger than any possible chain.
    unbounded_config = PtileConfig(sigma=1000.0, delta=delta, min_users=5)
    unbounded = build_segment_ptiles(grid, centers, unbounded_config)

    # (b) the paper's bound.
    bounded_config = PtileConfig(sigma=sigma, delta=delta, min_users=5)
    bounded = build_segment_ptiles(grid, centers, bounded_config)

    return Fig6Result(
        unbounded=unbounded,
        bounded=bounded,
        unbounded_diameters=tuple(
            p.cluster.diameter() for p in unbounded.ptiles
        ),
        bounded_diameters=tuple(p.cluster.diameter() for p in bounded.ptiles),
        sigma=sigma,
    )
