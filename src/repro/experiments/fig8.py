"""Fig. 8 — Ptile versus conventional tiles, encoded size.

For each video segment, the size of the Ptile covering the FoV region
is compared with the total size of the conventional tiles covering the
same area, at every quality level.  The paper reports median ratios of
62 / 57 / 47 / 35 / 27 % at quality 5..1 — the very numbers the encoder
model is calibrated against, so this experiment doubles as a
calibration check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..video.content import Video, build_catalog
from ..video.encoder import EncoderModel

__all__ = ["Fig8Result", "run_fig8", "PAPER_MEDIANS"]

PAPER_MEDIANS = {5: 0.62, 4: 0.57, 3: 0.47, 2: 0.35, 1: 0.27}
"""Median normalized Ptile sizes the paper reports per quality level."""

_FOV_TILES = 9


@dataclass(frozen=True)
class Fig8Result:
    """Normalized-size samples per quality level."""

    ratios: dict[int, np.ndarray]

    def median(self, quality: int) -> float:
        return float(np.median(self.ratios[quality]))

    def cdf(self, quality: int, grid: np.ndarray | None = None):
        if grid is None:
            grid = np.linspace(0.0, 1.2, 121)
        data = np.sort(self.ratios[quality])
        return grid, np.searchsorted(data, grid, side="right") / data.size

    def report(self) -> list[str]:
        lines = ["Fig. 8: normalized Ptile data size (median per quality)"]
        for q in sorted(self.ratios, reverse=True):
            lines.append(
                f"  quality {q}: median {self.median(q):.3f}"
                f" (paper: {PAPER_MEDIANS[q]:.2f}),"
                f" bandwidth saving {1 - self.median(q):.1%}"
            )
        return lines


def run_fig8(
    videos: tuple[Video, ...] | None = None,
    encoder: EncoderModel | None = None,
    segments_per_video: int | None = None,
) -> Fig8Result:
    """Compute the per-segment Ptile/Ctile size ratios."""
    videos = videos or build_catalog()
    encoder = encoder or EncoderModel()
    area = _FOV_TILES / encoder.grid.num_tiles
    levels = encoder.ladder.levels
    ratios: dict[int, list[float]] = {q: [] for q in levels}
    for video in videos:
        n = video.num_segments
        if segments_per_video is None:
            picks = range(n)
        else:
            picks = np.unique(
                np.linspace(0, n - 1, min(segments_per_video, n)).astype(int)
            )
        for idx in picks:
            seg = video.segment(int(idx))
            for q in levels:
                ptile = encoder.region_size_mbit(
                    q, seg.si, seg.ti, area,
                    noise_key=(video.meta.video_id, int(idx), "fig8-ptile"),
                )
                ctile = encoder.tiled_region_size_mbit(
                    q, seg.si, seg.ti, _FOV_TILES,
                    noise_key=(video.meta.video_id, int(idx), "fig8-ctile"),
                )
                ratios[q].append(ptile / ctile)
    return Fig8Result(ratios={q: np.array(v) for q, v in ratios.items()})
