"""Fig. 2 — motivation: energy inefficiency of conventional tiling.

(a) Transmission energy of the Ptile scheme normalized by the
    conventional tile-based approach (paper: ~35 % saving) — the FoV
    region encoded as one Ptile versus nine conventional tiles at the
    highest quality, averaged over the dataset's segments.
(b) Decoding time and power versus the number of concurrent decoders
    (paper: 1.3 s / 241 mW at 1 decoder to 0.5 s / 846 mW at 9; the
    Ptile needs 0.24 s / 287 mW).
(c) Video-processing (decode + render) energy of the Ptile scheme
    normalized by conventional schemes with 1..9 decoders (paper: 41 %
    saving versus the best, 4-decoder, configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power.decoding import MultiDecoderModel, PIXEL3_DECODER_MODEL
from ..power.models import PIXEL_3, DevicePowerModel
from ..video.content import Video, build_catalog
from ..video.encoder import EncoderModel
from .runner import parallel_map

__all__ = ["Fig2Result", "run_fig2"]

_FOV_TILES = 9
_FPS = 30.0


@dataclass(frozen=True)
class Fig2Result:
    """All three panels of Fig. 2."""

    transmission_ratio: float  # panel (a): Ptile / Ctile, quality 5
    decode_times_s: dict[int, float]  # panel (b)
    decode_powers_mw: dict[int, float]  # panel (b)
    ptile_decode_time_s: float
    ptile_decode_power_mw: float
    processing_ratio_vs_decoders: dict[int, float]  # panel (c)

    @property
    def transmission_saving(self) -> float:
        return 1.0 - self.transmission_ratio

    def processing_saving_vs(self, decoders: int) -> float:
        return 1.0 - self.processing_ratio_vs_decoders[decoders]

    def report(self) -> list[str]:
        lines = [
            "Fig. 2(a): Ptile transmission energy (normalized to Ctile): "
            f"{self.transmission_ratio:.3f} (saving {self.transmission_saving:.1%};"
            " paper: 35%)",
            "Fig. 2(b): decoders -> (time s, power mW):",
        ]
        for d in sorted(self.decode_times_s):
            lines.append(
                f"  {d}: ({self.decode_times_s[d]:.2f} s,"
                f" {self.decode_powers_mw[d]:.0f} mW)"
            )
        lines.append(
            f"  Ptile: ({self.ptile_decode_time_s:.2f} s,"
            f" {self.ptile_decode_power_mw:.0f} mW)"
        )
        best = min(
            self.processing_ratio_vs_decoders,
            key=lambda d: 1.0 / max(self.processing_ratio_vs_decoders[d], 1e-9),
        )
        lines.append(
            "Fig. 2(c): Ptile processing energy normalized per decoder count: "
            + ", ".join(
                f"{d}:{r:.3f}"
                for d, r in sorted(self.processing_ratio_vs_decoders.items())
            )
        )
        lines.append(
            f"  saving vs 4 decoders: {self.processing_saving_vs(4):.1%}"
            " (paper: 41%)"
        )
        del best
        return lines


def _video_transmission_ratios(
    payload: tuple[Video, EncoderModel, int],
) -> list[float]:
    """Panel (a) ratios for one video (module-level: pool-picklable)."""
    video, encoder, segments_per_video = payload
    area = _FOV_TILES / encoder.grid.num_tiles
    n = video.num_segments
    picks = np.unique(
        np.linspace(0, n - 1, min(segments_per_video, n)).astype(int)
    )
    ratios = []
    for idx in picks:
        seg = video.segment(int(idx))
        ptile = encoder.region_size_mbit(
            5, seg.si, seg.ti, area,
            noise_key=(video.meta.video_id, int(idx), "fig2-ptile"),
        )
        ctile = encoder.tiled_region_size_mbit(
            5, seg.si, seg.ti, _FOV_TILES,
            noise_key=(video.meta.video_id, int(idx), "fig2-ctile"),
        )
        ratios.append(ptile / ctile)
    return ratios


def run_fig2(
    encoder: EncoderModel | None = None,
    decoder_model: MultiDecoderModel = PIXEL3_DECODER_MODEL,
    device: DevicePowerModel = PIXEL_3,
    segments_per_video: int = 20,
    workers: int | None = 1,
) -> Fig2Result:
    """Reproduce the Fig. 2 motivation numbers.

    ``workers`` fans panel (a)'s per-video size sweeps across processes
    (0 = auto-detect); the result is identical for any worker count.
    """
    encoder = encoder or EncoderModel()
    videos = build_catalog()

    # Panel (a): FoV region at the top quality, Ptile vs separate tiles.
    sweep = parallel_map(
        _video_transmission_ratios,
        [(video, encoder, segments_per_video) for video in videos],
        workers=workers,
    )
    ratios = [r for per_video in sweep.results for r in per_video]
    transmission_ratio = float(np.median(ratios))

    # Panel (b): the multi-decoder curves.
    decode_times = {d: decoder_model.decode_time_s(d) for d in range(1, 10)}
    decode_powers = {d: decoder_model.decode_power_mw(d) for d in range(1, 10)}

    # Panel (c): decode energy + render energy over one segment.
    render_j = device.rendering_mw(_FPS) * 1e-3  # 1-second segment
    ptile_processing = decoder_model.ptile_energy_mj() * 1e-3 + render_j
    processing_ratio = {
        d: ptile_processing / (decoder_model.decode_energy_mj(d) * 1e-3 + render_j)
        for d in range(1, 10)
    }
    return Fig2Result(
        transmission_ratio=transmission_ratio,
        decode_times_s=decode_times,
        decode_powers_mw=decode_powers,
        ptile_decode_time_s=decoder_model.ptile_time_s,
        ptile_decode_power_mw=decoder_model.ptile_power_mw,
        processing_ratio_vs_decoders=processing_ratio,
    )
